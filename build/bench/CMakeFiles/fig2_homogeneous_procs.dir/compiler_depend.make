# Empty compiler generated dependencies file for fig2_homogeneous_procs.
# This may be replaced when dependencies are built.
