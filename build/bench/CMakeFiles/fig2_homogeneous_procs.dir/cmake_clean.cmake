file(REMOVE_RECURSE
  "CMakeFiles/fig2_homogeneous_procs.dir/fig2_homogeneous_procs.cpp.o"
  "CMakeFiles/fig2_homogeneous_procs.dir/fig2_homogeneous_procs.cpp.o.d"
  "fig2_homogeneous_procs"
  "fig2_homogeneous_procs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_homogeneous_procs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
