# Empty dependencies file for ablation_priorities.
# This may be replaced when dependencies are built.
