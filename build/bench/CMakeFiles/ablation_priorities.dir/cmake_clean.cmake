file(REMOVE_RECURSE
  "CMakeFiles/ablation_priorities.dir/ablation_priorities.cpp.o"
  "CMakeFiles/ablation_priorities.dir/ablation_priorities.cpp.o.d"
  "ablation_priorities"
  "ablation_priorities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_priorities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
