# Empty compiler generated dependencies file for fig1_homogeneous_ccr.
# This may be replaced when dependencies are built.
