file(REMOVE_RECURSE
  "CMakeFiles/fig1_homogeneous_ccr.dir/fig1_homogeneous_ccr.cpp.o"
  "CMakeFiles/fig1_homogeneous_ccr.dir/fig1_homogeneous_ccr.cpp.o.d"
  "fig1_homogeneous_ccr"
  "fig1_homogeneous_ccr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_homogeneous_ccr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
