file(REMOVE_RECURSE
  "CMakeFiles/ablation_edge_priority.dir/ablation_edge_priority.cpp.o"
  "CMakeFiles/ablation_edge_priority.dir/ablation_edge_priority.cpp.o.d"
  "ablation_edge_priority"
  "ablation_edge_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_edge_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
