# Empty dependencies file for ablation_edge_priority.
# This may be replaced when dependencies are built.
