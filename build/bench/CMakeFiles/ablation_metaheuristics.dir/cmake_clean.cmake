file(REMOVE_RECURSE
  "CMakeFiles/ablation_metaheuristics.dir/ablation_metaheuristics.cpp.o"
  "CMakeFiles/ablation_metaheuristics.dir/ablation_metaheuristics.cpp.o.d"
  "ablation_metaheuristics"
  "ablation_metaheuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_metaheuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
