# Empty compiler generated dependencies file for ablation_metaheuristics.
# This may be replaced when dependencies are built.
