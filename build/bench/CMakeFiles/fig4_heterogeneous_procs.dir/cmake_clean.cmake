file(REMOVE_RECURSE
  "CMakeFiles/fig4_heterogeneous_procs.dir/fig4_heterogeneous_procs.cpp.o"
  "CMakeFiles/fig4_heterogeneous_procs.dir/fig4_heterogeneous_procs.cpp.o.d"
  "fig4_heterogeneous_procs"
  "fig4_heterogeneous_procs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_heterogeneous_procs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
