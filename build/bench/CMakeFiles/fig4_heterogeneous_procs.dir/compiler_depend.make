# Empty compiler generated dependencies file for fig4_heterogeneous_procs.
# This may be replaced when dependencies are built.
