file(REMOVE_RECURSE
  "CMakeFiles/scheduling_cost.dir/scheduling_cost.cpp.o"
  "CMakeFiles/scheduling_cost.dir/scheduling_cost.cpp.o.d"
  "scheduling_cost"
  "scheduling_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduling_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
