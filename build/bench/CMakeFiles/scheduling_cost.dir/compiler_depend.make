# Empty compiler generated dependencies file for scheduling_cost.
# This may be replaced when dependencies are built.
