# Empty dependencies file for ablation_packet.
# This may be replaced when dependencies are built.
