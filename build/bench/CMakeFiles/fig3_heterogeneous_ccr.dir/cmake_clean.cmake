file(REMOVE_RECURSE
  "CMakeFiles/fig3_heterogeneous_ccr.dir/fig3_heterogeneous_ccr.cpp.o"
  "CMakeFiles/fig3_heterogeneous_ccr.dir/fig3_heterogeneous_ccr.cpp.o.d"
  "fig3_heterogeneous_ccr"
  "fig3_heterogeneous_ccr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_heterogeneous_ccr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
