# Empty compiler generated dependencies file for fig3_heterogeneous_ccr.
# This may be replaced when dependencies are built.
