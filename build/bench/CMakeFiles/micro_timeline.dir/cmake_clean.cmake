file(REMOVE_RECURSE
  "CMakeFiles/micro_timeline.dir/micro_timeline.cpp.o"
  "CMakeFiles/micro_timeline.dir/micro_timeline.cpp.o.d"
  "micro_timeline"
  "micro_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
