# Empty compiler generated dependencies file for micro_timeline.
# This may be replaced when dependencies are built.
