file(REMOVE_RECURSE
  "CMakeFiles/extension_task_scaling.dir/extension_task_scaling.cpp.o"
  "CMakeFiles/extension_task_scaling.dir/extension_task_scaling.cpp.o.d"
  "extension_task_scaling"
  "extension_task_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_task_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
