# Empty compiler generated dependencies file for extension_task_scaling.
# This may be replaced when dependencies are built.
