file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_timeline_test.dir/bandwidth_timeline_test.cpp.o"
  "CMakeFiles/bandwidth_timeline_test.dir/bandwidth_timeline_test.cpp.o.d"
  "bandwidth_timeline_test"
  "bandwidth_timeline_test.pdb"
  "bandwidth_timeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_timeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
