# Empty dependencies file for packetized_test.
# This may be replaced when dependencies are built.
