file(REMOVE_RECURSE
  "CMakeFiles/packetized_test.dir/packetized_test.cpp.o"
  "CMakeFiles/packetized_test.dir/packetized_test.cpp.o.d"
  "packetized_test"
  "packetized_test.pdb"
  "packetized_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packetized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
