file(REMOVE_RECURSE
  "CMakeFiles/ba_test.dir/ba_test.cpp.o"
  "CMakeFiles/ba_test.dir/ba_test.cpp.o.d"
  "ba_test"
  "ba_test.pdb"
  "ba_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ba_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
