# Empty compiler generated dependencies file for rate_profile_test.
# This may be replaced when dependencies are built.
