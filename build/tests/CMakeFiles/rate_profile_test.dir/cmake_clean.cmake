file(REMOVE_RECURSE
  "CMakeFiles/rate_profile_test.dir/rate_profile_test.cpp.o"
  "CMakeFiles/rate_profile_test.dir/rate_profile_test.cpp.o.d"
  "rate_profile_test"
  "rate_profile_test.pdb"
  "rate_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rate_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
