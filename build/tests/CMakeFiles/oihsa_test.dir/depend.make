# Empty dependencies file for oihsa_test.
# This may be replaced when dependencies are built.
