file(REMOVE_RECURSE
  "CMakeFiles/oihsa_test.dir/oihsa_test.cpp.o"
  "CMakeFiles/oihsa_test.dir/oihsa_test.cpp.o.d"
  "oihsa_test"
  "oihsa_test.pdb"
  "oihsa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oihsa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
