file(REMOVE_RECURSE
  "CMakeFiles/dag_serialization_test.dir/dag_serialization_test.cpp.o"
  "CMakeFiles/dag_serialization_test.dir/dag_serialization_test.cpp.o.d"
  "dag_serialization_test"
  "dag_serialization_test.pdb"
  "dag_serialization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_serialization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
