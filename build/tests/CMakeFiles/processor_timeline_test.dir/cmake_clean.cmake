file(REMOVE_RECURSE
  "CMakeFiles/processor_timeline_test.dir/processor_timeline_test.cpp.o"
  "CMakeFiles/processor_timeline_test.dir/processor_timeline_test.cpp.o.d"
  "processor_timeline_test"
  "processor_timeline_test.pdb"
  "processor_timeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/processor_timeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
