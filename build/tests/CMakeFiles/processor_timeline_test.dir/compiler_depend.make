# Empty compiler generated dependencies file for processor_timeline_test.
# This may be replaced when dependencies are built.
