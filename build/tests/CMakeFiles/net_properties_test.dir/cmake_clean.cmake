file(REMOVE_RECURSE
  "CMakeFiles/net_properties_test.dir/net_properties_test.cpp.o"
  "CMakeFiles/net_properties_test.dir/net_properties_test.cpp.o.d"
  "net_properties_test"
  "net_properties_test.pdb"
  "net_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
