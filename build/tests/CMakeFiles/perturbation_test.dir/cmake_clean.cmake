file(REMOVE_RECURSE
  "CMakeFiles/perturbation_test.dir/perturbation_test.cpp.o"
  "CMakeFiles/perturbation_test.dir/perturbation_test.cpp.o.d"
  "perturbation_test"
  "perturbation_test.pdb"
  "perturbation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perturbation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
