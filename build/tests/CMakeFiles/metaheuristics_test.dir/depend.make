# Empty dependencies file for metaheuristics_test.
# This may be replaced when dependencies are built.
