file(REMOVE_RECURSE
  "CMakeFiles/metaheuristics_test.dir/metaheuristics_test.cpp.o"
  "CMakeFiles/metaheuristics_test.dir/metaheuristics_test.cpp.o.d"
  "metaheuristics_test"
  "metaheuristics_test.pdb"
  "metaheuristics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaheuristics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
