file(REMOVE_RECURSE
  "CMakeFiles/bbsa_test.dir/bbsa_test.cpp.o"
  "CMakeFiles/bbsa_test.dir/bbsa_test.cpp.o.d"
  "bbsa_test"
  "bbsa_test.pdb"
  "bbsa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
