# Empty compiler generated dependencies file for bbsa_test.
# This may be replaced when dependencies are built.
