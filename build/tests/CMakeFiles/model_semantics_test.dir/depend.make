# Empty dependencies file for model_semantics_test.
# This may be replaced when dependencies are built.
