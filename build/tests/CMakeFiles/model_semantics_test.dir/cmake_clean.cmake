file(REMOVE_RECURSE
  "CMakeFiles/model_semantics_test.dir/model_semantics_test.cpp.o"
  "CMakeFiles/model_semantics_test.dir/model_semantics_test.cpp.o.d"
  "model_semantics_test"
  "model_semantics_test.pdb"
  "model_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
