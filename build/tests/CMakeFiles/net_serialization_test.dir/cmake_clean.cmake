file(REMOVE_RECURSE
  "CMakeFiles/net_serialization_test.dir/net_serialization_test.cpp.o"
  "CMakeFiles/net_serialization_test.dir/net_serialization_test.cpp.o.d"
  "net_serialization_test"
  "net_serialization_test.pdb"
  "net_serialization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_serialization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
