file(REMOVE_RECURSE
  "CMakeFiles/network_state_test.dir/network_state_test.cpp.o"
  "CMakeFiles/network_state_test.dir/network_state_test.cpp.o.d"
  "network_state_test"
  "network_state_test.pdb"
  "network_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
