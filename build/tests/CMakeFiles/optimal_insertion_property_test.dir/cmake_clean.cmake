file(REMOVE_RECURSE
  "CMakeFiles/optimal_insertion_property_test.dir/optimal_insertion_property_test.cpp.o"
  "CMakeFiles/optimal_insertion_property_test.dir/optimal_insertion_property_test.cpp.o.d"
  "optimal_insertion_property_test"
  "optimal_insertion_property_test.pdb"
  "optimal_insertion_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimal_insertion_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
