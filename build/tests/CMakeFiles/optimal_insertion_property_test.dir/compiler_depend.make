# Empty compiler generated dependencies file for optimal_insertion_property_test.
# This may be replaced when dependencies are built.
