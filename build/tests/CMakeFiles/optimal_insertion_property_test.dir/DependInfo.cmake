
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/optimal_insertion_property_test.cpp" "tests/CMakeFiles/optimal_insertion_property_test.dir/optimal_insertion_property_test.cpp.o" "gcc" "tests/CMakeFiles/optimal_insertion_property_test.dir/optimal_insertion_property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/edgesched_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/edgesched_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/edgesched_net.dir/DependInfo.cmake"
  "/root/repo/build/src/timeline/CMakeFiles/edgesched_timeline.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/edgesched_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/edgesched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
