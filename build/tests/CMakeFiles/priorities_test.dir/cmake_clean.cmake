file(REMOVE_RECURSE
  "CMakeFiles/priorities_test.dir/priorities_test.cpp.o"
  "CMakeFiles/priorities_test.dir/priorities_test.cpp.o.d"
  "priorities_test"
  "priorities_test.pdb"
  "priorities_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priorities_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
