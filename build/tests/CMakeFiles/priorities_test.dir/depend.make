# Empty dependencies file for priorities_test.
# This may be replaced when dependencies are built.
