# Empty compiler generated dependencies file for link_timeline_test.
# This may be replaced when dependencies are built.
