file(REMOVE_RECURSE
  "CMakeFiles/link_timeline_test.dir/link_timeline_test.cpp.o"
  "CMakeFiles/link_timeline_test.dir/link_timeline_test.cpp.o.d"
  "link_timeline_test"
  "link_timeline_test.pdb"
  "link_timeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_timeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
