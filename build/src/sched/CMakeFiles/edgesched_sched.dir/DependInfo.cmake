
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/annealing.cpp" "src/sched/CMakeFiles/edgesched_sched.dir/annealing.cpp.o" "gcc" "src/sched/CMakeFiles/edgesched_sched.dir/annealing.cpp.o.d"
  "/root/repo/src/sched/assignment.cpp" "src/sched/CMakeFiles/edgesched_sched.dir/assignment.cpp.o" "gcc" "src/sched/CMakeFiles/edgesched_sched.dir/assignment.cpp.o.d"
  "/root/repo/src/sched/ba.cpp" "src/sched/CMakeFiles/edgesched_sched.dir/ba.cpp.o" "gcc" "src/sched/CMakeFiles/edgesched_sched.dir/ba.cpp.o.d"
  "/root/repo/src/sched/bbsa.cpp" "src/sched/CMakeFiles/edgesched_sched.dir/bbsa.cpp.o" "gcc" "src/sched/CMakeFiles/edgesched_sched.dir/bbsa.cpp.o.d"
  "/root/repo/src/sched/classic.cpp" "src/sched/CMakeFiles/edgesched_sched.dir/classic.cpp.o" "gcc" "src/sched/CMakeFiles/edgesched_sched.dir/classic.cpp.o.d"
  "/root/repo/src/sched/genetic.cpp" "src/sched/CMakeFiles/edgesched_sched.dir/genetic.cpp.o" "gcc" "src/sched/CMakeFiles/edgesched_sched.dir/genetic.cpp.o.d"
  "/root/repo/src/sched/lower_bounds.cpp" "src/sched/CMakeFiles/edgesched_sched.dir/lower_bounds.cpp.o" "gcc" "src/sched/CMakeFiles/edgesched_sched.dir/lower_bounds.cpp.o.d"
  "/root/repo/src/sched/metrics.cpp" "src/sched/CMakeFiles/edgesched_sched.dir/metrics.cpp.o" "gcc" "src/sched/CMakeFiles/edgesched_sched.dir/metrics.cpp.o.d"
  "/root/repo/src/sched/network_state.cpp" "src/sched/CMakeFiles/edgesched_sched.dir/network_state.cpp.o" "gcc" "src/sched/CMakeFiles/edgesched_sched.dir/network_state.cpp.o.d"
  "/root/repo/src/sched/oihsa.cpp" "src/sched/CMakeFiles/edgesched_sched.dir/oihsa.cpp.o" "gcc" "src/sched/CMakeFiles/edgesched_sched.dir/oihsa.cpp.o.d"
  "/root/repo/src/sched/packetized.cpp" "src/sched/CMakeFiles/edgesched_sched.dir/packetized.cpp.o" "gcc" "src/sched/CMakeFiles/edgesched_sched.dir/packetized.cpp.o.d"
  "/root/repo/src/sched/priorities.cpp" "src/sched/CMakeFiles/edgesched_sched.dir/priorities.cpp.o" "gcc" "src/sched/CMakeFiles/edgesched_sched.dir/priorities.cpp.o.d"
  "/root/repo/src/sched/replay.cpp" "src/sched/CMakeFiles/edgesched_sched.dir/replay.cpp.o" "gcc" "src/sched/CMakeFiles/edgesched_sched.dir/replay.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/sched/CMakeFiles/edgesched_sched.dir/schedule.cpp.o" "gcc" "src/sched/CMakeFiles/edgesched_sched.dir/schedule.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/edgesched_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/edgesched_sched.dir/scheduler.cpp.o.d"
  "/root/repo/src/sched/trace_export.cpp" "src/sched/CMakeFiles/edgesched_sched.dir/trace_export.cpp.o" "gcc" "src/sched/CMakeFiles/edgesched_sched.dir/trace_export.cpp.o.d"
  "/root/repo/src/sched/validator.cpp" "src/sched/CMakeFiles/edgesched_sched.dir/validator.cpp.o" "gcc" "src/sched/CMakeFiles/edgesched_sched.dir/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/edgesched_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/edgesched_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/edgesched_net.dir/DependInfo.cmake"
  "/root/repo/build/src/timeline/CMakeFiles/edgesched_timeline.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
