file(REMOVE_RECURSE
  "libedgesched_sched.a"
)
