# Empty compiler generated dependencies file for edgesched_sched.
# This may be replaced when dependencies are built.
