file(REMOVE_RECURSE
  "CMakeFiles/edgesched_dag.dir/generators.cpp.o"
  "CMakeFiles/edgesched_dag.dir/generators.cpp.o.d"
  "CMakeFiles/edgesched_dag.dir/properties.cpp.o"
  "CMakeFiles/edgesched_dag.dir/properties.cpp.o.d"
  "CMakeFiles/edgesched_dag.dir/serialization.cpp.o"
  "CMakeFiles/edgesched_dag.dir/serialization.cpp.o.d"
  "CMakeFiles/edgesched_dag.dir/task_graph.cpp.o"
  "CMakeFiles/edgesched_dag.dir/task_graph.cpp.o.d"
  "CMakeFiles/edgesched_dag.dir/transforms.cpp.o"
  "CMakeFiles/edgesched_dag.dir/transforms.cpp.o.d"
  "libedgesched_dag.a"
  "libedgesched_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesched_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
