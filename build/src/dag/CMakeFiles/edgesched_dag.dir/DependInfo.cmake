
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dag/generators.cpp" "src/dag/CMakeFiles/edgesched_dag.dir/generators.cpp.o" "gcc" "src/dag/CMakeFiles/edgesched_dag.dir/generators.cpp.o.d"
  "/root/repo/src/dag/properties.cpp" "src/dag/CMakeFiles/edgesched_dag.dir/properties.cpp.o" "gcc" "src/dag/CMakeFiles/edgesched_dag.dir/properties.cpp.o.d"
  "/root/repo/src/dag/serialization.cpp" "src/dag/CMakeFiles/edgesched_dag.dir/serialization.cpp.o" "gcc" "src/dag/CMakeFiles/edgesched_dag.dir/serialization.cpp.o.d"
  "/root/repo/src/dag/task_graph.cpp" "src/dag/CMakeFiles/edgesched_dag.dir/task_graph.cpp.o" "gcc" "src/dag/CMakeFiles/edgesched_dag.dir/task_graph.cpp.o.d"
  "/root/repo/src/dag/transforms.cpp" "src/dag/CMakeFiles/edgesched_dag.dir/transforms.cpp.o" "gcc" "src/dag/CMakeFiles/edgesched_dag.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/edgesched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
