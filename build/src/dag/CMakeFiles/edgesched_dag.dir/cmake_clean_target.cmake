file(REMOVE_RECURSE
  "libedgesched_dag.a"
)
