# Empty dependencies file for edgesched_dag.
# This may be replaced when dependencies are built.
