file(REMOVE_RECURSE
  "libedgesched_util.a"
)
