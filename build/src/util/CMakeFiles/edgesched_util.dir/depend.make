# Empty dependencies file for edgesched_util.
# This may be replaced when dependencies are built.
