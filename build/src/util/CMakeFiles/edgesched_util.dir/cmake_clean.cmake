file(REMOVE_RECURSE
  "CMakeFiles/edgesched_util.dir/env.cpp.o"
  "CMakeFiles/edgesched_util.dir/env.cpp.o.d"
  "CMakeFiles/edgesched_util.dir/rng.cpp.o"
  "CMakeFiles/edgesched_util.dir/rng.cpp.o.d"
  "libedgesched_util.a"
  "libedgesched_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesched_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
