# Empty compiler generated dependencies file for edgesched_net.
# This may be replaced when dependencies are built.
