file(REMOVE_RECURSE
  "libedgesched_net.a"
)
