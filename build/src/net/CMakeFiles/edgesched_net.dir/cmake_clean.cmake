file(REMOVE_RECURSE
  "CMakeFiles/edgesched_net.dir/builders.cpp.o"
  "CMakeFiles/edgesched_net.dir/builders.cpp.o.d"
  "CMakeFiles/edgesched_net.dir/properties.cpp.o"
  "CMakeFiles/edgesched_net.dir/properties.cpp.o.d"
  "CMakeFiles/edgesched_net.dir/routing.cpp.o"
  "CMakeFiles/edgesched_net.dir/routing.cpp.o.d"
  "CMakeFiles/edgesched_net.dir/serialization.cpp.o"
  "CMakeFiles/edgesched_net.dir/serialization.cpp.o.d"
  "CMakeFiles/edgesched_net.dir/topology.cpp.o"
  "CMakeFiles/edgesched_net.dir/topology.cpp.o.d"
  "libedgesched_net.a"
  "libedgesched_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesched_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
