file(REMOVE_RECURSE
  "CMakeFiles/edgesched_sim.dir/perturbation.cpp.o"
  "CMakeFiles/edgesched_sim.dir/perturbation.cpp.o.d"
  "CMakeFiles/edgesched_sim.dir/runner.cpp.o"
  "CMakeFiles/edgesched_sim.dir/runner.cpp.o.d"
  "CMakeFiles/edgesched_sim.dir/stats.cpp.o"
  "CMakeFiles/edgesched_sim.dir/stats.cpp.o.d"
  "CMakeFiles/edgesched_sim.dir/table.cpp.o"
  "CMakeFiles/edgesched_sim.dir/table.cpp.o.d"
  "CMakeFiles/edgesched_sim.dir/workload.cpp.o"
  "CMakeFiles/edgesched_sim.dir/workload.cpp.o.d"
  "libedgesched_sim.a"
  "libedgesched_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesched_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
