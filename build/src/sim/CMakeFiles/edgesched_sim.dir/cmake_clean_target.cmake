file(REMOVE_RECURSE
  "libedgesched_sim.a"
)
