# Empty dependencies file for edgesched_sim.
# This may be replaced when dependencies are built.
