# Empty dependencies file for edgesched_timeline.
# This may be replaced when dependencies are built.
