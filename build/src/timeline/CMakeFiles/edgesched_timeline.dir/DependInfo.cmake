
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timeline/bandwidth_timeline.cpp" "src/timeline/CMakeFiles/edgesched_timeline.dir/bandwidth_timeline.cpp.o" "gcc" "src/timeline/CMakeFiles/edgesched_timeline.dir/bandwidth_timeline.cpp.o.d"
  "/root/repo/src/timeline/link_timeline.cpp" "src/timeline/CMakeFiles/edgesched_timeline.dir/link_timeline.cpp.o" "gcc" "src/timeline/CMakeFiles/edgesched_timeline.dir/link_timeline.cpp.o.d"
  "/root/repo/src/timeline/optimal_insertion.cpp" "src/timeline/CMakeFiles/edgesched_timeline.dir/optimal_insertion.cpp.o" "gcc" "src/timeline/CMakeFiles/edgesched_timeline.dir/optimal_insertion.cpp.o.d"
  "/root/repo/src/timeline/processor_timeline.cpp" "src/timeline/CMakeFiles/edgesched_timeline.dir/processor_timeline.cpp.o" "gcc" "src/timeline/CMakeFiles/edgesched_timeline.dir/processor_timeline.cpp.o.d"
  "/root/repo/src/timeline/rate_profile.cpp" "src/timeline/CMakeFiles/edgesched_timeline.dir/rate_profile.cpp.o" "gcc" "src/timeline/CMakeFiles/edgesched_timeline.dir/rate_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/edgesched_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/edgesched_dag.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
