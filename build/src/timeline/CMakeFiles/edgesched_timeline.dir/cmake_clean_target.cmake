file(REMOVE_RECURSE
  "libedgesched_timeline.a"
)
