file(REMOVE_RECURSE
  "CMakeFiles/edgesched_timeline.dir/bandwidth_timeline.cpp.o"
  "CMakeFiles/edgesched_timeline.dir/bandwidth_timeline.cpp.o.d"
  "CMakeFiles/edgesched_timeline.dir/link_timeline.cpp.o"
  "CMakeFiles/edgesched_timeline.dir/link_timeline.cpp.o.d"
  "CMakeFiles/edgesched_timeline.dir/optimal_insertion.cpp.o"
  "CMakeFiles/edgesched_timeline.dir/optimal_insertion.cpp.o.d"
  "CMakeFiles/edgesched_timeline.dir/processor_timeline.cpp.o"
  "CMakeFiles/edgesched_timeline.dir/processor_timeline.cpp.o.d"
  "CMakeFiles/edgesched_timeline.dir/rate_profile.cpp.o"
  "CMakeFiles/edgesched_timeline.dir/rate_profile.cpp.o.d"
  "libedgesched_timeline.a"
  "libedgesched_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesched_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
