# Empty compiler generated dependencies file for wide_area_grid.
# This may be replaced when dependencies are built.
