file(REMOVE_RECURSE
  "CMakeFiles/wide_area_grid.dir/wide_area_grid.cpp.o"
  "CMakeFiles/wide_area_grid.dir/wide_area_grid.cpp.o.d"
  "wide_area_grid"
  "wide_area_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wide_area_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
