# Empty dependencies file for cluster_workflow.
# This may be replaced when dependencies are built.
