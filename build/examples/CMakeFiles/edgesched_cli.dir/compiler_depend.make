# Empty compiler generated dependencies file for edgesched_cli.
# This may be replaced when dependencies are built.
