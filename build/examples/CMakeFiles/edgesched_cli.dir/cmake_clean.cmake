file(REMOVE_RECURSE
  "CMakeFiles/edgesched_cli.dir/edgesched_cli.cpp.o"
  "CMakeFiles/edgesched_cli.dir/edgesched_cli.cpp.o.d"
  "edgesched_cli"
  "edgesched_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesched_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
