file(REMOVE_RECURSE
  "CMakeFiles/cholesky_cluster.dir/cholesky_cluster.cpp.o"
  "CMakeFiles/cholesky_cluster.dir/cholesky_cluster.cpp.o.d"
  "cholesky_cluster"
  "cholesky_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cholesky_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
