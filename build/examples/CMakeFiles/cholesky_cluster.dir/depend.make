# Empty dependencies file for cholesky_cluster.
# This may be replaced when dependencies are built.
