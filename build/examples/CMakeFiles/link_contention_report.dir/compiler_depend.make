# Empty compiler generated dependencies file for link_contention_report.
# This may be replaced when dependencies are built.
