file(REMOVE_RECURSE
  "CMakeFiles/link_contention_report.dir/link_contention_report.cpp.o"
  "CMakeFiles/link_contention_report.dir/link_contention_report.cpp.o.d"
  "link_contention_report"
  "link_contention_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_contention_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
