# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cluster_workflow "/root/repo/build/examples/cluster_workflow" "6" "2")
set_tests_properties(example_cluster_workflow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_wide_area_grid "/root/repo/build/examples/wide_area_grid" "8" "40")
set_tests_properties(example_wide_area_grid PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compare_algorithms "/root/repo/build/examples/compare_algorithms")
set_tests_properties(example_compare_algorithms PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_link_contention_report "/root/repo/build/examples/link_contention_report" "8" "2")
set_tests_properties(example_link_contention_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cholesky_cluster "/root/repo/build/examples/cholesky_cluster" "4")
set_tests_properties(example_cholesky_cluster PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_text_schedule "/root/repo/build/examples/edgesched_cli" "--graph" "/root/repo/data/mapreduce.txt" "--star" "4" "--algorithm" "bbsa" "--output" "schedule")
set_tests_properties(cli_text_schedule PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_text_metrics "/root/repo/build/examples/edgesched_cli" "--graph" "/root/repo/data/mapreduce.txt" "--star" "4" "--algorithm" "bbsa" "--output" "metrics")
set_tests_properties(cli_text_metrics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_text_gantt "/root/repo/build/examples/edgesched_cli" "--graph" "/root/repo/data/mapreduce.txt" "--star" "4" "--algorithm" "bbsa" "--output" "gantt")
set_tests_properties(cli_text_gantt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_text_trace "/root/repo/build/examples/edgesched_cli" "--graph" "/root/repo/data/mapreduce.txt" "--star" "4" "--algorithm" "bbsa" "--output" "trace")
set_tests_properties(cli_text_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_text_dot "/root/repo/build/examples/edgesched_cli" "--graph" "/root/repo/data/mapreduce.txt" "--star" "4" "--algorithm" "bbsa" "--output" "dot")
set_tests_properties(cli_text_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_stg_oihsa "/root/repo/build/examples/edgesched_cli" "--graph" "/root/repo/data/pipeline.stg" "--graph-format" "stg" "--wan" "6" "--ccr" "3" "--algorithm" "oihsa" "--output" "metrics")
set_tests_properties(cli_stg_oihsa PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_packet_hetero "/root/repo/build/examples/edgesched_cli" "--graph" "/root/repo/data/mapreduce.txt" "--ring" "4" "--heterogeneous" "--algorithm" "packet" "--output" "gantt")
set_tests_properties(cli_packet_hetero PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;34;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_rejects_bad_flag "/root/repo/build/examples/edgesched_cli" "--bogus")
set_tests_properties(cli_rejects_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;38;add_test;/root/repo/examples/CMakeLists.txt;0;")
