// Ablation: what does workload-aware routing (§4.3) buy, holding the rest
// of OIHSA fixed? Baseline is OIHSA with minimal BFS routes.
#include "ablation_common.hpp"
#include "sched/oihsa.hpp"

int main(int argc, char** argv) {
  edgesched::bench::TelemetryScope telemetry("", &argc, argv);
  using edgesched::bench::Variant;
  using edgesched::sched::Oihsa;

  Oihsa::Options bfs;
  bfs.modified_routing = false;
  Oihsa::Options dijkstra;
  dijkstra.modified_routing = true;

  std::vector<Variant> variants;
  variants.push_back(
      Variant{"OIHSA + BFS routing", std::make_unique<Oihsa>(bfs)});
  variants.push_back(Variant{"OIHSA + modified routing",
                             std::make_unique<Oihsa>(dijkstra)});
  edgesched::bench::run_ablation("minimal vs workload-aware routing",
                                 std::move(variants), false,
                                 &telemetry.report());
  return 0;
}
