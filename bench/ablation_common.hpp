// Shared driver for the ablation benches: run a list of scheduler
// variants over a common instance set and report mean makespans plus the
// improvement of each variant over the first (the baseline).
#pragma once

#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"
#include "sched/validator.hpp"
#include "sim/runner.hpp"
#include "sim/stats.hpp"
#include "sim/workload.hpp"
#include "telemetry.hpp"
#include "util/env.hpp"

namespace edgesched::bench {

struct Variant {
  std::string label;
  std::unique_ptr<sched::Scheduler> scheduler;
};

/// When `report` is given, the per-variant means are appended under
/// "ablations" -> title (one binary may run several ablations).
inline void run_ablation(const std::string& title,
                         std::vector<Variant> variants,
                         bool heterogeneous = false,
                         obs::BenchReport* report = nullptr) {
  sim::ExperimentConfig config =
      sim::ExperimentConfig::defaults(heterogeneous);
  // Ablations need fewer axis points than the figure sweeps.
  config.ccr_values = {0.5, 2.0, 5.0, 10.0};
  config.processor_counts = {8, 16, 32};
  const bool validate = env_flag("EDGESCHED_VALIDATE", false);

  std::cout << "== ablation: " << title << " ==\n";
  std::cout << "ccr {0.5, 2, 5, 10} x procs {8, 16, 32} x "
            << config.repetitions << " reps, tasks U(" << config.tasks_min
            << ", " << config.tasks_max << ")\n\n";

  std::vector<sim::RunningStats> makespans(variants.size());
  std::vector<sim::RunningStats> improvements(variants.size());
  Rng root(config.seed);
  for (double ccr : config.ccr_values) {
    for (std::size_t procs : config.processor_counts) {
      for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
        Rng rng = root.fork();
        const sim::Instance instance =
            sim::make_instance(config, procs, ccr, rng);
        double baseline = 0.0;
        for (std::size_t v = 0; v < variants.size(); ++v) {
          const sched::Schedule s = variants[v].scheduler->schedule(
              instance.graph, instance.topology);
          if (validate) {
            sched::validate_or_throw(instance.graph, instance.topology, s);
          }
          const double makespan = s.makespan();
          makespans[v].add(makespan);
          if (v == 0) {
            baseline = makespan;
          }
          improvements[v].add(sim::improvement_pct(baseline, makespan));
        }
      }
    }
  }

  std::cout << std::setw(28) << "variant" << " | " << std::setw(14)
            << "mean makespan" << " | " << std::setw(20)
            << "vs baseline [%]" << "\n";
  std::cout << std::string(28, '-') << "-+-" << std::string(14, '-')
            << "-+-" << std::string(20, '-') << "\n";
  for (std::size_t v = 0; v < variants.size(); ++v) {
    std::cout << std::setw(28) << variants[v].label << " | "
              << std::setw(14) << std::fixed << std::setprecision(1)
              << makespans[v].mean() << " | " << std::setw(12)
              << std::setprecision(2) << improvements[v].mean() << " ± "
              << improvements[v].ci95_halfwidth() << "\n";
    std::cout.unsetf(std::ios::fixed);
    std::cout << std::setprecision(6);
  }
  std::cout << "\n";

  if (report != nullptr) {
    obs::JsonValue series = obs::JsonValue::array();
    for (std::size_t v = 0; v < variants.size(); ++v) {
      obs::JsonValue entry = obs::JsonValue::object();
      entry.set("label", obs::JsonValue(variants[v].label));
      entry.set("mean_makespan", obs::JsonValue(makespans[v].mean()));
      entry.set("improvement_pct_mean",
                obs::JsonValue(improvements[v].mean()));
      series.push(std::move(entry));
    }
    if (!report->root().contains("ablations")) {
      report->root().set("ablations", obs::JsonValue::object());
    }
    // set() replaces the whole member, so rebuild the object.
    obs::JsonValue ablations = report->root().at("ablations");
    ablations.set(title, std::move(series));
    report->root().set("ablations", std::move(ablations));
  }
}

}  // namespace edgesched::bench
