// Figure 4 of the paper: heterogeneous systems, % improved makespan of
// OIHSA and BBSA over BA versus processor count, averaged over CCR.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  return edgesched::bench::run_figure(
      argc, argv,
      "Figure 4", "heterogeneous systems, improvement vs processor count",
      /*heterogeneous=*/true, /*x_is_ccr=*/false);
}
