// Figure 4 of the paper: heterogeneous systems, % improved makespan of
// OIHSA and BBSA over BA versus processor count, averaged over CCR.
#include "fig_common.hpp"

int main() {
  return edgesched::bench::run_figure(
      "Figure 4", "heterogeneous systems, improvement vs processor count",
      /*heterogeneous=*/true, /*x_is_ccr=*/false);
}
