// Ablation: what does optimal insertion with deferral (§4.4) buy over
// first-fit insertion, holding routing and edge priorities fixed?
#include "ablation_common.hpp"
#include "sched/oihsa.hpp"

int main(int argc, char** argv) {
  edgesched::bench::TelemetryScope telemetry("", &argc, argv);
  using edgesched::bench::Variant;
  using edgesched::sched::Oihsa;

  Oihsa::Options basic;
  basic.optimal_insertion = false;
  Oihsa::Options optimal;
  optimal.optimal_insertion = true;

  std::vector<Variant> variants;
  variants.push_back(
      Variant{"OIHSA + basic insertion", std::make_unique<Oihsa>(basic)});
  variants.push_back(Variant{"OIHSA + optimal insertion",
                             std::make_unique<Oihsa>(optimal)});
  edgesched::bench::run_ablation("first-fit vs optimal insertion",
                                 std::move(variants), false,
                                 &telemetry.report());
  return 0;
}
