// Intra-run parallelism thread sweep: one engine run at 1/2/4/8 worker
// lanes over 16/64/256-processor fat trees.
//
// The parallel candidate scan (sched/intra_run.hpp, util/parallel_for)
// promises byte-identical schedules at every lane count, so the only
// question left is how much wall-clock the lanes buy. The scan
// parallelises the per-task processor loop, so the win grows with the
// processor count: a 16-processor scan barely covers the dispatch cost,
// a 256-processor scan is where the engine spends almost all of its
// time (see docs/performance.md item 11). This bench pins both ends.
//
// Each (processors, threads) cell schedules the same DAG batch through
// one shared PlatformContext — lane workers lease pooled workspaces
// exactly as a service job would — and reports best-of ns per schedule.
// The sweep also cross-checks the determinism contract: every cell's
// makespans must equal the serial cell's bit for bit.
//
// Knobs (environment):
//   EDGESCHED_PAR_DAGS            DAGs per measured batch (default 6)
//   EDGESCHED_PAR_TASKS           tasks per DAG (default 80)
//   EDGESCHED_REPS                repetitions, best-of (default 3)
//   EDGESCHED_MIN_PARALLEL_SPEEDUP  fail (exit 1) if the 4-thread
//                                 speedup on 256 processors falls below
//                                 this; 0 disables (CI sets it on
//                                 multi-core runners; a 1-core container
//                                 cannot measure a speedup)
//
// Outputs, to $EDGESCHED_BENCH_DIR (or the working directory):
//   BENCH_micro_parallel_engine.json   telemetry: per-cell timings
//   GBENCH_micro_parallel_engine.json  google-benchmark-shaped file for
//                                      tools/bench_compare (ns/schedule)
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "dag/generators.hpp"
#include "net/builders.hpp"
#include "obs/json.hpp"
#include "sched/intra_run.hpp"
#include "sched/platform.hpp"
#include "sched/registry.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

#include "telemetry.hpp"

namespace {

using namespace edgesched;

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

struct Cell {
  std::size_t processors = 0;
  std::size_t threads = 0;
  double ns_per_schedule = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetryScope telemetry("", &argc, argv);

  const auto num_dags =
      static_cast<std::size_t>(env_int("EDGESCHED_PAR_DAGS", 6));
  const auto num_tasks =
      static_cast<std::size_t>(env_int("EDGESCHED_PAR_TASKS", 80));
  const auto reps = static_cast<std::size_t>(env_int("EDGESCHED_REPS", 3));
  const std::string floor_env =
      env_string("EDGESCHED_MIN_PARALLEL_SPEEDUP", "");
  const double speedup_floor =
      floor_env.empty() ? 0.0 : std::stod(floor_env);

  // The selection-dominant preset: OIHSA's MLS-estimate scan probes a
  // route per candidate processor, so per-task cost is dominated by the
  // exact loop the lanes split.
  const sched::AlgorithmEntry* entry = sched::find_algorithm("oihsa");
  if (entry == nullptr) {
    std::cerr << "micro_parallel_engine: oihsa not registered\n";
    return 1;
  }
  const std::unique_ptr<sched::Scheduler> scheduler = entry->make();

  std::vector<dag::TaskGraph> graphs;
  graphs.reserve(num_dags);
  for (std::size_t i = 0; i < num_dags; ++i) {
    Rng dag_rng(1000 + i);
    dag::LayeredDagParams params;
    params.num_tasks = num_tasks;
    graphs.push_back(dag::random_layered(params, dag_rng));
  }

  std::cout << "== parallel engine sweep: " << num_dags << " DAGs x "
            << num_tasks << " tasks, " << entry->display
            << ", best of " << reps << " ==\n";

  const std::pair<std::size_t, std::size_t> fabrics[] = {
      {4, 4}, {8, 8}, {16, 16}};  // 16 / 64 / 256 processors
  std::vector<Cell> cells;
  double serial_256_ns = 0.0;
  double four_thread_256_ns = 0.0;
  for (const auto& [pods, hosts] : fabrics) {
    Rng topo_rng(20260807);
    const net::Topology topology =
        net::fat_tree(pods, hosts, net::SpeedConfig{}, topo_rng);
    const sched::PlatformContext platform(topology);
    const std::size_t procs = topology.num_processors();

    // Serial reference makespans: the determinism cross-check below
    // compares every parallel cell against these bit for bit.
    std::vector<double> reference;
    {
      const sched::ScopedIntraThreads serial(1);
      for (const dag::TaskGraph& graph : graphs) {
        reference.push_back(
            scheduler->schedule(graph, platform).makespan());
      }
    }

    for (const std::size_t threads : kThreadCounts) {
      const sched::ScopedIntraThreads scoped(threads);
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const auto begin = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < graphs.size(); ++i) {
          const double makespan =
              scheduler->schedule(graphs[i], platform).makespan();
          if (std::memcmp(&reference[i], &makespan, sizeof(double)) !=
              0) {
            std::cerr << "micro_parallel_engine: " << threads
                      << "-thread makespan diverged from serial on "
                      << procs << " processors, DAG " << i << "\n";
            return 1;
          }
        }
        best = std::min(
            best, std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - begin)
                      .count());
      }
      const double ns =
          best * 1e9 / static_cast<double>(graphs.size());
      cells.push_back(Cell{procs, threads, ns});
      if (procs == 256 && threads == 1) {
        serial_256_ns = ns;
      }
      if (procs == 256 && threads == 4) {
        four_thread_256_ns = ns;
      }
      std::cout << procs << " procs, " << threads << " threads: "
                << ns / 1e6 << " ms/schedule\n";
    }
  }

  const double speedup = four_thread_256_ns > 0.0
                             ? serial_256_ns / four_thread_256_ns
                             : 0.0;
  std::cout << "4-thread speedup on 256 processors: " << speedup << "x\n";

  for (const Cell& cell : cells) {
    telemetry.report().root().set(
        "p" + std::to_string(cell.processors) + "_t" +
            std::to_string(cell.threads) + "_ns",
        cell.ns_per_schedule);
  }
  telemetry.report().root().set("dags", num_dags);
  telemetry.report().root().set("tasks", num_tasks);
  telemetry.report().root().set("speedup_4t_256p", speedup);

  // Google-benchmark-shaped mirror so tools/bench_compare gates every
  // cell like the other micros. Per-processor-count serial rows double
  // as the scan-cost regression series.
  obs::JsonValue gbench = obs::JsonValue::object();
  obs::JsonValue context = obs::JsonValue::object();
  context.set("executable", "micro_parallel_engine");
  gbench.set("context", std::move(context));
  obs::JsonValue benchmarks = obs::JsonValue::array();
  for (const Cell& cell : cells) {
    obs::JsonValue row = obs::JsonValue::object();
    row.set("name", "micro_parallel_engine/procs:" +
                        std::to_string(cell.processors) +
                        "/threads:" + std::to_string(cell.threads));
    row.set("run_type", "iteration");
    row.set("iterations", 1);
    row.set("real_time", cell.ns_per_schedule);
    row.set("cpu_time", cell.ns_per_schedule);
    row.set("time_unit", "ns");
    benchmarks.push(std::move(row));
  }
  gbench.set("benchmarks", std::move(benchmarks));
  const std::string dir = env_string("EDGESCHED_BENCH_DIR", ".");
  const std::string gbench_path =
      dir + "/GBENCH_micro_parallel_engine.json";
  std::ofstream out(gbench_path);
  if (!out) {
    std::cerr << "micro_parallel_engine: cannot open " << gbench_path
              << "\n";
    return 1;
  }
  gbench.write(out, 2);
  out << "\n";
  std::cerr << "micro_parallel_engine: wrote " << gbench_path << "\n";

  if (speedup_floor > 0.0 && speedup < speedup_floor) {
    std::cerr << "micro_parallel_engine: 4-thread speedup " << speedup
              << "x below required " << speedup_floor << "x\n";
    return 1;
  }
  return 0;
}
