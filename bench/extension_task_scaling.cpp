// Extension experiment (not a paper figure): improvement vs task count.
// The paper fixes task counts at U(40, 1000) and never isolates the size
// axis; this bench does, explaining the Figure 2 deviation documented in
// EXPERIMENTS.md (more tasks = more parallelism for the routing to
// exploit at large machine sizes).
#include <iostream>

#include "sim/runner.hpp"
#include "sim/table.hpp"
#include "sim/workload.hpp"
#include "util/env.hpp"

#include "telemetry.hpp"

int main(int argc, char** argv) {
  edgesched::bench::TelemetryScope telemetry("", &argc, argv);
  using namespace edgesched;
  sim::ExperimentConfig config = sim::ExperimentConfig::defaults(false);
  config.ccr_values = {1.0, 5.0};
  config.processor_counts = {16, 64};
  config.repetitions =
      static_cast<std::size_t>(env_int("EDGESCHED_REPS", 3));
  const bool validate = env_flag("EDGESCHED_VALIDATE", false);

  std::cout << "== extension: improvement vs task count ==\n";
  std::cout << "ccr {1, 5} x procs {16, 64} x " << config.repetitions
            << " reps\n\n";
  const std::vector<std::size_t> task_counts{50, 100, 200, 400, 800};
  const auto points =
      sim::sweep_task_counts(config, task_counts, validate);
  sim::print_sweep(std::cout, "tasks", points);
  std::cout << "\ncsv:\n";
  sim::write_sweep_csv(std::cout, "tasks", points);
  return 0;
}
