// Micro-benchmarks of the timeline substrates: insertion search, optimal
// insertion with deferral, and the fluid bandwidth sweep.
#include <benchmark/benchmark.h>

#include "timeline/bandwidth_timeline.hpp"
#include "timeline/link_timeline.hpp"
#include "timeline/optimal_insertion.hpp"
#include "util/rng.hpp"

namespace {

using namespace edgesched;

timeline::LinkTimeline packed_timeline(std::size_t slots, Rng& rng) {
  timeline::LinkTimeline tl;
  for (std::size_t i = 0; i < slots; ++i) {
    const double duration = rng.uniform_real(0.5, 3.0);
    const double gap = rng.uniform_real(0.0, 1.0);
    tl.commit(tl.probe_basic(tl.last_finish() + gap, 0.0, duration),
              dag::EdgeId(i));
  }
  return tl;
}

void BM_BasicInsertionProbe(benchmark::State& state) {
  Rng rng(1);
  const timeline::LinkTimeline tl =
      packed_timeline(static_cast<std::size_t>(state.range(0)), rng);
  double t_es = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tl.probe_basic(t_es, 0.0, 1.5));
    t_es += 0.37;
    if (t_es > tl.last_finish()) {
      t_es = 0.0;
    }
  }
}
BENCHMARK(BM_BasicInsertionProbe)->Arg(16)->Arg(128)->Arg(1024);

void BM_OptimalInsertionProbe(benchmark::State& state) {
  Rng rng(2);
  const timeline::LinkTimeline tl =
      packed_timeline(static_cast<std::size_t>(state.range(0)), rng);
  const timeline::DeferralFn deferral =
      [](const timeline::TimeSlot& slot) {
        return (slot.edge.value() % 3 == 0) ? 1.0 : 0.0;
      };
  double t_es = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        timeline::probe_optimal(tl, t_es, 0.0, 1.5, deferral));
    t_es += 0.37;
    if (t_es > tl.last_finish()) {
      t_es = 0.0;
    }
  }
}
BENCHMARK(BM_OptimalInsertionProbe)->Arg(16)->Arg(128)->Arg(1024);

void BM_BandwidthTransferAndConsume(benchmark::State& state) {
  for (auto _ : state) {
    timeline::BandwidthTimeline tl(4.0);
    Rng rng(3);
    for (int i = 0; i < state.range(0); ++i) {
      const double ready = rng.uniform_real(0.0, 50.0);
      const timeline::RateProfile p =
          tl.transfer_from(ready, rng.uniform_real(1.0, 8.0));
      tl.consume(p);
    }
    benchmark::DoNotOptimize(tl.remaining_at(25.0));
  }
}
BENCHMARK(BM_BandwidthTransferAndConsume)->Arg(16)->Arg(64)->Arg(256);

void BM_BandwidthForwardChain(benchmark::State& state) {
  const auto hops = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::vector<timeline::BandwidthTimeline> chain;
    for (std::size_t i = 0; i < hops; ++i) {
      chain.emplace_back(1.0 + static_cast<double>(i % 3));
    }
    timeline::RateProfile profile = chain[0].transfer_from(0.0, 20.0);
    chain[0].consume(profile);
    for (std::size_t i = 1; i < hops; ++i) {
      profile = chain[i].forward(profile);
      chain[i].consume(profile);
    }
    benchmark::DoNotOptimize(profile.finish_time());
  }
}
BENCHMARK(BM_BandwidthForwardChain)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
