// Ablation: circuit switching vs store-and-forward packetization — the
// extension §2.2 notes BA lacks. Smaller packets pipeline across
// multi-hop routes but multiply the scheduling work.
#include "ablation_common.hpp"
#include "sched/ba.hpp"
#include "sched/packetized.hpp"

int main(int argc, char** argv) {
  edgesched::bench::TelemetryScope telemetry("", &argc, argv);
  using edgesched::bench::Variant;
  using edgesched::sched::BasicAlgorithm;
  using edgesched::sched::PacketizedBa;

  std::vector<Variant> variants;
  variants.push_back(
      Variant{"BA (cut-through circuit)",
              std::make_unique<BasicAlgorithm>()});
  for (double size : {1e12, 500.0, 250.0, 100.0, 50.0}) {
    PacketizedBa::Options options;
    options.packet_size = size;
    const std::string label =
        size >= 1e12 ? "PACKET-BA, single packet"
                     : "PACKET-BA, size " + std::to_string(
                                                static_cast<int>(size));
    variants.push_back(
        Variant{label, std::make_unique<PacketizedBa>(options)});
  }
  edgesched::bench::run_ablation("circuit vs packet switching",
                                 std::move(variants), false,
                                 &telemetry.report());
  return 0;
}
