// Micro-benchmarks of the end-to-end schedulers on a fixed mid-size
// instance: scheduling throughput of BA, OIHSA and BBSA.
#include <benchmark/benchmark.h>

#include "dag/generators.hpp"
#include "dag/properties.hpp"
#include "net/builders.hpp"
#include "sched/ba.hpp"
#include "sched/bbsa.hpp"
#include "sched/classic.hpp"
#include "sched/oihsa.hpp"

namespace {

using namespace edgesched;

struct FixedInstance {
  dag::TaskGraph graph;
  net::Topology topology;
};

FixedInstance instance(std::size_t tasks, std::size_t procs) {
  Rng rng(42);
  dag::LayeredDagParams params;
  params.num_tasks = tasks;
  dag::TaskGraph graph = dag::random_layered(params, rng);
  dag::rescale_to_ccr(graph, 2.0);
  net::RandomWanParams wan;
  wan.num_processors = procs;
  return FixedInstance{std::move(graph), net::random_wan(wan, rng)};
}

template <typename SchedulerT>
void schedule_instance(benchmark::State& state) {
  const FixedInstance inst =
      instance(static_cast<std::size_t>(state.range(0)),
               static_cast<std::size_t>(state.range(1)));
  const SchedulerT scheduler;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scheduler.schedule(inst.graph, inst.topology));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(inst.graph.num_tasks()));
}

void BM_ScheduleBA(benchmark::State& state) {
  schedule_instance<sched::BasicAlgorithm>(state);
}
void BM_ScheduleOIHSA(benchmark::State& state) {
  schedule_instance<sched::Oihsa>(state);
}
void BM_ScheduleBBSA(benchmark::State& state) {
  schedule_instance<sched::Bbsa>(state);
}
void BM_ScheduleClassic(benchmark::State& state) {
  schedule_instance<sched::ClassicScheduler>(state);
}

BENCHMARK(BM_ScheduleBA)->Args({60, 8})->Args({60, 32})->Args({120, 16});
BENCHMARK(BM_ScheduleOIHSA)->Args({60, 8})->Args({60, 32})->Args({120, 16});
BENCHMARK(BM_ScheduleBBSA)->Args({60, 8})->Args({60, 32})->Args({120, 16});
BENCHMARK(BM_ScheduleClassic)
    ->Args({60, 8})
    ->Args({60, 32})
    ->Args({120, 16});

}  // namespace
