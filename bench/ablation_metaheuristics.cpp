// Ablation: metaheuristic search vs one-pass list scheduling under
// contention — how much makespan do OIHSA/BBSA leave on the table, and at
// what cost? GA and SA both search the task→processor assignment space
// with the contention-aware fixed-assignment evaluator as fitness.
// Instances are kept small: every fitness evaluation is a full schedule.
#include <chrono>
#include <iomanip>
#include <iostream>

#include "sched/annealing.hpp"
#include "sched/ba.hpp"
#include "sched/bbsa.hpp"
#include "sched/genetic.hpp"
#include "sched/oihsa.hpp"
#include "sim/runner.hpp"
#include "sim/stats.hpp"
#include "sim/workload.hpp"
#include "util/env.hpp"

#include "telemetry.hpp"

int main(int argc, char** argv) {
  edgesched::bench::TelemetryScope telemetry("", &argc, argv);
  using namespace edgesched;
  using Clock = std::chrono::steady_clock;

  sim::ExperimentConfig config = sim::ExperimentConfig::defaults(false);
  config.tasks_min = 20;
  config.tasks_max = 60;
  config.repetitions =
      static_cast<std::size_t>(env_int("EDGESCHED_REPS", 3));

  std::cout << "== ablation: list scheduling vs metaheuristic search ==\n";
  std::cout << "small instances (tasks U(20,60), procs {4, 8}, "
               "ccr {1, 5}), improvements vs BA\n\n";

  struct Entry {
    std::string label;
    std::unique_ptr<sched::Scheduler> scheduler;
    sim::RunningStats improvement;
    double total_ms = 0.0;
  };
  std::vector<Entry> entries;
  entries.push_back({"OIHSA", std::make_unique<sched::Oihsa>(), {}, 0.0});
  entries.push_back({"BBSA", std::make_unique<sched::Bbsa>(), {}, 0.0});
  entries.push_back(
      {"GA", std::make_unique<sched::GeneticScheduler>(), {}, 0.0});
  entries.push_back(
      {"SA", std::make_unique<sched::AnnealingScheduler>(), {}, 0.0});

  std::size_t instances = 0;
  Rng root(config.seed);
  for (double ccr : {1.0, 5.0}) {
    for (std::size_t procs : {4, 8}) {
      for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
        Rng rng = root.fork();
        const sim::Instance inst =
            sim::make_instance(config, procs, ccr, rng);
        const double ba = sched::BasicAlgorithm{}
                              .schedule(inst.graph, inst.topology)
                              .makespan();
        for (Entry& entry : entries) {
          const auto begin = Clock::now();
          const double makespan =
              entry.scheduler->schedule(inst.graph, inst.topology)
                  .makespan();
          entry.total_ms += std::chrono::duration<double, std::milli>(
                                Clock::now() - begin)
                                .count();
          entry.improvement.add(sim::improvement_pct(ba, makespan));
        }
        ++instances;
      }
    }
  }

  std::cout << std::setw(8) << "variant" << " | " << std::setw(20)
            << "vs BA [%]" << " | " << std::setw(16) << "ms/schedule"
            << "\n";
  std::cout << std::string(8, '-') << "-+-" << std::string(20, '-')
            << "-+-" << std::string(16, '-') << "\n";
  for (const Entry& entry : entries) {
    std::cout << std::setw(8) << entry.label << " | " << std::setw(12)
              << std::fixed << std::setprecision(2)
              << entry.improvement.mean() << " ± "
              << entry.improvement.ci95_halfwidth() << " | "
              << std::setw(16)
              << entry.total_ms / static_cast<double>(instances) << "\n";
    std::cout.unsetf(std::ios::fixed);
    std::cout << std::setprecision(6);
  }
  return 0;
}
