// Micro-benchmarks of the routing layer: BFS minimal routing vs the
// probe-driven Dijkstra used by the modified routing algorithm.
#include <benchmark/benchmark.h>

#include "net/builders.hpp"
#include "net/routing.hpp"

namespace {

using namespace edgesched;

net::Topology wan(std::size_t procs, std::uint64_t seed) {
  Rng rng(seed);
  net::RandomWanParams params;
  params.num_processors = procs;
  return net::random_wan(params, rng);
}

void BM_BfsRoute(benchmark::State& state) {
  const net::Topology topo =
      wan(static_cast<std::size_t>(state.range(0)), 1);
  const auto& procs = topo.processors();
  std::size_t i = 0;
  for (auto _ : state) {
    const net::NodeId from = procs[i % procs.size()];
    const net::NodeId to = procs[(i * 7 + 3) % procs.size()];
    if (from != to) {
      benchmark::DoNotOptimize(net::bfs_route(topo, from, to));
    }
    ++i;
  }
}
BENCHMARK(BM_BfsRoute)->Arg(16)->Arg(64)->Arg(128);

void BM_RouteCache(benchmark::State& state) {
  const net::Topology topo =
      wan(static_cast<std::size_t>(state.range(0)), 2);
  net::RouteCache cache(topo);
  const auto& procs = topo.processors();
  std::size_t i = 0;
  for (auto _ : state) {
    const net::NodeId from = procs[i % procs.size()];
    const net::NodeId to = procs[(i * 7 + 3) % procs.size()];
    if (from != to) {
      benchmark::DoNotOptimize(cache.route(from, to));
    }
    ++i;
  }
}
BENCHMARK(BM_RouteCache)->Arg(16)->Arg(64)->Arg(128);

void BM_DijkstraProbeRoute(benchmark::State& state) {
  const net::Topology topo =
      wan(static_cast<std::size_t>(state.range(0)), 3);
  const auto& procs = topo.processors();
  const auto probe = [&](net::LinkId l, const net::ProbeState& s) {
    const double duration = 1.0 / topo.link_speed(l);
    const double finish =
        std::max(s.earliest_start + duration, s.min_finish);
    return net::ProbeResult{finish - duration, finish};
  };
  // One workspace reused across searches — the pattern every scheduler
  // uses (per-run workspace, epoch-stamped label resets).
  net::RoutingWorkspace ws;
  std::size_t i = 0;
  for (auto _ : state) {
    const net::NodeId from = procs[i % procs.size()];
    const net::NodeId to = procs[(i * 7 + 3) % procs.size()];
    if (from != to) {
      benchmark::DoNotOptimize(
          net::dijkstra_route_probe(topo, from, to, 0.0, probe, &ws));
    }
    ++i;
  }
}
BENCHMARK(BM_DijkstraProbeRoute)->Arg(16)->Arg(64)->Arg(128);

}  // namespace
