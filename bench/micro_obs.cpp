// Micro-benchmark of the observability layer's own hot paths.
//
// The tracer is always compiled in, so the numbers that matter are the
// per-span cost in each mode — kDisabled is the price every scheduler
// phase pays on an untraced run (docs/observability.md documents the
// resulting <2 % budget on micro_schedulers) — plus the cost of a
// counter increment and of the decision-log activation check.
#include <benchmark/benchmark.h>

#include "obs/counters.hpp"
#include "obs/decision_log.hpp"
#include "obs/trace.hpp"

namespace {

using edgesched::obs::Span;
using edgesched::obs::TraceMode;
using edgesched::obs::Tracer;

void BM_SpanDisabled(benchmark::State& state) {
  Tracer::instance().set_mode(TraceMode::kDisabled);
  for (auto _ : state) {
    Span span("obs/bench_span", "bench");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanAggregate(benchmark::State& state) {
  Tracer::instance().set_mode(TraceMode::kAggregate);
  for (auto _ : state) {
    Span span("obs/bench_span", "bench");
    benchmark::DoNotOptimize(&span);
  }
  Tracer::instance().set_mode(TraceMode::kDisabled);
  Tracer::instance().clear();
}
BENCHMARK(BM_SpanAggregate);

void BM_SpanFull(benchmark::State& state) {
  Tracer::instance().set_mode(TraceMode::kFull);
  for (auto _ : state) {
    Span span("obs/bench_span", "bench");
    benchmark::DoNotOptimize(&span);
  }
  Tracer::instance().set_mode(TraceMode::kDisabled);
  Tracer::instance().clear();
}
BENCHMARK(BM_SpanFull);

void BM_CounterIncrement(benchmark::State& state) {
  edgesched::svc::Counter& counter =
      edgesched::obs::global_metrics().counter("bench_obs_counter_total");
  for (auto _ : state) {
    counter.increment();
  }
}
BENCHMARK(BM_CounterIncrement);

void BM_DecisionLogCheck(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(edgesched::obs::active_decision_log());
  }
}
BENCHMARK(BM_DecisionLogCheck);

}  // namespace
