// Custom google-benchmark main shared by the micro binaries.
//
// Replaces benchmark::benchmark_main so every micro run also emits
// BENCH_<name>.json telemetry (wall time, counters, span totals) and
// understands the common --trace/--decisions/--metrics flags. Tracing
// defaults to kDisabled here — the measured loops must run the tracer's
// null path, which is exactly what micro_obs quantifies — while the
// figure and ablation benches default to kAggregate.
#include <benchmark/benchmark.h>

#include "telemetry.hpp"

int main(int argc, char** argv) {
  edgesched::bench::TelemetryScope telemetry(
      "", &argc, argv, edgesched::obs::TraceMode::kDisabled);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
