// Ablation: task priority schemes. The paper fixes bottom level (§2.1) as
// the static priority; this bench measures what the choice is worth for
// OIHSA against the common alternatives.
#include "ablation_common.hpp"
#include "sched/oihsa.hpp"

int main(int argc, char** argv) {
  edgesched::bench::TelemetryScope telemetry("", &argc, argv);
  using edgesched::bench::Variant;
  using edgesched::sched::Oihsa;
  using edgesched::sched::PriorityScheme;

  std::vector<Variant> variants;
  Oihsa::Options bl;
  bl.priority = PriorityScheme::kBottomLevel;
  Oihsa::Options bl_comp;
  bl_comp.priority = PriorityScheme::kBottomLevelComputationOnly;
  Oihsa::Options tlbl;
  tlbl.priority = PriorityScheme::kTopLevelPlusBottomLevel;

  variants.push_back(Variant{"OIHSA, bl (paper)",
                             std::make_unique<Oihsa>(bl)});
  variants.push_back(Variant{"OIHSA, bl computation-only",
                             std::make_unique<Oihsa>(bl_comp)});
  variants.push_back(
      Variant{"OIHSA, tl + bl", std::make_unique<Oihsa>(tlbl)});
  edgesched::bench::run_ablation("task priority scheme",
                                 std::move(variants), false,
                                 &telemetry.report());
  return 0;
}
