// Ablation: the scheduling-model readings DESIGN.md §6 documents.
//
//   * task placement: insertion (default reading of §2.1) vs literal
//     append t_s = max(t_dr, t_f(P));
//   * communication departure: at the task's ready moment (§4.1 dynamic
//     model, default) vs eagerly at each source's finish;
//   * BA processor selection: communication-blind EFT (the paper's
//     description of BA, default) vs Sinnen's full tentative evaluation.
#include "ablation_common.hpp"
#include "sched/ba.hpp"
#include "sched/oihsa.hpp"

int main(int argc, char** argv) {
  edgesched::bench::TelemetryScope telemetry("", &argc, argv);
  using edgesched::bench::Variant;
  using edgesched::sched::BaProcessorSelection;
  using edgesched::sched::BasicAlgorithm;
  using edgesched::sched::Oihsa;

  {
    std::vector<Variant> variants;
    Oihsa::Options append;
    append.task_insertion = false;
    variants.push_back(Variant{"OIHSA, insertion placement",
                               std::make_unique<Oihsa>()});
    variants.push_back(Variant{"OIHSA, append placement",
                               std::make_unique<Oihsa>(append)});
    edgesched::bench::run_ablation("task placement policy",
                                   std::move(variants), false,
                                 &telemetry.report());
  }
  {
    std::vector<Variant> variants;
    Oihsa::Options eager;
    eager.eager_communication = true;
    variants.push_back(Variant{"OIHSA, ready-moment shipping",
                               std::make_unique<Oihsa>()});
    variants.push_back(Variant{"OIHSA, eager shipping",
                               std::make_unique<Oihsa>(eager)});
    edgesched::bench::run_ablation("communication departure",
                                   std::move(variants), false,
                                 &telemetry.report());
  }
  {
    std::vector<Variant> variants;
    BasicAlgorithm::Options tentative;
    tentative.selection = BaProcessorSelection::kTentativeEft;
    variants.push_back(Variant{"BA, comm-blind EFT (paper)",
                               std::make_unique<BasicAlgorithm>()});
    variants.push_back(Variant{"BA, tentative EFT (Sinnen)",
                               std::make_unique<BasicAlgorithm>(tentative)});
    variants.push_back(Variant{"OIHSA", std::make_unique<Oihsa>()});
    edgesched::bench::run_ablation("BA processor selection",
                                   std::move(variants), false,
                                 &telemetry.report());
  }
  return 0;
}
