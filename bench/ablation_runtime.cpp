// Ablation: achieved vs predicted makespan when each contention-aware
// schedule is replayed through the discrete-event executor (exec/) under
// duration jitter and hazard-sampled resource failures with
// reschedule-remaining recovery. The static robustness ablation
// (ablation_robustness) only stretches task weights; this one exercises
// the full runtime — cut-through transfer replay, fault kills, and
// online replanning on the surviving topology.
#include <iomanip>
#include <iostream>
#include <memory>

#include "exec/executor.hpp"
#include "sched/registry.hpp"
#include "sim/stats.hpp"
#include "sim/workload.hpp"
#include "util/env.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

#include "telemetry.hpp"

namespace {

using namespace edgesched;

/// `expected_faults` is the expected number of processor faults over the
/// sampling horizon, independent of instance size; it converts to the
/// executor's per-resource hazard rate via the predicted makespan.
exec::ExecutionOptions make_options(double jitter, double expected_faults,
                                    const net::Topology& topology,
                                    const sched::Schedule& schedule,
                                    std::uint64_t seed) {
  exec::ExecutionOptions options;
  options.model.duration_spread = jitter;
  options.model.bandwidth_spread = jitter * 0.5;
  options.model.seed = seed;
  options.policy = exec::RecoveryPolicy::kReschedule;
  if (expected_faults > 0.0 && schedule.makespan() > 0.0) {
    // Processor hazards only: a permanent link fault partitions the
    // sparse random WAN, which makes every run trivially unrecoverable
    // instead of exercising reschedule-remaining.
    exec::HazardConfig hazard;
    hazard.horizon = 4.0 * schedule.makespan();
    hazard.processor_rate =
        expected_faults /
        (static_cast<double>(topology.processors().size()) * hazard.horizon);
    hazard.link_rate = 0.0;
    hazard.permanent_fraction = 0.3;
    hazard.mean_repair = 0.05 * schedule.makespan();
    hazard.seed = seed ^ 0x9e3779b97f4a7c15ULL;
    options.faults = exec::FaultPlan::sampled(topology, hazard);
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  edgesched::bench::TelemetryScope telemetry("", &argc, argv);
  using namespace edgesched;

  sim::ExperimentConfig config = sim::ExperimentConfig::defaults(false);
  config.tasks_min = 40;
  config.tasks_max = 120;
  const int reps = static_cast<int>(env_int("EDGESCHED_REPS", 3));
  const char* algorithms[] = {"ba", "oihsa", "bbsa"};

  std::cout << "== ablation: runtime replay under jitter and faults ==\n";
  std::cout << "procs 8, ccr 2, " << reps
            << " instances, reschedule-remaining recovery\n\n";
  std::cout << std::setw(8) << "jitter" << std::setw(12) << "E[faults]"
            << std::setw(8) << "algo" << std::setw(12) << "slowdown"
            << std::setw(10) << "faults" << std::setw(10) << "replans"
            << std::setw(11) << "completed" << "\n";

  for (double jitter : {0.0, 0.1, 0.3}) {
    for (double expected_faults : {0.0, 2.0, 5.0}) {
      for (const char* key : algorithms) {
        const sched::AlgorithmEntry* entry = sched::find_algorithm(key);
        const std::unique_ptr<sched::Scheduler> scheduler = entry->make();
        sim::RunningStats slowdown;
        sim::RunningStats faults;
        sim::RunningStats replans;
        int completed = 0;
        Rng root(config.seed);
        for (int rep = 0; rep < reps; ++rep) {
          Rng rng = root.fork();
          const sim::Instance inst = sim::make_instance(config, 8, 2.0, rng);
          const sched::Schedule schedule =
              scheduler->schedule(inst.graph, inst.topology);
          Fingerprint fp;
          fp.mix(config.seed);
          fp.mix(static_cast<std::uint64_t>(rep));
          const exec::ExecutionReport report = exec::execute(
              inst.graph, inst.topology, schedule,
              make_options(jitter, expected_faults, inst.topology, schedule,
                           fp.value()));
          faults.add(static_cast<double>(report.faults_injected));
          replans.add(static_cast<double>(report.reschedules));
          if (report.completed) {
            ++completed;
            slowdown.add(report.slowdown);
          }
        }
        std::cout << std::setw(8) << jitter << std::setw(12) << expected_faults
                  << std::setw(8) << key << std::setw(12) << std::fixed
                  << std::setprecision(3)
                  << (completed > 0 ? slowdown.mean() : 0.0)
                  << std::setw(10) << std::setprecision(1) << faults.mean()
                  << std::setw(10) << replans.mean() << std::setw(10)
                  << completed << "/" << reps << "\n";
        std::cout.unsetf(std::ios::fixed);
      }
    }
  }
  std::cout << "\nslowdown = achieved / predicted makespan, over completed "
               "runs; faults/replans are per-run means.\n"
               "E[faults] spans the 4x-makespan hazard horizon; faults "
               "sampled after the run finishes never fire, so injected "
               "counts sit below it.\n";
  return 0;
}
