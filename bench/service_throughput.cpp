// Service throughput: many distinct DAGs over one switched fabric
// through svc::SchedulerService, cold versus warm platform cache.
//
// This is the amortisation evidence for the PlatformContext split: the
// per-topology derived state (all-pairs static route table, cached
// reductions, pooled workspaces) dominates the cost of scheduling a
// modest DAG on a large fabric, so sharing one context across jobs
// (`share_platform`, the default) must beat rebuilding it per job
// (`share_platform = false`, the cold baseline) by a wide margin. Every
// DAG is distinct, so the schedule cache never hits — the measured gap
// is pure platform reuse, not result memoisation.
//
// Knobs (environment):
//   EDGESCHED_SERVICE_DAGS     DAGs per measured batch (default 48)
//   EDGESCHED_SERVICE_THREADS  service worker threads (default 4)
//   EDGESCHED_REPS             repetitions, best-of (default 3)
//   EDGESCHED_MIN_WARM_RATIO   fail (exit 1) if cold/warm falls below
//                              this ratio; 0 disables (CI sets 1.3)
//
// Outputs, to $EDGESCHED_BENCH_DIR (or the working directory):
//   BENCH_service_throughput.json   telemetry: per-mode timings + ratio
//   GBENCH_service_throughput.json  google-benchmark-shaped file for
//                                   tools/bench_compare (ns per DAG)
#include <algorithm>
#include <chrono>
#include <fstream>
#include <future>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "dag/generators.hpp"
#include "net/builders.hpp"
#include "obs/json.hpp"
#include "svc/scheduler_service.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

#include "telemetry.hpp"

namespace {

using namespace edgesched;

/// One batch: submit every DAG against the shared fabric and drain the
/// futures. Returns wall seconds for the whole batch.
double run_batch(svc::SchedulerService& service,
                 const std::vector<std::shared_ptr<const dag::TaskGraph>>&
                     graphs,
                 const std::shared_ptr<const net::Topology>& topology) {
  const auto begin = std::chrono::steady_clock::now();
  std::vector<std::future<svc::SchedulerService::SchedulePtr>> futures;
  futures.reserve(graphs.size());
  for (const auto& graph : graphs) {
    futures.push_back(service.submit(graph, topology, "ba"));
  }
  for (auto& future : futures) {
    if (future.get() == nullptr) {
      throw std::runtime_error("service_throughput: null schedule");
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       begin)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetryScope telemetry("", &argc, argv);

  const auto num_dags =
      static_cast<std::size_t>(env_int("EDGESCHED_SERVICE_DAGS", 48));
  const auto threads =
      static_cast<std::size_t>(env_int("EDGESCHED_SERVICE_THREADS", 4));
  const auto reps = static_cast<std::size_t>(env_int("EDGESCHED_REPS", 3));
  const std::string min_ratio_env =
      env_string("EDGESCHED_MIN_WARM_RATIO", "");
  const double min_ratio =
      min_ratio_env.empty() ? 0.0 : std::stod(min_ratio_env);

  // One ~256-processor fat tree: large enough that deriving platform
  // state per job dwarfs scheduling one modest DAG across it.
  Rng topo_rng(20260807);
  const auto topology = std::make_shared<const net::Topology>(
      net::fat_tree(16, 16, net::SpeedConfig{}, topo_rng));

  // Distinct seeds per DAG so no two request fingerprints collide and
  // the schedule cache stays cold in both modes.
  std::vector<std::shared_ptr<const dag::TaskGraph>> graphs;
  graphs.reserve(num_dags);
  for (std::size_t i = 0; i < num_dags; ++i) {
    Rng dag_rng(1000 + i);
    dag::LayeredDagParams params;
    params.num_tasks = static_cast<std::size_t>(
        dag_rng.uniform_int(40, 60));
    graphs.push_back(std::make_shared<const dag::TaskGraph>(
        dag::random_layered(params, dag_rng)));
  }
  // Separate-seed DAG used to prewarm the platform cache in warm mode
  // without touching any measured request fingerprint.
  Rng prewarm_rng(999);
  dag::LayeredDagParams prewarm_params;
  prewarm_params.num_tasks = 40;
  const auto prewarm_graph = std::make_shared<const dag::TaskGraph>(
      dag::random_layered(prewarm_params, prewarm_rng));

  std::cout << "== service throughput: " << num_dags << " DAGs over one "
            << topology->num_processors() << "-processor fat tree, "
            << threads << " threads, best of " << reps << " ==\n";

  // Fresh service per repetition so result caches never carry over
  // between reps; best-of per mode absorbs scheduler jitter.
  double cold_seconds = std::numeric_limits<double>::infinity();
  double warm_seconds = std::numeric_limits<double>::infinity();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    {
      svc::ServiceConfig config;
      config.threads = threads;
      config.share_platform = false;
      svc::SchedulerService service(config);
      cold_seconds =
          std::min(cold_seconds, run_batch(service, graphs, topology));
    }
    {
      svc::ServiceConfig config;
      config.threads = threads;
      svc::SchedulerService service(config);
      if (service.submit(prewarm_graph, topology, "ba").get() == nullptr) {
        std::cerr << "service_throughput: prewarm failed\n";
        return 1;
      }
      warm_seconds =
          std::min(warm_seconds, run_batch(service, graphs, topology));
    }
  }

  const double ratio =
      warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0;
  const double cold_ns_per_dag =
      cold_seconds * 1e9 / static_cast<double>(num_dags);
  const double warm_ns_per_dag =
      warm_seconds * 1e9 / static_cast<double>(num_dags);
  std::cout << "cold (rebuild platform per job): " << cold_seconds
            << " s  (" << cold_ns_per_dag / 1e6 << " ms/DAG)\n";
  std::cout << "warm (shared platform cache):    " << warm_seconds
            << " s  (" << warm_ns_per_dag / 1e6 << " ms/DAG)\n";
  std::cout << "warm-over-cold speedup: " << ratio << "x\n";

  telemetry.report().root().set("dags", num_dags);
  telemetry.report().root().set("threads", threads);
  telemetry.report().root().set("processors", topology->num_processors());
  telemetry.report().root().set("cold_seconds", cold_seconds);
  telemetry.report().root().set("warm_seconds", warm_seconds);
  telemetry.report().root().set("warm_over_cold", ratio);

  // Google-benchmark-shaped mirror so tools/bench_compare gates the two
  // series exactly like the micro benches.
  obs::JsonValue gbench = obs::JsonValue::object();
  obs::JsonValue context = obs::JsonValue::object();
  context.set("executable", "service_throughput");
  gbench.set("context", std::move(context));
  obs::JsonValue benchmarks = obs::JsonValue::array();
  const std::pair<const char*, double> rows[] = {
      {"service_throughput/cold", cold_ns_per_dag},
      {"service_throughput/warm", warm_ns_per_dag},
  };
  for (const auto& [name, ns] : rows) {
    obs::JsonValue entry = obs::JsonValue::object();
    entry.set("name", name);
    entry.set("run_type", "iteration");
    entry.set("iterations", 1);
    entry.set("real_time", ns);
    entry.set("cpu_time", ns);
    entry.set("time_unit", "ns");
    benchmarks.push(std::move(entry));
  }
  gbench.set("benchmarks", std::move(benchmarks));
  const std::string dir = env_string("EDGESCHED_BENCH_DIR", ".");
  const std::string gbench_path = dir + "/GBENCH_service_throughput.json";
  std::ofstream out(gbench_path);
  if (!out) {
    std::cerr << "service_throughput: cannot open " << gbench_path << "\n";
    return 1;
  }
  gbench.write(out, 2);
  out << "\n";
  std::cerr << "service_throughput: wrote " << gbench_path << "\n";

  if (min_ratio > 0.0 && ratio < min_ratio) {
    std::cerr << "service_throughput: warm-over-cold " << ratio
              << "x below required " << min_ratio << "x\n";
    return 1;
  }
  return 0;
}
