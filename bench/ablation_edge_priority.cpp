// Ablation: does scheduling a ready task's incoming edges by decreasing
// cost (§4.2) matter, for both OIHSA and BBSA?
#include "ablation_common.hpp"
#include "sched/bbsa.hpp"
#include "sched/oihsa.hpp"

int main(int argc, char** argv) {
  edgesched::bench::TelemetryScope telemetry("", &argc, argv);
  using edgesched::bench::Variant;
  using edgesched::sched::Bbsa;
  using edgesched::sched::Oihsa;

  Oihsa::Options o_pred;
  o_pred.edge_priority_by_cost = false;
  Oihsa::Options o_cost;
  o_cost.edge_priority_by_cost = true;
  Bbsa::Options b_pred;
  b_pred.edge_priority_by_cost = false;
  Bbsa::Options b_cost;
  b_cost.edge_priority_by_cost = true;

  std::vector<Variant> variants;
  variants.push_back(Variant{"OIHSA, predecessor order",
                             std::make_unique<Oihsa>(o_pred)});
  variants.push_back(Variant{"OIHSA, decreasing cost",
                             std::make_unique<Oihsa>(o_cost)});
  variants.push_back(Variant{"BBSA, predecessor order",
                             std::make_unique<Bbsa>(b_pred)});
  variants.push_back(
      Variant{"BBSA, decreasing cost", std::make_unique<Bbsa>(b_cost)});
  edgesched::bench::run_ablation("edge scheduling order",
                                 std::move(variants), false,
                                 &telemetry.report());
  return 0;
}
