// Figure 1 of the paper: homogeneous systems, % improved makespan of
// OIHSA and BBSA over BA versus CCR, averaged over processor counts.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  return edgesched::bench::run_figure(
      argc, argv,
      "Figure 1", "homogeneous systems, improvement vs CCR",
      /*heterogeneous=*/false, /*x_is_ccr=*/true);
}
