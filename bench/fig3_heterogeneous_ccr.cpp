// Figure 3 of the paper: heterogeneous systems (processor and link speeds
// U(1,10)), % improved makespan of OIHSA and BBSA over BA versus CCR.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  return edgesched::bench::run_figure(
      argc, argv,
      "Figure 3", "heterogeneous systems, improvement vs CCR",
      /*heterogeneous=*/true, /*x_is_ccr=*/true);
}
