// Scale-frontier sweep: task count x processor count for the
// contention-aware algorithms on switched fat-tree topologies.
//
// The paper's experiments stop at hundreds of tasks; this bench is the
// evidence that the engine's large-scale structures (hierarchical gap
// index, sharded route caches, per-run arenas, incremental ready queue)
// hold the measured growth near the documented O(E log V + E * R)
// model instead of the quadratic blowup the linear structures had. Per
// cell it schedules a random layered DAG and reports wall time,
// makespan and the routed-edge count; per (algorithm, processors)
// series it fits the scaling exponent of time vs tasks by log-log least
// squares. Those exponents back the complexity table in
// docs/performance.md.
//
// Scale tiers:
//   default            CI-sized grid (seconds; gated in ci.yml against
//                      bench/baselines/post/GBENCH_extension_scaling.json)
//   EDGESCHED_SCALE_FULL=1
//                      the 50k-task / 256-processor frontier
//   EDGESCHED_SCALE_TASKS / _PROCS / _ALGOS / _BA_TASKS_MAX /
//   EDGESCHED_REPS     manual overrides (comma-separated lists)
//
// Outputs, to $EDGESCHED_BENCH_DIR (or the working directory):
//   BENCH_extension_scaling.json   telemetry: cells + fitted exponents
//   GBENCH_extension_scaling.json  google-benchmark-shaped file for
//                                  tools/bench_compare (name/cpu_time
//                                  per cell, run_type "iteration")
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dag/generators.hpp"
#include "net/builders.hpp"
#include "obs/json.hpp"
#include "sched/registry.hpp"
#include "sched/validator.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

#include "telemetry.hpp"

namespace {

using namespace edgesched;

std::vector<std::size_t> parse_sizes(const std::string& csv) {
  std::vector<std::size_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      out.push_back(static_cast<std::size_t>(std::stoull(item)));
    }
  }
  return out;
}

std::vector<std::string> parse_names(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

/// Fat tree with ~16 processors per leaf switch — the bench's canonical
/// switched topology family, scaled by total processor count.
net::Topology switched_topology(std::size_t processors, Rng& rng) {
  const std::size_t per_leaf = std::min<std::size_t>(processors, 16);
  const std::size_t leaves = std::max<std::size_t>(1, processors / per_leaf);
  return net::fat_tree(leaves, per_leaf, net::SpeedConfig{}, rng);
}

struct Cell {
  std::string algorithm;
  std::size_t tasks = 0;
  std::size_t procs = 0;
  double seconds = 0.0;
  double makespan = 0.0;
  std::size_t edges = 0;
};

/// Least-squares slope of log(seconds) vs log(tasks) — the measured
/// scaling exponent of one (algorithm, processors) series.
double fit_exponent(const std::vector<Cell>& cells,
                    const std::string& algorithm, std::size_t procs) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (const Cell& c : cells) {
    if (c.algorithm == algorithm && c.procs == procs && c.seconds > 0.0) {
      xs.push_back(std::log(static_cast<double>(c.tasks)));
      ys.push_back(std::log(c.seconds));
    }
  }
  if (xs.size() < 2) {
    return 0.0;
  }
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(xs.size());
  my /= static_cast<double>(xs.size());
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    num += (xs[i] - mx) * (ys[i] - my);
    den += (xs[i] - mx) * (xs[i] - mx);
  }
  return den > 0.0 ? num / den : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetryScope telemetry("", &argc, argv);

  const bool full = env_flag("EDGESCHED_SCALE_FULL", false);
  std::vector<std::size_t> task_counts =
      full ? std::vector<std::size_t>{5000, 10000, 20000, 50000}
           : std::vector<std::size_t>{500, 1000, 2000, 4000};
  std::vector<std::size_t> proc_counts =
      full ? std::vector<std::size_t>{64, 256}
           : std::vector<std::size_t>{16, 64};
  std::vector<std::string> algorithms{"ba", "oihsa", "bbsa"};
  if (const std::string v = env_string("EDGESCHED_SCALE_TASKS", "");
      !v.empty()) {
    task_counts = parse_sizes(v);
  }
  if (const std::string v = env_string("EDGESCHED_SCALE_PROCS", "");
      !v.empty()) {
    proc_counts = parse_sizes(v);
  }
  if (const std::string v = env_string("EDGESCHED_SCALE_ALGOS", "");
      !v.empty()) {
    algorithms = parse_names(v);
  }
  // BA re-evaluates every processor per task against the link state, so
  // its frontier is lower; cap it rather than dropping the series.
  const auto ba_tasks_max = static_cast<std::size_t>(
      env_int("EDGESCHED_BA_TASKS_MAX", full ? 20000 : 4000));
  const auto reps = static_cast<std::size_t>(env_int("EDGESCHED_REPS", 1));
  const bool validate_runs = env_flag("EDGESCHED_VALIDATE", false);

  std::cout << "== extension: scale frontier (tasks x processors) ==\n";
  std::cout << "algorithm, tasks, procs, seconds, makespan, edges\n";

  std::vector<Cell> cells;
  for (const std::size_t tasks : task_counts) {
    dag::LayeredDagParams params;
    params.num_tasks = tasks;
    Rng dag_rng(20260807 + tasks);
    const dag::TaskGraph graph = dag::random_layered(params, dag_rng);
    for (const std::size_t procs : proc_counts) {
      Rng topo_rng(7 + procs);
      const net::Topology topology = switched_topology(procs, topo_rng);
      for (const std::string& name : algorithms) {
        if (name == "ba" && tasks > ba_tasks_max) {
          std::cout << "ba, " << tasks << ", " << procs
                    << ", skipped (EDGESCHED_BA_TASKS_MAX)\n";
          continue;
        }
        const std::unique_ptr<sched::Scheduler> scheduler =
            sched::make_scheduler(name);
        Cell cell;
        cell.algorithm = name;
        cell.tasks = tasks;
        cell.procs = procs;
        cell.seconds = std::numeric_limits<double>::infinity();
        for (std::size_t rep = 0; rep < reps; ++rep) {
          const auto begin = std::chrono::steady_clock::now();
          const sched::Schedule schedule =
              scheduler->schedule(graph, topology);
          const double seconds =
              std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - begin)
                  .count();
          cell.seconds = std::min(cell.seconds, seconds);
          cell.makespan = schedule.makespan();
          cell.edges = graph.num_edges();
          if (validate_runs) {
            sched::validate_or_throw(graph, topology, schedule);
          }
        }
        cells.push_back(cell);
        std::cout << cell.algorithm << ", " << cell.tasks << ", "
                  << cell.procs << ", " << cell.seconds << ", "
                  << cell.makespan << ", " << cell.edges << "\n";
      }
    }
  }

  std::cout << "\nfitted exponents (time ~ tasks^k):\n";
  obs::JsonValue cells_json = obs::JsonValue::array();
  for (const Cell& c : cells) {
    obs::JsonValue entry = obs::JsonValue::object();
    entry.set("algorithm", c.algorithm);
    entry.set("tasks", c.tasks);
    entry.set("procs", c.procs);
    entry.set("seconds", c.seconds);
    entry.set("makespan", c.makespan);
    entry.set("edges", c.edges);
    cells_json.push(std::move(entry));
  }
  obs::JsonValue exponents = obs::JsonValue::array();
  for (const std::string& name : algorithms) {
    for (const std::size_t procs : proc_counts) {
      const double k = fit_exponent(cells, name, procs);
      if (k != 0.0) {
        std::cout << "  " << name << " @ " << procs << " procs: " << k
                  << "\n";
        obs::JsonValue entry = obs::JsonValue::object();
        entry.set("algorithm", name);
        entry.set("procs", procs);
        entry.set("exponent", k);
        exponents.push(std::move(entry));
      }
    }
  }
  telemetry.report().root().set("cells", std::move(cells_json));
  telemetry.report().root().set("exponents", std::move(exponents));

  // Google-benchmark-shaped mirror of the cells so tools/bench_compare
  // can gate this sweep exactly like the micro benches.
  obs::JsonValue gbench = obs::JsonValue::object();
  obs::JsonValue context = obs::JsonValue::object();
  context.set("executable", "extension_scaling");
  gbench.set("context", std::move(context));
  obs::JsonValue benchmarks = obs::JsonValue::array();
  for (const Cell& c : cells) {
    obs::JsonValue entry = obs::JsonValue::object();
    std::ostringstream bench_name;
    bench_name << "scaling/" << c.algorithm << "/tasks:" << c.tasks
               << "/procs:" << c.procs;
    entry.set("name", bench_name.str());
    entry.set("run_type", "iteration");
    entry.set("iterations", 1);
    entry.set("real_time", c.seconds * 1e9);
    entry.set("cpu_time", c.seconds * 1e9);
    entry.set("time_unit", "ns");
    benchmarks.push(std::move(entry));
  }
  gbench.set("benchmarks", std::move(benchmarks));
  const std::string dir = env_string("EDGESCHED_BENCH_DIR", ".");
  const std::string gbench_path = dir + "/GBENCH_extension_scaling.json";
  std::ofstream out(gbench_path);
  if (!out) {
    std::cerr << "extension_scaling: cannot open " << gbench_path << "\n";
    return 1;
  }
  gbench.write(out, 2);
  out << "\n";
  std::cerr << "extension_scaling: wrote " << gbench_path << "\n";
  return 0;
}
