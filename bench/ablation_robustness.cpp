// Ablation: robustness of each scheduler's assignments to runtime
// duration noise. A static schedule optimised to the hilt for nominal
// costs can be brittle; this bench re-executes each algorithm's
// assignment under multiplicative task-weight noise and reports the mean
// and worst slowdown relative to its own nominal makespan.
#include <iomanip>
#include <iostream>
#include <memory>

#include "sched/ba.hpp"
#include "sched/bbsa.hpp"
#include "sched/oihsa.hpp"
#include "sched/scheduler.hpp"
#include "sim/perturbation.hpp"
#include "sim/workload.hpp"
#include "util/env.hpp"

#include "telemetry.hpp"

int main(int argc, char** argv) {
  edgesched::bench::TelemetryScope telemetry("", &argc, argv);
  using namespace edgesched;

  sim::ExperimentConfig config = sim::ExperimentConfig::defaults(false);
  config.tasks_min = 40;
  config.tasks_max = 120;
  const int reps = static_cast<int>(env_int("EDGESCHED_REPS", 3));

  std::cout << "== ablation: schedule robustness under duration noise ==\n";
  std::cout << "procs 8, ccr 2, " << reps
            << " instances, 30 perturbation trials each\n\n";
  std::cout << std::setw(8) << "spread" << std::setw(10) << "algo"
            << std::setw(16) << "mean slowdown" << std::setw(16)
            << "worst slowdown" << "\n";

  for (double spread : {0.1, 0.3}) {
    const auto schedulers = sched::all_schedulers();
    for (const auto& scheduler : schedulers) {
      sim::RunningStats mean_slowdown;
      sim::RunningStats worst_slowdown;
      Rng root(config.seed);
      for (int rep = 0; rep < reps; ++rep) {
        Rng rng = root.fork();
        const sim::Instance inst =
            sim::make_instance(config, 8, 2.0, rng);
        const sched::Schedule s =
            scheduler->schedule(inst.graph, inst.topology);
        sim::PerturbationOptions options;
        options.spread = spread;
        const sim::RobustnessReport report =
            sim::assess_robustness(inst.graph, inst.topology, s,
                                   options);
        mean_slowdown.add(report.mean_slowdown);
        worst_slowdown.add(report.worst_slowdown);
      }
      std::cout << std::setw(8) << spread << std::setw(10)
                << scheduler->name() << std::setw(16) << std::fixed
                << std::setprecision(3) << mean_slowdown.mean()
                << std::setw(16) << worst_slowdown.mean() << "\n";
      std::cout.unsetf(std::ios::fixed);
      std::cout << std::setprecision(6);
    }
  }
  return 0;
}
