// Figure 2 of the paper: homogeneous systems, % improved makespan of
// OIHSA and BBSA over BA versus processor count, averaged over CCR.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  return edgesched::bench::run_figure(
      argc, argv,
      "Figure 2", "homogeneous systems, improvement vs processor count",
      /*heterogeneous=*/false, /*x_is_ccr=*/false);
}
