// Ablation: the cost of ignoring contention. A classic contention-free
// schedule is replayed on the real network (same assignments, real routes
// and link queues) and compared with the contention-aware algorithms.
#include <iomanip>
#include <iostream>

#include "sched/ba.hpp"
#include "sched/bbsa.hpp"
#include "sched/classic.hpp"
#include "sched/oihsa.hpp"
#include "sched/replay.hpp"
#include "sched/validator.hpp"
#include "sim/runner.hpp"
#include "sim/stats.hpp"
#include "sim/workload.hpp"
#include "util/env.hpp"

#include "telemetry.hpp"

int main(int argc, char** argv) {
  edgesched::bench::TelemetryScope telemetry("", &argc, argv);
  using namespace edgesched;

  sim::ExperimentConfig config = sim::ExperimentConfig::defaults(false);
  config.ccr_values = {0.5, 2.0, 5.0, 10.0};
  config.processor_counts = {8, 16, 32};
  const bool validate = env_flag("EDGESCHED_VALIDATE", false);

  std::cout << "== ablation: contention awareness ==\n";
  std::cout << "CLASSIC plans on the idealised model; 'replayed' is that "
               "plan executed on the real network.\n\n";

  sim::RunningStats classic_planned;
  sim::RunningStats classic_replayed;
  sim::RunningStats ba;
  sim::RunningStats oihsa;
  sim::RunningStats bbsa;
  sim::RunningStats underestimate_pct;  // planned vs replayed gap
  sim::RunningStats oihsa_vs_replay;

  Rng root(config.seed);
  for (double ccr : config.ccr_values) {
    for (std::size_t procs : config.processor_counts) {
      for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
        Rng rng = root.fork();
        const sim::Instance inst =
            sim::make_instance(config, procs, ccr, rng);

        const sched::Schedule planned =
            sched::ClassicScheduler{}.schedule(inst.graph, inst.topology);
        const sched::Schedule replayed =
            sched::replay_under_contention(inst.graph, inst.topology,
                                           planned);
        const sched::Schedule s_ba =
            sched::BasicAlgorithm{}.schedule(inst.graph, inst.topology);
        const sched::Schedule s_oihsa =
            sched::Oihsa{}.schedule(inst.graph, inst.topology);
        const sched::Schedule s_bbsa =
            sched::Bbsa{}.schedule(inst.graph, inst.topology);
        if (validate) {
          sched::validate_or_throw(inst.graph, inst.topology, replayed);
          sched::validate_or_throw(inst.graph, inst.topology, s_ba);
          sched::validate_or_throw(inst.graph, inst.topology, s_oihsa);
          sched::validate_or_throw(inst.graph, inst.topology, s_bbsa);
        }

        classic_planned.add(planned.makespan());
        classic_replayed.add(replayed.makespan());
        ba.add(s_ba.makespan());
        oihsa.add(s_oihsa.makespan());
        bbsa.add(s_bbsa.makespan());
        underestimate_pct.add(sim::improvement_pct(replayed.makespan(),
                                                   planned.makespan()));
        oihsa_vs_replay.add(sim::improvement_pct(replayed.makespan(),
                                                 s_oihsa.makespan()));
      }
    }
  }

  const auto row = [](const std::string& label,
                      const sim::RunningStats& s) {
    std::cout << std::setw(28) << label << " | " << std::setw(14)
              << std::fixed << std::setprecision(1) << s.mean() << "\n";
    std::cout.unsetf(std::ios::fixed);
    std::cout << std::setprecision(6);
  };
  std::cout << std::setw(28) << "schedule" << " | " << std::setw(14)
            << "mean makespan" << "\n";
  std::cout << std::string(28, '-') << "-+-" << std::string(14, '-')
            << "\n";
  row("CLASSIC (planned, ideal)", classic_planned);
  row("CLASSIC replayed (real)", classic_replayed);
  row("BA", ba);
  row("OIHSA", oihsa);
  row("BBSA", bbsa);
  std::cout << "\nclassic plan underestimates reality by "
            << std::fixed << std::setprecision(1)
            << -underestimate_pct.mean() << "% on average\n";
  std::cout << "OIHSA beats the replayed classic schedule by "
            << oihsa_vs_replay.mean() << "% on average\n";
  return 0;
}
