// Shared driver for the four figure-reproduction benches.
//
// Each fig binary reproduces one figure of the paper's evaluation (§6):
// the mean percentage makespan improvement of OIHSA and BBSA over BA,
// either versus CCR (averaged over processor counts) or versus processor
// count (averaged over CCR), in homogeneous or heterogeneous systems.
//
// Environment knobs (see DESIGN.md §4): EDGESCHED_TASKS_MIN/MAX,
// EDGESCHED_REPS, EDGESCHED_SEED, EDGESCHED_FULL=1 (paper-scale task
// counts), EDGESCHED_VALIDATE=1 (run every schedule through the
// validator), EDGESCHED_MAX_PROCS (truncate the processor axis).
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "sim/runner.hpp"
#include "sim/table.hpp"
#include "sim/workload.hpp"
#include "telemetry.hpp"
#include "util/env.hpp"

namespace edgesched::bench {

inline int run_figure(int argc, char** argv, const std::string& figure,
                      const std::string& title, bool heterogeneous,
                      bool x_is_ccr) {
  TelemetryScope telemetry("", &argc, argv);
  sim::ExperimentConfig config =
      sim::ExperimentConfig::defaults(heterogeneous);
  const auto max_procs = static_cast<std::size_t>(
      env_int("EDGESCHED_MAX_PROCS", 128));
  std::erase_if(config.processor_counts,
                [&](std::size_t p) { return p > max_procs; });
  const bool validate = env_flag("EDGESCHED_VALIDATE", false);

  std::cout << "== " << figure << ": " << title << " ==\n";
  std::cout << "tasks U(" << config.tasks_min << ", " << config.tasks_max
            << "), reps " << config.repetitions << ", seed " << config.seed
            << (heterogeneous ? ", heterogeneous speeds U(1,10)"
                              : ", homogeneous speeds = 1")
            << (validate ? ", validating every schedule" : "") << "\n\n";

  const auto progress = [](std::size_t done, std::size_t total) {
    if (done == total || done % 16 == 0) {
      std::fprintf(stderr, "\r  %zu/%zu instances", done, total);
      if (done == total) {
        std::fprintf(stderr, "\n");
      }
      std::fflush(stderr);
    }
  };

  const std::vector<sim::SweepPoint> points =
      x_is_ccr ? sim::sweep_ccr(config, validate, progress)
               : sim::sweep_processors(config, validate, progress);

  const std::string x_label = x_is_ccr ? "CCR" : "processors";
  sim::print_sweep(std::cout, x_label, points);
  std::cout << "\n";
  sim::print_sweep_chart(std::cout, x_label, points);
  std::cout << "\ncsv:\n";
  sim::write_sweep_csv(std::cout, x_label, points);

  telemetry.report().set_string("figure", figure);
  telemetry.report().set_string("x_label", x_label);
  obs::JsonValue series = obs::JsonValue::array();
  for (const sim::SweepPoint& point : points) {
    obs::JsonValue entry = obs::JsonValue::object();
    entry.set("x", obs::JsonValue(point.x));
    entry.set("ba_makespan_mean",
              obs::JsonValue(point.ba_makespan.mean()));
    entry.set("oihsa_improvement_pct_mean",
              obs::JsonValue(point.oihsa_improvement_pct.mean()));
    entry.set("bbsa_improvement_pct_mean",
              obs::JsonValue(point.bbsa_improvement_pct.mean()));
    series.push(std::move(entry));
  }
  telemetry.report().root().set("points", std::move(series));
  return 0;
}

}  // namespace edgesched::bench
