// Insertion-heavy micro-benchmarks of the link-timeline hot path: the
// probe→commit cycle that dominates every scheduler run. Complements
// micro_timeline (which measures probes against a *static* timeline) by
// measuring the mutating patterns: first-fit commit growth, the Basic
// Algorithm's commit/uncommit rollback, optimal insertion with a live
// deferral cascade, and the full ExclusiveNetworkState edge commit.
#include <benchmark/benchmark.h>

#include <vector>

#include "net/builders.hpp"
#include "net/routing.hpp"
#include "sched/network_state.hpp"
#include "timeline/link_timeline.hpp"
#include "timeline/optimal_insertion.hpp"
#include "util/rng.hpp"

namespace {

using namespace edgesched;

// Grow a timeline to `slots` occupations with first-fit commits at
// randomized ready times — every probe runs against the slots committed
// so far, so the search cost compounds as the timeline fills.
void BM_FirstFitCommitGrowth(benchmark::State& state) {
  const auto slots = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(7);
    std::vector<double> ready(slots);
    for (double& r : ready) {
      r = rng.uniform_real(0.0, static_cast<double>(slots));
    }
    state.ResumeTiming();
    timeline::LinkTimeline tl;
    for (std::size_t i = 0; i < slots; ++i) {
      tl.commit(tl.probe_basic(ready[i], 0.0, 0.75), dag::EdgeId(i));
    }
    benchmark::DoNotOptimize(tl.last_finish());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(slots));
}
BENCHMARK(BM_FirstFitCommitGrowth)->Arg(64)->Arg(256)->Arg(1024);

// The Basic Algorithm's tentative-evaluation pattern: probe + commit an
// edge into a packed timeline, then erase it again (rollback).
void BM_CommitEraseCycle(benchmark::State& state) {
  Rng rng(11);
  timeline::LinkTimeline tl;
  const auto slots = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < slots; ++i) {
    const double gap = rng.uniform_real(0.0, 1.0);
    tl.commit(tl.probe_basic(tl.last_finish() + gap, 0.0,
                             rng.uniform_real(0.5, 3.0)),
              dag::EdgeId(i));
  }
  const double horizon = tl.last_finish();
  double t_es = 0.0;
  for (auto _ : state) {
    const timeline::Placement p = tl.probe_basic(t_es, 0.0, 0.4);
    tl.commit(p, dag::EdgeId(slots));
    tl.erase(p.position);
    t_es += 1.13;
    if (t_es > horizon) {
      t_es = 0.0;
    }
  }
}
BENCHMARK(BM_CommitEraseCycle)->Arg(64)->Arg(256)->Arg(1024);

// Optimal insertion against a packed timeline with deferral slack on a
// third of the occupants, committed (cascade applied) and rolled back by
// rebuilding — measures probe + shift-cascade cost together.
void BM_OptimalInsertCommit(benchmark::State& state) {
  const auto slots = static_cast<std::size_t>(state.range(0));
  const timeline::DeferralFn deferral =
      [](const timeline::TimeSlot& slot) {
        return (slot.edge.value() % 3 == 0) ? 0.8 : 0.0;
      };
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(13);
    timeline::LinkTimeline tl;
    for (std::size_t i = 0; i < slots; ++i) {
      const double gap = rng.uniform_real(0.1, 0.6);
      tl.commit(tl.probe_basic(tl.last_finish() + gap, 0.0,
                               rng.uniform_real(0.5, 2.0)),
                dag::EdgeId(i));
    }
    state.ResumeTiming();
    double t_es = 0.0;
    for (std::size_t i = 0; i < 32; ++i) {
      const timeline::OptimalPlacement p =
          timeline::probe_optimal(tl, t_es, 0.0, 0.3, deferral);
      timeline::commit_optimal(tl, p, dag::EdgeId(slots + i));
      t_es += 2.7;
    }
    benchmark::DoNotOptimize(tl.size());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_OptimalInsertCommit)->Arg(64)->Arg(256)->Arg(1024);

// End-to-end edge commit through ExclusiveNetworkState: route a stream
// of edges across a random WAN with optimal insertion, exercising the
// per-hop probes, deferral lookups and record bookkeeping together.
void BM_NetworkCommitOptimal(benchmark::State& state) {
  Rng rng(17);
  net::RandomWanParams params;
  params.num_processors = static_cast<std::size_t>(state.range(0));
  const net::Topology topo = net::random_wan(params, rng);
  const auto& procs = topo.processors();
  const std::size_t edges = 512;
  for (auto _ : state) {
    state.PauseTiming();
    net::RouteCache routes(topo);
    sched::ExclusiveNetworkState network(topo, edges);
    state.ResumeTiming();
    for (std::size_t i = 0; i < edges; ++i) {
      const net::NodeId from = procs[i % procs.size()];
      const net::NodeId to = procs[(i * 7 + 3) % procs.size()];
      if (from == to) {
        continue;
      }
      const double ready = static_cast<double>(i % 37) * 0.5;
      network.commit_edge_optimal(dag::EdgeId(i),
                                  routes.route(from, to), ready, 4.0);
    }
    benchmark::DoNotOptimize(network.total_busy_time());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(edges));
}
BENCHMARK(BM_NetworkCommitOptimal)->Arg(8)->Arg(32);

}  // namespace
