// Ablation: novel policy combinations the engine makes expressible —
// bundles assembled from the registry's presets rather than shipped as
// named algorithms. Baseline is registry BA; the variants graft one
// OIHSA/BBSA policy at a time onto it, so the table reads as "what does
// each policy buy BA on its own?".
#include "ablation_common.hpp"
#include "sched/engine.hpp"
#include "sched/registry.hpp"

int main(int argc, char** argv) {
  edgesched::bench::TelemetryScope telemetry("", &argc, argv);
  using edgesched::bench::Variant;
  using namespace edgesched::sched;

  const AlgorithmSpec ba = find_algorithm("ba")->spec();

  // BA with OIHSA's workload-aware router swapped in.
  AlgorithmSpec ba_probe = ba;
  ba_probe.name = "BA-PROBE";
  ba_probe.routing = RoutingPolicyKind::kProbeDijkstra;

  // BA with OIHSA's cost-descending in-edge order.
  AlgorithmSpec ba_cost = ba;
  ba_cost.name = "BA-COSTORDER";
  ba_cost.edge_order = EdgeOrderPolicyKind::kByCostDescending;

  // BA upgraded to tentative (schedule-and-roll-back) selection.
  AlgorithmSpec ba_tent = ba;
  ba_tent.name = "BA-TENTATIVE";
  ba_tent.selection = SelectionPolicyKind::kTentativeEft;

  std::vector<Variant> variants;
  variants.push_back(
      Variant{"BA (registry)", find_algorithm("ba")->make()});
  variants.push_back(Variant{"BA + probe routing",
                             std::make_unique<SpecScheduler>(ba_probe)});
  variants.push_back(Variant{"BA + cost-desc edges",
                             std::make_unique<SpecScheduler>(ba_cost)});
  variants.push_back(Variant{"BA + tentative EFT",
                             std::make_unique<SpecScheduler>(ba_tent)});
  variants.push_back(
      Variant{"OIHSA (registry)", find_algorithm("oihsa")->make()});
  edgesched::bench::run_ablation("novel policy bundles vs presets",
                                 std::move(variants), false,
                                 &telemetry.report());
  return 0;
}
