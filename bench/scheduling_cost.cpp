// Scheduling cost (algorithm runtime) comparison — §4.4 argues OIHSA's
// bounded slot adjustment "reduces the scheduling cost"; this bench
// measures wall-clock scheduling time per algorithm as instances grow.
#include <chrono>
#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "sched/ba.hpp"
#include "sched/bbsa.hpp"
#include "sched/classic.hpp"
#include "sched/oihsa.hpp"
#include "sched/packetized.hpp"
#include "sim/workload.hpp"
#include "util/env.hpp"

#include "telemetry.hpp"

int main(int argc, char** argv) {
  edgesched::bench::TelemetryScope telemetry("", &argc, argv);
  using namespace edgesched;
  using Clock = std::chrono::steady_clock;

  std::vector<std::pair<std::string, std::unique_ptr<sched::Scheduler>>>
      algorithms;
  algorithms.emplace_back("CLASSIC",
                          std::make_unique<sched::ClassicScheduler>());
  algorithms.emplace_back("BA", std::make_unique<sched::BasicAlgorithm>());
  {
    sched::BasicAlgorithm::Options tentative;
    tentative.selection = sched::BaProcessorSelection::kTentativeEft;
    algorithms.emplace_back(
        "BA-tentative",
        std::make_unique<sched::BasicAlgorithm>(tentative));
  }
  algorithms.emplace_back("OIHSA", std::make_unique<sched::Oihsa>());
  algorithms.emplace_back("BBSA", std::make_unique<sched::Bbsa>());
  algorithms.emplace_back("PACKET-BA",
                          std::make_unique<sched::PacketizedBa>());

  std::cout << "== scheduling cost: wall-clock per schedule ==\n\n";
  std::cout << std::setw(8) << "tasks" << std::setw(8) << "procs";
  for (const auto& [name, _] : algorithms) {
    std::cout << std::setw(14) << name;
  }
  std::cout << "   [ms per schedule]\n";

  sim::ExperimentConfig config = sim::ExperimentConfig::defaults(false);
  const int reps = static_cast<int>(env_int("EDGESCHED_REPS", 3));
  for (const auto& [tasks, procs] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {100, 8}, {100, 32}, {400, 16}, {400, 64}, {1000, 32}}) {
    config.tasks_min = tasks;
    config.tasks_max = tasks;
    std::cout << std::setw(8) << tasks << std::setw(8) << procs;
    for (const auto& [name, scheduler] : algorithms) {
      Rng root(99);
      double total_ms = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        Rng rng = root.fork();
        const sim::Instance inst =
            sim::make_instance(config, procs, 2.0, rng);
        const auto begin = Clock::now();
        const double makespan =
            scheduler->schedule(inst.graph, inst.topology).makespan();
        const auto end = Clock::now();
        (void)makespan;
        total_ms += std::chrono::duration<double, std::milli>(
                        end - begin)
                        .count();
      }
      std::cout << std::setw(14) << std::fixed << std::setprecision(2)
                << total_ms / reps;
      std::cout.unsetf(std::ios::fixed);
    }
    std::cout << "\n";
  }
  return 0;
}
