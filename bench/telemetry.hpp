// Shared observability harness of every bench binary.
//
// A `TelemetryScope` lives for main()'s whole duration. On construction
// it parses (and strips) the common observability flags and arms the
// tracer; on destruction it writes `BENCH_<name>.json` — wall time,
// per-phase span totals, global counter values and whatever result
// series the binary added via `report()` — to $EDGESCHED_BENCH_DIR (or
// the working directory). See docs/observability.md.
//
// Flags (removed from argc/argv, so downstream parsers such as
// benchmark::Initialize never see them):
//   --trace <file>      record full span events, write a Chrome
//                       trace-event JSON to <file> on exit
//   --decisions <file>  stream the scheduler decision log to <file>
//                       as JSONL
//   --metrics           print the metrics registry text dump to stderr
//                       on exit
#pragma once

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

#include "obs/bench_report.hpp"
#include "obs/counters.hpp"
#include "obs/decision_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"

namespace edgesched::bench {

class TelemetryScope {
 public:
  /// `name` is the telemetry slug (BENCH_<name>.json); empty derives it
  /// from argv[0]'s basename. Figure/ablation benches keep the default
  /// kAggregate mode (per-phase totals, no event storage); micros pass
  /// kDisabled so the measured loops run the tracer's null path unless
  /// --trace asks otherwise.
  TelemetryScope(std::string name, int* argc, char** argv,
                 obs::TraceMode default_mode = obs::TraceMode::kAggregate)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {
    if (name_.empty() && argc != nullptr && *argc > 0) {
      name_ = basename_of(argv[0]);
    }
    obs::TraceMode mode = default_mode;
    if (argc != nullptr) {
      int out = 1;
      for (int i = 1; i < *argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--trace") == 0 && i + 1 < *argc) {
          trace_path_ = argv[++i];
          mode = obs::TraceMode::kFull;
        } else if (std::strcmp(arg, "--decisions") == 0 && i + 1 < *argc) {
          decisions_path_ = argv[++i];
        } else if (std::strcmp(arg, "--metrics") == 0) {
          dump_metrics_ = true;
        } else {
          argv[out++] = argv[i];
        }
      }
      for (int i = out; i < *argc; ++i) {
        argv[i] = nullptr;
      }
      *argc = out;
    }
    obs::Tracer::instance().set_mode(mode);
    if (mode == obs::TraceMode::kDisabled) {
      // Micros measure the disabled observability path: the always-on
      // flight recorder pauses too, so the ≤2% overhead envelope covers
      // "tracer + recorder off" (docs/observability.md).
      recorder_pause_.emplace();
    }
    if (!decisions_path_.empty()) {
      decisions_out_.open(decisions_path_);
      if (!decisions_out_) {
        std::cerr << "telemetry: cannot open " << decisions_path_ << "\n";
      } else {
        decision_log_.emplace(decisions_out_);
        scoped_log_.emplace(*decision_log_);
      }
    }
    report_.emplace(name_);
  }

  ~TelemetryScope() {
    scoped_log_.reset();  // detach before the log is destroyed
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    obs::Tracer& tracer = obs::Tracer::instance();
    if (!trace_path_.empty()) {
      std::ofstream out(trace_path_);
      if (out) {
        tracer.write_chrome_trace(out);
        std::cerr << "telemetry: wrote trace " << trace_path_ << "\n";
      } else {
        std::cerr << "telemetry: cannot open " << trace_path_ << "\n";
      }
    }
    if (dump_metrics_) {
      std::cerr << obs::global_metrics().text_dump();
    }
    try {
      report_->set_number("wall_seconds", wall);
      report_->add_span_totals();
      report_->add_counters();
      std::cerr << "telemetry: wrote " << report_->write() << "\n";
    } catch (const std::exception& e) {
      std::cerr << "telemetry: " << e.what() << "\n";
    }
    tracer.set_mode(obs::TraceMode::kDisabled);
  }

  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

  /// The report the destructor writes; mains add result series here.
  [[nodiscard]] obs::BenchReport& report() noexcept { return *report_; }

 private:
  static std::string basename_of(const char* path) {
    const std::string full(path);
    const std::size_t slash = full.find_last_of('/');
    return slash == std::string::npos ? full : full.substr(slash + 1);
  }

  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::string trace_path_;
  std::string decisions_path_;
  bool dump_metrics_ = false;
  std::ofstream decisions_out_;
  std::optional<obs::DecisionLog> decision_log_;
  std::optional<obs::ScopedDecisionLog> scoped_log_;
  std::optional<obs::ScopedFlightRecorderPause> recorder_pause_;
  std::optional<obs::BenchReport> report_;
};

}  // namespace edgesched::bench
