#!/usr/bin/env bash
# Runs every `<!-- doctest -->`-marked ```sh block from the given
# markdown files, so documented commands are exercised verbatim by the
# doc_examples ctest target and CI.
#
# Each block executes under `bash -e` in its own scratch directory
# (artifacts like trace.json never land in the repo), with two path
# rewrites so the docs can show the conventional invocations:
#   ./build/   -> $EDGESCHED_BUILD_DIR/
#   data/...   -> $EDGESCHED_REPO/data/...
#
# Env: EDGESCHED_REPO       repo root        (default: cwd)
#      EDGESCHED_BUILD_DIR  build tree       (default: $EDGESCHED_REPO/build)
set -u

REPO="${EDGESCHED_REPO:-$(pwd)}"
BUILD="${EDGESCHED_BUILD_DIR:-$REPO/build}"

total=0
failed=0
for file in "$@"; do
  blocks_dir="$(mktemp -d)"
  awk -v dir="$blocks_dir" '
    /^<!-- doctest/           { want = 1; next }
    inb && /^```/             { inb = 0; close(out); next }
    want && /^```/            { inb = 1; want = 0; n++
                                out = dir "/block_" n ".sh"; next }
    inb                       { print > out }
    want && !/^[[:space:]]*$/ { want = 0 }
  ' "$file"
  for block in "$blocks_dir"/block_*.sh; do
    [ -e "$block" ] || continue
    total=$((total + 1))
    sed -e "s|\./build/|$BUILD/|g" \
        -e "s| data/| $REPO/data/|g" "$block" > "$block.resolved"
    scratch="$(mktemp -d)"
    if (cd "$scratch" && bash -e "$block.resolved" > run.log 2>&1); then
      echo "PASS $file $(basename "$block" .sh)"
    else
      echo "FAIL $file $(basename "$block" .sh)"
      echo "  --- script ---"
      sed 's/^/  /' "$block"
      echo "  --- output ---"
      sed 's/^/  /' "$scratch/run.log"
      failed=$((failed + 1))
    fi
    rm -rf "$scratch"
  done
  rm -rf "$blocks_dir"
done

echo "doc examples: $((total - failed))/$total passed"
[ "$failed" -eq 0 ]
