// Telemetry artifact validator.
//
// CI runs the bench binaries and then this checker over everything they
// produced, so a malformed BENCH_*.json, Chrome trace or decision JSONL
// fails the job instead of silently archiving garbage. Usage:
//
//   check_json [--jsonl] <file>...
//
// Default mode parses each file as one complete JSON document; --jsonl
// parses every non-empty line as its own document (the decision-log
// format). Exit code 0 iff every file validates; problems are reported
// with the file name and the parser's byte offset.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json.hpp"

namespace {

bool check_file(const std::string& path, bool jsonl) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "check_json: cannot open " << path << "\n";
    return false;
  }
  if (jsonl) {
    std::string line;
    std::size_t line_number = 0;
    std::size_t documents = 0;
    while (std::getline(in, line)) {
      ++line_number;
      if (line.empty()) {
        continue;
      }
      try {
        (void)edgesched::obs::JsonValue::parse(line);
        ++documents;
      } catch (const std::exception& e) {
        std::cerr << "check_json: " << path << ":" << line_number << ": "
                  << e.what() << "\n";
        return false;
      }
    }
    std::cout << "check_json: " << path << ": " << documents
              << " JSONL document(s) ok\n";
    return true;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    (void)edgesched::obs::JsonValue::parse(buffer.str());
  } catch (const std::exception& e) {
    std::cerr << "check_json: " << path << ": " << e.what() << "\n";
    return false;
  }
  std::cout << "check_json: " << path << ": ok\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool jsonl = false;
  bool all_ok = true;
  std::size_t files = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jsonl") == 0) {
      jsonl = true;  // applies to the files that follow
      continue;
    }
    ++files;
    all_ok = check_file(argv[i], jsonl) && all_ok;
  }
  if (files == 0) {
    std::cerr << "usage: check_json [--jsonl] <file>...\n";
    return 2;
  }
  return all_ok ? 0 : 1;
}
