// Markdown intra-repo link checker.
//
// Scans markdown files for inline links/images `[text](target)` and
// verifies that every repo-relative target exists on disk. External
// schemes (http/https/mailto) and pure `#fragment` anchors are skipped;
// a `path#anchor` target is checked by its path part. Fenced code
// blocks and inline code spans are stripped first so `array[i](x)`
// snippets cannot false-positive. Exits 1 listing every dead link —
// this is the docs-book rot gate wired into ctest and CI.
//
// Usage: check_links [--root <dir>] <file.md>...
//   --root  resolution base for absolute (/-prefixed) targets;
//           defaults to the current working directory.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

/// Removes fenced code blocks (``` ... ```) and inline code spans
/// (`...`), preserving line structure so reported line numbers match
/// the source file.
std::string strip_code(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  bool in_fence = false;
  bool in_span = false;
  std::size_t i = 0;
  while (i < text.size()) {
    const bool at_line_start = i == 0 || text[i - 1] == '\n';
    if (at_line_start && text.compare(i, 3, "```") == 0) {
      in_fence = !in_fence;
      in_span = false;
      while (i < text.size() && text[i] != '\n') {
        ++i;  // drop the fence marker line (language tag included)
      }
      continue;
    }
    if (text[i] == '\n') {
      in_span = false;  // inline spans do not cross lines
      out.push_back('\n');
      ++i;
      continue;
    }
    if (!in_fence && text[i] == '`') {
      in_span = !in_span;
      ++i;
      continue;
    }
    if (!in_fence && !in_span) {
      out.push_back(text[i]);
    }
    ++i;
  }
  return out;
}

bool is_external(const std::string& target) {
  return target.rfind("http://", 0) == 0 ||
         target.rfind("https://", 0) == 0 ||
         target.rfind("mailto:", 0) == 0;
}

struct DeadLink {
  std::string file;
  std::size_t line;
  std::string target;
};

void check_file(const fs::path& file, const fs::path& root,
                std::vector<DeadLink>& dead, std::size_t& checked) {
  std::ifstream in(file);
  if (!in) {
    dead.push_back(DeadLink{file.string(), 0, "<unreadable file>"});
    return;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = strip_code(buffer.str());

  std::size_t line = 1;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      ++line;
      continue;
    }
    if (text[i] != '[') {
      continue;
    }
    const std::size_t close = text.find(']', i);
    if (close == std::string::npos || close + 1 >= text.size() ||
        text[close + 1] != '(') {
      continue;
    }
    const std::size_t end = text.find(')', close + 2);
    if (end == std::string::npos) {
      continue;
    }
    std::string target = text.substr(close + 2, end - close - 2);
    i = end;
    // Markdown allows an optional title: [x](path "title").
    if (const std::size_t space = target.find(' ');
        space != std::string::npos) {
      target.resize(space);
    }
    if (target.empty() || is_external(target) || target[0] == '#') {
      continue;
    }
    if (const std::size_t hash = target.find('#');
        hash != std::string::npos) {
      target.resize(hash);  // validate the path part of path#anchor
      if (target.empty()) {
        continue;
      }
    }
    const fs::path resolved = target[0] == '/'
                                  ? root / target.substr(1)
                                  : file.parent_path() / target;
    ++checked;
    std::error_code ec;
    if (!fs::exists(resolved, ec)) {
      dead.push_back(DeadLink{file.string(), line, target});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<fs::path> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: check_links [--root <dir>] <file.md>...\n";
      return 0;
    } else {
      files.emplace_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "check_links: no files given (see --help)\n";
    return 2;
  }

  std::vector<DeadLink> dead;
  std::size_t checked = 0;
  for (const fs::path& file : files) {
    check_file(file, root, dead, checked);
  }
  if (!dead.empty()) {
    for (const DeadLink& d : dead) {
      std::cerr << d.file << ":" << d.line << ": dead link -> " << d.target
                << "\n";
    }
    std::cerr << dead.size() << " dead link(s) across " << files.size()
              << " file(s)\n";
    return 1;
  }
  std::cout << "check_links: " << checked << " intra-repo link(s) across "
            << files.size() << " file(s) all resolve\n";
  return 0;
}
