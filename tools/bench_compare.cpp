// Benchmark regression gate.
//
// Compares two google-benchmark JSON files (--benchmark_out format) and
// fails when any benchmark common to both slowed down by more than the
// allowed factor. CI runs this against the committed baseline under
// bench/baselines/ so hot-path regressions fail the job. Usage:
//
//   bench_compare <baseline.json> <candidate.json> [--max-regression 0.10]
//                 [--filter <substring>]
//
// Matching is by benchmark name; the compared quantity is cpu_time
// (wall-clock real_time is too noisy on shared CI runners, cpu_time less
// so — still, the default 10% band exists precisely because identical
// code jitters a few percent between runs). Benchmarks present in only
// one file are reported but never fail the gate, so adding or renaming a
// benchmark does not require regenerating the baseline in the same
// commit. Exit codes: 0 ok, 1 regression, 2 usage/parse error.
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "obs/json.hpp"

namespace {

using edgesched::obs::JsonValue;

/// name -> cpu_time (ns) for every non-aggregate benchmark entry.
std::map<std::string, double> load_benchmarks(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const JsonValue doc = JsonValue::parse(buffer.str());
  std::map<std::string, double> out;
  const JsonValue& benchmarks = doc.at("benchmarks");
  for (std::size_t i = 0; i < benchmarks.size(); ++i) {
    const JsonValue& entry = benchmarks.at(i);
    // Skip aggregates (mean/median/stddev rows of repeated runs).
    if (entry.contains("run_type") &&
        entry.at("run_type").as_string() != "iteration") {
      continue;
    }
    out[entry.at("name").as_string()] = entry.at("cpu_time").as_number();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string candidate_path;
  double max_regression = 0.10;
  std::string filter;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-regression") == 0 && i + 1 < argc) {
      max_regression = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--filter") == 0 && i + 1 < argc) {
      filter = argv[++i];
    } else if (baseline_path.empty()) {
      baseline_path = argv[i];
    } else if (candidate_path.empty()) {
      candidate_path = argv[i];
    } else {
      std::cerr << "bench_compare: unexpected argument " << argv[i] << "\n";
      return 2;
    }
  }
  if (baseline_path.empty() || candidate_path.empty()) {
    std::cerr << "usage: bench_compare <baseline.json> <candidate.json>"
                 " [--max-regression 0.10] [--filter <substring>]\n";
    return 2;
  }

  std::map<std::string, double> baseline;
  std::map<std::string, double> candidate;
  try {
    baseline = load_benchmarks(baseline_path);
    candidate = load_benchmarks(candidate_path);
  } catch (const std::exception& e) {
    std::cerr << "bench_compare: " << e.what() << "\n";
    return 2;
  }

  bool failed = false;
  std::size_t compared = 0;
  std::cout << std::fixed << std::setprecision(2);
  for (const auto& [name, base_ns] : baseline) {
    if (!filter.empty() && name.find(filter) == std::string::npos) {
      continue;
    }
    const auto it = candidate.find(name);
    if (it == candidate.end()) {
      std::cout << "  ~ " << name << ": only in baseline (skipped)\n";
      continue;
    }
    ++compared;
    const double cand_ns = it->second;
    const double ratio = base_ns > 0.0 ? cand_ns / base_ns : 1.0;
    const bool regressed = ratio > 1.0 + max_regression;
    std::cout << (regressed ? "  ✗ " : "  ✓ ") << name << ": "
              << base_ns << " -> " << cand_ns << " ns  ("
              << (ratio >= 1.0 ? "+" : "") << (ratio - 1.0) * 100.0
              << "%)\n";
    failed |= regressed;
  }
  for (const auto& [name, _] : candidate) {
    if (!filter.empty() && name.find(filter) == std::string::npos) {
      continue;
    }
    if (baseline.find(name) == baseline.end()) {
      std::cout << "  ~ " << name << ": new benchmark (no baseline)\n";
    }
  }
  if (compared == 0) {
    std::cerr << "bench_compare: no common benchmarks to compare\n";
    return 2;
  }
  if (failed) {
    std::cerr << "bench_compare: regression beyond "
              << max_regression * 100.0 << "% threshold\n";
    return 1;
  }
  std::cout << compared << " benchmarks within " << max_regression * 100.0
            << "% of baseline\n";
  return 0;
}
