#include "util/parallel_for.hpp"

namespace edgesched::util {

namespace {

// Brief spin before blocking: a scheduling run dispatches one scan per
// task, so the wait between dispatches is usually shorter than a
// sleep/wake cycle. Kept small — on an oversubscribed machine spinning
// longer only steals cycles from the lane that should be running.
constexpr int kSpinIterations = 256;

}  // namespace

WorkerTeam::WorkerTeam(std::size_t lanes) {
  if (lanes <= 1) {
    return;
  }
  workers_.reserve(lanes - 1);
  for (std::size_t lane = 1; lane < lanes; ++lane) {
    workers_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

WorkerTeam::~WorkerTeam() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_.store(true, std::memory_order_release);
  }
  dispatch_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

void WorkerTeam::capture_exception() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!first_exception_) {
    first_exception_ = std::current_exception();
  }
}

void WorkerTeam::run_lane(std::size_t lane, const Body& body) {
  const ChunkRange chunk = static_chunk(items_, lanes(), lane);
  if (chunk.empty()) {
    return;
  }
  try {
    body(lane, chunk.begin, chunk.end);
  } catch (...) {
    capture_exception();
  }
}

void WorkerTeam::run(std::size_t n, const Body& body) {
  if (workers_.empty() || n == 0) {
    if (n > 0) {
      body(0, 0, n);
    }
    return;
  }

  done_.store(0, std::memory_order_relaxed);
  items_ = n;
  body_ = &body;
  {
    // Publish under the mutex so a worker evaluating its wait predicate
    // cannot miss the generation bump between check and sleep.
    const std::lock_guard<std::mutex> lock(mutex_);
    generation_.fetch_add(1, std::memory_order_release);
  }
  dispatch_cv_.notify_all();

  run_lane(0, body);

  // Join: spin briefly (the workers' chunks are sized like ours, so they
  // finish at about the same time), then block.
  const std::size_t expected = workers_.size();
  for (int spin = 0;
       spin < kSpinIterations &&
       done_.load(std::memory_order_acquire) != expected;
       ++spin) {
    std::this_thread::yield();
  }
  if (done_.load(std::memory_order_acquire) != expected) {
    std::unique_lock<std::mutex> lock(mutex_);
    join_cv_.wait(lock, [this, expected] {
      return done_.load(std::memory_order_relaxed) == expected;
    });
  }

  body_ = nullptr;
  if (first_exception_) {
    std::exception_ptr rethrown;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      rethrown = first_exception_;
      first_exception_ = nullptr;
    }
    std::rethrow_exception(rethrown);
  }
}

void WorkerTeam::worker_loop(std::size_t lane) {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t current = generation_.load(std::memory_order_acquire);
    for (int spin = 0;
         spin < kSpinIterations && current == seen &&
         !stopping_.load(std::memory_order_acquire);
         ++spin) {
      std::this_thread::yield();
      current = generation_.load(std::memory_order_acquire);
    }
    if (current == seen && !stopping_.load(std::memory_order_acquire)) {
      std::unique_lock<std::mutex> lock(mutex_);
      dispatch_cv_.wait(lock, [this, seen] {
        return generation_.load(std::memory_order_relaxed) != seen ||
               stopping_.load(std::memory_order_relaxed);
      });
      current = generation_.load(std::memory_order_acquire);
    }
    if (stopping_.load(std::memory_order_acquire) && current == seen) {
      return;
    }
    seen = current;
    run_lane(lane, *body_);
    if (done_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        workers_.size()) {
      // Lock-then-notify so the controller cannot sleep between its
      // predicate check and our notification.
      const std::lock_guard<std::mutex> lock(mutex_);
      join_cv_.notify_one();
    }
  }
}

}  // namespace edgesched::util
