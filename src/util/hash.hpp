// Structural fingerprinting.
//
// The service layer content-addresses scheduling requests by a canonical
// 64-bit hash of the problem instance (see svc/schedule_cache.hpp). The
// `Fingerprint` accumulator below is the single mixing primitive behind
// `dag::TaskGraph::fingerprint()` and `net::Topology::fingerprint()`: a
// splitmix64-finalised combine that is deterministic across platforms
// (no std::hash, whose values are implementation-defined) and sensitive
// to both value and position of every mixed word.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

namespace edgesched {

/// Streaming 64-bit hash accumulator for structural fingerprints.
///
/// Not cryptographic: collisions are possible in principle, but with 64
/// output bits and the splitmix64 finaliser's avalanche behaviour they are
/// vanishingly unlikely for the instance populations a schedule cache
/// sees (~5e-12 collision probability at 10k distinct entries).
class Fingerprint {
 public:
  /// Mixes one 64-bit word into the state; order-sensitive.
  void mix(std::uint64_t value) noexcept {
    state_ ^= value + 0x9e3779b97f4a7c15ULL + (state_ << 12) + (state_ >> 4);
    state_ = finalize_step(state_);
  }

  /// Mixes a double by bit pattern (0.0 and -0.0 hash differently; costs
  /// and speeds in this library are never negative zero in practice).
  void mix(double value) noexcept {
    mix(std::bit_cast<std::uint64_t>(value));
  }

  /// Mixes a length-prefixed byte string (FNV-1a folded into the state).
  void mix(std::string_view text) noexcept {
    mix(static_cast<std::uint64_t>(text.size()));
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : text) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
    mix(h);
  }

  /// The accumulated 64-bit digest.
  [[nodiscard]] std::uint64_t value() const noexcept { return state_; }

 private:
  static std::uint64_t finalize_step(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t state_ = 0x9e3779b97f4a7c15ULL;
};

}  // namespace edgesched
