// Environment-variable configuration helpers for benchmark scaling.
#pragma once

#include <cstdint>
#include <string>

namespace edgesched {

/// Reads an integer environment variable; returns `fallback` when unset or
/// unparsable.
[[nodiscard]] std::int64_t env_int(const std::string& name,
                                   std::int64_t fallback);

/// Reads a boolean environment variable ("1"/"true"/"yes" case-insensitive
/// are truthy); returns `fallback` when unset.
[[nodiscard]] bool env_flag(const std::string& name, bool fallback);

/// Reads a string environment variable; returns `fallback` when unset or
/// empty.
[[nodiscard]] std::string env_string(const std::string& name,
                                     const std::string& fallback);

}  // namespace edgesched
