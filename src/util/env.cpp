#include "util/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace edgesched {

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') {
    return fallback;
  }
  return static_cast<std::int64_t>(value);
}

bool env_flag(const std::string& name, bool fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  std::string value(raw);
  std::transform(value.begin(), value.end(), value.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return value == "1" || value == "true" || value == "yes" || value == "on";
}

std::string env_string(const std::string& name, const std::string& fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  return std::string(raw);
}

}  // namespace edgesched
