// Error-handling helpers.
//
// Library-level contract violations throw `std::invalid_argument` /
// `std::logic_error` through the `throw_if` helpers so call sites stay
// one-liners. Internal invariants use EDGESCHED_ASSERT, which is active in
// all build types: the algorithms here are subtle enough that silently
// continuing past a broken invariant would poison every result downstream.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace edgesched {

/// Thrown when an internal invariant of the library is violated. Seeing
/// this exception always indicates a bug in edgesched, not in user code.
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void fail_assert(std::string_view expr,
                                     std::string_view message,
                                     const std::source_location& loc) {
  std::ostringstream os;
  os << "edgesched internal error at " << loc.file_name() << ':' << loc.line()
     << " in " << loc.function_name() << ": assertion `" << expr << "` failed";
  if (!message.empty()) {
    os << " — " << message;
  }
  throw InternalError(os.str());
}

}  // namespace detail

/// Throws std::invalid_argument with `message` when `condition` is true.
inline void throw_if(bool condition, const std::string& message) {
  if (condition) {
    throw std::invalid_argument(message);
  }
}

}  // namespace edgesched

#define EDGESCHED_ASSERT(expr)                                       \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::edgesched::detail::fail_assert(#expr, "",                    \
                                       std::source_location::current()); \
    }                                                                \
  } while (false)

#define EDGESCHED_ASSERT_MSG(expr, msg)                              \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::edgesched::detail::fail_assert(#expr, (msg),                 \
                                       std::source_location::current()); \
    }                                                                \
  } while (false)
