#include "util/rng.hpp"

#include <bit>

namespace edgesched {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
}

Rng::result_type Rng::next() noexcept {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  throw_if(lo > hi, "Rng::uniform_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  // Rejection sampling: accept only values below the largest multiple of
  // `span`, so the modulo is unbiased.
  const std::uint64_t limit = max() - (max() % span + 1) % span;
  std::uint64_t value = next();
  while (value > limit) {
    value = next();
  }
  return lo + static_cast<std::int64_t>(value % span);
}

double Rng::uniform_real(double lo, double hi) {
  throw_if(lo > hi, "Rng::uniform_real: lo > hi");
  // 53 top bits give a uniform double in [0, 1).
  const double unit =
      static_cast<double>(next() >> 11) * 0x1.0p-53;
  return lo + unit * (hi - lo);
}

bool Rng::bernoulli(double p) {
  throw_if(p < 0.0 || p > 1.0, "Rng::bernoulli: p outside [0, 1]");
  return uniform_real(0.0, 1.0) < p;
}

std::size_t Rng::index(std::size_t size) {
  throw_if(size == 0, "Rng::index: empty range");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

Rng Rng::fork() noexcept { return Rng(next()); }

}  // namespace edgesched
