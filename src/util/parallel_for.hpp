// Deterministic intra-run data parallelism.
//
// `static_chunk` is the single partitioning rule of every parallel loop
// in this library: lane `w` of `W` always owns the same contiguous index
// range of `n` items, independent of timing, so any reduction that walks
// the results in index order is bit-identical at every worker count —
// including 1. `svc::ThreadPool::parallel_for` and the scheduling
// engine's candidate scan both chunk through it.
//
// `WorkerTeam` is a persistent fork/join team for fine-grained scans: a
// scheduling run performs one barrier per task (50k tasks on wide
// topologies), so per-dispatch cost must stay in the microsecond range.
// The team spawns `lanes - 1` threads once; `run(n, body)` publishes the
// loop via an atomic generation counter (workers spin briefly, then
// block on a condition variable), the caller executes lane 0 itself, and
// the join waits symmetrically. Exceptions thrown by any lane are
// captured and the first one rethrown on the caller after the join, so a
// failed scan cannot leak detached work.
//
// Determinism contract: `run` invokes `body(lane, begin, end)` with
// exactly the `static_chunk` ranges; bodies writing only to disjoint
// per-index slots (or lane-private state) therefore produce output
// independent of interleaving. See docs/parallelism.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace edgesched::util {

/// Contiguous half-open range [begin, end) of lane `lane` out of `lanes`
/// over `n` items. The first `n % lanes` lanes get one extra item, so
/// sizes differ by at most one and the union is exactly [0, n).
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] bool empty() const noexcept { return begin == end; }
};

[[nodiscard]] inline ChunkRange static_chunk(std::size_t n, std::size_t lanes,
                                             std::size_t lane) noexcept {
  const std::size_t base = n / lanes;
  const std::size_t extra = n % lanes;
  const std::size_t begin = lane * base + (lane < extra ? lane : extra);
  return ChunkRange{begin, begin + base + (lane < extra ? 1 : 0)};
}

/// Persistent fork/join worker team; see the file comment for the
/// contract. A team belongs to one controlling thread: `run` must not be
/// called concurrently with itself, and bodies must not call back into
/// the same team (no nesting).
class WorkerTeam {
 public:
  using Body =
      std::function<void(std::size_t lane, std::size_t begin, std::size_t end)>;

  /// Spawns `lanes - 1` worker threads; the caller is lane 0. `lanes` of
  /// 0 or 1 spawns nothing and `run` degenerates to a plain serial call.
  explicit WorkerTeam(std::size_t lanes);

  /// Wakes and joins all workers. Safe after any sequence of runs.
  ~WorkerTeam();

  WorkerTeam(const WorkerTeam&) = delete;
  WorkerTeam& operator=(const WorkerTeam&) = delete;

  /// Total lanes including the caller's lane 0; always >= 1.
  [[nodiscard]] std::size_t lanes() const noexcept {
    return workers_.size() + 1;
  }

  /// Executes `body(lane, begin, end)` once per lane over the
  /// `static_chunk` partition of [0, n). Blocks until every lane
  /// finished; rethrows the first exception any lane threw.
  void run(std::size_t n, const Body& body);

 private:
  void worker_loop(std::size_t lane);
  void run_lane(std::size_t lane, const Body& body);
  void capture_exception();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable dispatch_cv_;
  std::condition_variable join_cv_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::size_t> done_{0};
  std::atomic<bool> stopping_{false};
  std::size_t items_ = 0;
  const Body* body_ = nullptr;
  std::exception_ptr first_exception_;
};

}  // namespace edgesched::util
