// Strong identifier types.
//
// Task, processor, network-node and link identifiers are all small dense
// integers, but mixing them up is a whole class of silent bugs in a
// scheduler (a task index used to subscript a link table compiles fine).
// `StrongId` gives each domain its own non-convertible type while staying
// a trivially copyable value usable as a vector index.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace edgesched {

/// A type-safe wrapper around a dense 32-bit index.
///
/// `Tag` is a phantom type that distinguishes id families at compile time.
/// The default-constructed id is invalid; valid ids are created from an
/// explicit index. Ids order and hash like their underlying integer so
/// they can key sorted and unordered containers.
template <typename Tag>
class StrongId {
 public:
  using underlying_type = std::uint32_t;

  static constexpr underlying_type kInvalid =
      std::numeric_limits<underlying_type>::max();

  constexpr StrongId() noexcept = default;
  constexpr explicit StrongId(underlying_type value) noexcept
      : value_(value) {}
  constexpr explicit StrongId(std::size_t value) noexcept
      : value_(static_cast<underlying_type>(value)) {}

  [[nodiscard]] constexpr underlying_type value() const noexcept {
    return value_;
  }
  /// Index form for subscripting dense per-id tables.
  [[nodiscard]] constexpr std::size_t index() const noexcept {
    return static_cast<std::size_t>(value_);
  }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return value_ != kInvalid;
  }

  friend constexpr auto operator<=>(StrongId, StrongId) noexcept = default;

 private:
  underlying_type value_ = kInvalid;
};

}  // namespace edgesched

template <typename Tag>
struct std::hash<edgesched::StrongId<Tag>> {
  std::size_t operator()(edgesched::StrongId<Tag> id) const noexcept {
    return std::hash<typename edgesched::StrongId<Tag>::underlying_type>{}(
        id.value());
  }
};
