// Deterministic random number generation.
//
// All stochastic pieces of the library (graph generators, topology
// builders, workload sampling) draw from this generator so that a single
// 64-bit seed reproduces an entire experiment bit-for-bit across
// platforms. `std::mt19937` plus `std::uniform_int_distribution` is not
// portable across standard libraries, so we ship our own xoshiro256**
// engine and distribution helpers.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace edgesched {

/// xoshiro256** by Blackman & Vigna: fast, 256-bit state, passes BigCrush.
/// Seeded through splitmix64 so that nearby seeds yield unrelated streams.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value.
  result_type next() noexcept;

  // UniformRandomBitGenerator interface, so <algorithm> shuffles work too.
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }
  result_type operator()() noexcept { return next(); }

  /// Uniform integer in the closed range [lo, hi]. Matches the paper's
  /// U(i, j) notation. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in the half-open range [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p in [0, 1].
  [[nodiscard]] bool bernoulli(double p);

  /// Uniformly chosen index in [0, size). Requires size > 0.
  [[nodiscard]] std::size_t index(std::size_t size);

  /// Fisher–Yates shuffle of a vector, in place.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      using std::swap;
      swap(values[i - 1], values[index(i)]);
    }
  }

  /// Derives an independent child generator; useful for giving each
  /// repetition of an experiment its own stream.
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

/// splitmix64 step, exposed for seeding schemes and hashing needs.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

}  // namespace edgesched
