#include "dag/task_graph.hpp"

#include <algorithm>
#include <queue>

#include "util/hash.hpp"

namespace edgesched::dag {

TaskId TaskGraph::add_task(double weight, std::string name) {
  throw_if(weight < 0.0, "TaskGraph::add_task: negative computation cost");
  TaskId id(tasks_.size());
  if (name.empty()) {
    name = "n" + std::to_string(id.value());
  }
  tasks_.push_back(Task{std::move(name), weight, {}, {}});
  return id;
}

EdgeId TaskGraph::add_edge(TaskId src, TaskId dst, double cost) {
  throw_if(!src.valid() || src.index() >= tasks_.size(),
           "TaskGraph::add_edge: invalid source task");
  throw_if(!dst.valid() || dst.index() >= tasks_.size(),
           "TaskGraph::add_edge: invalid destination task");
  throw_if(src == dst, "TaskGraph::add_edge: self loop");
  throw_if(cost < 0.0, "TaskGraph::add_edge: negative communication cost");
  for (EdgeId existing : tasks_[src.index()].out_edges) {
    throw_if(edges_[existing.index()].dst == dst,
             "TaskGraph::add_edge: duplicate edge");
  }
  EdgeId id(edges_.size());
  edges_.push_back(Edge{src, dst, cost});
  tasks_[src.index()].out_edges.push_back(id);
  tasks_[dst.index()].in_edges.push_back(id);
  return id;
}

void TaskGraph::set_cost(EdgeId id, double cost) {
  throw_if(!id.valid() || id.index() >= edges_.size(),
           "TaskGraph::set_cost: invalid edge");
  throw_if(cost < 0.0, "TaskGraph::set_cost: negative communication cost");
  edges_[id.index()].cost = cost;
}

void TaskGraph::set_weight(TaskId id, double weight) {
  throw_if(!id.valid() || id.index() >= tasks_.size(),
           "TaskGraph::set_weight: invalid task");
  throw_if(weight < 0.0, "TaskGraph::set_weight: negative computation cost");
  tasks_[id.index()].weight = weight;
}

std::vector<TaskId> TaskGraph::predecessors(TaskId id) const {
  std::vector<TaskId> result;
  result.reserve(in_edges(id).size());
  for (EdgeId e : in_edges(id)) {
    result.push_back(edge(e).src);
  }
  return result;
}

std::vector<TaskId> TaskGraph::successors(TaskId id) const {
  std::vector<TaskId> result;
  result.reserve(out_edges(id).size());
  for (EdgeId e : out_edges(id)) {
    result.push_back(edge(e).dst);
  }
  return result;
}

std::vector<TaskId> TaskGraph::entry_tasks() const {
  std::vector<TaskId> result;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].in_edges.empty()) {
      result.emplace_back(i);
    }
  }
  return result;
}

std::vector<TaskId> TaskGraph::exit_tasks() const {
  std::vector<TaskId> result;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].out_edges.empty()) {
      result.emplace_back(i);
    }
  }
  return result;
}

std::vector<TaskId> TaskGraph::all_tasks() const {
  std::vector<TaskId> result;
  result.reserve(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    result.emplace_back(i);
  }
  return result;
}

std::vector<EdgeId> TaskGraph::all_edges() const {
  std::vector<EdgeId> result;
  result.reserve(edges_.size());
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    result.emplace_back(i);
  }
  return result;
}

bool TaskGraph::is_acyclic() const {
  // Kahn's algorithm: the graph is acyclic iff all tasks drain.
  std::vector<std::size_t> indegree(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    indegree[i] = tasks_[i].in_edges.size();
  }
  std::queue<std::size_t> ready;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (indegree[i] == 0) {
      ready.push(i);
    }
  }
  std::size_t drained = 0;
  while (!ready.empty()) {
    const std::size_t current = ready.front();
    ready.pop();
    ++drained;
    for (EdgeId e : tasks_[current].out_edges) {
      const std::size_t next = edges_[e.index()].dst.index();
      if (--indegree[next] == 0) {
        ready.push(next);
      }
    }
  }
  return drained == tasks_.size();
}

std::vector<TaskId> TaskGraph::topological_order() const {
  std::vector<std::size_t> indegree(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    indegree[i] = tasks_[i].in_edges.size();
  }
  // Smallest-id-first among ready tasks keeps the order deterministic and
  // independent of container internals.
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      std::greater<>> ready;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (indegree[i] == 0) {
      ready.push(i);
    }
  }
  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    const std::size_t current = ready.top();
    ready.pop();
    order.emplace_back(current);
    for (EdgeId e : tasks_[current].out_edges) {
      const std::size_t next = edges_[e.index()].dst.index();
      if (--indegree[next] == 0) {
        ready.push(next);
      }
    }
  }
  throw_if(order.size() != tasks_.size(),
           "TaskGraph::topological_order: graph contains a cycle");
  return order;
}

void TaskGraph::validate() const {
  throw_if(!is_acyclic(), "TaskGraph::validate: graph contains a cycle");
}

std::uint64_t TaskGraph::fingerprint() const noexcept {
  Fingerprint fp;
  fp.mix(static_cast<std::uint64_t>(tasks_.size()));
  for (const Task& t : tasks_) {
    fp.mix(t.weight);
  }
  fp.mix(static_cast<std::uint64_t>(edges_.size()));
  for (const Edge& e : edges_) {
    fp.mix(static_cast<std::uint64_t>(e.src.value()));
    fp.mix(static_cast<std::uint64_t>(e.dst.value()));
    fp.mix(e.cost);
  }
  return fp.value();
}

double TaskGraph::total_computation() const noexcept {
  double sum = 0.0;
  for (const Task& t : tasks_) {
    sum += t.weight;
  }
  return sum;
}

double TaskGraph::total_communication() const noexcept {
  double sum = 0.0;
  for (const Edge& e : edges_) {
    sum += e.cost;
  }
  return sum;
}

}  // namespace edgesched::dag
