// Task-graph serialization: GraphViz DOT export and a line-oriented text
// format for storing and exchanging workloads.
//
// Text format (comments start with '#'):
//   graph <name>
//   task <id> <weight> [name]
//   edge <src-id> <dst-id> <cost>
// Task ids must be dense and in increasing order starting at 0.
#pragma once

#include <iosfwd>
#include <string>

#include "dag/task_graph.hpp"

namespace edgesched::dag {

/// Writes the graph in GraphViz DOT format (node labels carry weights,
/// edge labels costs).
void write_dot(std::ostream& out, const TaskGraph& graph);
[[nodiscard]] std::string to_dot(const TaskGraph& graph);

/// Writes the graph in the edgesched text format.
void write_text(std::ostream& out, const TaskGraph& graph);
[[nodiscard]] std::string to_text(const TaskGraph& graph);

/// Parses a graph from the edgesched text format. Throws
/// std::invalid_argument on malformed input.
[[nodiscard]] TaskGraph read_text(std::istream& in);
[[nodiscard]] TaskGraph from_text(const std::string& text);

/// Standard Task Graph (STG, Kasahara Lab) format support. The format is
///
///   <task count n>                    (excluding the dummy entry/exit)
///   <id> <processing time> <#preds> <pred ids...>   — one line per task,
///                                       ids 0..n+1 where 0 and n+1 are
///                                       zero-cost dummy entry/exit nodes
///   # comments after the task lines are ignored
///
/// STG carries no communication costs; every edge receives
/// `default_comm_cost`. Dummy entry/exit nodes are preserved (zero
/// weight), so task ids match the file.
[[nodiscard]] TaskGraph read_stg(std::istream& in,
                                 double default_comm_cost = 1.0);
[[nodiscard]] TaskGraph from_stg(const std::string& text,
                                 double default_comm_cost = 1.0);

/// Writes the graph in STG form (communication costs are dropped; the
/// graph must already have unique entry and exit tasks at ids 0 and
/// num_tasks-1, as produced by read_stg — otherwise throws).
void write_stg(std::ostream& out, const TaskGraph& graph);

}  // namespace edgesched::dag
