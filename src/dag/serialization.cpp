#include "dag/serialization.hpp"

#include <ostream>
#include <sstream>

namespace edgesched::dag {

void write_dot(std::ostream& out, const TaskGraph& graph) {
  out << "digraph \"" << (graph.name().empty() ? "dag" : graph.name())
      << "\" {\n";
  for (TaskId t : graph.all_tasks()) {
    out << "  t" << t.value() << " [label=\"" << graph.task(t).name << "\\nw="
        << graph.weight(t) << "\"];\n";
  }
  for (EdgeId e : graph.all_edges()) {
    const Edge& edge = graph.edge(e);
    out << "  t" << edge.src.value() << " -> t" << edge.dst.value()
        << " [label=\"" << edge.cost << "\"];\n";
  }
  out << "}\n";
}

std::string to_dot(const TaskGraph& graph) {
  std::ostringstream os;
  write_dot(os, graph);
  return os.str();
}

void write_text(std::ostream& out, const TaskGraph& graph) {
  out << "graph " << (graph.name().empty() ? "dag" : graph.name()) << "\n";
  for (TaskId t : graph.all_tasks()) {
    out << "task " << t.value() << ' ' << graph.weight(t) << ' '
        << graph.task(t).name << "\n";
  }
  for (EdgeId e : graph.all_edges()) {
    const Edge& edge = graph.edge(e);
    out << "edge " << edge.src.value() << ' ' << edge.dst.value() << ' '
        << edge.cost << "\n";
  }
}

std::string to_text(const TaskGraph& graph) {
  std::ostringstream os;
  write_text(os, graph);
  return os.str();
}

TaskGraph read_text(std::istream& in) {
  TaskGraph graph;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    const std::string where = " at line " + std::to_string(line_number);
    if (keyword == "graph") {
      std::string name;
      fields >> name;
      graph.set_name(name);
    } else if (keyword == "task") {
      std::uint32_t id = 0;
      double weight = 0.0;
      std::string name;
      fields >> id >> weight;
      throw_if(fields.fail(), "read_text: malformed task line" + where);
      fields >> name;  // optional
      const TaskId assigned = graph.add_task(weight, name);
      throw_if(assigned.value() != id,
               "read_text: task ids must be dense and ordered" + where);
    } else if (keyword == "edge") {
      std::uint32_t src = 0;
      std::uint32_t dst = 0;
      double cost = 0.0;
      fields >> src >> dst >> cost;
      throw_if(fields.fail(), "read_text: malformed edge line" + where);
      graph.add_edge(TaskId(src), TaskId(dst), cost);
    } else {
      throw_if(true, "read_text: unknown keyword '" + keyword + "'" + where);
    }
  }
  graph.validate();
  return graph;
}

TaskGraph from_text(const std::string& text) {
  std::istringstream is(text);
  return read_text(is);
}

TaskGraph read_stg(std::istream& in, double default_comm_cost) {
  throw_if(default_comm_cost < 0.0,
           "read_stg: negative default communication cost");
  std::size_t declared = 0;
  in >> declared;
  throw_if(in.fail(), "read_stg: missing task count");
  const std::size_t total = declared + 2;  // + dummy entry and exit

  TaskGraph graph("stg");
  struct Pending {
    std::uint32_t src;
    std::uint32_t dst;
  };
  std::vector<Pending> pending;
  for (std::size_t line = 0; line < total; ++line) {
    std::uint32_t id = 0;
    double processing = 0.0;
    std::size_t num_preds = 0;
    in >> id >> processing >> num_preds;
    throw_if(in.fail(), "read_stg: malformed task line " +
                            std::to_string(line));
    const TaskId assigned = graph.add_task(processing);
    throw_if(assigned.value() != id,
             "read_stg: task ids must be dense and ordered");
    for (std::size_t p = 0; p < num_preds; ++p) {
      std::uint32_t pred = 0;
      in >> pred;
      throw_if(in.fail(), "read_stg: malformed predecessor list");
      pending.push_back(Pending{pred, id});
    }
  }
  for (const Pending& edge : pending) {
    graph.add_edge(TaskId(edge.src), TaskId(edge.dst),
                   default_comm_cost);
  }
  graph.validate();
  return graph;
}

TaskGraph from_stg(const std::string& text, double default_comm_cost) {
  std::istringstream is(text);
  return read_stg(is, default_comm_cost);
}

void write_stg(std::ostream& out, const TaskGraph& graph) {
  throw_if(graph.num_tasks() < 2, "write_stg: graph too small");
  const std::vector<TaskId> entries = graph.entry_tasks();
  const std::vector<TaskId> exits = graph.exit_tasks();
  throw_if(entries.size() != 1 || entries.front() != TaskId(0u),
           "write_stg: graph must have a unique entry task with id 0");
  throw_if(exits.size() != 1 ||
               exits.front() != TaskId(graph.num_tasks() - 1),
           "write_stg: graph must have a unique exit task with the last "
           "id");
  out << (graph.num_tasks() - 2) << "\n";
  for (TaskId t : graph.all_tasks()) {
    const std::vector<TaskId> preds = graph.predecessors(t);
    out << t.value() << ' ' << graph.weight(t) << ' ' << preds.size();
    for (TaskId p : preds) {
      out << ' ' << p.value();
    }
    out << "\n";
  }
}

}  // namespace edgesched::dag
