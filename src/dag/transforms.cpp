#include "dag/transforms.hpp"

#include <algorithm>

namespace edgesched::dag {

TaskGraph transpose(const TaskGraph& graph) {
  TaskGraph reversed(graph.name().empty() ? "transposed"
                                          : graph.name() + "_T");
  for (TaskId t : graph.all_tasks()) {
    (void)reversed.add_task(graph.weight(t), graph.task(t).name);
  }
  for (EdgeId e : graph.all_edges()) {
    const Edge& edge = graph.edge(e);
    reversed.add_edge(edge.dst, edge.src, edge.cost);
  }
  return reversed;
}

ChainMerge merge_linear_chains(const TaskGraph& graph) {
  const std::size_t n = graph.num_tasks();
  // A task t starts a chain segment unless it is the unique successor of
  // a unique-successor parent. Walk chains from their heads.
  std::vector<TaskId> head(n);
  for (TaskId t : graph.all_tasks()) {
    head[t.index()] = t;
  }
  // Union chains: t -> s is fusable iff out(t) == 1 and in(s) == 1.
  for (TaskId t : graph.all_tasks()) {
    if (graph.out_edges(t).size() == 1) {
      const TaskId succ = graph.edge(graph.out_edges(t).front()).dst;
      if (graph.in_edges(succ).size() == 1) {
        // succ joins t's chain; path-compress later.
        head[succ.index()] = t;
      }
    }
  }
  // Path compression: follow heads to the chain root.
  const auto root_of = [&](TaskId t) {
    TaskId at = t;
    while (head[at.index()] != at) {
      at = head[at.index()];
    }
    // Compress.
    TaskId walk = t;
    while (head[walk.index()] != at) {
      const TaskId next = head[walk.index()];
      head[walk.index()] = at;
      walk = next;
    }
    return at;
  };

  ChainMerge result;
  result.representative.assign(n, TaskId{});
  // Fused tasks are created in topological order of the roots so the
  // output ids stay topologically sorted.
  std::vector<TaskId> fused_id(n);
  for (TaskId t : graph.topological_order()) {
    const TaskId root = root_of(t);
    if (root == t) {
      fused_id[t.index()] =
          result.graph.add_task(graph.weight(t), graph.task(t).name);
    } else {
      const TaskId fused = fused_id[root.index()];
      result.graph.set_weight(
          fused, result.graph.weight(fused) + graph.weight(t));
      fused_id[t.index()] = fused;
    }
    result.representative[t.index()] = fused_id[t.index()];
  }
  // Edges between different fused tasks survive; duplicates are merged by
  // keeping the larger cost (both transfers must complete; under
  // ready-moment shipping the heavier dominates the data-ready time).
  for (EdgeId e : graph.all_edges()) {
    const Edge& edge = graph.edge(e);
    const TaskId src = result.representative[edge.src.index()];
    const TaskId dst = result.representative[edge.dst.index()];
    if (src == dst) {
      continue;  // internal chain edge: fused away
    }
    bool merged = false;
    for (EdgeId existing : result.graph.out_edges(src)) {
      if (result.graph.edge(existing).dst == dst) {
        result.graph.set_cost(
            existing,
            std::max(result.graph.cost(existing), edge.cost));
        merged = true;
        break;
      }
    }
    if (!merged) {
      result.graph.add_edge(src, dst, edge.cost);
    }
  }
  return result;
}

Subgraph induced_subgraph(const TaskGraph& graph,
                          const std::vector<TaskId>& tasks) {
  Subgraph result;
  result.new_id.assign(graph.num_tasks(), TaskId{});
  for (TaskId t : tasks) {
    throw_if(!t.valid() || t.index() >= graph.num_tasks(),
             "induced_subgraph: invalid task id");
    throw_if(result.new_id[t.index()].valid(),
             "induced_subgraph: duplicate task id");
    result.new_id[t.index()] =
        result.graph.add_task(graph.weight(t), graph.task(t).name);
  }
  for (EdgeId e : graph.all_edges()) {
    const Edge& edge = graph.edge(e);
    const TaskId src = result.new_id[edge.src.index()];
    const TaskId dst = result.new_id[edge.dst.index()];
    if (src.valid() && dst.valid()) {
      result.graph.add_edge(src, dst, edge.cost);
    }
  }
  return result;
}

namespace {

/// Copies `source` into `target`, returning the id offset.
std::size_t append_graph(TaskGraph& target, const TaskGraph& source) {
  const std::size_t offset = target.num_tasks();
  for (TaskId t : source.all_tasks()) {
    (void)target.add_task(source.weight(t), source.task(t).name);
  }
  for (EdgeId e : source.all_edges()) {
    const Edge& edge = source.edge(e);
    target.add_edge(TaskId(edge.src.index() + offset),
                    TaskId(edge.dst.index() + offset), edge.cost);
  }
  return offset;
}

}  // namespace

TaskGraph parallel_composition(const TaskGraph& first,
                               const TaskGraph& second) {
  TaskGraph result(first.name() + "+" + second.name());
  append_graph(result, first);
  append_graph(result, second);
  return result;
}

TaskGraph sequential_composition(const TaskGraph& first,
                                 const TaskGraph& second,
                                 double stage_comm_cost) {
  throw_if(first.empty() || second.empty(),
           "sequential_composition: both stages must be non-empty");
  TaskGraph result(first.name() + ";" + second.name());
  append_graph(result, first);
  const std::size_t offset = append_graph(result, second);
  for (TaskId exit : first.exit_tasks()) {
    for (TaskId entry : second.entry_tasks()) {
      result.add_edge(exit, TaskId(entry.index() + offset),
                      stage_comm_cost);
    }
  }
  return result;
}

}  // namespace edgesched::dag
