// Task-graph transformations.
//
// * `transpose` reverses every edge (producers become consumers) — useful
//   for backward analyses and for turning out-trees into in-trees.
// * `merge_linear_chains` is the classic linear-clustering pre-pass: a
//   task with exactly one successor whose successor has exactly one
//   predecessor always runs back-to-back on one processor in any sensible
//   schedule, so the pair can be fused, dropping the internal
//   communication entirely.
// * `induced_subgraph` extracts the subgraph over a task subset (edges
//   with both endpoints inside), preserving costs.
#pragma once

#include <vector>

#include "dag/task_graph.hpp"

namespace edgesched::dag {

/// The reversed DAG: same tasks, every edge flipped.
[[nodiscard]] TaskGraph transpose(const TaskGraph& graph);

/// Result of `merge_linear_chains`: the fused graph plus, for every
/// original task, the id of the fused task that now contains it.
struct ChainMerge {
  TaskGraph graph;
  std::vector<TaskId> representative;  ///< indexed by original task id
};

/// Fuses maximal linear chains (single-successor → single-predecessor
/// runs) into one task each; the fused weight is the chain's total
/// computation and internal edges disappear.
[[nodiscard]] ChainMerge merge_linear_chains(const TaskGraph& graph);

/// Result of `induced_subgraph`: the subgraph plus the mapping from
/// original ids to subgraph ids (invalid id = not selected).
struct Subgraph {
  TaskGraph graph;
  std::vector<TaskId> new_id;  ///< indexed by original task id
};

/// The subgraph induced by `tasks` (duplicates rejected).
[[nodiscard]] Subgraph induced_subgraph(const TaskGraph& graph,
                                        const std::vector<TaskId>& tasks);

/// Disjoint union: both graphs side by side (second graph's ids are
/// offset by `first.num_tasks()`).
[[nodiscard]] TaskGraph parallel_composition(const TaskGraph& first,
                                             const TaskGraph& second);

/// Sequential composition: `first` runs, then `second`; every exit of
/// `first` feeds every entry of `second` with an edge of cost
/// `stage_comm_cost`. The workflow-pipeline building block.
[[nodiscard]] TaskGraph sequential_composition(const TaskGraph& first,
                                               const TaskGraph& second,
                                               double stage_comm_cost);

}  // namespace edgesched::dag
