#include "dag/generators.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace edgesched::dag {

namespace {

double sample_cost(Rng& rng, double lo, double hi) {
  // The paper draws integer costs U(i, j); we keep that discreteness.
  return static_cast<double>(
      rng.uniform_int(static_cast<std::int64_t>(lo),
                      static_cast<std::int64_t>(hi)));
}

}  // namespace

TaskGraph random_layered(const LayeredDagParams& params, Rng& rng) {
  throw_if(params.num_tasks == 0, "random_layered: num_tasks must be > 0");
  throw_if(params.width_factor <= 0.0,
           "random_layered: width_factor must be positive");
  throw_if(params.comp_min > params.comp_max || params.comp_min < 0.0,
           "random_layered: bad computation cost range");
  throw_if(params.comm_min > params.comm_max || params.comm_min < 0.0,
           "random_layered: bad communication cost range");
  throw_if(params.in_degree_min == 0 ||
               params.in_degree_min > params.in_degree_max,
           "random_layered: bad in-degree range");

  TaskGraph graph("random_layered");

  // Partition tasks into layers whose mean width is
  // width_factor * sqrt(num_tasks).
  const double mean_width = std::max(
      1.0, params.width_factor * std::sqrt(static_cast<double>(
               params.num_tasks)));
  std::vector<std::vector<TaskId>> layers;
  std::size_t placed = 0;
  while (placed < params.num_tasks) {
    const std::size_t remaining = params.num_tasks - placed;
    const auto lo = static_cast<std::int64_t>(
        std::max(1.0, std::floor(mean_width * 0.5)));
    const auto hi = static_cast<std::int64_t>(
        std::max<double>(static_cast<double>(lo), std::ceil(mean_width * 1.5)));
    std::size_t width = static_cast<std::size_t>(rng.uniform_int(lo, hi));
    width = std::min(width, remaining);
    std::vector<TaskId> layer;
    layer.reserve(width);
    for (std::size_t i = 0; i < width; ++i) {
      layer.push_back(graph.add_task(
          sample_cost(rng, params.comp_min, params.comp_max)));
    }
    layers.push_back(std::move(layer));
    placed += width;
  }

  // Each task of layer l+1 draws its predecessors from layer l.
  for (std::size_t l = 0; l + 1 < layers.size(); ++l) {
    for (TaskId dst : layers[l + 1]) {
      const std::size_t width = layers[l].size();
      std::size_t degree = static_cast<std::size_t>(rng.uniform_int(
          static_cast<std::int64_t>(params.in_degree_min),
          static_cast<std::int64_t>(params.in_degree_max)));
      degree = std::min(degree, width);
      std::vector<TaskId> candidates = layers[l];
      rng.shuffle(candidates);
      for (std::size_t k = 0; k < degree; ++k) {
        graph.add_edge(candidates[k], dst,
                       sample_cost(rng, params.comm_min, params.comm_max));
      }
    }
  }

  // Skip edges across more than one layer create richer precedence.
  for (std::size_t l = 0; l + 2 < layers.size(); ++l) {
    for (TaskId src : layers[l]) {
      if (!rng.bernoulli(params.skip_edge_probability)) {
        continue;
      }
      const std::size_t target_layer = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(l) + 2,
                          static_cast<std::int64_t>(layers.size()) - 1));
      const TaskId dst =
          layers[target_layer][rng.index(layers[target_layer].size())];
      // Duplicate skip edges are possible with small layer counts; they
      // carry no information, so skip rather than throw.
      const auto succ = graph.successors(src);
      if (std::find(succ.begin(), succ.end(), dst) == succ.end()) {
        graph.add_edge(src, dst,
                       sample_cost(rng, params.comm_min, params.comm_max));
      }
    }
  }

  // Connectivity pass: every non-entry-layer task gets a predecessor from
  // the previous layer; every non-exit-layer task gets a successor in the
  // next layer.
  for (std::size_t l = 1; l < layers.size(); ++l) {
    for (TaskId task : layers[l]) {
      if (graph.in_edges(task).empty()) {
        const TaskId src = layers[l - 1][rng.index(layers[l - 1].size())];
        graph.add_edge(src, task,
                       sample_cost(rng, params.comm_min, params.comm_max));
      }
    }
  }
  for (std::size_t l = 0; l + 1 < layers.size(); ++l) {
    for (TaskId task : layers[l]) {
      if (graph.out_edges(task).empty()) {
        const TaskId dst = layers[l + 1][rng.index(layers[l + 1].size())];
        const auto succ = graph.successors(task);
        if (std::find(succ.begin(), succ.end(), dst) == succ.end()) {
          graph.add_edge(task, dst,
                         sample_cost(rng, params.comm_min, params.comm_max));
        }
      }
    }
  }

  return graph;
}

TaskGraph chain(std::size_t length, double comp_cost, double comm_cost) {
  throw_if(length == 0, "chain: length must be > 0");
  TaskGraph graph("chain");
  TaskId prev = graph.add_task(comp_cost);
  for (std::size_t i = 1; i < length; ++i) {
    const TaskId next = graph.add_task(comp_cost);
    graph.add_edge(prev, next, comm_cost);
    prev = next;
  }
  return graph;
}

TaskGraph fork(std::size_t fanout, double comp_cost, double comm_cost) {
  throw_if(fanout == 0, "fork: fanout must be > 0");
  TaskGraph graph("fork");
  const TaskId source = graph.add_task(comp_cost, "source");
  for (std::size_t i = 0; i < fanout; ++i) {
    const TaskId sink = graph.add_task(comp_cost);
    graph.add_edge(source, sink, comm_cost);
  }
  return graph;
}

TaskGraph join(std::size_t fanin, double comp_cost, double comm_cost) {
  throw_if(fanin == 0, "join: fanin must be > 0");
  TaskGraph graph("join");
  std::vector<TaskId> sources;
  sources.reserve(fanin);
  for (std::size_t i = 0; i < fanin; ++i) {
    sources.push_back(graph.add_task(comp_cost));
  }
  const TaskId sink = graph.add_task(comp_cost, "sink");
  for (TaskId src : sources) {
    graph.add_edge(src, sink, comm_cost);
  }
  return graph;
}

TaskGraph fork_join(std::size_t width, double comp_cost, double comm_cost) {
  throw_if(width == 0, "fork_join: width must be > 0");
  TaskGraph graph("fork_join");
  const TaskId source = graph.add_task(comp_cost, "source");
  const TaskId sink = graph.add_task(comp_cost, "sink");
  for (std::size_t i = 0; i < width; ++i) {
    const TaskId middle = graph.add_task(comp_cost);
    graph.add_edge(source, middle, comm_cost);
    graph.add_edge(middle, sink, comm_cost);
  }
  return graph;
}

TaskGraph out_tree(std::size_t levels, double comp_cost, double comm_cost) {
  throw_if(levels == 0, "out_tree: levels must be > 0");
  TaskGraph graph("out_tree");
  const std::size_t count = (std::size_t{1} << levels) - 1;
  for (std::size_t i = 0; i < count; ++i) {
    graph.add_task(comp_cost);
  }
  for (std::size_t i = 0; 2 * i + 2 < count + 1; ++i) {
    graph.add_edge(TaskId(i), TaskId(2 * i + 1), comm_cost);
    if (2 * i + 2 < count) {
      graph.add_edge(TaskId(i), TaskId(2 * i + 2), comm_cost);
    }
  }
  return graph;
}

TaskGraph in_tree(std::size_t levels, double comp_cost, double comm_cost) {
  throw_if(levels == 0, "in_tree: levels must be > 0");
  TaskGraph graph("in_tree");
  const std::size_t count = (std::size_t{1} << levels) - 1;
  for (std::size_t i = 0; i < count; ++i) {
    graph.add_task(comp_cost);
  }
  for (std::size_t i = 0; 2 * i + 2 < count + 1; ++i) {
    graph.add_edge(TaskId(2 * i + 1), TaskId(i), comm_cost);
    if (2 * i + 2 < count) {
      graph.add_edge(TaskId(2 * i + 2), TaskId(i), comm_cost);
    }
  }
  return graph;
}

TaskGraph fft(std::size_t points, double comp_cost, double comm_cost) {
  throw_if(points == 0 || (points & (points - 1)) != 0,
           "fft: points must be a power of two");
  TaskGraph graph("fft");
  std::size_t stages = 0;
  for (std::size_t p = points; p > 1; p >>= 1) {
    ++stages;
  }
  // (stages + 1) rows of `points` tasks.
  std::vector<std::vector<TaskId>> rows(stages + 1);
  for (std::size_t r = 0; r <= stages; ++r) {
    rows[r].reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
      rows[r].push_back(graph.add_task(
          comp_cost, "f" + std::to_string(r) + "_" + std::to_string(i)));
    }
  }
  // Butterfly: at stage r, element i pairs with i XOR 2^(stages-1-r).
  for (std::size_t r = 0; r < stages; ++r) {
    const std::size_t stride = std::size_t{1} << (stages - 1 - r);
    for (std::size_t i = 0; i < points; ++i) {
      graph.add_edge(rows[r][i], rows[r + 1][i], comm_cost);
      graph.add_edge(rows[r][i ^ stride], rows[r + 1][i], comm_cost);
    }
  }
  return graph;
}

TaskGraph gaussian_elimination(std::size_t m, double comp_cost,
                               double comm_cost) {
  throw_if(m < 2, "gaussian_elimination: matrix dimension must be >= 2");
  TaskGraph graph("gaussian_elimination");
  TaskId prev_pivot;
  std::vector<TaskId> prev_updates;
  for (std::size_t k = 0; k + 1 < m; ++k) {
    const TaskId pivot =
        graph.add_task(comp_cost, "pivot" + std::to_string(k));
    if (k > 0) {
      // The pivot of step k is the first row-head updated in step k-1.
      graph.add_edge(prev_updates.front(), pivot, comm_cost);
    }
    std::vector<TaskId> updates;
    for (std::size_t r = k + 1; r < m; ++r) {
      const TaskId update = graph.add_task(
          comp_cost, "upd" + std::to_string(k) + "_" + std::to_string(r));
      graph.add_edge(pivot, update, comm_cost);
      if (k > 0) {
        // Row r was also touched by the previous elimination step.
        graph.add_edge(prev_updates[r - k], update, comm_cost);
      }
      updates.push_back(update);
    }
    prev_pivot = pivot;
    prev_updates = std::move(updates);
  }
  (void)prev_pivot;
  return graph;
}

TaskGraph stencil_1d(std::size_t steps, std::size_t points, double comp_cost,
                     double comm_cost) {
  throw_if(steps == 0 || points == 0,
           "stencil_1d: steps and points must be > 0");
  TaskGraph graph("stencil_1d");
  std::vector<std::vector<TaskId>> rows(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    rows[t].reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
      rows[t].push_back(graph.add_task(
          comp_cost, "s" + std::to_string(t) + "_" + std::to_string(i)));
    }
  }
  for (std::size_t t = 0; t + 1 < steps; ++t) {
    for (std::size_t i = 0; i < points; ++i) {
      graph.add_edge(rows[t][i], rows[t + 1][i], comm_cost);
      if (i > 0) {
        graph.add_edge(rows[t][i - 1], rows[t + 1][i], comm_cost);
      }
      if (i + 1 < points) {
        graph.add_edge(rows[t][i + 1], rows[t + 1][i], comm_cost);
      }
    }
  }
  return graph;
}

TaskGraph cholesky(std::size_t tiles, double tile_flops,
                   double tile_volume) {
  throw_if(tiles == 0, "cholesky: tiles must be > 0");
  throw_if(tile_flops <= 0.0 || tile_volume < 0.0,
           "cholesky: bad cost parameters");
  TaskGraph graph("cholesky");

  // Dataflow construction: every kernel reads/writes tiles; an edge runs
  // from the last writer of each tile a kernel touches.
  std::vector<std::vector<TaskId>> last_writer(
      tiles, std::vector<TaskId>(tiles));
  const auto depend = [&](TaskId task, TaskId writer) {
    if (!writer.valid() || writer == task) {
      return;
    }
    const auto succ = graph.successors(writer);
    if (std::find(succ.begin(), succ.end(), task) == succ.end()) {
      graph.add_edge(writer, task, tile_volume);
    }
  };

  for (std::size_t k = 0; k < tiles; ++k) {
    const TaskId potrf = graph.add_task(
        tile_flops / 3.0, "potrf_" + std::to_string(k));
    depend(potrf, last_writer[k][k]);
    last_writer[k][k] = potrf;

    for (std::size_t i = k + 1; i < tiles; ++i) {
      const TaskId trsm = graph.add_task(
          tile_flops, "trsm_" + std::to_string(i) + "_" +
                          std::to_string(k));
      depend(trsm, last_writer[k][k]);  // the factorised diagonal tile
      depend(trsm, last_writer[i][k]);  // the panel tile being solved
      last_writer[i][k] = trsm;
    }
    for (std::size_t i = k + 1; i < tiles; ++i) {
      for (std::size_t j = k + 1; j <= i; ++j) {
        const bool is_syrk = (i == j);
        const TaskId update = graph.add_task(
            is_syrk ? tile_flops : 2.0 * tile_flops,
            (is_syrk ? "syrk_" : "gemm_") + std::to_string(i) + "_" +
                std::to_string(j) + "_" + std::to_string(k));
        depend(update, last_writer[i][k]);
        if (!is_syrk) {
          depend(update, last_writer[j][k]);
        }
        depend(update, last_writer[i][j]);  // accumulation chain
        last_writer[i][j] = update;
      }
    }
  }
  return graph;
}

TaskGraph diamond(std::size_t side, double comp_cost, double comm_cost) {
  throw_if(side == 0, "diamond: side must be > 0");
  TaskGraph graph("diamond");
  std::vector<std::vector<TaskId>> grid(side);
  for (std::size_t i = 0; i < side; ++i) {
    grid[i].reserve(side);
    for (std::size_t j = 0; j < side; ++j) {
      grid[i].push_back(graph.add_task(
          comp_cost, "d" + std::to_string(i) + "_" + std::to_string(j)));
    }
  }
  for (std::size_t i = 0; i < side; ++i) {
    for (std::size_t j = 0; j < side; ++j) {
      if (i + 1 < side) {
        graph.add_edge(grid[i][j], grid[i + 1][j], comm_cost);
      }
      if (j + 1 < side) {
        graph.add_edge(grid[i][j], grid[i][j + 1], comm_cost);
      }
    }
  }
  return graph;
}

}  // namespace edgesched::dag
