#include "dag/properties.hpp"

#include <algorithm>

namespace edgesched::dag {

namespace {

std::vector<double> bottom_levels_impl(const TaskGraph& graph,
                                       bool include_communication) {
  const std::vector<TaskId> order = graph.topological_order();
  std::vector<double> bl(graph.num_tasks(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId task = *it;
    double best = 0.0;
    for (EdgeId e : graph.out_edges(task)) {
      const Edge& edge = graph.edge(e);
      const double via = (include_communication ? edge.cost : 0.0) +
                         bl[edge.dst.index()];
      best = std::max(best, via);
    }
    bl[task.index()] = graph.weight(task) + best;
  }
  return bl;
}

}  // namespace

std::vector<double> bottom_levels(const TaskGraph& graph) {
  return bottom_levels_impl(graph, /*include_communication=*/true);
}

std::vector<double> bottom_levels_computation_only(const TaskGraph& graph) {
  return bottom_levels_impl(graph, /*include_communication=*/false);
}

std::vector<double> top_levels(const TaskGraph& graph) {
  const std::vector<TaskId> order = graph.topological_order();
  std::vector<double> tl(graph.num_tasks(), 0.0);
  for (TaskId task : order) {
    double best = 0.0;
    for (EdgeId e : graph.in_edges(task)) {
      const Edge& edge = graph.edge(e);
      const double via =
          tl[edge.src.index()] + graph.weight(edge.src) + edge.cost;
      best = std::max(best, via);
    }
    tl[task.index()] = best;
  }
  return tl;
}

double critical_path_length(const TaskGraph& graph) {
  if (graph.empty()) {
    return 0.0;
  }
  const std::vector<double> bl = bottom_levels(graph);
  return *std::max_element(bl.begin(), bl.end());
}

std::vector<TaskId> critical_path(const TaskGraph& graph) {
  if (graph.empty()) {
    return {};
  }
  const std::vector<double> bl = bottom_levels(graph);
  TaskId current(static_cast<std::size_t>(
      std::max_element(bl.begin(), bl.end()) - bl.begin()));
  std::vector<TaskId> path{current};
  while (!graph.out_edges(current).empty()) {
    // Follow the successor that realises bl(current).
    TaskId best_next;
    double best_value = -1.0;
    for (EdgeId e : graph.out_edges(current)) {
      const Edge& edge = graph.edge(e);
      const double value = edge.cost + bl[edge.dst.index()];
      if (value > best_value) {
        best_value = value;
        best_next = edge.dst;
      }
    }
    current = best_next;
    path.push_back(current);
  }
  return path;
}

double communication_computation_ratio(const TaskGraph& graph) {
  if (graph.num_edges() == 0 || graph.num_tasks() == 0) {
    return 0.0;
  }
  const double mean_comm =
      graph.total_communication() / static_cast<double>(graph.num_edges());
  const double mean_comp =
      graph.total_computation() / static_cast<double>(graph.num_tasks());
  if (mean_comp == 0.0) {
    return 0.0;
  }
  return mean_comm / mean_comp;
}

void rescale_to_ccr(TaskGraph& graph, double target) {
  throw_if(target <= 0.0, "rescale_to_ccr: target must be positive");
  const double current = communication_computation_ratio(graph);
  throw_if(current == 0.0,
           "rescale_to_ccr: graph has no communication or computation");
  const double factor = target / current;
  for (EdgeId e : graph.all_edges()) {
    graph.set_cost(e, graph.cost(e) * factor);
  }
}

std::vector<std::size_t> precedence_levels(const TaskGraph& graph) {
  const std::vector<TaskId> order = graph.topological_order();
  std::vector<std::size_t> level(graph.num_tasks(), 0);
  for (TaskId task : order) {
    for (EdgeId e : graph.in_edges(task)) {
      level[task.index()] = std::max(level[task.index()],
                                     level[graph.edge(e).src.index()] + 1);
    }
  }
  return level;
}

GraphShape shape(const TaskGraph& graph) {
  GraphShape s;
  s.num_tasks = graph.num_tasks();
  s.num_edges = graph.num_edges();
  s.num_entries = graph.entry_tasks().size();
  s.num_exits = graph.exit_tasks().size();
  if (graph.empty()) {
    return s;
  }
  const std::vector<std::size_t> levels = precedence_levels(graph);
  const std::size_t depth =
      *std::max_element(levels.begin(), levels.end()) + 1;
  s.depth = depth;
  std::vector<std::size_t> width(depth, 0);
  for (std::size_t lvl : levels) {
    ++width[lvl];
  }
  s.max_width = *std::max_element(width.begin(), width.end());
  s.avg_out_degree = static_cast<double>(graph.num_edges()) /
                     static_cast<double>(graph.num_tasks());
  return s;
}

}  // namespace edgesched::dag
