// Static DAG properties: levels, critical path, CCR, shape statistics.
#pragma once

#include <cstddef>
#include <vector>

#include "dag/task_graph.hpp"

namespace edgesched::dag {

/// bl(n) = w(n) + max over successors s of (c(e_{n,s}) + bl(s)).
/// This is the paper's static priority (§2.1): the length of the longest
/// path leaving the task, including its own computation.
[[nodiscard]] std::vector<double> bottom_levels(const TaskGraph& graph);

/// Computation-only bottom level (communication costs treated as zero);
/// useful as an alternative priority scheme and for ablation studies.
[[nodiscard]] std::vector<double> bottom_levels_computation_only(
    const TaskGraph& graph);

/// tl(n) = max over predecessors p of (tl(p) + w(p) + c(e_{p,n})), 0 for
/// entry tasks: the length of the longest path arriving at the task.
[[nodiscard]] std::vector<double> top_levels(const TaskGraph& graph);

/// Length of the longest w+c path through the DAG — equals max bl(n).
[[nodiscard]] double critical_path_length(const TaskGraph& graph);

/// Tasks of the longest path, entry to exit, following maximal bl.
[[nodiscard]] std::vector<TaskId> critical_path(const TaskGraph& graph);

/// Communication-to-computation ratio: mean edge cost / mean task weight.
/// Returns 0 for graphs without edges.
[[nodiscard]] double communication_computation_ratio(const TaskGraph& graph);

/// Multiplies all communication costs by a common factor so that the
/// graph's CCR becomes `target`. No-op (throws) for edgeless or zero
/// computation graphs.
void rescale_to_ccr(TaskGraph& graph, double target);

/// Shape statistics for reporting and generator tests.
struct GraphShape {
  std::size_t num_tasks = 0;
  std::size_t num_edges = 0;
  std::size_t depth = 0;      ///< number of precedence levels
  std::size_t max_width = 0;  ///< max tasks in one precedence level
  double avg_out_degree = 0.0;
  std::size_t num_entries = 0;
  std::size_t num_exits = 0;
};

[[nodiscard]] GraphShape shape(const TaskGraph& graph);

/// Precedence level of each task: 0 for entries, otherwise
/// 1 + max(level of predecessors).
[[nodiscard]] std::vector<std::size_t> precedence_levels(
    const TaskGraph& graph);

}  // namespace edgesched::dag
