// Directed acyclic task graph G = (V, E, w, c).
//
// Nodes carry a computation cost w(n); edges carry a communication cost
// c(e). This is the program model of the paper (§2.1): a task may start
// only after every predecessor has finished and all predecessor data has
// arrived at the task's processor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/ids.hpp"

namespace edgesched::dag {

struct TaskTag {};
struct EdgeTag {};

/// Identifier of a task (a node of the DAG).
using TaskId = StrongId<TaskTag>;
/// Identifier of a dependence edge of the DAG.
using EdgeId = StrongId<EdgeTag>;

/// A single task: computation cost plus adjacency.
struct Task {
  std::string name;
  double weight = 0.0;               ///< computation cost w(n)
  std::vector<EdgeId> in_edges;      ///< edges from predecessors
  std::vector<EdgeId> out_edges;     ///< edges to successors
};

/// A dependence edge n_src -> n_dst with communication cost c(e).
struct Edge {
  TaskId src;
  TaskId dst;
  double cost = 0.0;  ///< communication cost c(e)
};

/// Mutable task DAG. Construction is append-only: tasks first, then edges.
/// Acyclicity is not enforced per edge insertion (generators add edges in
/// topological layers); call `validate()` or `is_acyclic()` before
/// scheduling arbitrary input.
class TaskGraph {
 public:
  TaskGraph() = default;
  explicit TaskGraph(std::string name) : name_(std::move(name)) {}

  /// Adds a task with the given computation cost; returns its id.
  TaskId add_task(double weight, std::string name = {});

  /// Adds a dependence edge; returns its id. Throws on self loops,
  /// duplicate edges, invalid endpoints, or negative cost.
  EdgeId add_edge(TaskId src, TaskId dst, double cost);

  [[nodiscard]] std::size_t num_tasks() const noexcept {
    return tasks_.size();
  }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return edges_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }

  [[nodiscard]] const Task& task(TaskId id) const {
    EDGESCHED_ASSERT(id.index() < tasks_.size());
    return tasks_[id.index()];
  }
  [[nodiscard]] const Edge& edge(EdgeId id) const {
    EDGESCHED_ASSERT(id.index() < edges_.size());
    return edges_[id.index()];
  }

  [[nodiscard]] double weight(TaskId id) const { return task(id).weight; }
  [[nodiscard]] double cost(EdgeId id) const { return edge(id).cost; }

  /// Rescales one edge's communication cost (used by the CCR adjuster).
  void set_cost(EdgeId id, double cost);

  /// Rescales one task's computation cost (used by perturbation studies).
  void set_weight(TaskId id, double weight);

  /// Edges arriving at `id` (one per predecessor).
  [[nodiscard]] const std::vector<EdgeId>& in_edges(TaskId id) const {
    return task(id).in_edges;
  }
  /// Edges leaving `id` (one per successor).
  [[nodiscard]] const std::vector<EdgeId>& out_edges(TaskId id) const {
    return task(id).out_edges;
  }

  /// pred(n): predecessor task ids, in edge-insertion order.
  [[nodiscard]] std::vector<TaskId> predecessors(TaskId id) const;
  /// succ(n): successor task ids, in edge-insertion order.
  [[nodiscard]] std::vector<TaskId> successors(TaskId id) const;

  /// Tasks with no predecessors.
  [[nodiscard]] std::vector<TaskId> entry_tasks() const;
  /// Tasks with no successors.
  [[nodiscard]] std::vector<TaskId> exit_tasks() const;

  /// All task ids, 0..num_tasks-1.
  [[nodiscard]] std::vector<TaskId> all_tasks() const;
  /// All edge ids, 0..num_edges-1.
  [[nodiscard]] std::vector<EdgeId> all_edges() const;

  /// True iff the edge set contains no directed cycle.
  [[nodiscard]] bool is_acyclic() const;

  /// A topological order of all tasks. Throws std::invalid_argument if the
  /// graph is cyclic.
  [[nodiscard]] std::vector<TaskId> topological_order() const;

  /// Throws std::invalid_argument describing the first structural problem
  /// found (cycle); a valid graph returns normally.
  void validate() const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Canonical 64-bit structural hash over everything a scheduler sees:
  /// task count, every computation cost in task order, and every edge
  /// (src, dst, cost) in edge order. Task and graph *names* are excluded —
  /// two graphs differing only in labels schedule identically and share a
  /// fingerprint. Deterministic across platforms and runs; used as the
  /// content-address key of svc::ScheduleCache.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

  /// Sum of all computation costs.
  [[nodiscard]] double total_computation() const noexcept;
  /// Sum of all communication costs.
  [[nodiscard]] double total_communication() const noexcept;

 private:
  std::string name_;
  std::vector<Task> tasks_;
  std::vector<Edge> edges_;
};

}  // namespace edgesched::dag
