// Task-graph generators.
//
// `random_layered` is the workload of the paper's evaluation (§6,
// "construction of task graph is subject to [3]" — Bajaj & Agrawal): tasks
// are placed into precedence layers, edges connect earlier layers to later
// ones, and costs are drawn from U(i, j) ranges. The canonical generators
// (chains, trees, fork-join, FFT, Gaussian elimination, stencil) provide
// structured graphs with known critical paths for tests and examples.
#pragma once

#include <cstddef>

#include "dag/task_graph.hpp"
#include "util/rng.hpp"

namespace edgesched::dag {

/// Parameters of the random layered generator. Defaults mirror the paper's
/// evaluation except for the task-count range, which benches override.
struct LayeredDagParams {
  std::size_t num_tasks = 100;
  /// Mean layer width as a fraction of sqrt(num_tasks); > 1 produces
  /// wider/shallower graphs, < 1 deeper/narrower ones.
  double width_factor = 1.0;
  /// Each non-entry task draws U(in_degree_min, in_degree_max)
  /// predecessors from the previous layer (clamped to its width), the
  /// degree regime of the Bajaj–Agrawal generator family.
  std::size_t in_degree_min = 1;
  std::size_t in_degree_max = 4;
  /// Probability of additional edges that skip one or more layers.
  double skip_edge_probability = 0.15;
  /// Computation cost range U(comp_min, comp_max) — paper: U(1, 1000).
  double comp_min = 1.0;
  double comp_max = 1000.0;
  /// Communication cost range U(comm_min, comm_max) — paper: U(1, 1000);
  /// experiments then rescale to a target CCR.
  double comm_min = 1.0;
  double comm_max = 1000.0;
};

/// Random layered DAG: every non-entry task has at least one predecessor
/// in an earlier layer, every non-exit task at least one successor.
[[nodiscard]] TaskGraph random_layered(const LayeredDagParams& params,
                                       Rng& rng);

/// Linear chain n_0 -> n_1 -> ... -> n_{length-1}; all weights
/// `comp_cost`, all edges `comm_cost`.
[[nodiscard]] TaskGraph chain(std::size_t length, double comp_cost = 1.0,
                              double comm_cost = 1.0);

/// One source fanning out to `fanout` independent sinks.
[[nodiscard]] TaskGraph fork(std::size_t fanout, double comp_cost = 1.0,
                             double comm_cost = 1.0);

/// `fanin` independent sources joining into one sink.
[[nodiscard]] TaskGraph join(std::size_t fanin, double comp_cost = 1.0,
                             double comm_cost = 1.0);

/// Source -> `width` parallel tasks -> sink (the classic fork-join).
[[nodiscard]] TaskGraph fork_join(std::size_t width, double comp_cost = 1.0,
                                  double comm_cost = 1.0);

/// Complete binary out-tree with `levels` levels (2^levels - 1 tasks).
[[nodiscard]] TaskGraph out_tree(std::size_t levels, double comp_cost = 1.0,
                                 double comm_cost = 1.0);

/// Complete binary in-tree with `levels` levels (2^levels - 1 tasks).
[[nodiscard]] TaskGraph in_tree(std::size_t levels, double comp_cost = 1.0,
                                double comm_cost = 1.0);

/// Butterfly dependence structure of an FFT over `points` inputs
/// (`points` must be a power of two): (log2(points)+1) rows of `points`
/// tasks each.
[[nodiscard]] TaskGraph fft(std::size_t points, double comp_cost = 1.0,
                            double comm_cost = 1.0);

/// Dependence structure of Gaussian elimination on an m×m matrix: for each
/// pivot k a pivot-column task feeds the (m-k-1) update tasks of the
/// trailing submatrix row heads, which feed the next pivot.
[[nodiscard]] TaskGraph gaussian_elimination(std::size_t m,
                                             double comp_cost = 1.0,
                                             double comm_cost = 1.0);

/// `steps` × `points` wavefront (1-D stencil over time): each task depends
/// on its own and its neighbours' values from the previous step.
[[nodiscard]] TaskGraph stencil_1d(std::size_t steps, std::size_t points,
                                   double comp_cost = 1.0,
                                   double comm_cost = 1.0);

/// Diamond lattice of side `side` (2-D wavefront, as in dynamic
/// programming tables): task (i, j) depends on (i-1, j) and (i, j-1).
[[nodiscard]] TaskGraph diamond(std::size_t side, double comp_cost = 1.0,
                                double comm_cost = 1.0);

/// Right-looking tiled Cholesky factorisation over a `tiles` × `tiles`
/// lower-triangular tile grid — the canonical dense-linear-algebra task
/// graph (POTRF / TRSM / SYRK / GEMM kernels). `tile_flops` scales the
/// computation costs (kernels weigh 1/3/3/6 × tile_flops);
/// `tile_volume` is the communication cost of moving one tile.
[[nodiscard]] TaskGraph cholesky(std::size_t tiles,
                                 double tile_flops = 3.0,
                                 double tile_volume = 1.0);

}  // namespace edgesched::dag
