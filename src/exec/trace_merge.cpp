#include "exec/trace_merge.hpp"

#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace edgesched::exec {

namespace {

constexpr int kPidPlanned = 0;
constexpr int kPidExecuted = 1;
constexpr int kPidEvents = 2;

/// Track id for link-fault instants: offset past the processor tracks so
/// processors and links share the events process without colliding.
std::uint32_t link_tid(const net::Topology& topology, std::uint32_t link) {
  return static_cast<std::uint32_t>(topology.num_nodes()) + link;
}

class TraceWriter {
 public:
  TraceWriter(std::ostream& os, std::uint64_t run_id)
      : os_(os), run_id_(run_id) {
    os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  }

  void process_name(int pid, const std::string& name) {
    begin_event();
    os_ << "{\"ph\":\"M\",\"pid\":" << pid
        << ",\"name\":\"process_name\",\"args\":{\"name\":\""
        << obs::json_escape(name) << "\"}}";
  }

  void thread_name(int pid, std::uint32_t tid, const std::string& name) {
    begin_event();
    os_ << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << obs::json_escape(name) << "\"}}";
  }

  void span(int pid, std::uint32_t tid, const std::string& name,
            double start, double duration, const std::string& extra_args) {
    begin_event();
    os_ << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"name\":\"" << obs::json_escape(name) << "\",\"ts\":" << start
        << ",\"dur\":" << duration << ",\"args\":{\"run_id\":" << run_id_;
    if (!extra_args.empty()) {
      os_ << ',' << extra_args;
    }
    os_ << "}}";
  }

  void instant(int pid, std::uint32_t tid, const std::string& name,
               double time, const std::string& extra_args) {
    begin_event();
    os_ << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"name\":\"" << obs::json_escape(name) << "\",\"ts\":" << time
        << ",\"args\":{\"run_id\":" << run_id_;
    if (!extra_args.empty()) {
      os_ << ',' << extra_args;
    }
    os_ << "}}";
  }

  void finish() { os_ << "\n]}\n"; }

 private:
  void begin_event() {
    if (!first_) {
      os_ << ',';
    }
    first_ = false;
    os_ << '\n';
  }

  std::ostream& os_;
  std::uint64_t run_id_;
  bool first_ = true;
};

}  // namespace

void write_merged_trace(std::ostream& os, const dag::TaskGraph& graph,
                        const net::Topology& topology,
                        const sched::Schedule& schedule,
                        const ExecutionReport& report) {
  TraceWriter w(os, report.run_id);

  // Track naming: the same processor name appears under both the planned
  // and executed processes, so the two rows sit adjacent per resource.
  w.process_name(kPidPlanned, "planned [" + schedule.algorithm() + "]");
  w.process_name(kPidExecuted,
                 report.completed ? "executed" : "executed (FAILED)");
  w.process_name(kPidEvents, "faults+recovery");
  for (const net::NodeId p : topology.processors()) {
    const std::string& name = topology.node(p).name;
    w.thread_name(kPidPlanned, p.value(), name);
    w.thread_name(kPidExecuted, p.value(), name);
    w.thread_name(kPidEvents, p.value(), name);
  }
  for (std::uint32_t l = 0; l < topology.num_links(); ++l) {
    w.thread_name(kPidEvents, link_tid(topology, l),
                  "link " + std::to_string(l));
  }

  // Planner intent.
  for (const dag::TaskId t : graph.all_tasks()) {
    const sched::TaskPlacement& placement = schedule.task(t);
    if (placement.placed()) {
      w.span(kPidPlanned, placement.processor.value(), graph.task(t).name,
             placement.start, placement.finish - placement.start,
             "\"task\":" + std::to_string(t.value()));
    }
  }

  // Achieved slots (final attempt of every task that ran).
  for (const TaskRecord& record : report.tasks) {
    if (record.attempts == 0) {
      continue;  // never started (aborted run)
    }
    std::ostringstream args;
    args << "\"task\":" << record.task << ",\"attempts\":" << record.attempts
         << ",\"tardiness\":" << record.tardiness();
    std::string name = graph.task(dag::TaskId(record.task)).name;
    if (record.attempts > 1) {
      name += " (attempt " + std::to_string(record.attempts) + ")";
    }
    w.span(kPidExecuted, record.processor, name, record.start,
           record.finish - record.start, args.str());
  }

  // Faults land on the track of the resource they destroyed.
  for (const FaultRecord& fault : report.faults) {
    const std::uint32_t tid = fault.kind == "processor"
                                  ? fault.target
                                  : link_tid(topology, fault.target);
    std::ostringstream args;
    args << "\"kind\":\"" << fault.kind << "\",\"target\":" << fault.target
         << ",\"permanent\":" << (fault.permanent ? "true" : "false")
         << ",\"killed\":" << fault.killed;
    w.instant(kPidEvents, tid,
              std::string("fault ") + (fault.permanent ? "permanent " : "") +
                  fault.kind + " " + std::to_string(fault.target),
              fault.time, args.str());
  }

  // Recovery actions (retry / reschedule / abort) on the summary track.
  for (const RecoveryRecord& recovery : report.recoveries) {
    std::ostringstream args;
    args << "\"action\":\"" << recovery.action << "\",\"tasks_remaining\":"
         << recovery.tasks_remaining
         << ",\"replan_makespan\":" << recovery.replan_makespan;
    std::string name = recovery.action;
    if (!recovery.algorithm.empty()) {
      name += " [" + recovery.algorithm + "]";
    }
    w.instant(kPidEvents, 0, name, recovery.time, args.str());
  }

  w.finish();
}

std::string to_merged_trace(const dag::TaskGraph& graph,
                            const net::Topology& topology,
                            const sched::Schedule& schedule,
                            const ExecutionReport& report) {
  std::ostringstream os;
  write_merged_trace(os, graph, topology, schedule, report);
  return os.str();
}

}  // namespace edgesched::exec
