#include "exec/report.hpp"

#include <algorithm>
#include <sstream>

namespace edgesched::exec {

void ExecutionReport::finalise() {
  achieved_makespan = 0.0;
  total_tardiness = 0.0;
  max_tardiness = 0.0;
  for (const TaskRecord& record : tasks) {
    if (record.attempts == 0) {
      continue;  // never started (aborted executions)
    }
    achieved_makespan = std::max(achieved_makespan, record.finish);
    const double tardiness = std::max(0.0, record.tardiness());
    total_tardiness += tardiness;
    max_tardiness = std::max(max_tardiness, tardiness);
  }
  slowdown = predicted_makespan > 0.0
                 ? achieved_makespan / predicted_makespan
                 : 0.0;
}

obs::JsonValue ExecutionReport::to_json() const {
  using obs::JsonValue;
  JsonValue task_array = JsonValue::array();
  for (const TaskRecord& record : tasks) {
    task_array.push(JsonValue::object()
                        .set("task", JsonValue(record.task))
                        .set("processor", JsonValue(record.processor))
                        .set("predicted_start",
                             JsonValue(record.predicted_start))
                        .set("predicted_finish",
                             JsonValue(record.predicted_finish))
                        .set("start", JsonValue(record.start))
                        .set("finish", JsonValue(record.finish))
                        .set("attempts", JsonValue(record.attempts))
                        .set("tardiness", JsonValue(record.tardiness())));
  }
  JsonValue fault_array = JsonValue::array();
  for (const FaultRecord& record : faults) {
    fault_array.push(JsonValue::object()
                         .set("time", JsonValue(record.time))
                         .set("kind", JsonValue(record.kind))
                         .set("target", JsonValue(record.target))
                         .set("permanent", JsonValue(record.permanent))
                         .set("repair", JsonValue(record.repair))
                         .set("killed", JsonValue(record.killed)));
  }
  JsonValue recovery_array = JsonValue::array();
  for (const RecoveryRecord& record : recoveries) {
    recovery_array.push(
        JsonValue::object()
            .set("time", JsonValue(record.time))
            .set("action", JsonValue(record.action))
            .set("algorithm", JsonValue(record.algorithm))
            .set("tasks_remaining", JsonValue(record.tasks_remaining))
            .set("processors_surviving",
                 JsonValue(record.processors_surviving))
            .set("replan_makespan", JsonValue(record.replan_makespan)));
  }
  return obs::JsonValue::object()
      .set("type", JsonValue("execution_report"))
      .set("run_id", JsonValue(run_id))
      .set("algorithm", JsonValue(algorithm))
      .set("completed", JsonValue(completed))
      .set("failure", JsonValue(failure))
      .set("predicted_makespan", JsonValue(predicted_makespan))
      .set("achieved_makespan", JsonValue(achieved_makespan))
      .set("slowdown", JsonValue(slowdown))
      .set("total_tardiness", JsonValue(total_tardiness))
      .set("max_tardiness", JsonValue(max_tardiness))
      .set("events", JsonValue(events))
      .set("retries", JsonValue(retries))
      .set("faults_injected", JsonValue(faults_injected))
      .set("faults_survived", JsonValue(faults_survived))
      .set("reschedules", JsonValue(reschedules))
      .set("work_lost", JsonValue(work_lost))
      .set("tasks", std::move(task_array))
      .set("faults", std::move(fault_array))
      .set("recoveries", std::move(recovery_array));
}

std::string ExecutionReport::summary() const {
  std::ostringstream os;
  os << "execution[" << algorithm << "] "
     << (completed ? "completed" : "FAILED");
  if (!completed && !failure.empty()) {
    os << " (" << failure << ")";
  }
  os << ": predicted " << predicted_makespan << ", achieved "
     << achieved_makespan;
  if (slowdown > 0.0) {
    os << " (x" << slowdown << ")";
  }
  os << ", " << events << " events";
  if (faults_injected > 0) {
    os << ", " << faults_injected << " faults (" << faults_survived
       << " survived)";
  }
  if (retries > 0) {
    os << ", " << retries << " retries";
  }
  if (reschedules > 0) {
    os << ", " << reschedules << " reschedules";
  }
  if (work_lost > 0.0) {
    os << ", work lost " << work_lost;
  }
  return os.str();
}

}  // namespace edgesched::exec
