// Deterministic discrete-event execution of a static schedule.
//
// `execute` replays a `sched::Schedule` forward in virtual time on its
// topology: tasks run on their planned processors in planned order,
// cross-processor edges move over their planned routes (exclusive slots
// serialise per contention domain, bandwidth transfers forward fluidly,
// packetized edges store-and-forward per packet), and a `RuntimeModel`
// perturbs durations while a `FaultPlan` kills resources.
//
// Dispatch modes:
//   * kTimetable (default) — every operation is anchored at its planned
//     start and never begins earlier, only later (when dependencies,
//     resources, or repairs delay it). With a nominal model and no
//     faults this reproduces the predicted schedule *bit-for-bit*:
//     every task starts and finishes at exactly the predicted doubles.
//   * kEventDriven — work-conserving: operations start as soon as their
//     dependencies and resources allow, still in planned per-resource
//     order. No exactness guarantee (a slot planned after an
//     intentionally skipped gap may start earlier than predicted).
//
// Recovery policies answer injected faults:
//   * kFailStop    — abort on the first fault that destroys work or is
//     permanent.
//   * kRetry       — re-run killed work on the same resource after it
//     heals, with configurable backoff; permanent faults that strand
//     pending work abort.
//   * kReschedule  — transient faults retry in place; a permanent fault
//     that strands work triggers an online replan: the unfinished
//     subgraph (plus re-staging stubs for surviving outputs) is handed
//     to an `algorithm_registry()` scheduler on the surviving topology
//     and execution continues on the new plan.
//
// Determinism: the event loop breaks ties by (time, kind-rank, push
// sequence) and all stochastic factors are pure functions of (seed,
// entity, attempt) — same inputs, bit-identical `ExecutionReport`.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "dag/task_graph.hpp"
#include "exec/fault.hpp"
#include "exec/report.hpp"
#include "exec/runtime_model.hpp"
#include "net/topology.hpp"
#include "sched/schedule.hpp"

namespace edgesched::exec {

enum class RecoveryPolicy { kFailStop, kRetry, kReschedule };
enum class DispatchMode { kTimetable, kEventDriven };

[[nodiscard]] std::string_view to_string(RecoveryPolicy policy) noexcept;
[[nodiscard]] std::string_view to_string(DispatchMode mode) noexcept;

/// Parses "fail-stop" | "retry" | "reschedule" (case-sensitive). Throws
/// std::invalid_argument naming the accepted spellings.
[[nodiscard]] RecoveryPolicy parse_recovery_policy(std::string_view name);
/// Parses "timetable" | "event-driven".
[[nodiscard]] DispatchMode parse_dispatch_mode(std::string_view name);

struct ExecutionOptions {
  RuntimeModel model;
  FaultPlan faults;
  RecoveryPolicy policy = RecoveryPolicy::kFailStop;
  DispatchMode dispatch = DispatchMode::kTimetable;

  /// Replanning algorithm for kReschedule; "" re-invokes the executed
  /// schedule's own algorithm (`Schedule::algorithm()`).
  std::string recovery_algorithm;

  /// A task/transfer killed more than this many times aborts (kRetry and
  /// kReschedule; transient faults only).
  std::uint32_t max_retries = 3;
  /// Extra wait before re-running killed work: backoff · kill-count,
  /// added after the resource heals.
  double retry_backoff = 0.0;

  /// Online replans beyond this count abort (kReschedule).
  std::uint32_t max_reschedules = 8;
  /// Virtual replanning latency added before the new plan starts.
  double reschedule_delay = 0.0;
  /// Run every recovery sub-schedule through sched::validate_or_throw
  /// (violations abort the execution with the validator's message).
  bool validate_recovery = true;

  /// Structural hash for execution-request content addressing
  /// (svc::SchedulerService's execution cache).
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;
};

/// Replays `schedule` for `graph` on `topology` under `options`.
///
/// Throws std::invalid_argument on malformed inputs (model/fault
/// parameters out of range, fault targets unknown to the topology,
/// schedule shape mismatch). Runtime failures — fail-stop aborts, retry
/// exhaustion, unrecoverable topologies — do not throw; they return a
/// report with `completed == false` and a human-readable `failure`.
[[nodiscard]] ExecutionReport execute(const dag::TaskGraph& graph,
                                      const net::Topology& topology,
                                      const sched::Schedule& schedule,
                                      const ExecutionOptions& options = {});

}  // namespace edgesched::exec
