// Fault injection plans for the discrete-event executor.
//
// A `FaultPlan` is a time-ordered script of resource failures the
// executor injects while replaying a schedule: processors crash (killing
// the task they were running) and links sever (killing the transfer in
// flight). A fault is either *transient* — the resource heals after
// `repair` time units — or *permanent*. Plans come from two sources:
// an explicit script (tests, what-if studies) or seeded hazard-rate
// sampling over a topology (Poisson arrivals per resource), so a single
// 64-bit seed reproduces an entire failure trace.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/topology.hpp"

namespace edgesched::exec {

enum class FaultKind { kProcessor, kLink };

/// One scripted resource failure.
struct FaultEvent {
  double time = 0.0;  ///< virtual time of the failure
  FaultKind kind = FaultKind::kProcessor;
  /// NodeId value of a processor (kProcessor) or LinkId value (kLink),
  /// always in the *original* topology's id space.
  std::uint32_t target = 0;
  bool permanent = false;
  /// Downtime of a transient fault; ignored when permanent.
  double repair = 0.0;
};

/// Seeded hazard-rate fault generation: independent Poisson failure
/// arrivals per processor and per link over [0, horizon).
struct HazardConfig {
  double processor_rate = 0.0;  ///< failures per unit time per processor
  double link_rate = 0.0;       ///< failures per unit time per link
  double horizon = 0.0;
  /// Probability a sampled fault is permanent (others are transient).
  double permanent_fraction = 0.0;
  /// Mean exponential repair time of transient faults.
  double mean_repair = 1.0;
  std::uint64_t seed = 1;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Explicit script; events may be given in any order.
  [[nodiscard]] static FaultPlan scripted(std::vector<FaultEvent> events);

  /// Samples a plan from per-resource hazard rates (deterministic in the
  /// config seed; resources are visited in id order).
  [[nodiscard]] static FaultPlan sampled(const net::Topology& topology,
                                         const HazardConfig& config);

  /// Appends one event (any order; `events()` sorts).
  void add(const FaultEvent& event);

  /// Convenience script builders.
  void fail_processor(double time, net::NodeId processor,
                      bool permanent = true, double repair = 0.0);
  void fail_link(double time, net::LinkId link, bool permanent = true,
                 double repair = 0.0);

  /// All events sorted by (time, kind, target) — the executor's stable
  /// injection order.
  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  /// Checks every target against `topology` (processor targets must name
  /// processors, link targets existing links). Throws
  /// std::invalid_argument on the first violation.
  void validate(const net::Topology& topology) const;

  /// Structural hash for execution-request content addressing.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

 private:
  void sort_events();

  std::vector<FaultEvent> events_;  ///< kept sorted
};

}  // namespace edgesched::exec
