#include "exec/executor.hpp"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <memory>
#include <optional>
#include <queue>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dag/transforms.hpp"
#include "exec/recovery.hpp"
#include "obs/counters.hpp"
#include "obs/decision_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/run_context.hpp"
#include "obs/trace.hpp"
#include "sched/platform.hpp"
#include "sched/registry.hpp"
#include "sched/scheduler.hpp"
#include "sched/validator.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace edgesched::exec {

std::string_view to_string(RecoveryPolicy policy) noexcept {
  switch (policy) {
    case RecoveryPolicy::kFailStop:
      return "fail-stop";
    case RecoveryPolicy::kRetry:
      return "retry";
    case RecoveryPolicy::kReschedule:
      return "reschedule";
  }
  return "?";
}

std::string_view to_string(DispatchMode mode) noexcept {
  return mode == DispatchMode::kTimetable ? "timetable" : "event-driven";
}

RecoveryPolicy parse_recovery_policy(std::string_view name) {
  if (name == "fail-stop" || name == "failstop") {
    return RecoveryPolicy::kFailStop;
  }
  if (name == "retry") {
    return RecoveryPolicy::kRetry;
  }
  if (name == "reschedule") {
    return RecoveryPolicy::kReschedule;
  }
  throw std::invalid_argument(
      "unknown recovery policy '" + std::string(name) +
      "' (accepted: fail-stop, retry, reschedule)");
}

DispatchMode parse_dispatch_mode(std::string_view name) {
  if (name == "timetable") {
    return DispatchMode::kTimetable;
  }
  if (name == "event-driven" || name == "eventdriven") {
    return DispatchMode::kEventDriven;
  }
  throw std::invalid_argument("unknown dispatch mode '" + std::string(name) +
                              "' (accepted: timetable, event-driven)");
}

std::uint64_t ExecutionOptions::fingerprint() const noexcept {
  Fingerprint fp;
  fp.mix(model.fingerprint());
  fp.mix(faults.fingerprint());
  fp.mix(static_cast<std::uint64_t>(policy));
  fp.mix(static_cast<std::uint64_t>(dispatch));
  fp.mix(std::string_view(recovery_algorithm));
  fp.mix(static_cast<std::uint64_t>(max_retries));
  fp.mix(retry_backoff);
  fp.mix(static_cast<std::uint64_t>(max_reschedules));
  fp.mix(reschedule_delay);
  fp.mix(static_cast<std::uint64_t>(validate_recovery));
  return fp.value();
}

namespace {

constexpr std::uint32_t kNone32 = std::numeric_limits<std::uint32_t>::max();

// ---------------------------------------------------------------------------
// Event queue: (time, kind rank, push sequence) min-heap. The rank order at
// one timestamp is load-bearing: heals first (a resource repaired at t can
// serve work dispatched at t), then completions (work finishing exactly when
// a fault strikes has completed), then timetable releases, then faults.
// ---------------------------------------------------------------------------

enum class EventKind : std::uint8_t {
  kHealProcessor,
  kHealLink,
  kTaskFinish,
  kTransferFinish,
  kRelease,
  kFault,
};

int event_rank(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kHealProcessor:
    case EventKind::kHealLink:
      return 0;
    case EventKind::kTaskFinish:
    case EventKind::kTransferFinish:
      return 1;
    case EventKind::kRelease:
      return 2;
    case EventKind::kFault:
      return 3;
  }
  return 4;
}

struct Event {
  double time = 0.0;
  int rank = 0;
  std::uint64_t seq = 0;
  EventKind kind = EventKind::kRelease;
  std::uint32_t index = 0;
  std::uint32_t gen = 0;  ///< invalidates finish events of killed attempts
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) {
      return a.time > b.time;
    }
    if (a.rank != b.rank) {
      return a.rank > b.rank;
    }
    return a.seq > b.seq;
  }
};

enum class OpState : std::uint8_t { kPending, kRunning, kDone };

struct TaskOp {
  std::uint32_t proc = 0;  ///< round-local node index
  std::uint32_t orig = 0;  ///< original task id
  double anchor_start = 0.0;
  double anchor_finish = 0.0;
  std::uint32_t arrivals_pending = 0;
  OpState state = OpState::kPending;
  double start = 0.0;
  double finish = 0.0;
  double retry_not_before = 0.0;
  std::uint32_t kills = 0;
  std::uint32_t gen = 0;
  bool stub = false;
};

struct TransferOp {
  std::uint32_t edge = 0;       ///< round-local edge id
  std::uint32_t orig_edge = 0;  ///< original edge id (sampler stream key)
  std::uint32_t chain_prev = kNone32;
  std::uint32_t link = kNone32;    ///< round-local link index
  std::uint32_t domain = kNone32;  ///< set only when serialized
  double anchor_start = 0.0;
  double anchor_finish = 0.0;
  bool serialized = false;  ///< exclusive slot: one at a time per domain
  bool fluid = false;       ///< cut-through: starts once upstream starts
  bool last_hop = false;    ///< completion contributes to the edge arrival
  OpState state = OpState::kPending;
  double start = 0.0;
  double finish = 0.0;
  double retry_not_before = 0.0;
  std::uint32_t attempts = 0;  ///< factor stream index (counts starts)
  std::uint32_t kills = 0;
  std::uint32_t gen = 0;
};

struct ProcState {
  std::vector<std::uint32_t> queue;  ///< task ops in planned start order
  std::size_t next = 0;              ///< first not-yet-finished queue slot
  std::uint32_t running = kNone32;
  bool up = true;
  bool dead = false;
  double down_until = 0.0;
};

struct LinkState {
  bool up = true;
  bool dead = false;
  double down_until = 0.0;
};

struct DomainState {
  std::vector<std::uint32_t> queue;  ///< serialized ops in planned order
  std::size_t next = 0;
  std::uint32_t running = kNone32;
};

/// One master fault localized into the current round's id spaces.
struct RoundFault {
  std::size_t master = 0;  ///< index into the master fault list
  FaultEvent event;        ///< original-id-space event
  std::uint32_t local_target = 0;
};

enum class RoundOutcome { kCompleted, kAborted, kReschedule };

struct RoundResult {
  RoundOutcome outcome = RoundOutcome::kCompleted;
  std::string failure;
  double time = 0.0;
  FaultEvent fault;  ///< trigger, original ids (valid when faulted)
  bool faulted = false;
};

/// Inputs of one execution round: the plan to replay plus maps between the
/// round's id spaces and the original instance's.
struct RoundContext {
  const dag::TaskGraph* graph = nullptr;
  const net::Topology* topology = nullptr;
  const sched::Schedule* schedule = nullptr;
  double t0 = 0.0;
  std::vector<std::uint32_t> task_orig;  ///< round task -> original task
  std::vector<std::uint32_t> edge_orig;  ///< round edge -> original edge
  std::vector<std::uint32_t> node_orig;  ///< round node -> original node
  std::vector<std::uint32_t> link_orig;  ///< round link -> original link
  std::vector<net::NodeId> orig_node_local;  ///< original node -> round node
  std::vector<net::LinkId> orig_link_local;  ///< original link -> round link
  std::vector<bool> stub;                    ///< round task -> is stub
};

/// Execution state that survives rescheduling rounds (original id spaces).
struct GlobalState {
  std::vector<bool> consumed;   ///< master faults already injected
  std::vector<bool> dead_proc;  ///< per original node
  std::vector<bool> dead_link;  ///< per original link
  std::vector<char> finished;   ///< per original task
  std::vector<std::uint32_t> attempts;  ///< starts per original task
  std::vector<double> proc_down_until;  ///< transient downtime carryover
  std::vector<double> link_down_until;
};

void log_recovery(const ExecutionOptions& options, const char* action,
                  const FaultEvent* fault, double time,
                  const std::string& algorithm, std::uint32_t remaining,
                  double replan_makespan) {
  // The flight recorder sees every recovery choice whether or not a
  // decision log is installed — that is its whole point.
  obs::flight_recorder().record(
      std::string_view(action) == "abort" ? obs::FlightEventKind::kAbort
                                          : obs::FlightEventKind::kRecovery,
      action, time, remaining, replan_makespan);
  obs::DecisionLog* log = obs::active_decision_log();
  if (log == nullptr) {
    return;
  }
  obs::RecoveryDecision decision;
  decision.policy = std::string(to_string(options.policy));
  decision.action = action;
  if (fault != nullptr) {
    decision.fault_kind =
        fault->kind == FaultKind::kProcessor ? "processor" : "link";
    decision.fault_target = fault->target;
    decision.permanent = fault->permanent;
  }
  decision.time = time;
  decision.algorithm = algorithm;
  decision.tasks_remaining = remaining;
  decision.replan_makespan = replan_makespan;
  log->record(std::move(decision));
}

// ---------------------------------------------------------------------------
// One round: replays one schedule until completion, abort, or a permanent
// fault that demands a replan.
// ---------------------------------------------------------------------------

class Round {
 public:
  Round(const RoundContext& ctx, const ExecutionOptions& options,
        const RuntimeSampler& sampler, const std::vector<FaultEvent>& master,
        GlobalState& gs, ExecutionReport& report)
      : ctx_(ctx),
        options_(options),
        sampler_(sampler),
        gs_(gs),
        report_(report),
        graph_(*ctx.graph),
        topology_(*ctx.topology),
        schedule_(*ctx.schedule),
        timetable_(options.dispatch == DispatchMode::kTimetable) {
    build_tasks();
    build_transfers();
    localize_faults(master);
  }

  RoundResult run();

 private:
  // -- construction ---------------------------------------------------------

  void build_tasks() {
    const std::size_t num_tasks = graph_.num_tasks();
    tasks_.resize(num_tasks);
    procs_.resize(topology_.num_nodes());
    links_.resize(topology_.num_links());
    for (std::size_t i = 0; i < num_tasks; ++i) {
      const sched::TaskPlacement& placement =
          schedule_.task(dag::TaskId(static_cast<std::uint32_t>(i)));
      throw_if(!placement.placed(), "execute: schedule leaves a task unplaced");
      TaskOp& tk = tasks_[i];
      tk.proc = placement.processor.value();
      tk.orig = ctx_.task_orig[i];
      tk.anchor_start = ctx_.t0 + placement.start;
      tk.anchor_finish = ctx_.t0 + placement.finish;
      tk.arrivals_pending = static_cast<std::uint32_t>(
          graph_.in_edges(dag::TaskId(static_cast<std::uint32_t>(i))).size());
      tk.stub = !ctx_.stub.empty() && ctx_.stub[i];
      procs_[tk.proc].queue.push_back(static_cast<std::uint32_t>(i));
    }
    for (ProcState& p : procs_) {
      std::sort(p.queue.begin(), p.queue.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  if (tasks_[a].anchor_start != tasks_[b].anchor_start) {
                    return tasks_[a].anchor_start < tasks_[b].anchor_start;
                  }
                  return a < b;
                });
    }
  }

  void add_transfer(TransferOp op) {
    if (op.serialized) {
      op.domain = topology_.domain(net::LinkId(op.link)).value();
    } else {
      free_ops_.push_back(static_cast<std::uint32_t>(transfers_.size()));
    }
    transfers_.push_back(op);
  }

  void build_transfers() {
    const std::size_t num_edges = graph_.num_edges();
    edge_last_remaining_.assign(num_edges, 0);
    for (std::size_t e = 0; e < num_edges; ++e) {
      const dag::EdgeId edge_id(static_cast<std::uint32_t>(e));
      const sched::EdgeCommunication& comm = schedule_.communication(edge_id);
      const dag::Edge& edge = graph_.edge(edge_id);
      const double src_pf = ctx_.t0 + schedule_.task(edge.src).finish;
      using Kind = sched::EdgeCommunication::Kind;
      switch (comm.kind) {
        case Kind::kLocal:
          break;  // arrival completes when the source finishes
        case Kind::kContentionFree: {
          TransferOp op;
          op.edge = static_cast<std::uint32_t>(e);
          op.orig_edge = ctx_.edge_orig[e];
          op.anchor_start = src_pf;
          op.anchor_finish = ctx_.t0 + comm.arrival;
          op.last_hop = true;
          add_transfer(op);
          edge_last_remaining_[e] = 1;
          break;
        }
        case Kind::kExclusive: {
          if (comm.occupations.empty()) {
            break;
          }
          std::uint32_t prev = kNone32;
          for (std::size_t h = 0; h < comm.occupations.size(); ++h) {
            const sched::LinkOccupation& occ = comm.occupations[h];
            TransferOp op;
            op.edge = static_cast<std::uint32_t>(e);
            op.orig_edge = ctx_.edge_orig[e];
            op.chain_prev = prev;
            op.link = occ.link.value();
            op.serialized = true;
            // Cut-through forwarding (network_state.cpp): a downstream
            // slot starts once the upstream slot started, not finished.
            op.fluid = true;
            op.anchor_start = ctx_.t0 + occ.start;
            op.anchor_finish = ctx_.t0 + occ.finish;
            op.last_hop = h + 1 == comm.occupations.size();
            prev = static_cast<std::uint32_t>(transfers_.size());
            add_transfer(op);
          }
          edge_last_remaining_[e] = 1;
          break;
        }
        case Kind::kPacketized: {
          if (comm.occupations.empty()) {
            break;
          }
          const std::size_t hops = comm.route.size();
          throw_if(hops == 0 ||
                       comm.occupations.size() != comm.packet_count * hops,
                   "execute: malformed packetized communication");
          for (std::size_t p = 0; p < comm.packet_count; ++p) {
            std::uint32_t prev = kNone32;
            for (std::size_t h = 0; h < hops; ++h) {
              const sched::LinkOccupation& occ = comm.occupations[p * hops + h];
              TransferOp op;
              op.edge = static_cast<std::uint32_t>(e);
              op.orig_edge = ctx_.edge_orig[e];
              op.chain_prev = prev;
              op.link = occ.link.value();
              op.serialized = true;
              op.anchor_start = ctx_.t0 + occ.start;
              op.anchor_finish = ctx_.t0 + occ.finish;
              op.last_hop = h + 1 == hops;
              prev = static_cast<std::uint32_t>(transfers_.size());
              add_transfer(op);
            }
          }
          edge_last_remaining_[e] =
              static_cast<std::uint32_t>(comm.packet_count);
          break;
        }
        case Kind::kBandwidth: {
          if (comm.profiles.empty()) {
            break;
          }
          throw_if(comm.profiles.size() != comm.route.size(),
                   "execute: malformed bandwidth communication");
          std::uint32_t prev = kNone32;
          for (std::size_t h = 0; h < comm.profiles.size(); ++h) {
            const timeline::RateProfile& profile = comm.profiles[h];
            TransferOp op;
            op.edge = static_cast<std::uint32_t>(e);
            op.orig_edge = ctx_.edge_orig[e];
            op.chain_prev = prev;
            op.link = comm.route[h].value();
            op.fluid = true;
            op.anchor_start = ctx_.t0 + profile.start_time();
            op.anchor_finish = ctx_.t0 + profile.finish_time();
            op.last_hop = h + 1 == comm.profiles.size();
            prev = static_cast<std::uint32_t>(transfers_.size());
            add_transfer(op);
          }
          edge_last_remaining_[e] = 1;
          break;
        }
      }
    }
    // Serialized ops queue per contention domain in planned slot order.
    domains_.resize(topology_.num_domains());
    for (std::size_t i = 0; i < transfers_.size(); ++i) {
      const TransferOp& op = transfers_[i];
      if (op.serialized) {
        domains_[op.domain].queue.push_back(static_cast<std::uint32_t>(i));
      }
    }
    for (DomainState& d : domains_) {
      std::sort(d.queue.begin(), d.queue.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  const TransferOp& ta = transfers_[a];
                  const TransferOp& tb = transfers_[b];
                  if (ta.anchor_start != tb.anchor_start) {
                    return ta.anchor_start < tb.anchor_start;
                  }
                  if (ta.anchor_finish != tb.anchor_finish) {
                    return ta.anchor_finish < tb.anchor_finish;
                  }
                  if (ta.edge != tb.edge) {
                    return ta.edge < tb.edge;
                  }
                  return a < b;
                });
    }
  }

  void localize_faults(const std::vector<FaultEvent>& master) {
    for (std::size_t m = 0; m < master.size(); ++m) {
      if (gs_.consumed[m]) {
        continue;
      }
      const FaultEvent& fe = master[m];
      RoundFault rf;
      rf.master = m;
      rf.event = fe;
      if (fe.kind == FaultKind::kProcessor) {
        const net::NodeId local = ctx_.orig_node_local[fe.target];
        if (!local.valid()) {
          gs_.consumed[m] = true;  // resource no longer exists
          continue;
        }
        rf.local_target = local.value();
      } else {
        const net::LinkId local = ctx_.orig_link_local[fe.target];
        if (!local.valid()) {
          gs_.consumed[m] = true;
          continue;
        }
        rf.local_target = local.value();
      }
      faults_.push_back(rf);
    }
  }

  // -- event plumbing -------------------------------------------------------

  void push_event(double time, EventKind kind, std::uint32_t index,
                  std::uint32_t gen) {
    events_.push(Event{time, event_rank(kind), seq_++, kind, index, gen});
  }

  // -- dispatch -------------------------------------------------------------

  [[nodiscard]] std::uint32_t edge_src_task(std::uint32_t edge) const {
    return graph_.edge(dag::EdgeId(edge)).src.value();
  }

  [[nodiscard]] bool transfer_ready(const TransferOp& op, double now) const {
    if (op.state != OpState::kPending || now < op.retry_not_before) {
      return false;
    }
    if (timetable_ && now < op.anchor_start) {
      return false;
    }
    if (op.link != kNone32 && !links_[op.link].up) {
      return false;
    }
    if (op.chain_prev == kNone32) {
      return tasks_[edge_src_task(op.edge)].state == OpState::kDone;
    }
    const TransferOp& prev = transfers_[op.chain_prev];
    // Cut-through hops (exclusive, bandwidth) forward as soon as the
    // upstream hop flows; packetized hops store-and-forward behind the
    // fully crossed previous hop.
    return op.fluid ? prev.state != OpState::kPending
                    : prev.state == OpState::kDone;
  }

  void start_task(std::uint32_t ti, double now) {
    TaskOp& tk = tasks_[ti];
    const std::uint32_t attempt = gs_.attempts[tk.orig]++;
    const double factor = sampler_.task_factor(tk.orig, attempt);
    const double duration = tk.anchor_finish - tk.anchor_start;
    tk.start = now;
    // Exact-finish shortcut: an on-time nominal start reproduces the
    // predicted finish bit-for-bit (start + (finish - start) would not).
    tk.finish = (now == tk.anchor_start && factor == 1.0)
                    ? tk.anchor_finish
                    : now + duration * factor;
    tk.state = OpState::kRunning;
    procs_[tk.proc].running = ti;
    push_event(tk.finish, EventKind::kTaskFinish, ti, tk.gen);
  }

  void start_transfer(std::uint32_t oi, double now) {
    TransferOp& op = transfers_[oi];
    const double factor = sampler_.bandwidth_factor(op.orig_edge, op.attempts);
    ++op.attempts;
    const double duration = op.anchor_finish - op.anchor_start;
    double finish = (now == op.anchor_start && factor == 1.0)
                        ? op.anchor_finish
                        : now + duration * factor;
    if (op.fluid && op.chain_prev != kNone32) {
      // A hop cannot finish before the upstream hop finishes delivering.
      finish = std::max(finish, transfers_[op.chain_prev].finish);
    }
    op.state = OpState::kRunning;
    op.start = now;
    op.finish = finish;
    if (op.serialized) {
      domains_[op.domain].running = oi;
    }
    push_event(finish, EventKind::kTransferFinish, oi, op.gen);
  }

  void dispatch(double now) {
    bool progress = true;
    while (progress) {
      progress = false;
      for (ProcState& p : procs_) {
        if (!p.up || p.running != kNone32 || p.next >= p.queue.size()) {
          continue;
        }
        const std::uint32_t ti = p.queue[p.next];
        TaskOp& tk = tasks_[ti];
        if (tk.state != OpState::kPending || tk.arrivals_pending > 0 ||
            now < tk.retry_not_before ||
            (timetable_ && now < tk.anchor_start)) {
          continue;
        }
        start_task(ti, now);
        progress = true;
      }
      for (DomainState& d : domains_) {
        if (d.running != kNone32 || d.next >= d.queue.size()) {
          continue;
        }
        const std::uint32_t oi = d.queue[d.next];
        if (!transfer_ready(transfers_[oi], now)) {
          continue;
        }
        start_transfer(oi, now);
        progress = true;
      }
      for (const std::uint32_t oi : free_ops_) {
        if (!transfer_ready(transfers_[oi], now)) {
          continue;
        }
        start_transfer(oi, now);
        progress = true;
      }
    }
  }

  // -- completion -----------------------------------------------------------

  void complete_arrival(std::uint32_t edge) {
    TaskOp& dst = tasks_[graph_.edge(dag::EdgeId(edge)).dst.value()];
    EDGESCHED_ASSERT(dst.arrivals_pending > 0);
    --dst.arrivals_pending;
  }

  void on_task_finish(const Event& ev) {
    TaskOp& tk = tasks_[ev.index];
    if (tk.gen != ev.gen || tk.state != OpState::kRunning) {
      return;  // stale finish of a killed attempt
    }
    tk.state = OpState::kDone;
    ++finished_count_;
    ProcState& p = procs_[tk.proc];
    p.running = kNone32;
    ++p.next;
    if (!tk.stub) {
      gs_.finished[tk.orig] = 1;
      TaskRecord& rec = report_.tasks[tk.orig];
      rec.start = tk.start;
      rec.finish = tk.finish;
      rec.processor = ctx_.node_orig[tk.proc];
      rec.attempts = gs_.attempts[tk.orig];
    }
    for (const dag::EdgeId oe : graph_.out_edges(dag::TaskId(ev.index))) {
      if (edge_last_remaining_[oe.index()] == 0) {
        complete_arrival(oe.value());  // local edge: data is already there
      }
    }
  }

  void on_transfer_finish(const Event& ev) {
    TransferOp& op = transfers_[ev.index];
    if (op.gen != ev.gen || op.state != OpState::kRunning) {
      return;
    }
    op.state = OpState::kDone;
    if (op.serialized) {
      DomainState& d = domains_[op.domain];
      d.running = kNone32;
      ++d.next;
    }
    if (op.last_hop && --edge_last_remaining_[op.edge] == 0) {
      complete_arrival(op.edge);
    }
  }

  // -- faults ---------------------------------------------------------------

  void kill_task(std::uint32_t ti, double now) {
    TaskOp& tk = tasks_[ti];
    report_.work_lost += now - tk.start;
    tk.state = OpState::kPending;
    ++tk.gen;
    ++tk.kills;
  }

  void kill_transfer(std::uint32_t oi) {
    TransferOp& op = transfers_[oi];
    op.state = OpState::kPending;
    ++op.gen;
    ++op.kills;
    if (op.serialized) {
      domains_[op.domain].running = kNone32;
    }
  }

  [[nodiscard]] bool processor_needed(std::uint32_t np) const {
    const ProcState& p = procs_[np];
    if (p.next < p.queue.size()) {
      return true;  // planned work still pending here
    }
    for (const std::uint32_t ti : p.queue) {
      for (const dag::EdgeId oe : graph_.out_edges(dag::TaskId(ti))) {
        if (edge_last_remaining_[oe.index()] > 0) {
          return true;  // stored output still being shipped
        }
      }
    }
    return false;
  }

  [[nodiscard]] bool link_needed(std::uint32_t l) const {
    for (const TransferOp& op : transfers_) {
      if (op.link == l && op.state != OpState::kDone) {
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::uint32_t remaining_tasks() const {
    std::uint32_t remaining = 0;
    for (const TaskOp& tk : tasks_) {
      if (tk.state != OpState::kDone && !tk.stub) {
        ++remaining;
      }
    }
    return remaining;
  }

  [[nodiscard]] std::uint32_t surviving_processors() const {
    std::uint32_t up = 0;
    for (const net::NodeId p : topology_.processors()) {
      if (!procs_[p.value()].dead) {
        ++up;
      }
    }
    return up;
  }

  RoundResult abort_round(double now, const FaultEvent* fault,
                          std::string message) {
    RoundResult rr;
    rr.outcome = RoundOutcome::kAborted;
    rr.failure = std::move(message);
    rr.time = now;
    if (fault != nullptr) {
      rr.fault = *fault;
      rr.faulted = true;
    }
    report_.recoveries.push_back(RecoveryRecord{
        now, "abort", "", remaining_tasks(), surviving_processors(), 0.0});
    log_recovery(options_, "abort", fault, now, "", remaining_tasks(), 0.0);
    return rr;
  }

  std::optional<RoundResult> handle_fault(const RoundFault& rf, double now) {
    gs_.consumed[rf.master] = true;
    const FaultEvent& fe = rf.event;
    std::vector<std::uint32_t> killed_tasks;
    std::vector<std::uint32_t> killed_transfers;
    double heal_at = now;
    if (fe.kind == FaultKind::kProcessor) {
      ProcState& p = procs_[rf.local_target];
      if (p.dead) {
        return std::nullopt;  // double fault on a dead resource: no-op
      }
      if (p.running != kNone32) {
        killed_tasks.push_back(p.running);
        kill_task(p.running, now);
        p.running = kNone32;
      }
      if (fe.permanent) {
        p.dead = true;
        p.up = false;
        gs_.dead_proc[fe.target] = true;
      } else {
        p.up = false;
        const double until = now + fe.repair;
        if (until > p.down_until) {
          p.down_until = until;
          push_event(until, EventKind::kHealProcessor, rf.local_target, 0);
        }
        gs_.proc_down_until[fe.target] =
            std::max(gs_.proc_down_until[fe.target], p.down_until);
        heal_at = p.down_until;
      }
    } else {
      LinkState& ls = links_[rf.local_target];
      if (ls.dead) {
        return std::nullopt;
      }
      for (std::size_t i = 0; i < transfers_.size(); ++i) {
        if (transfers_[i].link == rf.local_target &&
            transfers_[i].state == OpState::kRunning) {
          killed_transfers.push_back(static_cast<std::uint32_t>(i));
          kill_transfer(static_cast<std::uint32_t>(i));
        }
      }
      // Cut-through cascade: a downstream hop forwarding the killed flow
      // carries incomplete data — reset it to re-run with its upstream
      // (no kill charge; its own link is healthy).
      bool cascaded = true;
      while (cascaded) {
        cascaded = false;
        for (TransferOp& op : transfers_) {
          if (op.state == OpState::kRunning && op.chain_prev != kNone32 &&
              transfers_[op.chain_prev].state == OpState::kPending) {
            op.state = OpState::kPending;
            ++op.gen;
            if (op.serialized) {
              domains_[op.domain].running = kNone32;
            }
            cascaded = true;
          }
        }
      }
      if (fe.permanent) {
        ls.dead = true;
        ls.up = false;
        gs_.dead_link[fe.target] = true;
      } else {
        ls.up = false;
        const double until = now + fe.repair;
        if (until > ls.down_until) {
          ls.down_until = until;
          push_event(until, EventKind::kHealLink, rf.local_target, 0);
        }
        gs_.link_down_until[fe.target] =
            std::max(gs_.link_down_until[fe.target], ls.down_until);
        heal_at = ls.down_until;
      }
    }
    const std::uint32_t killed = static_cast<std::uint32_t>(
        killed_tasks.size() + killed_transfers.size());
    ++report_.faults_injected;
    report_.faults.push_back(FaultRecord{
        now, fe.kind == FaultKind::kProcessor ? "processor" : "link",
        fe.target, fe.permanent, fe.permanent ? 0.0 : fe.repair, killed});
    obs::flight_recorder().record(
        obs::FlightEventKind::kFault,
        fe.kind == FaultKind::kProcessor ? "exec/fault_processor"
                                         : "exec/fault_link",
        now, fe.target, static_cast<double>(killed));

    if (options_.policy == RecoveryPolicy::kFailStop) {
      if (fe.permanent || killed > 0) {
        std::ostringstream os;
        os << "fail-stop: "
           << (fe.kind == FaultKind::kProcessor ? "processor " : "link ")
           << fe.target << (fe.permanent ? " failed permanently" : " fault")
           << " at t=" << now;
        return abort_round(now, &fe, os.str());
      }
      ++report_.faults_survived;
      return std::nullopt;
    }

    if (!fe.permanent) {
      // Retry killed work in place once the resource heals.
      for (const std::uint32_t ti : killed_tasks) {
        TaskOp& tk = tasks_[ti];
        if (tk.kills > options_.max_retries) {
          std::ostringstream os;
          os << "retry limit exceeded: task " << tk.orig << " killed "
             << tk.kills << " times";
          return abort_round(now, &fe, os.str());
        }
        tk.retry_not_before = heal_at + options_.retry_backoff * tk.kills;
        push_event(tk.retry_not_before, EventKind::kRelease, 0, 0);
        ++report_.retries;
      }
      for (const std::uint32_t oi : killed_transfers) {
        TransferOp& op = transfers_[oi];
        if (op.kills > options_.max_retries) {
          std::ostringstream os;
          os << "retry limit exceeded: edge " << op.orig_edge << " killed "
             << op.kills << " times";
          return abort_round(now, &fe, os.str());
        }
        op.retry_not_before = heal_at + options_.retry_backoff * op.kills;
        push_event(op.retry_not_before, EventKind::kRelease, 0, 0);
        ++report_.retries;
      }
      if (killed > 0) {
        log_recovery(options_, "retry", &fe, now, "", remaining_tasks(), 0.0);
      }
      ++report_.faults_survived;
      return std::nullopt;
    }

    // Permanent fault under retry/reschedule.
    const bool needed = fe.kind == FaultKind::kProcessor
                            ? processor_needed(rf.local_target)
                            : link_needed(rf.local_target);
    if (!needed) {
      ++report_.faults_survived;
      return std::nullopt;
    }
    if (options_.policy == RecoveryPolicy::kRetry) {
      std::ostringstream os;
      os << "permanent "
         << (fe.kind == FaultKind::kProcessor ? "processor " : "link ")
         << fe.target << " failure strands pending work under retry policy";
      return abort_round(now, &fe, os.str());
    }
    RoundResult rr;
    rr.outcome = RoundOutcome::kReschedule;
    rr.time = now;
    rr.fault = fe;
    rr.faulted = true;
    return rr;
  }

  // -- round state ----------------------------------------------------------

  const RoundContext& ctx_;
  const ExecutionOptions& options_;
  const RuntimeSampler& sampler_;
  GlobalState& gs_;
  ExecutionReport& report_;
  const dag::TaskGraph& graph_;
  const net::Topology& topology_;
  const sched::Schedule& schedule_;
  const bool timetable_;

  std::vector<TaskOp> tasks_;
  std::vector<TransferOp> transfers_;
  std::vector<std::uint32_t> free_ops_;  ///< non-serialized transfer ops
  std::vector<ProcState> procs_;
  std::vector<LinkState> links_;
  std::vector<DomainState> domains_;
  std::vector<std::uint32_t> edge_last_remaining_;
  std::vector<RoundFault> faults_;

  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::uint64_t seq_ = 0;
  std::size_t finished_count_ = 0;
};

RoundResult Round::run() {
  push_event(ctx_.t0, EventKind::kRelease, 0, 0);
  if (timetable_) {
    for (const TaskOp& tk : tasks_) {
      push_event(tk.anchor_start, EventKind::kRelease, 0, 0);
    }
    for (const TransferOp& op : transfers_) {
      push_event(op.anchor_start, EventKind::kRelease, 0, 0);
    }
  }
  // Transient downtime carried across a replan boundary.
  for (std::size_t np = 0; np < procs_.size(); ++np) {
    const double until = gs_.proc_down_until[ctx_.node_orig[np]];
    if (until > ctx_.t0) {
      procs_[np].up = false;
      procs_[np].down_until = until;
      push_event(until, EventKind::kHealProcessor,
                 static_cast<std::uint32_t>(np), 0);
    }
  }
  for (std::size_t l = 0; l < links_.size(); ++l) {
    const double until = gs_.link_down_until[ctx_.link_orig[l]];
    if (until > ctx_.t0) {
      links_[l].up = false;
      links_[l].down_until = until;
      push_event(until, EventKind::kHealLink, static_cast<std::uint32_t>(l),
                 0);
    }
  }
  for (std::size_t f = 0; f < faults_.size(); ++f) {
    push_event(faults_[f].event.time, EventKind::kFault,
               static_cast<std::uint32_t>(f), 0);
  }

  double last_time = ctx_.t0;
  while (!events_.empty() && finished_count_ < tasks_.size()) {
    const double now = events_.top().time;
    last_time = now;
    obs::Span epoch("exec/epoch", "exec");
    while (!events_.empty() && events_.top().time == now) {
      const Event ev = events_.top();
      events_.pop();
      ++report_.events;
      switch (ev.kind) {
        case EventKind::kHealProcessor: {
          ProcState& p = procs_[ev.index];
          if (!p.dead && p.down_until <= now) {
            p.up = true;
          }
          break;
        }
        case EventKind::kHealLink: {
          LinkState& ls = links_[ev.index];
          if (!ls.dead && ls.down_until <= now) {
            ls.up = true;
          }
          break;
        }
        case EventKind::kTaskFinish:
          on_task_finish(ev);
          break;
        case EventKind::kTransferFinish:
          on_transfer_finish(ev);
          break;
        case EventKind::kRelease:
          break;  // dispatch below picks up anchored/retried work
        case EventKind::kFault: {
          std::optional<RoundResult> result = handle_fault(faults_[ev.index], now);
          if (result.has_value()) {
            return *result;
          }
          break;
        }
      }
    }
    dispatch(now);
  }
  if (finished_count_ == tasks_.size()) {
    RoundResult rr;
    rr.outcome = RoundOutcome::kCompleted;
    rr.time = last_time;
    return rr;
  }
  std::ostringstream os;
  os << "executor stalled: " << remaining_tasks()
     << " tasks unfinished with no pending events";
  return abort_round(last_time, nullptr, os.str());
}

/// Storage of one replanning round; heap-allocated so the RoundContext's
/// pointers into it stay stable.
struct Replan {
  dag::Subgraph sub;
  SurvivingTopology surv;
  /// Platform snapshot derived from the surviving topology; later rounds
  /// against the same fabric (and the validator-facing replan itself)
  /// reuse its route table instead of re-deriving per call.
  std::unique_ptr<sched::PlatformContext> platform;
  std::unique_ptr<sched::Schedule> plan;
  RoundContext ctx;
};

}  // namespace

ExecutionReport execute(const dag::TaskGraph& graph,
                        const net::Topology& topology,
                        const sched::Schedule& schedule,
                        const ExecutionOptions& options) {
  // Reuse the caller's run scope (service job, CLI) so the report and every
  // event recorded below correlate. Bare calls stay at kNoRun: minting here
  // would make same-seed reports differ byte-wise, breaking determinism
  // guarantee 2 (docs/runtime.md).
  const obs::ScopedRunId run_scope(obs::current_run_id());
  obs::Span span("exec/execute", "exec");
  options.model.validate();
  options.faults.validate(topology);
  throw_if(schedule.num_tasks() != graph.num_tasks() ||
               schedule.num_edges() != graph.num_edges(),
           "execute: schedule shape does not match graph");
  if (options.policy == RecoveryPolicy::kReschedule &&
      !options.recovery_algorithm.empty()) {
    throw_if(sched::find_algorithm(options.recovery_algorithm) == nullptr,
             "execute: unknown recovery algorithm '" +
                 options.recovery_algorithm + "'");
  }

  const RuntimeSampler sampler(options.model);
  ExecutionReport report;
  report.run_id = obs::current_run_id();
  report.algorithm = schedule.algorithm();
  report.predicted_makespan = schedule.makespan();
  obs::flight_recorder().record(obs::FlightEventKind::kExecStart,
                                "exec/execute", 0.0, graph.num_tasks(),
                                schedule.makespan());
  report.tasks.resize(graph.num_tasks());
  for (std::size_t i = 0; i < graph.num_tasks(); ++i) {
    const sched::TaskPlacement& placement =
        schedule.task(dag::TaskId(static_cast<std::uint32_t>(i)));
    TaskRecord& rec = report.tasks[i];
    rec.task = static_cast<std::uint32_t>(i);
    rec.processor = placement.placed() ? placement.processor.value() : kNone32;
    rec.predicted_start = placement.start;
    rec.predicted_finish = placement.finish;
    rec.attempts = 0;
  }

  const std::vector<FaultEvent>& master = options.faults.events();
  GlobalState gs;
  gs.consumed.assign(master.size(), false);
  gs.dead_proc.assign(topology.num_nodes(), false);
  gs.dead_link.assign(topology.num_links(), false);
  gs.finished.assign(graph.num_tasks(), 0);
  gs.attempts.assign(graph.num_tasks(), 0);
  gs.proc_down_until.assign(topology.num_nodes(), 0.0);
  gs.link_down_until.assign(topology.num_links(), 0.0);

  // Round 0: identity maps over the original instance.
  RoundContext ctx0;
  ctx0.graph = &graph;
  ctx0.topology = &topology;
  ctx0.schedule = &schedule;
  ctx0.t0 = 0.0;
  ctx0.task_orig.resize(graph.num_tasks());
  for (std::size_t i = 0; i < graph.num_tasks(); ++i) {
    ctx0.task_orig[i] = static_cast<std::uint32_t>(i);
  }
  ctx0.edge_orig.resize(graph.num_edges());
  for (std::size_t e = 0; e < graph.num_edges(); ++e) {
    ctx0.edge_orig[e] = static_cast<std::uint32_t>(e);
  }
  ctx0.node_orig.resize(topology.num_nodes());
  ctx0.orig_node_local.resize(topology.num_nodes());
  for (std::size_t n = 0; n < topology.num_nodes(); ++n) {
    ctx0.node_orig[n] = static_cast<std::uint32_t>(n);
    ctx0.orig_node_local[n] = net::NodeId(static_cast<std::uint32_t>(n));
  }
  ctx0.link_orig.resize(topology.num_links());
  ctx0.orig_link_local.resize(topology.num_links());
  for (std::size_t l = 0; l < topology.num_links(); ++l) {
    ctx0.link_orig[l] = static_cast<std::uint32_t>(l);
    ctx0.orig_link_local[l] = net::LinkId(static_cast<std::uint32_t>(l));
  }

  std::vector<std::unique_ptr<Replan>> replans;
  const RoundContext* current = &ctx0;
  obs::HotCounters& hot = obs::hot_counters();

  while (true) {
    const std::uint64_t events_before = report.events;
    const std::uint32_t faults_before = report.faults_injected;
    const std::uint32_t retries_before = report.retries;
    Round round(*current, options, sampler, master, gs, report);
    const RoundResult rr = round.run();
    // Flush the round's hot counters in one batch per round.
    hot.exec_events.increment(report.events - events_before);
    hot.exec_faults.increment(report.faults_injected - faults_before);
    hot.exec_retries.increment(report.retries - retries_before);
    obs::flight_recorder().record(obs::FlightEventKind::kExecRound,
                                  "exec/round", rr.time, report.reschedules,
                                  static_cast<double>(report.events));

    if (rr.outcome == RoundOutcome::kCompleted) {
      report.completed = true;
      break;
    }
    if (rr.outcome == RoundOutcome::kAborted) {
      report.completed = false;
      report.failure = rr.failure;
      break;
    }

    // Permanent fault stranded work: replan the remaining subgraph on the
    // surviving topology.
    const FaultEvent* fault = rr.faulted ? &rr.fault : nullptr;
    if (report.reschedules >= options.max_reschedules) {
      report.completed = false;
      report.failure = "reschedule limit exceeded";
      report.recoveries.push_back(
          RecoveryRecord{rr.time, "abort", "", 0, 0, 0.0});
      log_recovery(options, "abort", fault, rr.time, "", 0, 0.0);
      break;
    }
    obs::Span replan_span("exec/replan", "exec");
    auto rp = std::make_unique<Replan>();
    rp->surv = surviving_topology(topology, gs.dead_proc, gs.dead_link);
    if (rp->surv.topology.num_processors() == 0 ||
        !rp->surv.topology.processors_connected()) {
      report.completed = false;
      report.failure =
          "unrecoverable: surviving topology has no connected processors";
      report.recoveries.push_back(RecoveryRecord{
          rr.time, "abort", "", 0,
          static_cast<std::uint32_t>(rp->surv.topology.num_processors()),
          0.0});
      log_recovery(options, "abort", fault, rr.time, "", 0, 0.0);
      break;
    }

    // What must re-run: every unfinished task plus the closure of finished
    // tasks whose outputs died with a processor.
    std::vector<bool> finished(graph.num_tasks());
    std::vector<bool> lost(graph.num_tasks(), false);
    for (std::size_t t = 0; t < graph.num_tasks(); ++t) {
      finished[t] = gs.finished[t] != 0;
      lost[t] = finished[t] && report.tasks[t].processor != kNone32 &&
                gs.dead_proc[report.tasks[t].processor];
    }
    const RemainingWork work = remaining_work(graph, finished, lost);
    for (const dag::TaskId t : work.rerun) {
      if (gs.finished[t.index()] != 0) {
        // A finished result died with its processor: bill the lost
        // computation and mark the task unfinished again.
        report.work_lost +=
            report.tasks[t.index()].finish - report.tasks[t.index()].start;
        gs.finished[t.index()] = 0;
      }
    }

    std::vector<dag::TaskId> members = work.rerun;
    members.insert(members.end(), work.stubs.begin(), work.stubs.end());
    std::sort(members.begin(), members.end());
    rp->sub = dag::induced_subgraph(graph, members);
    std::vector<bool> stub_flags(rp->sub.graph.num_tasks(), false);
    for (const dag::TaskId s : work.stubs) {
      const dag::TaskId ns = rp->sub.new_id[s.index()];
      stub_flags[ns.index()] = true;
      rp->sub.graph.set_weight(ns, 0.0);
    }
    // Maps between the sub-instance and original id spaces.
    std::vector<std::uint32_t> old_of(rp->sub.graph.num_tasks(), kNone32);
    for (std::size_t t = 0; t < graph.num_tasks(); ++t) {
      if (rp->sub.new_id[t].valid()) {
        old_of[rp->sub.new_id[t].index()] = static_cast<std::uint32_t>(t);
      }
    }
    std::unordered_map<std::uint64_t, std::uint32_t> pair_to_edge;
    pair_to_edge.reserve(graph.num_edges());
    for (std::size_t e = 0; e < graph.num_edges(); ++e) {
      const dag::Edge& edge = graph.edge(dag::EdgeId(static_cast<std::uint32_t>(e)));
      pair_to_edge.emplace(
          static_cast<std::uint64_t>(edge.src.value()) * graph.num_tasks() +
              edge.dst.value(),
          static_cast<std::uint32_t>(e));
    }
    std::vector<std::uint32_t> sub_edge_orig(rp->sub.graph.num_edges(),
                                             kNone32);
    for (std::size_t e = 0; e < rp->sub.graph.num_edges(); ++e) {
      const dag::Edge& edge =
          rp->sub.graph.edge(dag::EdgeId(static_cast<std::uint32_t>(e)));
      const auto it = pair_to_edge.find(
          static_cast<std::uint64_t>(old_of[edge.src.index()]) *
              graph.num_tasks() +
          old_of[edge.dst.index()]);
      EDGESCHED_ASSERT(it != pair_to_edge.end());
      sub_edge_orig[e] = it->second;
      if (stub_flags[edge.dst.index()]) {
        // Stubs need no inputs — they stand in for data already produced.
        rp->sub.graph.set_cost(dag::EdgeId(static_cast<std::uint32_t>(e)),
                               0.0);
      }
    }

    const std::string algorithm = options.recovery_algorithm.empty()
                                      ? schedule.algorithm()
                                      : options.recovery_algorithm;
    try {
      const std::unique_ptr<sched::Scheduler> scheduler =
          sched::make_scheduler(algorithm);
      rp->platform =
          std::make_unique<sched::PlatformContext>(rp->surv.topology);
      rp->plan = std::make_unique<sched::Schedule>(
          scheduler->schedule(rp->sub.graph, *rp->platform));
      if (options.validate_recovery) {
        sched::validate_or_throw(rp->sub.graph, rp->surv.topology, *rp->plan);
      }
    } catch (const std::exception& error) {
      report.completed = false;
      report.failure = std::string("recovery replan failed: ") + error.what();
      report.recoveries.push_back(RecoveryRecord{
          rr.time, "abort", algorithm,
          static_cast<std::uint32_t>(work.rerun.size()),
          static_cast<std::uint32_t>(rp->surv.topology.num_processors()),
          0.0});
      log_recovery(options, "abort", fault, rr.time, algorithm,
                   static_cast<std::uint32_t>(work.rerun.size()), 0.0);
      break;
    }

    ++report.reschedules;
    ++report.faults_survived;  // the stranding fault is now handled
    hot.exec_reschedules.increment();
    report.recoveries.push_back(RecoveryRecord{
        rr.time, "reschedule", rp->plan->algorithm(),
        static_cast<std::uint32_t>(work.rerun.size()),
        static_cast<std::uint32_t>(rp->surv.topology.num_processors()),
        rp->plan->makespan()});
    log_recovery(options, "reschedule", fault, rr.time, rp->plan->algorithm(),
                 static_cast<std::uint32_t>(work.rerun.size()),
                 rp->plan->makespan());

    RoundContext& ctx = rp->ctx;
    ctx.graph = &rp->sub.graph;
    ctx.topology = &rp->surv.topology;
    ctx.schedule = rp->plan.get();
    ctx.t0 = rr.time + options.reschedule_delay;
    ctx.task_orig = std::move(old_of);
    ctx.edge_orig = std::move(sub_edge_orig);
    ctx.node_orig.resize(rp->surv.topology.num_nodes());
    for (std::size_t n = 0; n < rp->surv.topology.num_nodes(); ++n) {
      ctx.node_orig[n] = rp->surv.to_old_node[n].value();
    }
    ctx.orig_node_local = rp->surv.to_new_node;
    ctx.orig_link_local = rp->surv.to_new_link;
    ctx.link_orig.resize(rp->surv.topology.num_links());
    for (std::size_t l = 0; l < topology.num_links(); ++l) {
      if (rp->surv.to_new_link[l].valid()) {
        ctx.link_orig[rp->surv.to_new_link[l].index()] =
            static_cast<std::uint32_t>(l);
      }
    }
    ctx.stub = std::move(stub_flags);

    replans.push_back(std::move(rp));
    current = &replans.back()->ctx;
  }

  report.finalise();
  obs::flight_recorder().record(obs::FlightEventKind::kExecEnd,
                                "exec/execute", report.achieved_makespan,
                                report.completed ? 1 : 0,
                                report.achieved_makespan);
  if (!report.completed) {
    // Black-box dump on any failed execution (fail-stop abort, retry or
    // reschedule exhaustion, replan/validator failure). Written only
    // when EDGESCHED_POSTMORTEM_DIR is set.
    obs::flight_recorder().maybe_write_postmortem("execution_failed");
  }
  return report;
}

}  // namespace edgesched::exec
