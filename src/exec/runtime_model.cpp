#include "exec/runtime_model.hpp"

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace edgesched::exec {

namespace {

// Hash-seeded stream: a fresh generator per (seed, tag, id, attempt) so
// factors are independent of the order the executor asks for them.
Rng stream(std::uint64_t seed, std::uint64_t tag, std::uint32_t id,
           std::uint32_t attempt) {
  Fingerprint fp;
  fp.mix(seed);
  fp.mix(tag);
  fp.mix(static_cast<std::uint64_t>(id));
  fp.mix(static_cast<std::uint64_t>(attempt));
  return Rng(fp.value());
}

}  // namespace

void RuntimeModel::validate() const {
  throw_if(duration_spread < 0.0 || duration_spread >= 1.0,
           "RuntimeModel: duration_spread must be in [0, 1)");
  throw_if(bandwidth_spread < 0.0 || bandwidth_spread >= 1.0,
           "RuntimeModel: bandwidth_spread must be in [0, 1)");
  throw_if(straggler_probability < 0.0 || straggler_probability > 1.0,
           "RuntimeModel: straggler_probability must be in [0, 1]");
  throw_if(straggler_factor < 1.0,
           "RuntimeModel: straggler_factor must be >= 1");
}

std::uint64_t RuntimeModel::fingerprint() const noexcept {
  Fingerprint fp;
  fp.mix(duration_spread);
  fp.mix(bandwidth_spread);
  fp.mix(straggler_probability);
  fp.mix(straggler_factor);
  fp.mix(seed);
  return fp.value();
}

double RuntimeSampler::task_factor(std::uint32_t task,
                                   std::uint32_t attempt) const {
  if (model_.duration_spread == 0.0 &&
      model_.straggler_probability == 0.0) {
    return 1.0;  // bitwise-nominal fast path
  }
  Rng rng = stream(model_.seed, /*tag=*/1, task, attempt);
  double factor = model_.duration_spread == 0.0
                      ? 1.0
                      : rng.uniform_real(1.0 - model_.duration_spread,
                                         1.0 + model_.duration_spread);
  if (model_.straggler_probability > 0.0 &&
      rng.bernoulli(model_.straggler_probability)) {
    factor *= model_.straggler_factor;
  }
  return factor;
}

double RuntimeSampler::bandwidth_factor(std::uint32_t edge,
                                        std::uint32_t attempt) const {
  if (model_.bandwidth_spread == 0.0) {
    return 1.0;
  }
  Rng rng = stream(model_.seed, /*tag=*/2, edge, attempt);
  return rng.uniform_real(1.0 - model_.bandwidth_spread,
                          1.0 + model_.bandwidth_spread);
}

}  // namespace edgesched::exec
