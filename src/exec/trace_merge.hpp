// Merged plan-vs-execution Perfetto timeline.
//
// `sched::write_chrome_trace` shows what the planner intended;
// `ExecutionReport` records what actually happened. This exporter lays
// both onto one Chrome trace-event file so Perfetto shows them aligned
// per resource:
//
//   pid 0 "planned"  — one track per processor, the schedule's task
//                      placements (the planner's intent),
//   pid 1 "executed" — one track per processor, the achieved task slots
//                      from the report (late/retried/migrated work is
//                      visibly shifted against pid 0),
//   pid 2 "events"   — instant events: injected faults on the track of
//                      the processor/link they hit, recovery actions
//                      (retry / reschedule / abort) on track 0.
//
// Conventions follow sched/trace_export: 1 model time unit = 1 µs of
// trace time, "X" complete events, "M" metadata naming every track.
// Every event's args carries the report's `run_id`, so the merged trace
// correlates with the decision-log JSONL, the runtime tracer export and
// the flight-recorder postmortem of the same run. Deterministic: output
// depends only on the inputs (no clocks), so same-seed runs write
// byte-identical traces.
#pragma once

#include <iosfwd>
#include <string>

#include "dag/task_graph.hpp"
#include "exec/report.hpp"
#include "net/topology.hpp"
#include "sched/schedule.hpp"

namespace edgesched::exec {

/// Writes the merged planned/executed/fault timeline of one run.
void write_merged_trace(std::ostream& os, const dag::TaskGraph& graph,
                        const net::Topology& topology,
                        const sched::Schedule& schedule,
                        const ExecutionReport& report);

/// `write_merged_trace` into a string.
[[nodiscard]] std::string to_merged_trace(const dag::TaskGraph& graph,
                                          const net::Topology& topology,
                                          const sched::Schedule& schedule,
                                          const ExecutionReport& report);

}  // namespace edgesched::exec
