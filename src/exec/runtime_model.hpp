// Stochastic runtime conditions for the discrete-event executor.
//
// A static schedule is computed from nominal task weights and link
// speeds; the executor replays it under a `RuntimeModel` that perturbs
// both. Perturbations are *multiplicative duration factors* sampled from
// seeded uniform distributions, plus an optional straggler mixture for
// tasks (a small probability of a large slowdown — the heavy tail real
// clusters exhibit).
//
// Determinism contract: every factor is a pure function of (seed, kind,
// entity id, attempt number) — sampling order never matters, so the same
// seed reproduces an execution bit-for-bit regardless of event
// interleaving, and a retried attempt draws a fresh but reproducible
// factor. A model with zero spreads and zero straggler probability
// returns exactly 1.0, the anchor of the executor's bit-exact
// zero-perturbation guarantee (docs/runtime.md).
#pragma once

#include <cstdint>

#include "util/error.hpp"

namespace edgesched::exec {

struct RuntimeModel {
  /// Each task execution is multiplied by U(1 - s, 1 + s).
  double duration_spread = 0.0;
  /// Each link transfer is multiplied by U(1 - s, 1 + s) (a bandwidth
  /// slowdown/speedup of the hop).
  double bandwidth_spread = 0.0;
  /// Probability that a task attempt additionally runs `straggler_factor`
  /// times slower (sampled after the uniform factor).
  double straggler_probability = 0.0;
  double straggler_factor = 4.0;
  std::uint64_t seed = 1;

  /// True when every factor is exactly 1.0 (nominal replay).
  [[nodiscard]] bool nominal() const noexcept {
    return duration_spread == 0.0 && bandwidth_spread == 0.0 &&
           straggler_probability == 0.0;
  }

  /// Throws std::invalid_argument on out-of-range parameters.
  void validate() const;

  /// Structural hash for execution-request content addressing.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;
};

/// Order-independent factor sampler over a RuntimeModel.
class RuntimeSampler {
 public:
  explicit RuntimeSampler(const RuntimeModel& model) : model_(model) {
    model_.validate();
  }

  /// Duration factor of attempt `attempt` of task `task` (original graph
  /// ids, so rescheduled rounds keep per-task streams). Exactly 1.0 for a
  /// nominal model.
  [[nodiscard]] double task_factor(std::uint32_t task,
                                   std::uint32_t attempt) const;

  /// Duration factor of attempt `attempt` of any transfer of edge `edge`.
  [[nodiscard]] double bandwidth_factor(std::uint32_t edge,
                                        std::uint32_t attempt) const;

  [[nodiscard]] const RuntimeModel& model() const noexcept { return model_; }

 private:
  RuntimeModel model_;
};

}  // namespace edgesched::exec
