// Execution outcome of a schedule replayed by the discrete-event
// executor: achieved vs predicted timing, per-task tardiness, and the
// full fault/recovery history. Serialises to a single JSON document
// (`to_json`) that tools/check_json validates in CI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace edgesched::exec {

/// Achieved timing of one task (original graph/topology id spaces, even
/// for tasks that re-ran on a rescheduled plan).
struct TaskRecord {
  std::uint32_t task = 0;
  std::uint32_t processor = 0;  ///< node the final attempt ran on
  double predicted_start = 0.0;
  double predicted_finish = 0.0;
  double start = 0.0;
  double finish = 0.0;
  std::uint32_t attempts = 1;  ///< 1 + retries/re-executions

  /// How much later than planned the task completed (>= 0 under
  /// timetable dispatch; can be negative in event-driven mode).
  [[nodiscard]] double tardiness() const noexcept {
    return finish - predicted_finish;
  }
};

/// One injected fault, with what it destroyed.
struct FaultRecord {
  double time = 0.0;
  std::string kind;  ///< "processor" | "link"
  std::uint32_t target = 0;
  bool permanent = false;
  double repair = 0.0;
  std::uint32_t killed = 0;  ///< running tasks/transfers destroyed
};

/// One recovery action (retry or reschedule) or the final abort.
struct RecoveryRecord {
  double time = 0.0;
  std::string action;     ///< "retry" | "reschedule" | "abort"
  std::string algorithm;  ///< replanning algorithm ("" for retries)
  std::uint32_t tasks_remaining = 0;
  std::uint32_t processors_surviving = 0;
  double replan_makespan = 0.0;
};

struct ExecutionReport {
  std::string algorithm;  ///< of the executed (original) schedule
  bool completed = false;
  std::string failure;  ///< human-readable reason when !completed

  /// Correlating run ID (obs/run_context): the same value stamped on
  /// trace spans, decision-log lines and flight-recorder entries of this
  /// execution. 0 when the run executed outside any run scope.
  std::uint64_t run_id = 0;

  double predicted_makespan = 0.0;
  double achieved_makespan = 0.0;
  /// achieved / predicted; 0 when the predicted makespan is 0.
  double slowdown = 0.0;

  double total_tardiness = 0.0;
  double max_tardiness = 0.0;

  std::uint64_t events = 0;      ///< executor events processed
  std::uint32_t retries = 0;     ///< attempts beyond the first
  std::uint32_t faults_injected = 0;
  std::uint32_t faults_survived = 0;
  std::uint32_t reschedules = 0;
  /// Computation time destroyed by kills plus re-executed lost outputs.
  double work_lost = 0.0;

  std::vector<TaskRecord> tasks;
  std::vector<FaultRecord> faults;
  std::vector<RecoveryRecord> recoveries;

  /// Recomputes the derived aggregates (achieved makespan, slowdown,
  /// tardiness totals) from the task records.
  void finalise();

  /// Full JSON document ({"type":"execution_report", ...}).
  [[nodiscard]] obs::JsonValue to_json() const;

  /// One-paragraph human summary for CLIs and logs.
  [[nodiscard]] std::string summary() const;
};

}  // namespace edgesched::exec
