// Online recovery building blocks: what survives a permanent failure and
// what still has to run.
//
// The reschedule-remaining policy re-invokes a planner on the *surviving*
// topology for the *unfinished* subgraph. Two constructions make that a
// standard scheduling instance again:
//
//   * `surviving_topology` rebuilds the network without the dead
//     processors/links while preserving contention-domain sharing (a bus
//     that lost a member is still one shared medium for the rest), and
//     returns id maps in both directions.
//   * `remaining_work` computes the tasks that must (re-)execute — the
//     unfinished ones plus the transitive closure of finished tasks whose
//     outputs died with a processor — and the finished "stub" producers
//     whose surviving outputs feed them. Stubs enter the sub-instance as
//     zero-weight tasks, so the recovery plan re-stages their data over
//     the real network with real contention instead of assuming free
//     migration.
#pragma once

#include <vector>

#include "dag/task_graph.hpp"
#include "net/topology.hpp"

namespace edgesched::exec {

/// A rebuilt topology with original<->surviving id maps. Switches always
/// survive; a removed node/link maps to an invalid id.
struct SurvivingTopology {
  net::Topology topology;
  std::vector<net::NodeId> to_new_node;  ///< indexed by original node id
  std::vector<net::LinkId> to_new_link;  ///< indexed by original link id
  std::vector<net::NodeId> to_old_node;  ///< indexed by surviving node id
};

/// Rebuilds `topology` without `dead_processors` and `dead_links`
/// (original-id index spaces, true = dead). Links incident to a dead
/// processor are dropped too; contention domains are preserved for the
/// surviving member links of shared media.
[[nodiscard]] SurvivingTopology surviving_topology(
    const net::Topology& topology, const std::vector<bool>& dead_processors,
    const std::vector<bool>& dead_links);

/// The work a reschedule must cover, in original task ids.
struct RemainingWork {
  /// Tasks to (re-)execute at full weight: every unfinished task plus the
  /// closure of finished tasks whose outputs were lost.
  std::vector<dag::TaskId> rerun;
  /// Finished tasks with surviving outputs that feed a rerun task; they
  /// join the sub-instance at zero weight (data re-staging only).
  std::vector<dag::TaskId> stubs;
};

/// Computes the rerun/stub partition. `finished[t]` marks completed
/// tasks; `lost[t]` marks tasks whose stored output is gone (finished on
/// a permanently dead processor).
[[nodiscard]] RemainingWork remaining_work(const dag::TaskGraph& graph,
                                           const std::vector<bool>& finished,
                                           const std::vector<bool>& lost);

}  // namespace edgesched::exec
