#include "exec/fault.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace edgesched::exec {

namespace {

void check_event(const FaultEvent& event) {
  throw_if(event.time < 0.0, "FaultPlan: event time must be >= 0");
  throw_if(!event.permanent && event.repair < 0.0,
           "FaultPlan: transient repair time must be >= 0");
}

// Appends Poisson failure arrivals for one resource.
void sample_resource(std::vector<FaultEvent>& events, FaultKind kind,
                     std::uint32_t target, double rate,
                     const HazardConfig& config, Rng& rng) {
  if (rate <= 0.0) {
    return;
  }
  double t = 0.0;
  while (true) {
    const double u = rng.uniform_real(0.0, 1.0);
    t += -std::log1p(-u) / rate;  // exponential inter-arrival
    if (t >= config.horizon) {
      return;
    }
    FaultEvent event;
    event.time = t;
    event.kind = kind;
    event.target = target;
    event.permanent = rng.bernoulli(config.permanent_fraction);
    if (!event.permanent) {
      const double v = rng.uniform_real(0.0, 1.0);
      event.repair = -std::log1p(-v) * config.mean_repair;
    }
    events.push_back(event);
    if (event.permanent) {
      return;  // a dead resource cannot fail again
    }
  }
}

}  // namespace

FaultPlan FaultPlan::scripted(std::vector<FaultEvent> events) {
  FaultPlan plan;
  for (const FaultEvent& event : events) {
    check_event(event);
  }
  plan.events_ = std::move(events);
  plan.sort_events();
  return plan;
}

FaultPlan FaultPlan::sampled(const net::Topology& topology,
                             const HazardConfig& config) {
  throw_if(config.processor_rate < 0.0 || config.link_rate < 0.0,
           "FaultPlan::sampled: rates must be >= 0");
  throw_if(config.horizon < 0.0, "FaultPlan::sampled: horizon must be >= 0");
  throw_if(config.permanent_fraction < 0.0 || config.permanent_fraction > 1.0,
           "FaultPlan::sampled: permanent_fraction must be in [0, 1]");
  throw_if(config.mean_repair < 0.0,
           "FaultPlan::sampled: mean_repair must be >= 0");
  FaultPlan plan;
  Rng root(config.seed);
  for (const net::NodeId p : topology.processors()) {
    Rng rng = root.fork();
    sample_resource(plan.events_, FaultKind::kProcessor,
                    static_cast<std::uint32_t>(p.value()),
                    config.processor_rate, config, rng);
  }
  for (const net::LinkId l : topology.all_links()) {
    Rng rng = root.fork();
    sample_resource(plan.events_, FaultKind::kLink,
                    static_cast<std::uint32_t>(l.value()), config.link_rate,
                    config, rng);
  }
  plan.sort_events();
  return plan;
}

void FaultPlan::add(const FaultEvent& event) {
  check_event(event);
  events_.push_back(event);
  sort_events();
}

void FaultPlan::fail_processor(double time, net::NodeId processor,
                               bool permanent, double repair) {
  FaultEvent event;
  event.time = time;
  event.kind = FaultKind::kProcessor;
  event.target = static_cast<std::uint32_t>(processor.value());
  event.permanent = permanent;
  event.repair = repair;
  add(event);
}

void FaultPlan::fail_link(double time, net::LinkId link, bool permanent,
                          double repair) {
  FaultEvent event;
  event.time = time;
  event.kind = FaultKind::kLink;
  event.target = static_cast<std::uint32_t>(link.value());
  event.permanent = permanent;
  event.repair = repair;
  add(event);
}

void FaultPlan::validate(const net::Topology& topology) const {
  for (const FaultEvent& event : events_) {
    if (event.kind == FaultKind::kProcessor) {
      throw_if(event.target >= topology.num_nodes(),
               "FaultPlan: processor fault targets unknown node");
      throw_if(!topology.is_processor(net::NodeId(event.target)),
               "FaultPlan: processor fault targets a switch");
    } else {
      throw_if(event.target >= topology.num_links(),
               "FaultPlan: link fault targets unknown link");
    }
  }
}

std::uint64_t FaultPlan::fingerprint() const noexcept {
  Fingerprint fp;
  fp.mix(static_cast<std::uint64_t>(events_.size()));
  for (const FaultEvent& event : events_) {
    fp.mix(event.time);
    fp.mix(static_cast<std::uint64_t>(event.kind));
    fp.mix(static_cast<std::uint64_t>(event.target));
    fp.mix(static_cast<std::uint64_t>(event.permanent));
    fp.mix(event.repair);
  }
  return fp.value();
}

void FaultPlan::sort_events() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.time != b.time) {
                       return a.time < b.time;
                     }
                     if (a.kind != b.kind) {
                       return a.kind < b.kind;
                     }
                     return a.target < b.target;
                   });
}

}  // namespace edgesched::exec
