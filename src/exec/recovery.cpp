#include "exec/recovery.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace edgesched::exec {

SurvivingTopology surviving_topology(const net::Topology& topology,
                                     const std::vector<bool>& dead_processors,
                                     const std::vector<bool>& dead_links) {
  throw_if(dead_processors.size() != topology.num_nodes(),
           "surviving_topology: dead_processors size mismatch");
  throw_if(dead_links.size() != topology.num_links(),
           "surviving_topology: dead_links size mismatch");

  SurvivingTopology out;
  out.topology.set_name(topology.name());
  out.to_new_node.assign(topology.num_nodes(), net::NodeId());
  out.to_new_link.assign(topology.num_links(), net::LinkId());

  for (std::size_t i = 0; i < topology.num_nodes(); ++i) {
    const net::NodeId old_id{static_cast<std::uint32_t>(i)};
    const net::NetNode& node = topology.node(old_id);
    if (node.kind == net::NodeKind::kProcessor && dead_processors[i]) {
      continue;
    }
    const net::NodeId new_id =
        node.kind == net::NodeKind::kProcessor
            ? out.topology.add_processor(node.speed, node.name)
            : out.topology.add_switch(node.name);
    out.to_new_node[i] = new_id;
    out.to_old_node.push_back(old_id);
  }

  // Shared media keep sharing: every surviving member of an original
  // contention domain lands in one rebuilt domain.
  std::vector<net::DomainId> domain_map(topology.num_domains(),
                                        net::DomainId());
  for (std::size_t i = 0; i < topology.num_links(); ++i) {
    const net::LinkId old_id{static_cast<std::uint32_t>(i)};
    const net::Link& link = topology.link(old_id);
    if (dead_links[i] || !out.to_new_node[link.src.index()].valid() ||
        !out.to_new_node[link.dst.index()].valid()) {
      continue;
    }
    net::DomainId& mapped = domain_map[link.domain.index()];
    if (!mapped.valid()) {
      mapped = out.topology.add_domain();
    }
    out.to_new_link[i] = out.topology.add_link(
        out.to_new_node[link.src.index()], out.to_new_node[link.dst.index()],
        link.speed, mapped);
  }
  return out;
}

RemainingWork remaining_work(const dag::TaskGraph& graph,
                             const std::vector<bool>& finished,
                             const std::vector<bool>& lost) {
  throw_if(finished.size() != graph.num_tasks(),
           "remaining_work: finished size mismatch");
  throw_if(lost.size() != graph.num_tasks(),
           "remaining_work: lost size mismatch");

  // Reverse topological sweep: a finished task whose output is lost must
  // re-execute exactly when some consumer re-executes.
  const std::vector<dag::TaskId> order = graph.topological_order();
  std::vector<bool> rerun(graph.num_tasks(), false);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const dag::TaskId t = *it;
    if (!finished[t.index()]) {
      rerun[t.index()] = true;
      continue;
    }
    if (!lost[t.index()]) {
      continue;
    }
    for (const dag::TaskId s : graph.successors(t)) {
      if (rerun[s.index()]) {
        rerun[t.index()] = true;
        break;
      }
    }
  }

  RemainingWork work;
  for (std::size_t i = 0; i < graph.num_tasks(); ++i) {
    const dag::TaskId t{static_cast<std::uint32_t>(i)};
    if (rerun[i]) {
      work.rerun.push_back(t);
      continue;
    }
    if (!finished[i]) {
      continue;  // unreachable: unfinished implies rerun
    }
    for (const dag::TaskId s : graph.successors(t)) {
      if (rerun[s.index()]) {
        work.stubs.push_back(t);
        break;
      }
    }
  }
  return work;
}

}  // namespace edgesched::exec
