// Contention replay: what a contention-free schedule really costs.
//
// Takes a schedule produced under the idealised model, keeps its
// task-to-processor assignment and task order, and re-executes it on the
// real network — BFS minimal routes, first-fit edge insertion, exclusive
// links. Start times stretch to actual data arrivals; the resulting
// makespan is what the classic schedule would achieve on the contended
// machine. Used by the contention ablation bench.
#pragma once

#include "sched/schedule.hpp"

namespace edgesched::sched {

/// Re-executes `ideal` (task placement + order) under link contention.
/// The returned schedule is valid under the full validator.
[[nodiscard]] Schedule replay_under_contention(const dag::TaskGraph& graph,
                                               const net::Topology& topology,
                                               const Schedule& ideal);

}  // namespace edgesched::sched
