#include "sched/trace_export.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

namespace edgesched::sched {

namespace {

/// Minimal JSON string escaping for names.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

struct LinkEvent {
  net::DomainId domain;
  double start;
  double finish;
  std::string label;
};

std::vector<LinkEvent> collect_link_events(const dag::TaskGraph& graph,
                                           const net::Topology& topology,
                                           const Schedule& schedule) {
  std::vector<LinkEvent> events;
  for (dag::EdgeId e : graph.all_edges()) {
    const EdgeCommunication& comm = schedule.communication(e);
    const dag::Edge& edge = graph.edge(e);
    const std::string label = graph.task(edge.src).name + "->" +
                              graph.task(edge.dst).name;
    if (comm.kind == EdgeCommunication::Kind::kExclusive ||
        comm.kind == EdgeCommunication::Kind::kPacketized) {
      for (const LinkOccupation& occ : comm.occupations) {
        if (occ.finish > occ.start) {
          events.push_back(LinkEvent{topology.domain(occ.link), occ.start,
                                     occ.finish, label});
        }
      }
    } else if (comm.kind == EdgeCommunication::Kind::kBandwidth) {
      for (std::size_t i = 0; i < comm.profiles.size(); ++i) {
        const auto& profile = comm.profiles[i];
        if (!profile.empty()) {
          events.push_back(LinkEvent{topology.domain(comm.route[i]),
                                     profile.start_time(),
                                     profile.finish_time(), label});
        }
      }
    }
  }
  return events;
}

}  // namespace

void write_chrome_trace(std::ostream& out, const dag::TaskGraph& graph,
                        const net::Topology& topology,
                        const Schedule& schedule) {
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](int pid, std::uint32_t tid,
                        const std::string& name, double start,
                        double duration) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\n{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"name\":\"" << json_escape(name) << "\",\"ts\":" << start
        << ",\"dur\":" << duration << "}";
  };
  // Row names.
  for (net::NodeId p : topology.processors()) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\n{\"ph\":\"M\",\"pid\":0,\"tid\":" << p.value()
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << json_escape(topology.node(p).name) << "\"}}";
  }

  for (dag::TaskId t : graph.all_tasks()) {
    const TaskPlacement& placement = schedule.task(t);
    if (placement.placed()) {
      emit(0, placement.processor.value(), graph.task(t).name,
           placement.start, placement.finish - placement.start);
    }
  }
  for (const LinkEvent& ev :
       collect_link_events(graph, topology, schedule)) {
    emit(1, ev.domain.value(), ev.label, ev.start, ev.finish - ev.start);
  }
  out << "\n]}\n";
}

std::string to_chrome_trace(const dag::TaskGraph& graph,
                            const net::Topology& topology,
                            const Schedule& schedule) {
  std::ostringstream os;
  write_chrome_trace(os, graph, topology, schedule);
  return os.str();
}

void write_ascii_gantt(std::ostream& out, const dag::TaskGraph& graph,
                       const net::Topology& topology,
                       const Schedule& schedule,
                       const GanttOptions& options) {
  const double makespan = schedule.makespan();
  const std::size_t width = std::max<std::size_t>(options.width, 8);
  const auto column = [&](double t) {
    if (makespan <= 0.0) {
      return std::size_t{0};
    }
    const double f = std::clamp(t / makespan, 0.0, 1.0);
    return std::min(width - 1,
                    static_cast<std::size_t>(f * static_cast<double>(
                                                     width)));
  };
  const auto paint = [&](std::string& row, double start, double finish,
                         char mark) {
    const std::size_t a = column(start);
    const std::size_t b = column(std::nextafter(finish, start));
    for (std::size_t i = a; i <= b && i < width; ++i) {
      row[i] = mark;
    }
  };

  out << "gantt [" << schedule.algorithm()
      << "] makespan=" << makespan << ", full width = " << makespan
      << " time units\n";
  for (net::NodeId p : topology.processors()) {
    std::string row(width, '.');
    for (dag::TaskId t : graph.all_tasks()) {
      const TaskPlacement& placement = schedule.task(t);
      if (placement.placed() && placement.processor == p &&
          placement.finish > placement.start) {
        paint(row, placement.start, placement.finish, '#');
      }
    }
    out << "  " << topology.node(p).name;
    for (std::size_t pad = topology.node(p).name.size(); pad < 8; ++pad) {
      out << ' ';
    }
    out << '|' << row << "|\n";
  }
  if (options.include_links) {
    std::map<net::DomainId, std::string> rows;
    for (const LinkEvent& ev :
         collect_link_events(graph, topology, schedule)) {
      auto [it, inserted] =
          rows.try_emplace(ev.domain, std::string(width, '.'));
      paint(it->second, ev.start, ev.finish, '=');
    }
    for (const auto& [domain, row] : rows) {
      std::string label = "D" + std::to_string(domain.value());
      out << "  " << label;
      for (std::size_t pad = label.size(); pad < 8; ++pad) {
        out << ' ';
      }
      out << '|' << row << "|\n";
    }
  }
}

std::string to_ascii_gantt(const dag::TaskGraph& graph,
                           const net::Topology& topology,
                           const Schedule& schedule,
                           const GanttOptions& options) {
  std::ostringstream os;
  write_ascii_gantt(os, graph, topology, schedule, options);
  return os.str();
}

}  // namespace edgesched::sched
