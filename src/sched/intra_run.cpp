#include "sched/intra_run.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "util/env.hpp"

namespace edgesched::sched {

namespace {

constexpr std::size_t kUnset = static_cast<std::size_t>(-1);

std::atomic<std::size_t>& global_setting() {
  static std::atomic<std::size_t> value{kUnset};
  return value;
}

// 0 = no override on this thread (0 is not a resolvable count; resolved
// values are always >= 1).
thread_local std::size_t tl_override = 0;

std::size_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t resolve(std::size_t requested) {
  return requested == 0 ? hardware_threads() : requested;
}

std::size_t env_setting() {
  static const std::size_t value = [] {
    const std::int64_t raw = env_int("EDGESCHED_INTRA_THREADS", 1);
    return resolve(raw < 0 ? 1 : static_cast<std::size_t>(raw));
  }();
  return value;
}

}  // namespace

std::size_t intra_run_threads() {
  if (tl_override != 0) {
    return tl_override;
  }
  const std::size_t global = global_setting().load(std::memory_order_relaxed);
  if (global != kUnset) {
    return resolve(global);
  }
  return env_setting();
}

void set_intra_run_threads(std::size_t threads) {
  global_setting().store(threads, std::memory_order_relaxed);
}

std::size_t clamped_intra_threads(std::size_t requested,
                                  std::size_t outer_threads) {
  const std::size_t hw = hardware_threads();
  const std::size_t outer = outer_threads == 0 ? 1 : outer_threads;
  const std::size_t budget = hw / outer;
  const std::size_t wanted = resolve(requested);
  const std::size_t clamped = budget == 0 ? 1 : std::min(wanted, budget);
  return clamped == 0 ? 1 : clamped;
}

ScopedIntraThreads::ScopedIntraThreads(std::size_t threads)
    : previous_(tl_override) {
  tl_override = resolve(threads);
}

ScopedIntraThreads::~ScopedIntraThreads() { tl_override = previous_; }

}  // namespace edgesched::sched
