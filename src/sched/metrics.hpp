// Schedule quality metrics and load reports.
//
// Everything a paper-style evaluation (or a user deciding between
// algorithms) wants to know about one schedule: normalised length (SLR),
// speedup/efficiency, processor and link utilisation, communication
// locality, and per-contention-domain load for spotting hot links.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dag/task_graph.hpp"
#include "net/topology.hpp"
#include "sched/schedule.hpp"

namespace edgesched::sched {

struct ScheduleMetrics {
  double makespan = 0.0;
  /// makespan / critical-path bound: 1.0 is unbeatable.
  double slr = 0.0;
  /// serial time on the fastest processor / makespan.
  double speedup = 0.0;
  /// speedup / number of processors.
  double efficiency = 0.0;
  /// mean fraction of [0, makespan] each processor computes.
  double processor_utilisation = 0.0;
  /// total busy link time across contention domains.
  double network_busy_time = 0.0;
  /// network_busy_time / (num_domains · makespan).
  double link_utilisation = 0.0;
  std::size_t local_edges = 0;
  std::size_t remote_edges = 0;
  /// mean hops of remote edges (0 when none).
  double mean_route_length = 0.0;
  /// mean (arrival − source finish) of remote edges (0 when none).
  double mean_communication_delay = 0.0;
};

/// Computes all metrics for a schedule. The schedule should be valid;
/// metrics of invalid schedules are not meaningful.
[[nodiscard]] ScheduleMetrics compute_metrics(const dag::TaskGraph& graph,
                                              const net::Topology& topology,
                                              const Schedule& schedule);

/// Busy time per contention domain (index = DomainId), for hot-link
/// reports.
[[nodiscard]] std::vector<double> domain_busy_times(
    const dag::TaskGraph& graph, const net::Topology& topology,
    const Schedule& schedule);

/// One line per metric, for logs and examples.
[[nodiscard]] std::string to_string(const ScheduleMetrics& metrics);

}  // namespace edgesched::sched
