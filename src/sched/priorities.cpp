#include "sched/priorities.hpp"

#include <queue>

#include "dag/properties.hpp"
#include "obs/trace.hpp"

namespace edgesched::sched {

std::vector<double> priorities(const dag::TaskGraph& graph,
                               PriorityScheme scheme) {
  obs::Span span("sched/priorities", "sched", graph.num_tasks());
  switch (scheme) {
    case PriorityScheme::kBottomLevel:
      return dag::bottom_levels(graph);
    case PriorityScheme::kBottomLevelComputationOnly:
      return dag::bottom_levels_computation_only(graph);
    case PriorityScheme::kTopLevelPlusBottomLevel: {
      std::vector<double> result = dag::bottom_levels(graph);
      const std::vector<double> tl = dag::top_levels(graph);
      for (std::size_t i = 0; i < result.size(); ++i) {
        result[i] += tl[i];
      }
      return result;
    }
  }
  throw std::invalid_argument("priorities: unknown scheme");
}

std::vector<dag::TaskId> list_order(const dag::TaskGraph& graph,
                                    const std::vector<double>& priority) {
  throw_if(priority.size() != graph.num_tasks(),
           "list_order: priority vector size mismatch");
  struct Entry {
    double priority;
    dag::TaskId task;
    bool operator<(const Entry& other) const {
      if (priority != other.priority) {
        return priority < other.priority;  // max-heap on priority
      }
      return task > other.task;  // then min task id
    }
  };
  std::priority_queue<Entry> ready;
  std::vector<std::size_t> indegree(graph.num_tasks());
  for (dag::TaskId t : graph.all_tasks()) {
    indegree[t.index()] = graph.in_edges(t).size();
    if (indegree[t.index()] == 0) {
      ready.push(Entry{priority[t.index()], t});
    }
  }
  std::vector<dag::TaskId> order;
  order.reserve(graph.num_tasks());
  while (!ready.empty()) {
    const dag::TaskId task = ready.top().task;
    ready.pop();
    order.push_back(task);
    for (dag::EdgeId e : graph.out_edges(task)) {
      const dag::TaskId next = graph.edge(e).dst;
      if (--indegree[next.index()] == 0) {
        ready.push(Entry{priority[next.index()], next});
      }
    }
  }
  throw_if(order.size() != graph.num_tasks(),
           "list_order: graph contains a cycle");
  return order;
}

std::vector<dag::TaskId> list_order(const dag::TaskGraph& graph,
                                    PriorityScheme scheme) {
  return list_order(graph, priorities(graph, scheme));
}

}  // namespace edgesched::sched
