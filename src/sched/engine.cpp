#include "sched/engine.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "net/routing.hpp"
#include "obs/counters.hpp"
#include "obs/decision_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "sched/intra_run.hpp"
#include "sched/network_model.hpp"
#include "sched/network_state.hpp"
#include "sched/policies.hpp"
#include "sched/priorities.hpp"
#include "sched/ready_queue.hpp"
#include "util/error.hpp"
#include "util/parallel_for.hpp"

namespace edgesched::sched {

ListSchedulingEngine::ListSchedulingEngine(AlgorithmSpec spec)
    : spec_(std::move(spec)), names_(spec_.name) {
  spec_.validate();
}

Schedule ListSchedulingEngine::run(const dag::TaskGraph& graph,
                                   const net::Topology& topology) const {
  // Standalone run: local workspace, everything derived from the raw
  // topology (lazy BFS cache, O(L) MLS reduction when needed).
  Workspace workspace;
  return run_impl(graph, topology, nullptr, workspace);
}

Schedule ListSchedulingEngine::run(const dag::TaskGraph& graph,
                                   const PlatformContext& platform) const {
  // Shared-platform run: lease pooled scratch, reuse the context's
  // immutable route table and cached reductions.
  const WorkspaceLease lease = platform.checkout();
  return run_impl(graph, platform.topology(), &platform, *lease);
}

Schedule ListSchedulingEngine::run_impl(const dag::TaskGraph& graph,
                                        const net::Topology& topology,
                                        const PlatformContext* platform,
                                        Workspace& workspace) const {
  obs::Span run_span(names_.schedule, "sched", graph.num_tasks());
  obs::DecisionLog* const log = obs::active_decision_log();
  Schedule out(spec_.name, graph.num_tasks(), graph.num_edges());

  // Re-arm the (possibly pooled) workspace: probe-route memo entries
  // from a previous run are invalidated, reusable buffers cleared. A
  // fresh local workspace goes through the same call, so both paths see
  // identical scratch state.
  workspace.begin_run();

  // Incremental ready queue instead of a materialised order vector:
  // O(E log V) heap work interleaved with placement, identical pop
  // sequence to `list_order` (tests/ready_queue_property_test.cpp).
  const std::vector<double> prio = priorities(graph, spec_.priority);
  ReadyQueue ready(graph, prio);
  const std::unique_ptr<NetworkStateModel> network =
      make_network_model(spec_, topology, graph.num_edges());
  MachineState machines(topology);
  // Arena sizing, once per run: timelines get capacity for the mean
  // per-processor load (geometric growth absorbs skewed assignments),
  // and the decision-candidate buffer below is hoisted out of the task
  // loop. 50k-task runs otherwise spend measurable time in slot-vector
  // reallocation.
  const std::size_t num_procs = std::max<std::size_t>(
      std::size_t{1}, topology.num_processors());
  machines.reserve_slots(platform != nullptr
                             ? platform->slot_reserve_hint(graph.num_tasks())
                             : graph.num_tasks() / num_procs + 8);
  // Routing policy over the per-run scratch (epoch-stamped Dijkstra
  // workspace, generation-keyed probe-route memo) and, when a platform
  // is shared, its immutable all-pairs BFS table.
  const std::unique_ptr<RoutingPolicy> routing = make_routing_policy(
      spec_, topology, workspace.routing,
      platform != nullptr ? &platform->routes() : nullptr);
  // The MLS reduction is only consulted by the kMlsEstimate policy;
  // compute (or fetch from the platform) exactly when it is.
  const double mean_link_speed =
      spec_.selection == SelectionPolicyKind::kMlsEstimate
          ? (platform != nullptr ? platform->mean_link_speed()
                                 : topology.mean_link_speed())
          : 0.0;
  const std::unique_ptr<ProcessorSelectionPolicy> selection =
      make_selection_policy(spec_, mean_link_speed);
  const std::unique_ptr<EdgeOrderPolicy> edge_order =
      make_edge_order_policy(spec_);
  const std::unique_ptr<InsertionPolicy> insertion =
      make_insertion_policy(spec_);

  const EngineState state{graph,    topology, spec_,   out,
                          machines, *network, *routing};
  std::vector<dag::EdgeId>& order_scratch = workspace.order_scratch;
  std::vector<obs::ProcessorCandidate>& candidates = workspace.candidates;
  std::uint64_t edges_routed = 0;
  std::uint64_t tasks_placed = 0;

  // Intra-run candidate-scan parallelism (docs/parallelism.md). When the
  // selection policy scores processors independently and read-only, the
  // engine owns the scan over the processor list — at EVERY worker
  // count, including 1, so the serial path and the parallel path are the
  // same code and the schedule is byte-identical at any setting. The
  // scan writes per-processor scores into disjoint `static_chunk`
  // ranges of `workspace.scores`; the reduction below walks them in
  // processor-index order, reproducing exactly the serial policy's
  // first-strict-minimum tie-break. Policies that mutate state between
  // candidates (tentative EFT) keep their serial `select` call.
  const std::vector<net::NodeId>& processors = topology.processors();
  const bool scan_capable =
      selection->supports_candidate_scan() && !processors.empty();
  const std::size_t lanes =
      scan_capable
          ? std::min(intra_run_threads(),
                     std::max<std::size_t>(std::size_t{1}, processors.size()))
          : std::size_t{1};
  util::WorkerTeam team(lanes);
  // Per-lane counter sinks: lane 0 batches into the run's own workspace;
  // each extra lane leases a pooled workspace (or owns fresh scratch on
  // standalone runs) so workers never contend on a shared tally.
  std::vector<Workspace*> lane_workspaces{&workspace};
  std::vector<std::unique_ptr<WorkspaceLease>> lane_leases;
  std::vector<std::unique_ptr<Workspace>> lane_owned;
  for (std::size_t lane = 1; lane < team.lanes(); ++lane) {
    if (platform != nullptr) {
      lane_leases.push_back(std::make_unique<WorkspaceLease>(*platform));
      lane_workspaces.push_back(&**lane_leases.back());
    } else {
      lane_owned.push_back(std::make_unique<Workspace>());
      lane_workspaces.push_back(lane_owned.back().get());
    }
    lane_workspaces.back()->begin_run();
  }

  dag::TaskId task;
  while (ready.pop(task)) {
    const double weight = graph.weight(task);

    // Dynamic model (§4.1): the task's placement is decided when it
    // becomes ready, so its communications cannot leave earlier than the
    // latest predecessor finish.
    double ready_moment = 0.0;
    for (dag::EdgeId e : graph.in_edges(task)) {
      ready_moment =
          std::max(ready_moment, out.task(graph.edge(e).src).finish);
    }

    // Edge priority (§4.2): the order the incoming edges book in, fixed
    // before selection so tentative trials and the final commit agree.
    const std::vector<dag::EdgeId>& in =
        edge_order->order(graph, task, order_scratch);

    // Processor selection (§4.1).
    ProcessorSelectionPolicy::Choice choice;
    candidates.clear();
    {
      obs::Span select_span(names_.select_processor, "sched", task.value());
      if (scan_capable) {
        // Speculative read-only scan: every lane probes the machine
        // timelines concurrently, nothing commits until the winner is
        // known. The revision/generation assertion pins that contract.
        std::vector<obs::ProcessorCandidate>& scores = workspace.scores;
        scores.resize(processors.size());
        const std::uint64_t machines_before = machines.revision();
        const std::uint64_t network_before = network->generation();
        const ProcessorSelectionPolicy& policy = *selection;
        team.run(processors.size(), [&](std::size_t lane, std::size_t begin,
                                        std::size_t end) {
          for (std::size_t p = begin; p < end; ++p) {
            scores[p] = policy.score_candidate(state, task, weight,
                                               ready_moment, in,
                                               processors[p]);
          }
          lane_workspaces[lane]->candidates_evaluated +=
              static_cast<std::uint64_t>(end - begin);
        });
        EDGESCHED_ASSERT_MSG(machines.revision() == machines_before &&
                                 network->generation() == network_before,
                             "candidate scan mutated engine state");
        // Deterministic reduction: first strict minimum of the score in
        // processor-index order — byte-identical to the serial loop's
        // `if (finish < best_finish)` at any lane count.
        std::size_t best = 0;
        for (std::size_t p = 1; p < scores.size(); ++p) {
          if (scores[p].estimate < scores[best].estimate) {
            best = p;
          }
        }
        choice = ProcessorSelectionPolicy::Choice{
            processors[best], scores[best].estimate, -1.0};
        if (log != nullptr) {
          candidates.assign(scores.begin(), scores.end());
        }
      } else {
        choice = selection->select(state, task, weight, ready_moment, in,
                                   log != nullptr ? &candidates : nullptr);
      }
    }
    if (log != nullptr) {
      log->record(obs::TaskDecision{
          spec_.name, static_cast<std::uint32_t>(task.index()),
          static_cast<std::uint32_t>(choice.processor.index()), choice.score,
          std::move(candidates)});
    }
    const net::NodeId chosen = choice.processor;

    // Route and commit the incoming communications (§4.3, §4.4).
    double data_ready = ready_moment;
    for (dag::EdgeId e : in) {
      const dag::Edge& edge = graph.edge(e);
      const TaskPlacement& src = out.task(edge.src);
      EdgeCommunication comm;
      comm.arrival = src.finish;
      double ship_time = src.finish;
      if (src.processor == chosen || edge.cost <= 0.0) {
        comm.kind = EdgeCommunication::Kind::kLocal;
      } else {
        obs::Span route_span(names_.route_edge, "sched", e.value());
        ship_time = spec_.eager_communication ? src.finish : ready_moment;
        const net::Route& route = routing->route(
            *network, src.processor, chosen, ship_time, edge.cost);
        insertion->commit(*network, e, route, ship_time, edge.cost, comm);
        ++edges_routed;
      }
      if (log != nullptr) {
        obs::EdgeDecision decision;
        decision.algorithm = spec_.name;
        decision.edge = static_cast<std::uint32_t>(e.index());
        decision.src_task = static_cast<std::uint32_t>(edge.src.index());
        decision.dst_task = static_cast<std::uint32_t>(edge.dst.index());
        decision.local = comm.kind == EdgeCommunication::Kind::kLocal;
        decision.ship_time = ship_time;
        decision.arrival = comm.arrival;
        if (!decision.local) {
          insertion->append_hops(*network, e, comm, decision.hops);
        }
        log->record(std::move(decision));
      }
      data_ready = std::max(data_ready, comm.arrival);
      out.set_communication(e, std::move(comm));
    }

    // Place the task.
    const double duration = weight / topology.processor_speed(chosen);
    const double start = machines.start_for(chosen, data_ready, duration,
                                            spec_.task_insertion);
    EDGESCHED_ASSERT_MSG(
        choice.expected_start < 0.0 ||
            std::abs(start - choice.expected_start) <= 1e-9,
        "re-commit diverged from the tentative evaluation");
    machines.commit(chosen, task, start, duration);
    out.place_task(task, TaskPlacement{chosen, start, start + duration});
    ++tasks_placed;
    ready.release_successors(graph, task);
  }
  throw_if(!ready.all_popped(),
           "ListSchedulingEngine: graph contains a cycle");

  network->finalize(graph, out);

  obs::HotCounters& counters = obs::hot_counters();
  counters.tasks_placed.increment(tasks_placed);
  if (edges_routed > 0) {
    counters.edges_routed.increment(edges_routed);
  }
  // Deterministic per-run counter flush: every lane's batched tallies
  // (candidate evaluations, Dijkstra relaxations, memo traffic) reach
  // the global registry here, so totals are identical at every worker
  // count and whether the workspaces were fresh or recycled.
  for (Workspace* lane_workspace : lane_workspaces) {
    lane_workspace->flush_counters();
  }
  // One coarse flight-recorder milestone per schedule() call — not per
  // task or edge — so the always-on recorder stays off the hot path.
  obs::flight_recorder().record(obs::FlightEventKind::kSchedule,
                                names_.schedule, out.makespan(),
                                graph.num_tasks(), out.makespan());
  return out;
}

}  // namespace edgesched::sched
