// Intra-run parallelism configuration.
//
// One engine run may fan its per-task processor-candidate scan (and the
// metaheuristics their population evaluations) across a worker team.
// The worker count is configuration, not algorithm state — results are
// byte-identical at every setting (docs/parallelism.md) — so it resolves
// here, outside any AlgorithmSpec or fingerprint:
//
//   1. the innermost `ScopedIntraThreads` on the calling thread, if any
//      (the service layer clamps and scopes per job; metaheuristic
//      workers pin 1 so nested runs never multiply threads);
//   2. else the process-global `set_intra_run_threads` value (the CLI's
//      --intra-threads);
//   3. else the EDGESCHED_INTRA_THREADS environment variable;
//   4. else 1 — serial, the default, so existing single-threaded
//      behaviour and perf baselines are untouched unless asked for.
//
// A value of 0 anywhere means "hardware concurrency".
#pragma once

#include <cstddef>

namespace edgesched::sched {

/// The intra-run worker count in effect on this thread; always >= 1.
[[nodiscard]] std::size_t intra_run_threads();

/// Sets the process-global intra-run worker count (0 = hardware
/// concurrency). Thread-safe; scoped overrides still win.
void set_intra_run_threads(std::size_t threads);

/// Clamps a requested intra-run worker count so that `requested *
/// outer_threads` never exceeds hardware concurrency (0 requested =
/// hardware concurrency first). Always returns >= 1. The service layer
/// applies this with its pool size as `outer_threads` so jobs running
/// concurrently cannot oversubscribe the machine.
[[nodiscard]] std::size_t clamped_intra_threads(std::size_t requested,
                                                std::size_t outer_threads);

/// RAII thread-local override of `intra_run_threads` (0 = hardware
/// concurrency); restores the previous override on destruction.
class ScopedIntraThreads {
 public:
  explicit ScopedIntraThreads(std::size_t threads);
  ~ScopedIntraThreads();

  ScopedIntraThreads(const ScopedIntraThreads&) = delete;
  ScopedIntraThreads& operator=(const ScopedIntraThreads&) = delete;

 private:
  std::size_t previous_;
};

}  // namespace edgesched::sched
