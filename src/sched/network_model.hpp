// Network-state seam of the list-scheduling engine.
//
// The engine's routing and insertion policies talk to the network through
// this interface instead of a concrete state class, so one Dijkstra
// relaxation loop serves both contention models: `probe` answers the §4.3
// relaxation for exclusive links (basic-insertion placement) or bandwidth
// links (fluid finish of the full volume), and `generation` exposes the
// load counter that `net::ProbedRouteCache` keys route-memo validity on.
// Policies that are specific to one model (first-fit commit, tentative
// rollback, fluid transfer) downcast through `exclusive_state` /
// `bandwidth_state`; the engine constructs the matching model from the
// spec's insertion kind, so the downcast cannot fail at runtime.
#pragma once

#include <cstdint>
#include <memory>

#include "net/routing.hpp"
#include "sched/algorithm_spec.hpp"
#include "sched/network_state.hpp"

namespace edgesched::sched {

class NetworkStateModel {
 public:
  NetworkStateModel() = default;
  virtual ~NetworkStateModel() = default;

  NetworkStateModel(const NetworkStateModel&) = delete;
  NetworkStateModel& operator=(const NetworkStateModel&) = delete;

  /// §4.3 relaxation probe: the tentative, uncommitted placement of
  /// `cost` units on `link` given the state arriving at its source.
  [[nodiscard]] virtual net::ProbeResult probe(net::LinkId link,
                                               const net::ProbeState& state,
                                               double cost) const = 0;

  /// Monotone load generation of the underlying state (route-memo key;
  /// see ExclusiveNetworkState::generation()).
  [[nodiscard]] virtual std::uint64_t generation() const noexcept = 0;

  /// The exclusive-link state, or nullptr for bandwidth models.
  [[nodiscard]] virtual ExclusiveNetworkState* exclusive_state() noexcept {
    return nullptr;
  }
  /// The bandwidth-sharing state, or nullptr for exclusive models.
  [[nodiscard]] virtual BandwidthNetworkState* bandwidth_state() noexcept {
    return nullptr;
  }

  /// End-of-run hook. The exclusive model with `refresh_edge_records`
  /// rewrites every routed edge's communication from the final link
  /// records here (OIHSA: deferral may have moved occupations after the
  /// edge's communication was recorded).
  virtual void finalize(const dag::TaskGraph& /*graph*/,
                        Schedule& /*out*/) {}
};

/// The model matching `spec.insertion`: bandwidth timelines for
/// kFluidBandwidth, exclusive link timelines otherwise.
[[nodiscard]] std::unique_ptr<NetworkStateModel> make_network_model(
    const AlgorithmSpec& spec, const net::Topology& topology,
    std::size_t num_edges);

}  // namespace edgesched::sched
