#include "sched/platform.hpp"

#include <algorithm>
#include <utility>

#include "obs/counters.hpp"
#include "util/error.hpp"

namespace edgesched::sched {

void Workspace::flush_counters() {
  if (candidates_evaluated > 0) {
    obs::hot_counters().candidates_evaluated.increment(candidates_evaluated);
    candidates_evaluated = 0;
  }
  routing.flush_counters();
}

namespace {
const net::Topology& require_topology(
    const std::shared_ptr<const net::Topology>& topology) {
  throw_if(topology == nullptr, "PlatformContext: null topology");
  return *topology;
}
}  // namespace

WorkspaceLease::WorkspaceLease(const PlatformContext& owner)
    : owner_(&owner), workspace_(owner.acquire()) {}

WorkspaceLease::~WorkspaceLease() {
  if (workspace_ != nullptr) {
    owner_->release(std::move(workspace_));
  }
}

PlatformContext::PlatformContext(const net::Topology& topology)
    : topology_(&topology),
      routes_(topology),
      mean_link_speed_(topology.mean_link_speed()),
      fingerprint_(topology.fingerprint()),
      num_processors_(
          std::max<std::size_t>(std::size_t{1}, topology.num_processors())) {}

PlatformContext::PlatformContext(
    std::shared_ptr<const net::Topology> topology)
    : owned_(std::move(topology)),
      topology_(&require_topology(owned_)),
      routes_(*topology_),
      mean_link_speed_(topology_->mean_link_speed()),
      fingerprint_(topology_->fingerprint()),
      num_processors_(std::max<std::size_t>(std::size_t{1},
                                            topology_->num_processors())) {}

std::size_t PlatformContext::pooled_workspaces() const {
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  return pool_.size();
}

std::unique_ptr<Workspace> PlatformContext::acquire() const {
  {
    const std::lock_guard<std::mutex> lock(pool_mutex_);
    if (!pool_.empty()) {
      std::unique_ptr<Workspace> workspace = std::move(pool_.back());
      pool_.pop_back();
      return workspace;
    }
  }
  // Pool empty (first run, or every workspace leased out by concurrent
  // runs): allocate outside the lock.
  return std::make_unique<Workspace>();
}

void PlatformContext::release(std::unique_ptr<Workspace> workspace) const {
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  pool_.push_back(std::move(workspace));
}

}  // namespace edgesched::sched
