#include "sched/scheduler.hpp"

#include "sched/ba.hpp"
#include "sched/bbsa.hpp"
#include "sched/classic.hpp"
#include "sched/oihsa.hpp"

namespace edgesched::sched {

void Scheduler::check_inputs(const dag::TaskGraph& graph,
                             const net::Topology& topology) {
  graph.validate();
  throw_if(topology.num_processors() == 0,
           "Scheduler: topology has no processors");
  throw_if(!topology.processors_connected(),
           "Scheduler: processors are not mutually reachable");
}

std::vector<std::unique_ptr<Scheduler>> all_schedulers() {
  std::vector<std::unique_ptr<Scheduler>> result;
  result.push_back(std::make_unique<BasicAlgorithm>());
  result.push_back(std::make_unique<Oihsa>());
  result.push_back(std::make_unique<Bbsa>());
  return result;
}

}  // namespace edgesched::sched
