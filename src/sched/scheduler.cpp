#include "sched/scheduler.hpp"

#include "sched/platform.hpp"
#include "sched/registry.hpp"
#include "util/hash.hpp"

namespace edgesched::sched {

Schedule Scheduler::schedule(const dag::TaskGraph& graph,
                             const PlatformContext& platform) const {
  // Default: schedulers that derive nothing per-topology (the classic
  // model, the search metaheuristics) gain nothing from the context and
  // simply schedule against its topology.
  return schedule(graph, platform.topology());
}

void Scheduler::check_inputs(const dag::TaskGraph& graph,
                             const net::Topology& topology) {
  graph.validate();
  throw_if(topology.num_processors() == 0,
           "Scheduler: topology has no processors");
  throw_if(!topology.processors_connected(),
           "Scheduler: processors are not mutually reachable");
}

std::uint64_t Scheduler::fingerprint() const {
  Fingerprint fp;
  fp.mix(std::string_view("edgesched.Scheduler.name"));
  const std::string display = name();
  fp.mix(std::string_view(display));
  return fp.value();
}

std::vector<std::unique_ptr<Scheduler>> all_schedulers() {
  // The paper's three contention-aware algorithms, in evaluation order,
  // instantiated through the central registry.
  std::vector<std::unique_ptr<Scheduler>> result;
  result.push_back(make_scheduler("ba"));
  result.push_back(make_scheduler("oihsa"));
  result.push_back(make_scheduler("bbsa"));
  return result;
}

}  // namespace edgesched::sched
