// Schedule result types.
//
// A `Schedule` fixes, for every task, a processor and an execution
// interval, and, for every DAG edge, how its communication crosses the
// network: locally (same processor), as exclusive per-link time slots
// (BA / OIHSA), as bandwidth-sharing rate profiles (BBSA), or idealised
// (the classic contention-free model, which books no link resources).
// The independent checker lives in validator.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dag/task_graph.hpp"
#include "net/topology.hpp"
#include "timeline/rate_profile.hpp"

namespace edgesched::sched {

/// Where and when a task executes.
struct TaskPlacement {
  net::NodeId processor;
  double start = 0.0;
  double finish = 0.0;

  [[nodiscard]] bool placed() const noexcept { return processor.valid(); }
};

/// An edge's occupation of one link in the exclusive model.
struct LinkOccupation {
  net::LinkId link;
  double earliest_start = 0.0;  ///< t_es(e, L)
  double start = 0.0;           ///< t_s(e, L); the slot is [start, finish]
  double finish = 0.0;          ///< t_f(e, L)
};

/// How one DAG edge's communication was realised.
struct EdgeCommunication {
  enum class Kind {
    kLocal,          ///< same processor: free, instantaneous
    kExclusive,      ///< per-link exclusive time slots (BA, OIHSA)
    kBandwidth,      ///< per-link rate profiles (BBSA)
    kPacketized,     ///< store-and-forward packets on exclusive slots
    kContentionFree  ///< idealised model: duration c(e)/speed, no links
  };

  Kind kind = Kind::kLocal;
  net::Route route;  ///< empty for kLocal / kContentionFree
  /// Exclusive model: one occupation per route link. Packetized model:
  /// packet-major layout — occupation p·|route|+h is packet p on hop h.
  std::vector<LinkOccupation> occupations;
  /// Bandwidth model: one transfer profile per route link.
  std::vector<timeline::RateProfile> profiles;
  /// Packetized model: number of equal-volume packets (0 otherwise).
  std::size_t packet_count = 0;
  /// When the data is completely available at the destination processor.
  double arrival = 0.0;
};

/// A complete scheduling result for one (graph, topology) instance.
class Schedule {
 public:
  Schedule(std::string algorithm, std::size_t num_tasks,
           std::size_t num_edges);

  void place_task(dag::TaskId task, const TaskPlacement& placement);
  void set_communication(dag::EdgeId edge, EdgeCommunication comm);

  [[nodiscard]] const TaskPlacement& task(dag::TaskId id) const {
    EDGESCHED_ASSERT(id.index() < tasks_.size());
    return tasks_[id.index()];
  }
  [[nodiscard]] const EdgeCommunication& communication(dag::EdgeId id) const {
    EDGESCHED_ASSERT(id.index() < edges_.size());
    return edges_[id.index()];
  }

  [[nodiscard]] std::size_t num_tasks() const noexcept {
    return tasks_.size();
  }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return edges_.size();
  }

  /// Latest task finish time; 0 for an empty schedule.
  [[nodiscard]] double makespan() const noexcept;

  /// Name of the algorithm that produced this schedule.
  [[nodiscard]] const std::string& algorithm() const noexcept {
    return algorithm_;
  }

  /// Sum of busy time over processors divided by makespan·|P| — a simple
  /// utilisation figure for reports.
  [[nodiscard]] double processor_utilisation(
      const dag::TaskGraph& graph, const net::Topology& topology) const;

  /// Human-readable Gantt-style dump (one line per task, then per edge).
  [[nodiscard]] std::string to_string(const dag::TaskGraph& graph,
                                      const net::Topology& topology) const;

  /// Canonical 64-bit hash over the complete result: algorithm name,
  /// every placement (processor, start, finish) in task order, and every
  /// edge communication (kind, route, occupations, rate profiles, packet
  /// count, arrival) in edge order. Two schedules with equal fingerprints
  /// replay identically, which is what lets the service layer
  /// content-address execution requests (svc::SchedulerService::execute).
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

 private:
  std::string algorithm_;
  std::vector<TaskPlacement> tasks_;
  std::vector<EdgeCommunication> edges_;
};

}  // namespace edgesched::sched
