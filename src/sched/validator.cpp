#include "sched/validator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

namespace edgesched::sched {

namespace {

class Reporter {
 public:
  template <typename... Parts>
  void add(const Parts&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    violations_.push_back(os.str());
  }
  [[nodiscard]] std::vector<std::string> take() {
    return std::move(violations_);
  }

 private:
  std::vector<std::string> violations_;
};

void check_tasks(const dag::TaskGraph& graph, const net::Topology& topology,
                 const Schedule& schedule, double eps, Reporter& report) {
  for (dag::TaskId t : graph.all_tasks()) {
    const TaskPlacement& p = schedule.task(t);
    if (!p.placed()) {
      report.add("task ", t.value(), " is not placed");
      continue;
    }
    if (p.processor.index() >= topology.num_nodes() ||
        !topology.is_processor(p.processor)) {
      report.add("task ", t.value(), " placed on a non-processor node");
      continue;
    }
    if (p.start < -eps) {
      report.add("task ", t.value(), " starts before time 0");
    }
    const double expected =
        graph.weight(t) / topology.processor_speed(p.processor);
    if (std::abs((p.finish - p.start) - expected) > eps) {
      report.add("task ", t.value(), " duration ", p.finish - p.start,
                 " != w/s(P) = ", expected);
    }
  }
}

void check_processor_exclusivity(const dag::TaskGraph& graph,
                                 const Schedule& schedule, double eps,
                                 Reporter& report) {
  std::map<net::NodeId, std::vector<dag::TaskId>> by_processor;
  for (dag::TaskId t : graph.all_tasks()) {
    if (schedule.task(t).placed()) {
      by_processor[schedule.task(t).processor].push_back(t);
    }
  }
  for (auto& [proc, tasks] : by_processor) {
    // Tie-break equal starts by finish so a zero-duration task sharing
    // another task's start sorts before it instead of "overlapping" it.
    std::sort(tasks.begin(), tasks.end(), [&](dag::TaskId a, dag::TaskId b) {
      if (schedule.task(a).start != schedule.task(b).start) {
        return schedule.task(a).start < schedule.task(b).start;
      }
      return schedule.task(a).finish < schedule.task(b).finish;
    });
    for (std::size_t i = 1; i < tasks.size(); ++i) {
      const TaskPlacement& prev = schedule.task(tasks[i - 1]);
      const TaskPlacement& curr = schedule.task(tasks[i]);
      if (prev.finish > curr.start + eps) {
        report.add("tasks ", tasks[i - 1].value(), " and ",
                   tasks[i].value(), " overlap on processor ",
                   proc.value());
      }
    }
  }
}

void check_edge(const dag::TaskGraph& graph, const net::Topology& topology,
                const Schedule& schedule, dag::EdgeId e, double eps,
                bool allow_contention_free, Reporter& report) {
  const dag::Edge& edge = graph.edge(e);
  const EdgeCommunication& comm = schedule.communication(e);
  const TaskPlacement& src = schedule.task(edge.src);
  const TaskPlacement& dst = schedule.task(edge.dst);
  if (!src.placed() || !dst.placed()) {
    return;  // reported by check_tasks
  }
  const bool same_processor = src.processor == dst.processor;

  using Kind = EdgeCommunication::Kind;
  switch (comm.kind) {
    case Kind::kLocal: {
      if (!same_processor && edge.cost > 0.0) {
        report.add("edge ", e.value(),
                   " marked local but endpoints on different processors");
      }
      if (dst.start < src.finish - eps) {
        report.add("edge ", e.value(),
                   " precedence violated: dst starts before src finishes");
      }
      break;
    }
    case Kind::kContentionFree: {
      if (!allow_contention_free) {
        report.add("edge ", e.value(),
                   " uses the contention-free model, which is disallowed");
        break;
      }
      if (comm.arrival < src.finish - eps) {
        report.add("edge ", e.value(), " arrives before the source finishes");
      }
      if (dst.start < comm.arrival - eps) {
        report.add("edge ", e.value(),
                   " destination starts before data arrival");
      }
      break;
    }
    case Kind::kExclusive: {
      try {
        topology.validate_route(comm.route, src.processor, dst.processor);
      } catch (const std::invalid_argument& broken) {
        report.add("edge ", e.value(), " route invalid: ", broken.what());
        break;
      }
      if (comm.occupations.size() != comm.route.size()) {
        report.add("edge ", e.value(),
                   " occupation count differs from route length");
        break;
      }
      double prev_es = src.finish;
      double prev_finish = 0.0;
      for (std::size_t i = 0; i < comm.route.size(); ++i) {
        const LinkOccupation& occ = comm.occupations[i];
        if (occ.link != comm.route[i]) {
          report.add("edge ", e.value(), " occupation ", i,
                     " on the wrong link");
        }
        const double duration =
            edge.cost / topology.link_speed(comm.route[i]);
        if (std::abs((occ.finish - occ.start) - duration) > eps) {
          report.add("edge ", e.value(), " slot on link ",
                     comm.route[i].value(), " has length ",
                     occ.finish - occ.start, " != c/s = ", duration);
        }
        // Link causality (§2.2): t_es and t_f are each non-decreasing
        // along the route. (The start times themselves may reorder after
        // OIHSA deferrals — the model constrains only these two series.)
        if (occ.earliest_start < prev_es - eps) {
          report.add("edge ", e.value(), " link causality violated on hop ",
                     i, ": t_es decreases");
        }
        if (occ.finish < prev_finish - eps) {
          report.add("edge ", e.value(), " link causality violated on hop ",
                     i, ": t_f decreases");
        }
        if (occ.start < occ.earliest_start - eps) {
          report.add("edge ", e.value(), " slot on hop ", i,
                     " starts before its earliest start");
        }
        prev_es = occ.earliest_start;
        prev_finish = occ.finish;
      }
      if (!comm.occupations.empty() &&
          std::abs(comm.arrival - comm.occupations.back().finish) > eps) {
        report.add("edge ", e.value(),
                   " arrival differs from last-hop finish");
      }
      if (dst.start < comm.arrival - eps) {
        report.add("edge ", e.value(),
                   " destination starts before data arrival");
      }
      break;
    }
    case Kind::kPacketized: {
      try {
        topology.validate_route(comm.route, src.processor, dst.processor);
      } catch (const std::invalid_argument& broken) {
        report.add("edge ", e.value(), " route invalid: ", broken.what());
        break;
      }
      const std::size_t hops = comm.route.size();
      if (comm.packet_count == 0 ||
          comm.occupations.size() != comm.packet_count * hops) {
        report.add("edge ", e.value(),
                   " packet occupation count does not match packet_count"
                   " x route length");
        break;
      }
      const double volume =
          edge.cost / static_cast<double>(comm.packet_count);
      double latest_arrival = 0.0;
      for (std::size_t p = 0; p < comm.packet_count; ++p) {
        double prev_finish = src.finish;
        for (std::size_t h = 0; h < hops; ++h) {
          const LinkOccupation& occ =
              comm.occupations[p * hops + h];
          if (occ.link != comm.route[h]) {
            report.add("edge ", e.value(), " packet ", p, " hop ", h,
                       " on the wrong link");
          }
          const double duration =
              volume / topology.link_speed(comm.route[h]);
          if (std::abs((occ.finish - occ.start) - duration) > eps) {
            report.add("edge ", e.value(), " packet ", p, " hop ", h,
                       " slot length ", occ.finish - occ.start,
                       " != volume/s = ", duration);
          }
          // Store-and-forward: a hop may begin only after the packet
          // fully crossed the previous one.
          if (occ.start < prev_finish - eps) {
            report.add("edge ", e.value(), " packet ", p, " hop ", h,
                       " starts before the previous hop finished");
          }
          prev_finish = occ.finish;
        }
        latest_arrival = std::max(latest_arrival, prev_finish);
      }
      if (std::abs(comm.arrival - latest_arrival) > eps) {
        report.add("edge ", e.value(),
                   " arrival differs from the last packet's finish");
      }
      if (dst.start < comm.arrival - eps) {
        report.add("edge ", e.value(),
                   " destination starts before data arrival");
      }
      break;
    }
    case Kind::kBandwidth: {
      try {
        topology.validate_route(comm.route, src.processor, dst.processor);
      } catch (const std::invalid_argument& broken) {
        report.add("edge ", e.value(), " route invalid: ", broken.what());
        break;
      }
      if (comm.profiles.size() != comm.route.size()) {
        report.add("edge ", e.value(),
                   " profile count differs from route length");
        break;
      }
      // The fluid sweep may drop sub-epsilon slivers at segment
      // boundaries; tolerate the resulting bounded volume drift.
      const double volume_eps =
          std::max(eps, 1e-5 * std::max(1.0, edge.cost));
      for (std::size_t i = 0; i < comm.profiles.size(); ++i) {
        const timeline::RateProfile& profile = comm.profiles[i];
        if (std::abs(profile.volume() - edge.cost) > volume_eps) {
          report.add("edge ", e.value(), " hop ", i, " moves volume ",
                     profile.volume(), " != c(e) = ", edge.cost);
        }
        if (i == 0) {
          if (profile.start_time() < src.finish - eps) {
            report.add("edge ", e.value(),
                       " starts transferring before the source finishes");
          }
        } else {
          // Fluid causality: outflow never ahead of inflow. Check at all
          // breakpoints of both profiles.
          const timeline::RateProfile& inflow = comm.profiles[i - 1];
          std::vector<double> points = inflow.breakpoints();
          const std::vector<double> more = profile.breakpoints();
          points.insert(points.end(), more.begin(), more.end());
          std::sort(points.begin(), points.end());
          for (double t : points) {
            if (profile.cumulative(t) >
                inflow.cumulative(t) + volume_eps) {
              report.add("edge ", e.value(), " hop ", i,
                         " sends data before it arrives (t=", t, ")");
              break;
            }
          }
        }
      }
      if (!comm.profiles.empty() &&
          std::abs(comm.arrival - comm.profiles.back().finish_time()) >
              eps) {
        report.add("edge ", e.value(),
                   " arrival differs from last-hop transfer finish");
      }
      if (dst.start < comm.arrival - eps) {
        report.add("edge ", e.value(),
                   " destination starts before data arrival");
      }
      break;
    }
  }

  // Precedence holds in every model.
  if (dst.start < src.finish - eps) {
    report.add("edge ", e.value(),
               " precedence violated: destination starts at ", dst.start,
               " before source finish ", src.finish);
  }
}

void check_domain_capacity(const dag::TaskGraph& graph,
                           const net::Topology& topology,
                           const Schedule& schedule, double eps,
                           Reporter& report) {
  // Exclusive slots: per contention domain, intervals must be disjoint.
  std::map<net::DomainId, std::vector<std::pair<double, double>>> intervals;
  // Bandwidth profiles: per domain, summed rates must fit the capacity.
  struct RateEvent {
    double time;
    double delta;
  };
  std::map<net::DomainId, std::vector<RateEvent>> events;
  std::map<net::DomainId, double> capacity;

  for (dag::EdgeId e : graph.all_edges()) {
    const EdgeCommunication& comm = schedule.communication(e);
    if (comm.kind == EdgeCommunication::Kind::kExclusive ||
        comm.kind == EdgeCommunication::Kind::kPacketized) {
      for (const LinkOccupation& occ : comm.occupations) {
        if (occ.finish - occ.start > eps) {
          intervals[topology.domain(occ.link)].emplace_back(occ.start,
                                                            occ.finish);
        }
      }
    } else if (comm.kind == EdgeCommunication::Kind::kBandwidth) {
      for (std::size_t i = 0; i < comm.profiles.size(); ++i) {
        const net::DomainId domain = topology.domain(comm.route[i]);
        capacity[domain] = topology.link_speed(comm.route[i]);
        for (const timeline::RateSegment& seg :
             comm.profiles[i].segments()) {
          events[domain].push_back(RateEvent{seg.start, seg.rate});
          events[domain].push_back(RateEvent{seg.end, -seg.rate});
        }
      }
    }
  }

  for (auto& [domain, list] : intervals) {
    std::sort(list.begin(), list.end());
    for (std::size_t i = 1; i < list.size(); ++i) {
      if (list[i - 1].second > list[i].first + eps) {
        report.add("contention domain ", domain.value(),
                   " has overlapping exclusive slots at t=", list[i].first);
        break;
      }
    }
  }

  for (auto& [domain, list] : events) {
    std::sort(list.begin(), list.end(),
              [](const RateEvent& a, const RateEvent& b) {
                if (a.time != b.time) return a.time < b.time;
                return a.delta < b.delta;  // process releases first
              });
    double load = 0.0;
    const double cap = capacity[domain];
    for (const RateEvent& ev : list) {
      load += ev.delta;
      if (load > cap + 1e-6 * std::max(1.0, cap)) {
        report.add("contention domain ", domain.value(),
                   " exceeds capacity at t=", ev.time, ": load ", load,
                   " > ", cap);
        break;
      }
    }
  }
}

}  // namespace

std::vector<std::string> validate(const dag::TaskGraph& graph,
                                  const net::Topology& topology,
                                  const Schedule& schedule,
                                  const ValidationOptions& options) {
  Reporter report;
  const double eps = options.epsilon;
  if (schedule.num_tasks() != graph.num_tasks() ||
      schedule.num_edges() != graph.num_edges()) {
    report.add("schedule dimensions do not match the task graph");
    return report.take();
  }
  check_tasks(graph, topology, schedule, eps, report);
  check_processor_exclusivity(graph, schedule, eps, report);
  for (dag::EdgeId e : graph.all_edges()) {
    check_edge(graph, topology, schedule, e, eps,
               options.allow_contention_free, report);
  }
  check_domain_capacity(graph, topology, schedule, eps, report);

  // Makespan is derived, but algorithms report through it; re-derive.
  double latest = 0.0;
  for (dag::TaskId t : graph.all_tasks()) {
    if (schedule.task(t).placed()) {
      latest = std::max(latest, schedule.task(t).finish);
    }
  }
  if (std::abs(latest - schedule.makespan()) > eps) {
    report.add("makespan ", schedule.makespan(),
               " differs from the latest task finish ", latest);
  }
  return report.take();
}

bool is_valid(const dag::TaskGraph& graph, const net::Topology& topology,
              const Schedule& schedule, const ValidationOptions& options) {
  return validate(graph, topology, schedule, options).empty();
}

void validate_or_throw(const dag::TaskGraph& graph,
                       const net::Topology& topology,
                       const Schedule& schedule,
                       const ValidationOptions& options) {
  const std::vector<std::string> violations =
      validate(graph, topology, schedule, options);
  if (!violations.empty()) {
    std::ostringstream os;
    os << "invalid schedule from " << schedule.algorithm() << ":";
    for (const std::string& violation : violations) {
      os << "\n  - " << violation;
    }
    throw std::runtime_error(os.str());
  }
}

}  // namespace edgesched::sched
