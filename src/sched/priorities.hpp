// Task priority schemes and list orders.
//
// All schedulers in the paper process tasks in a static priority order
// (bottom level, §2.1) restricted by precedence: among the ready tasks the
// one with the highest priority is scheduled next.
#pragma once

#include <vector>

#include "dag/task_graph.hpp"

namespace edgesched::sched {

enum class PriorityScheme {
  kBottomLevel,                 ///< bl with communication (paper default)
  kBottomLevelComputationOnly,  ///< bl over computation costs only
  kTopLevelPlusBottomLevel,     ///< tl + bl (critical-path membership)
};

/// Per-task priority values under the given scheme.
[[nodiscard]] std::vector<double> priorities(const dag::TaskGraph& graph,
                                             PriorityScheme scheme);

/// Precedence-safe list order: repeatedly pick the ready task with the
/// highest priority (ties broken by smaller task id, so the order is
/// deterministic).
[[nodiscard]] std::vector<dag::TaskId> list_order(
    const dag::TaskGraph& graph, const std::vector<double>& priority);

/// Convenience: list order under a scheme.
[[nodiscard]] std::vector<dag::TaskId> list_order(
    const dag::TaskGraph& graph,
    PriorityScheme scheme = PriorityScheme::kBottomLevel);

}  // namespace edgesched::sched
