// Fixed-assignment contention scheduling.
//
// Several schedulers — the classic replay, the genetic algorithm and
// simulated annealing search (metaheuristics the paper's introduction
// cites as the alternative family) — all need the same primitive: given a
// complete task→processor map, build the best contention-aware schedule
// for it (list order by bottom level, ready-moment shipping, BFS routes,
// first-fit link insertion) and report its makespan. This module is that
// primitive.
#pragma once

#include <vector>

#include "dag/task_graph.hpp"
#include "net/topology.hpp"
#include "sched/priorities.hpp"
#include "sched/schedule.hpp"

namespace edgesched::sched {

/// processor[i] is the processor of task i; every entry must name a valid
/// processor of the topology.
using Assignment = std::vector<net::NodeId>;

struct AssignmentOptions {
  PriorityScheme priority = PriorityScheme::kBottomLevel;
  /// Insertion placement on processors (see ba.hpp). The metaheuristics
  /// evaluate with the same policy the list schedulers use by default.
  bool task_insertion = true;
  /// Algorithm label stamped on the produced schedules.
  std::string label = "ASSIGNMENT";
};

/// Builds the full contention-aware schedule realising `assignment`.
/// Edges are routed over minimal BFS paths and booked with first-fit
/// insertion; tasks execute in bottom-level list order. The result passes
/// the full validator.
[[nodiscard]] Schedule schedule_assignment(
    const dag::TaskGraph& graph, const net::Topology& topology,
    const Assignment& assignment, const AssignmentOptions& options = {});

/// Convenience: makespan of `schedule_assignment` (the metaheuristics'
/// fitness function).
[[nodiscard]] double assignment_makespan(
    const dag::TaskGraph& graph, const net::Topology& topology,
    const Assignment& assignment, const AssignmentOptions& options = {});

/// Extracts the assignment realised by an existing schedule.
[[nodiscard]] Assignment assignment_of(const dag::TaskGraph& graph,
                                       const Schedule& schedule);

}  // namespace edgesched::sched
