#include "sched/network_model.hpp"

namespace edgesched::sched {

namespace {

class ExclusiveNetworkModel final : public NetworkStateModel {
 public:
  ExclusiveNetworkModel(const net::Topology& topology, std::size_t num_edges,
                        double hop_delay, bool refresh_edge_records)
      : state_(topology, num_edges, hop_delay),
        refresh_edge_records_(refresh_edge_records) {}

  [[nodiscard]] net::ProbeResult probe(net::LinkId link,
                                       const net::ProbeState& state,
                                       double cost) const override {
    const timeline::Placement placement = state_.probe_link(
        link, state.earliest_start, state.min_finish, cost);
    return net::ProbeResult{placement.start, placement.finish};
  }

  [[nodiscard]] std::uint64_t generation() const noexcept override {
    return state_.generation();
  }

  [[nodiscard]] ExclusiveNetworkState* exclusive_state() noexcept override {
    return &state_;
  }

  void finalize(const dag::TaskGraph& graph, Schedule& out) override {
    if (!refresh_edge_records_) {
      return;
    }
    // Deferral may have moved earlier edges' occupations after their
    // communications were recorded; refresh from the final records.
    for (dag::EdgeId e : graph.all_edges()) {
      const EdgeRecord& record = state_.record(e);
      if (record.scheduled()) {
        EdgeCommunication comm;
        comm.kind = EdgeCommunication::Kind::kExclusive;
        comm.route = record.route;
        comm.occupations = record.occupations;
        comm.arrival = record.occupations.back().finish;
        out.set_communication(e, std::move(comm));
      }
    }
  }

 private:
  ExclusiveNetworkState state_;
  bool refresh_edge_records_;
};

class BandwidthNetworkModel final : public NetworkStateModel {
 public:
  BandwidthNetworkModel(const net::Topology& topology, double hop_delay)
      : state_(topology, hop_delay) {}

  [[nodiscard]] net::ProbeResult probe(net::LinkId link,
                                       const net::ProbeState& state,
                                       double cost) const override {
    // Relaxation key: earliest finish of the full volume using the link's
    // remaining bandwidth (the bandwidth analogue of §4.3).
    return net::ProbeResult{
        state_.probe_first_flow(link, state.earliest_start),
        state_.probe_finish(link, state.earliest_start, state.min_finish,
                            cost)};
  }

  [[nodiscard]] std::uint64_t generation() const noexcept override {
    return state_.generation();
  }

  [[nodiscard]] BandwidthNetworkState* bandwidth_state() noexcept override {
    return &state_;
  }

 private:
  BandwidthNetworkState state_;
};

}  // namespace

std::unique_ptr<NetworkStateModel> make_network_model(
    const AlgorithmSpec& spec, const net::Topology& topology,
    std::size_t num_edges) {
  if (spec.insertion == InsertionPolicyKind::kFluidBandwidth) {
    return std::make_unique<BandwidthNetworkModel>(topology, spec.hop_delay);
  }
  return std::make_unique<ExclusiveNetworkModel>(
      topology, num_edges, spec.hop_delay, spec.refresh_edge_records);
}

}  // namespace edgesched::sched
