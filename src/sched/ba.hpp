// Basic Algorithm (BA) — Sinnen & Sousa's contention-aware list scheduler
// (§3), the baseline of the paper's evaluation.
//
//   1. Order tasks by static bottom level under precedence constraints.
//   2. For each task, tentatively schedule it (with all incoming edge
//      communications) on every processor and keep the processor giving
//      the earliest finish time.
//   3. Routing is *minimal* (fewest hops, BFS) and static; edges are
//      booked on links with first-fit ("basic") insertion.
#pragma once

#include "sched/algorithm_spec.hpp"
#include "sched/priorities.hpp"
#include "sched/scheduler.hpp"

namespace edgesched::sched {

/// How BA evaluates "the processor that allows the earliest finish time".
enum class BaProcessorSelection {
  /// The paper's reading (§4.1): the choice *ignores the effect of edge
  /// communication* — EFT is the ready moment plus the execution time on
  /// the processor. Edges are still routed and booked afterwards; only
  /// the selection is communication-blind. This is the baseline the
  /// paper's figures compare against.
  kReadyTimeEft,
  /// Sinnen's original formulation: tentatively schedule the task with
  /// all incoming communications on every processor and keep the true
  /// earliest finish. Stronger and much more expensive; exposed for the
  /// ablation bench.
  kTentativeEft,
};

class BasicAlgorithm final : public Scheduler {
 public:
  struct Options {
    PriorityScheme priority = PriorityScheme::kBottomLevel;
    BaProcessorSelection selection = BaProcessorSelection::kReadyTimeEft;
    /// Paper semantics (§4.1): scheduling is dynamic, so every incoming
    /// edge of a ready task starts shipping at the task's ready moment —
    /// the latest predecessor finish. Setting `eager_communication`
    /// instead lets each edge leave at its own source's finish (Sinnen's
    /// original formulation); exposed for the ablation bench.
    bool eager_communication = false;
    /// Task placement policy. §2.1 defines t_s(n, P) = max(t_dr, t_f(P))
    /// with t_f(P) "the current finish time of P"; we read processor
    /// booking with Sinnen's insertion technique (tasks may fill idle
    /// gaps), which reproduces the paper's reported magnitudes — the
    /// literal append reading collapses them (see DESIGN.md §6 and the
    /// model ablation bench). False switches to pure append.
    bool task_insertion = true;
    /// Per-station forwarding latency (§2.2 neglects it; "it can be
    /// included if necessary"). Each extra hop of a route sees the data
    /// this much later.
    double hop_delay = 0.0;
  };

  BasicAlgorithm() = default;
  explicit BasicAlgorithm(const Options& options) : options_(options) {}

  /// The engine bundle these options denote (BA is a preset of the
  /// policy-based list-scheduling engine; see sched/engine.hpp).
  [[nodiscard]] static AlgorithmSpec spec(const Options& options);

  [[nodiscard]] Schedule schedule(
      const dag::TaskGraph& graph,
      const net::Topology& topology) const override;
  [[nodiscard]] Schedule schedule(
      const dag::TaskGraph& graph,
      const PlatformContext& platform) const override;
  [[nodiscard]] std::string name() const override { return "BA"; }
  [[nodiscard]] std::uint64_t fingerprint() const override;

 private:
  Options options_;
};

}  // namespace edgesched::sched
