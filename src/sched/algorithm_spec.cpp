#include "sched/algorithm_spec.hpp"

#include <stdexcept>

#include "util/hash.hpp"

namespace edgesched::sched {

namespace {

const char* selection_label(SelectionPolicyKind kind) {
  switch (kind) {
    case SelectionPolicyKind::kBlindEft:
      return "blind-eft";
    case SelectionPolicyKind::kTentativeEft:
      return "tentative-eft";
    case SelectionPolicyKind::kMlsEstimate:
      return "mls-estimate";
  }
  return "?";
}

const char* edge_order_label(EdgeOrderPolicyKind kind) {
  switch (kind) {
    case EdgeOrderPolicyKind::kPredecessorOrder:
      return "predecessor";
    case EdgeOrderPolicyKind::kByCostDescending:
      return "cost-desc";
  }
  return "?";
}

const char* routing_label(RoutingPolicyKind kind) {
  switch (kind) {
    case RoutingPolicyKind::kBfsMinimal:
      return "bfs-minimal";
    case RoutingPolicyKind::kProbeDijkstra:
      return "probe-dijkstra";
  }
  return "?";
}

const char* insertion_label(InsertionPolicyKind kind) {
  switch (kind) {
    case InsertionPolicyKind::kFirstFit:
      return "first-fit";
    case InsertionPolicyKind::kOptimal:
      return "optimal";
    case InsertionPolicyKind::kPacketized:
      return "packetized";
    case InsertionPolicyKind::kFluidBandwidth:
      return "fluid-bandwidth";
  }
  return "?";
}

}  // namespace

std::uint64_t AlgorithmSpec::fingerprint() const noexcept {
  Fingerprint fp;
  fp.mix(std::string_view("edgesched.AlgorithmSpec.v1"));
  fp.mix(std::string_view(name));
  fp.mix(static_cast<std::uint64_t>(priority));
  fp.mix(static_cast<std::uint64_t>(selection));
  fp.mix(static_cast<std::uint64_t>(insertion_aware_estimate));
  fp.mix(static_cast<std::uint64_t>(edge_order));
  fp.mix(static_cast<std::uint64_t>(routing));
  fp.mix(static_cast<std::uint64_t>(route_memo));
  fp.mix(static_cast<std::uint64_t>(insertion));
  fp.mix(packet_size);
  fp.mix(static_cast<std::uint64_t>(eager_communication));
  fp.mix(static_cast<std::uint64_t>(task_insertion));
  fp.mix(hop_delay);
  fp.mix(static_cast<std::uint64_t>(refresh_edge_records));
  return fp.value();
}

void AlgorithmSpec::validate() const {
  if (name.empty()) {
    throw std::invalid_argument("AlgorithmSpec: name must be non-empty");
  }
  if (selection == SelectionPolicyKind::kTentativeEft &&
      insertion != InsertionPolicyKind::kFirstFit) {
    throw std::invalid_argument(
        "AlgorithmSpec: tentative-EFT selection requires first-fit "
        "insertion (the only commit with a clean rollback)");
  }
  if (insertion == InsertionPolicyKind::kOptimal && !refresh_edge_records) {
    throw std::invalid_argument(
        "AlgorithmSpec: optimal insertion requires refresh_edge_records "
        "(deferral can move occupations booked by earlier edges)");
  }
  if (refresh_edge_records &&
      (insertion == InsertionPolicyKind::kPacketized ||
       insertion == InsertionPolicyKind::kFluidBandwidth)) {
    throw std::invalid_argument(
        "AlgorithmSpec: refresh_edge_records applies only to exclusive "
        "circuit insertion (first-fit / optimal)");
  }
  if (insertion == InsertionPolicyKind::kPacketized && packet_size <= 0.0) {
    throw std::invalid_argument("AlgorithmSpec: packet_size must be > 0");
  }
  if (hop_delay < 0.0) {
    throw std::invalid_argument("AlgorithmSpec: hop_delay must be >= 0");
  }
}

std::string AlgorithmSpec::describe() const {
  std::string text;
  text.reserve(96);
  text += "selection=";
  text += selection_label(selection);
  if (selection == SelectionPolicyKind::kMlsEstimate &&
      insertion_aware_estimate) {
    text += "(insertion-aware)";
  }
  text += " order=";
  text += edge_order_label(edge_order);
  text += " routing=";
  text += routing_label(routing);
  if (routing == RoutingPolicyKind::kProbeDijkstra && route_memo) {
    text += "(memo)";
  }
  text += " insertion=";
  text += insertion_label(insertion);
  if (eager_communication) text += " eager";
  if (!task_insertion) text += " append";
  return text;
}

}  // namespace edgesched::sched
