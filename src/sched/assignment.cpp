#include "sched/assignment.hpp"

#include <algorithm>

#include "net/routing.hpp"
#include "sched/network_state.hpp"

namespace edgesched::sched {

Schedule schedule_assignment(const dag::TaskGraph& graph,
                             const net::Topology& topology,
                             const Assignment& assignment,
                             const AssignmentOptions& options) {
  throw_if(assignment.size() != graph.num_tasks(),
           "schedule_assignment: assignment size mismatch");
  for (net::NodeId p : assignment) {
    throw_if(!p.valid() || p.index() >= topology.num_nodes() ||
                 !topology.is_processor(p),
             "schedule_assignment: assignment names a non-processor");
  }

  Schedule out(options.label, graph.num_tasks(), graph.num_edges());
  const std::vector<dag::TaskId> order =
      list_order(graph, options.priority);
  ExclusiveNetworkState network(topology, graph.num_edges());
  MachineState machines(topology);
  net::RouteCache routes(topology);

  for (dag::TaskId task : order) {
    const net::NodeId processor = assignment[task.index()];
    double ready_moment = 0.0;
    for (dag::EdgeId e : graph.in_edges(task)) {
      ready_moment =
          std::max(ready_moment, out.task(graph.edge(e).src).finish);
    }
    double data_ready = ready_moment;
    for (dag::EdgeId e : graph.in_edges(task)) {
      const dag::Edge& edge = graph.edge(e);
      const TaskPlacement& src = out.task(edge.src);
      EdgeCommunication comm;
      comm.arrival = src.finish;
      if (src.processor == processor || edge.cost <= 0.0) {
        comm.kind = EdgeCommunication::Kind::kLocal;
      } else {
        const net::Route& route = routes.route(src.processor, processor);
        comm.arrival =
            network.commit_edge_basic(e, route, ready_moment, edge.cost);
        comm.kind = EdgeCommunication::Kind::kExclusive;
        comm.route = route;
        comm.occupations = network.record(e).occupations;
      }
      data_ready = std::max(data_ready, comm.arrival);
      out.set_communication(e, std::move(comm));
    }
    const double duration =
        graph.weight(task) / topology.processor_speed(processor);
    const double start = machines.start_for(
        processor, data_ready, duration, options.task_insertion);
    machines.commit(processor, task, start, duration);
    out.place_task(task, TaskPlacement{processor, start, start + duration});
  }
  return out;
}

double assignment_makespan(const dag::TaskGraph& graph,
                           const net::Topology& topology,
                           const Assignment& assignment,
                           const AssignmentOptions& options) {
  return schedule_assignment(graph, topology, assignment, options)
      .makespan();
}

Assignment assignment_of(const dag::TaskGraph& graph,
                         const Schedule& schedule) {
  Assignment assignment(graph.num_tasks());
  for (dag::TaskId t : graph.all_tasks()) {
    assignment[t.index()] = schedule.task(t).processor;
  }
  return assignment;
}

}  // namespace edgesched::sched
