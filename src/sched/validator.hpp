// Independent schedule checker.
//
// Every property the scheduling model demands is re-verified here from
// the Schedule alone, without trusting any scheduler internals:
//   * every task is placed on a processor, with finish = start + w/s(P);
//   * tasks on one processor never overlap (no preemption, §2.1);
//   * precedence: a task starts no earlier than each predecessor's finish
//     and no earlier than its data arrivals;
//   * cross-processor edges carry a valid route from proc(src) to
//     proc(dst);
//   * exclusive model: per-link slot lengths equal c(e)/s(L); t_es and
//     t_f are non-decreasing along the route (link causality, §2.2);
//     slots within one contention domain never overlap;
//   * bandwidth model: per-link volumes equal c(e); cumulative outflow
//     never exceeds cumulative inflow of the previous link; the summed
//     rates within one contention domain never exceed its capacity;
//   * the reported makespan equals the latest task finish.
//
// The property test-suites run every schedule produced by every algorithm
// through this checker.
#pragma once

#include <string>
#include <vector>

#include "dag/task_graph.hpp"
#include "net/topology.hpp"
#include "sched/schedule.hpp"

namespace edgesched::sched {

struct ValidationOptions {
  /// Absolute tolerance for all time comparisons.
  double epsilon = 1e-6;
  /// kContentionFree schedules skip the link-resource checks (they book
  /// none); set to false to reject such schedules outright.
  bool allow_contention_free = true;
};

/// Returns a list of human-readable violations; empty means valid.
[[nodiscard]] std::vector<std::string> validate(
    const dag::TaskGraph& graph, const net::Topology& topology,
    const Schedule& schedule, const ValidationOptions& options = {});

/// Convenience wrapper: true iff `validate` returns no violations.
[[nodiscard]] bool is_valid(const dag::TaskGraph& graph,
                            const net::Topology& topology,
                            const Schedule& schedule,
                            const ValidationOptions& options = {});

/// Throws std::runtime_error with all violations joined when invalid.
void validate_or_throw(const dag::TaskGraph& graph,
                       const net::Topology& topology,
                       const Schedule& schedule,
                       const ValidationOptions& options = {});

}  // namespace edgesched::sched
