// Abstract scheduler interface: map a task DAG onto a network topology.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dag/task_graph.hpp"
#include "net/topology.hpp"
#include "sched/schedule.hpp"

namespace edgesched::sched {

class PlatformContext;  // sched/platform.hpp

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Produces a complete schedule. The graph must be acyclic and the
  /// topology must contain at least one processor with all processors
  /// mutually reachable.
  [[nodiscard]] virtual Schedule schedule(
      const dag::TaskGraph& graph, const net::Topology& topology) const = 0;

  /// Schedules against a shared, immutable `PlatformContext` (one
  /// per-topology snapshot amortised across many runs; see
  /// sched/platform.hpp). Must return a schedule byte-identical to
  /// `schedule(graph, context.topology())`. The default forwards to the
  /// raw-topology overload — correct for every scheduler; the
  /// engine-backed ones override it to reuse the context's route table
  /// and pooled workspaces.
  [[nodiscard]] virtual Schedule schedule(
      const dag::TaskGraph& graph, const PlatformContext& platform) const;

  /// Short display name ("BA", "OIHSA", "BBSA", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Structural identity of this scheduler's *configuration*, used by the
  /// service layer to key its schedule cache. Two schedulers with equal
  /// fingerprints must produce identical schedules on every instance.
  /// Defaults to a hash of `name()`; engine-backed schedulers override
  /// with their `AlgorithmSpec` fingerprint so two instances of the same
  /// class with different options key apart.
  [[nodiscard]] virtual std::uint64_t fingerprint() const;

 protected:
  /// Common argument validation for all schedulers.
  static void check_inputs(const dag::TaskGraph& graph,
                           const net::Topology& topology);
};

/// All contention-aware algorithms of the reproduction, for sweep drivers.
[[nodiscard]] std::vector<std::unique_ptr<Scheduler>> all_schedulers();

}  // namespace edgesched::sched
