// Genetic-algorithm scheduler over processor assignments.
//
// The paper's introduction names genetic algorithms [5] as one of the
// established scheduling families list scheduling trades against. This
// implementation searches the task→processor assignment space with a
// steady-state GA; every chromosome is evaluated by the *contention-aware*
// fixed-assignment scheduler, so the fitness reflects real link queueing,
// not the idealised model. Seeded with the OIHSA and BA assignments plus
// random immigrants, it answers "how much makespan is left on the table
// by the one-pass heuristics?" at a few hundred times their cost.
//
// Every immigrant and offspring draws all of its randomness from its own
// (seed, phase, member)-keyed stream, so population generation and
// fitness evaluation fan across the intra-run worker team
// (sched/intra_run.hpp) while the search trajectory stays bit-identical
// to the serial run at any worker count. See docs/parallelism.md.
#pragma once

#include <cstdint>

#include "sched/assignment.hpp"
#include "sched/scheduler.hpp"

namespace edgesched::sched {

class GeneticScheduler final : public Scheduler {
 public:
  struct Options {
    std::size_t population = 24;
    std::size_t generations = 40;
    /// Per-gene mutation probability.
    double mutation_rate = 0.02;
    /// Fraction of the population replaced each generation.
    double replacement_fraction = 0.5;
    /// Tournament size for parent selection.
    std::size_t tournament = 3;
    std::uint64_t seed = 1;
    AssignmentOptions evaluation;
  };

  GeneticScheduler() = default;
  explicit GeneticScheduler(const Options& options);

  [[nodiscard]] Schedule schedule(
      const dag::TaskGraph& graph,
      const net::Topology& topology) const override;
  /// Keep the base's PlatformContext overload visible (no per-topology
  /// derived state here, so the default forwarding is already right).
  using Scheduler::schedule;
  [[nodiscard]] std::string name() const override { return "GA"; }

 private:
  Options options_;
};

}  // namespace edgesched::sched
