#include "sched/schedule.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/hash.hpp"

namespace edgesched::sched {

Schedule::Schedule(std::string algorithm, std::size_t num_tasks,
                   std::size_t num_edges)
    : algorithm_(std::move(algorithm)),
      tasks_(num_tasks),
      edges_(num_edges) {}

void Schedule::place_task(dag::TaskId task, const TaskPlacement& placement) {
  EDGESCHED_ASSERT(task.index() < tasks_.size());
  EDGESCHED_ASSERT_MSG(!tasks_[task.index()].placed(),
                       "task placed twice");
  tasks_[task.index()] = placement;
}

void Schedule::set_communication(dag::EdgeId edge, EdgeCommunication comm) {
  EDGESCHED_ASSERT(edge.index() < edges_.size());
  edges_[edge.index()] = std::move(comm);
}

double Schedule::makespan() const noexcept {
  double latest = 0.0;
  for (const TaskPlacement& placement : tasks_) {
    latest = std::max(latest, placement.finish);
  }
  return latest;
}

double Schedule::processor_utilisation(const dag::TaskGraph& graph,
                                       const net::Topology& topology) const {
  (void)graph;
  const double total = makespan();
  if (total <= 0.0 || topology.num_processors() == 0) {
    return 0.0;
  }
  double busy = 0.0;
  for (const TaskPlacement& placement : tasks_) {
    if (placement.placed()) {
      busy += placement.finish - placement.start;
    }
  }
  return busy / (total * static_cast<double>(topology.num_processors()));
}

std::uint64_t Schedule::fingerprint() const noexcept {
  Fingerprint fp;
  fp.mix(std::string_view(algorithm_));
  fp.mix(static_cast<std::uint64_t>(tasks_.size()));
  for (const TaskPlacement& p : tasks_) {
    fp.mix(p.placed() ? static_cast<std::uint64_t>(p.processor.value())
                      : ~std::uint64_t{0});
    fp.mix(p.start);
    fp.mix(p.finish);
  }
  fp.mix(static_cast<std::uint64_t>(edges_.size()));
  for (const EdgeCommunication& comm : edges_) {
    fp.mix(static_cast<std::uint64_t>(comm.kind));
    fp.mix(static_cast<std::uint64_t>(comm.route.size()));
    for (const net::LinkId link : comm.route) {
      fp.mix(static_cast<std::uint64_t>(link.value()));
    }
    fp.mix(static_cast<std::uint64_t>(comm.occupations.size()));
    for (const LinkOccupation& occ : comm.occupations) {
      fp.mix(static_cast<std::uint64_t>(occ.link.value()));
      fp.mix(occ.earliest_start);
      fp.mix(occ.start);
      fp.mix(occ.finish);
    }
    fp.mix(static_cast<std::uint64_t>(comm.profiles.size()));
    for (const timeline::RateProfile& profile : comm.profiles) {
      fp.mix(static_cast<std::uint64_t>(profile.segments().size()));
      for (const timeline::RateSegment& seg : profile.segments()) {
        fp.mix(seg.start);
        fp.mix(seg.end);
        fp.mix(seg.rate);
      }
    }
    fp.mix(static_cast<std::uint64_t>(comm.packet_count));
    fp.mix(comm.arrival);
  }
  return fp.value();
}

std::string Schedule::to_string(const dag::TaskGraph& graph,
                                const net::Topology& topology) const {
  std::ostringstream os;
  os << "schedule[" << algorithm_ << "] makespan=" << makespan() << "\n";
  // Group tasks by processor, ordered by start time.
  std::map<net::NodeId, std::vector<dag::TaskId>> by_processor;
  for (dag::TaskId t : graph.all_tasks()) {
    if (tasks_[t.index()].placed()) {
      by_processor[tasks_[t.index()].processor].push_back(t);
    }
  }
  for (auto& [proc, task_list] : by_processor) {
    std::sort(task_list.begin(), task_list.end(),
              [&](dag::TaskId a, dag::TaskId b) {
                return tasks_[a.index()].start < tasks_[b.index()].start;
              });
    os << "  " << topology.node(proc).name << ":";
    for (dag::TaskId t : task_list) {
      const TaskPlacement& p = tasks_[t.index()];
      os << ' ' << graph.task(t).name << "[" << p.start << ',' << p.finish
         << ')';
    }
    os << "\n";
  }
  for (dag::EdgeId e : graph.all_edges()) {
    const EdgeCommunication& comm = edges_[e.index()];
    if (comm.kind == EdgeCommunication::Kind::kLocal) {
      continue;
    }
    const dag::Edge& edge = graph.edge(e);
    os << "  edge " << graph.task(edge.src).name << "->"
       << graph.task(edge.dst).name << " arrival=" << comm.arrival;
    if (comm.kind == EdgeCommunication::Kind::kExclusive) {
      for (const LinkOccupation& occ : comm.occupations) {
        os << " L" << occ.link.value() << "[" << occ.start << ','
           << occ.finish << ')';
      }
    } else if (comm.kind == EdgeCommunication::Kind::kPacketized) {
      os << " packets=" << comm.packet_count;
    } else if (comm.kind == EdgeCommunication::Kind::kBandwidth) {
      for (std::size_t i = 0; i < comm.profiles.size(); ++i) {
        os << " L" << comm.route[i].value() << "(v="
           << comm.profiles[i].volume() << ")";
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace edgesched::sched
