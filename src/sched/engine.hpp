// The unified contention-aware list-scheduling engine.
//
// One §4 loop for every algorithm in the reproduction: tasks are taken in
// static priority order; each ready task picks a processor through the
// spec's `ProcessorSelectionPolicy`, its incoming edges book the network
// in the `EdgeOrderPolicy`'s order, each non-local communication is routed
// by the `RoutingPolicy` and committed by the `InsertionPolicy` into the
// `NetworkStateModel`, and the task is placed. BA, OIHSA, BBSA and
// PACKET-BA are preset `AlgorithmSpec` bundles over these seams (see
// registry.hpp) and produce bit-identical schedules to the dedicated
// implementations they replaced (tests/engine_golden_test.cpp pins that).
//
// The engine also instruments uniformly: spans named "<algo>/schedule",
// "<algo>/select_processor" and "<algo>/route_edge" (obs/naming.hpp),
// task/edge decision records when a DecisionLog is active, and batched
// tasks-placed / edges-routed / candidates-evaluated counters.
//
// For selection policies that score processors independently and
// read-only (blind EFT, the MLS estimate), the engine owns the per-task
// candidate scan and may fan it across an intra-run worker team
// (sched/intra_run.hpp). The scan is speculative — workers probe the
// timelines concurrently, nothing commits until a deterministic
// reduction picks the winner — and byte-identical to the serial loop at
// every worker count. See docs/parallelism.md for the contract.
#pragma once

#include <cstdint>

#include "dag/task_graph.hpp"
#include "net/topology.hpp"
#include "obs/naming.hpp"
#include "sched/algorithm_spec.hpp"
#include "sched/platform.hpp"
#include "sched/schedule.hpp"
#include "sched/scheduler.hpp"

namespace edgesched::sched {

class ListSchedulingEngine {
 public:
  /// Validates the spec (AlgorithmSpec::validate) and interns its span
  /// names; throws std::invalid_argument on an inconsistent bundle.
  explicit ListSchedulingEngine(AlgorithmSpec spec);

  [[nodiscard]] const AlgorithmSpec& spec() const noexcept { return spec_; }

  /// Runs the list-scheduling loop. Reentrant: all mutable state is
  /// per-run, so one engine may serve concurrent runs (the service
  /// layer's parallel sweeps rely on this). This overload derives
  /// everything from the raw topology — the right shape for a one-off
  /// schedule on a fabric no other run shares.
  [[nodiscard]] Schedule run(const dag::TaskGraph& graph,
                             const net::Topology& topology) const;

  /// Runs the loop against a shared `PlatformContext`: routes come from
  /// the context's immutable table, the MLS estimate from its cached
  /// reduction, and the per-run scratch from its workspace pool. Safe
  /// from any number of threads concurrently over one context, and
  /// byte-identical to the raw-topology overload
  /// (tests/platform_context_property_test.cpp).
  [[nodiscard]] Schedule run(const dag::TaskGraph& graph,
                             const PlatformContext& platform) const;

 private:
  [[nodiscard]] Schedule run_impl(const dag::TaskGraph& graph,
                                  const net::Topology& topology,
                                  const PlatformContext* platform,
                                  Workspace& workspace) const;

  AlgorithmSpec spec_;
  obs::SpanNames names_;
};

/// Scheduler adapter over an `AlgorithmSpec`: any policy bundle — preset
/// or novel — as a `Scheduler`, usable wherever the dedicated classes
/// are (sweeps, the service layer, ablation benches).
class SpecScheduler final : public Scheduler {
 public:
  explicit SpecScheduler(AlgorithmSpec spec) : engine_(std::move(spec)) {}

  [[nodiscard]] Schedule schedule(
      const dag::TaskGraph& graph,
      const net::Topology& topology) const override {
    check_inputs(graph, topology);
    return engine_.run(graph, topology);
  }

  [[nodiscard]] Schedule schedule(
      const dag::TaskGraph& graph,
      const PlatformContext& platform) const override {
    check_inputs(graph, platform.topology());
    return engine_.run(graph, platform);
  }

  [[nodiscard]] std::string name() const override {
    return engine_.spec().name;
  }

  [[nodiscard]] std::uint64_t fingerprint() const override {
    return engine_.spec().fingerprint();
  }

 private:
  ListSchedulingEngine engine_;
};

}  // namespace edgesched::sched
