#include "sched/packetized.hpp"

#include "sched/engine.hpp"

namespace edgesched::sched {

AlgorithmSpec PacketizedBa::spec(const Options& options) {
  AlgorithmSpec spec;
  spec.name = "PACKET-BA";
  spec.priority = options.priority;
  // Communication-blind EFT selection, as in the baseline BA.
  spec.selection = SelectionPolicyKind::kBlindEft;
  spec.edge_order = EdgeOrderPolicyKind::kPredecessorOrder;
  spec.routing = RoutingPolicyKind::kBfsMinimal;
  spec.insertion = InsertionPolicyKind::kPacketized;
  spec.packet_size = options.packet_size;
  spec.eager_communication = options.eager_communication;
  spec.task_insertion = options.task_insertion;
  spec.hop_delay = options.hop_delay;
  return spec;
}

Schedule PacketizedBa::schedule(const dag::TaskGraph& graph,
                                const net::Topology& topology) const {
  check_inputs(graph, topology);
  return ListSchedulingEngine(spec(options_)).run(graph, topology);
}

Schedule PacketizedBa::schedule(const dag::TaskGraph& graph,
                                const PlatformContext& platform) const {
  check_inputs(graph, platform.topology());
  return ListSchedulingEngine(spec(options_)).run(graph, platform);
}

std::uint64_t PacketizedBa::fingerprint() const {
  return spec(options_).fingerprint();
}

}  // namespace edgesched::sched
