#include "sched/packetized.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "net/routing.hpp"
#include "sched/network_state.hpp"

namespace edgesched::sched {

Schedule PacketizedBa::schedule(const dag::TaskGraph& graph,
                                const net::Topology& topology) const {
  check_inputs(graph, topology);
  Schedule out(name(), graph.num_tasks(), graph.num_edges());

  const std::vector<dag::TaskId> order =
      list_order(graph, options_.priority);
  ExclusiveNetworkState network(topology, graph.num_edges(),
                                options_.hop_delay);
  MachineState machines(topology);
  net::RouteCache routes(topology);

  for (dag::TaskId task : order) {
    const double weight = graph.weight(task);

    double ready_moment = 0.0;
    for (dag::EdgeId e : graph.in_edges(task)) {
      ready_moment =
          std::max(ready_moment, out.task(graph.edge(e).src).finish);
    }

    // Communication-blind EFT selection, as in the baseline BA.
    net::NodeId best_processor;
    double best_finish = std::numeric_limits<double>::infinity();
    for (net::NodeId processor : topology.processors()) {
      const double duration =
          weight / topology.processor_speed(processor);
      const double start = machines.start_for(
          processor, ready_moment, duration, options_.task_insertion);
      if (start + duration < best_finish) {
        best_finish = start + duration;
        best_processor = processor;
      }
    }

    double data_ready = ready_moment;
    for (dag::EdgeId e : graph.in_edges(task)) {
      const dag::Edge& edge = graph.edge(e);
      const TaskPlacement& src = out.task(edge.src);
      EdgeCommunication comm;
      comm.arrival = src.finish;
      if (src.processor == best_processor || edge.cost <= 0.0) {
        comm.kind = EdgeCommunication::Kind::kLocal;
      } else {
        const double ship_time =
            options_.eager_communication ? src.finish : ready_moment;
        const net::Route& route =
            routes.route(src.processor, best_processor);
        const std::size_t packets = static_cast<std::size_t>(
            std::max(1.0, std::ceil(edge.cost / options_.packet_size)));
        const double volume =
            edge.cost / static_cast<double>(packets);
        double arrival = ship_time;
        for (std::size_t p = 0; p < packets; ++p) {
          arrival = std::max(
              arrival,
              network.commit_packet(e, route, ship_time, volume));
        }
        comm.kind = EdgeCommunication::Kind::kPacketized;
        comm.route = route;
        comm.occupations = network.record(e).occupations;
        comm.packet_count = packets;
        comm.arrival = arrival;
      }
      data_ready = std::max(data_ready, comm.arrival);
      out.set_communication(e, std::move(comm));
    }

    const double duration =
        weight / topology.processor_speed(best_processor);
    const double start = machines.start_for(
        best_processor, data_ready, duration, options_.task_insertion);
    machines.commit(best_processor, task, start, duration);
    out.place_task(task,
                   TaskPlacement{best_processor, start, start + duration});
  }
  return out;
}

}  // namespace edgesched::sched
