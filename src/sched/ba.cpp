#include "sched/ba.hpp"

#include "sched/engine.hpp"

namespace edgesched::sched {

AlgorithmSpec BasicAlgorithm::spec(const Options& options) {
  AlgorithmSpec spec;
  spec.name = "BA";
  spec.priority = options.priority;
  spec.selection = options.selection == BaProcessorSelection::kReadyTimeEft
                       ? SelectionPolicyKind::kBlindEft
                       : SelectionPolicyKind::kTentativeEft;
  spec.edge_order = EdgeOrderPolicyKind::kPredecessorOrder;
  spec.routing = RoutingPolicyKind::kBfsMinimal;
  spec.insertion = InsertionPolicyKind::kFirstFit;
  spec.eager_communication = options.eager_communication;
  spec.task_insertion = options.task_insertion;
  spec.hop_delay = options.hop_delay;
  return spec;
}

Schedule BasicAlgorithm::schedule(const dag::TaskGraph& graph,
                                  const net::Topology& topology) const {
  check_inputs(graph, topology);
  return ListSchedulingEngine(spec(options_)).run(graph, topology);
}

Schedule BasicAlgorithm::schedule(const dag::TaskGraph& graph,
                                  const PlatformContext& platform) const {
  check_inputs(graph, platform.topology());
  return ListSchedulingEngine(spec(options_)).run(graph, platform);
}

std::uint64_t BasicAlgorithm::fingerprint() const {
  return spec(options_).fingerprint();
}

}  // namespace edgesched::sched
