#include "sched/ba.hpp"

#include <algorithm>
#include <limits>

#include "net/routing.hpp"
#include "obs/counters.hpp"
#include "obs/decision_log.hpp"
#include "obs/trace.hpp"
#include "sched/network_state.hpp"

namespace edgesched::sched {

Schedule BasicAlgorithm::schedule(const dag::TaskGraph& graph,
                                  const net::Topology& topology) const {
  check_inputs(graph, topology);
  obs::Span run_span("ba/schedule", "sched", graph.num_tasks());
  obs::DecisionLog* const log = obs::active_decision_log();
  Schedule out(name(), graph.num_tasks(), graph.num_edges());

  const std::vector<dag::TaskId> order =
      list_order(graph, options_.priority);
  ExclusiveNetworkState network(topology, graph.num_edges(),
                                options_.hop_delay);
  MachineState machines(topology);
  net::RouteCache routes(topology);

  // Edges this trial committed, for rollback between candidate processors.
  std::vector<dag::EdgeId> committed;
  std::uint64_t edges_routed = 0;

  for (dag::TaskId task : order) {
    const double weight = graph.weight(task);

    // Dynamic model (§4.1): the task's placement is decided when it
    // becomes ready, so its communications cannot leave earlier than the
    // latest predecessor finish.
    double ready_moment = 0.0;
    for (dag::EdgeId e : graph.in_edges(task)) {
      ready_moment =
          std::max(ready_moment, out.task(graph.edge(e).src).finish);
    }

    // Processor selection (Algorithm 1, step 3).
    net::NodeId best_processor;
    double best_finish = std::numeric_limits<double>::infinity();
    double best_start = 0.0;
    std::vector<obs::ProcessorCandidate> candidates;

    obs::Span select_span("ba/select_processor", "sched", task.value());
    if (options_.selection == BaProcessorSelection::kReadyTimeEft) {
      // Communication-blind EFT (§4.1): ready moment + execution time,
      // inserted into the processor timeline.
      for (net::NodeId processor : topology.processors()) {
        const double duration =
            weight / topology.processor_speed(processor);
        const double start = machines.start_for(
            processor, ready_moment, duration, options_.task_insertion);
        const double finish = start + duration;
        if (log != nullptr) {
          candidates.push_back(obs::ProcessorCandidate{
              static_cast<std::uint32_t>(processor.index()),
              ready_moment, finish});
        }
        if (finish < best_finish) {
          best_finish = finish;
          best_processor = processor;
        }
      }
      best_start = -1.0;  // recomputed after the edges are booked
    } else {
      // Tentative evaluation: schedule the task with all its incoming
      // communications on every processor, roll the network back, keep
      // the true earliest finish. Basic insertion never displaces
      // existing slots, so rollback is a plain erase.
      for (net::NodeId processor : topology.processors()) {
        committed.clear();
        double data_ready = ready_moment;
        for (dag::EdgeId e : graph.in_edges(task)) {
          const dag::Edge& edge = graph.edge(e);
          const TaskPlacement& src = out.task(edge.src);
          double arrival = src.finish;
          if (src.processor != processor && edge.cost > 0.0) {
            const double ship_time =
                options_.eager_communication ? src.finish : ready_moment;
            const net::Route& route =
                routes.route(src.processor, processor);
            arrival =
                network.commit_edge_basic(e, route, ship_time, edge.cost);
            committed.push_back(e);
          }
          data_ready = std::max(data_ready, arrival);
        }
        const double duration =
            weight / topology.processor_speed(processor);
        const double start = machines.start_for(
            processor, data_ready, duration, options_.task_insertion);
        const double finish = start + duration;
        if (log != nullptr) {
          candidates.push_back(obs::ProcessorCandidate{
              static_cast<std::uint32_t>(processor.index()), data_ready,
              finish});
        }
        if (finish < best_finish) {
          best_finish = finish;
          best_start = start;
          best_processor = processor;
        }
        for (auto it = committed.rbegin(); it != committed.rend(); ++it) {
          network.uncommit_edge(*it);
        }
      }
    }
    select_span.close();
    if (log != nullptr) {
      log->record(obs::TaskDecision{
          name(), static_cast<std::uint32_t>(task.index()),
          static_cast<std::uint32_t>(best_processor.index()), best_finish,
          std::move(candidates)});
    }

    // Re-commit for the winning processor and record the schedule.
    const double duration =
        weight / topology.processor_speed(best_processor);
    double data_ready = ready_moment;
    for (dag::EdgeId e : graph.in_edges(task)) {
      const dag::Edge& edge = graph.edge(e);
      const TaskPlacement& src = out.task(edge.src);
      EdgeCommunication comm;
      comm.arrival = src.finish;
      double ship_time = src.finish;
      if (src.processor == best_processor || edge.cost <= 0.0) {
        comm.kind = EdgeCommunication::Kind::kLocal;
      } else {
        obs::Span route_span("ba/route_edge", "sched", e.value());
        ship_time =
            options_.eager_communication ? src.finish : ready_moment;
        const net::Route& route =
            routes.route(src.processor, best_processor);
        comm.arrival =
            network.commit_edge_basic(e, route, ship_time, edge.cost);
        comm.kind = EdgeCommunication::Kind::kExclusive;
        comm.route = route;
        comm.occupations = network.record(e).occupations;
        ++edges_routed;
      }
      if (log != nullptr) {
        obs::EdgeDecision decision;
        decision.algorithm = name();
        decision.edge = static_cast<std::uint32_t>(e.index());
        decision.src_task = static_cast<std::uint32_t>(edge.src.index());
        decision.dst_task = static_cast<std::uint32_t>(edge.dst.index());
        decision.local = comm.kind == EdgeCommunication::Kind::kLocal;
        decision.ship_time = ship_time;
        decision.arrival = comm.arrival;
        for (const LinkOccupation& occ : comm.occupations) {
          decision.hops.push_back(obs::EdgeHop{
              static_cast<std::uint32_t>(occ.link.index()), occ.start,
              occ.finish});
        }
        log->record(std::move(decision));
      }
      data_ready = std::max(data_ready, comm.arrival);
      out.set_communication(e, std::move(comm));
    }
    const double start = machines.start_for(
        best_processor, data_ready, duration, options_.task_insertion);
    EDGESCHED_ASSERT_MSG(
        options_.selection == BaProcessorSelection::kReadyTimeEft ||
            std::abs(start - best_start) <= 1e-9,
        "re-commit diverged from the tentative evaluation");
    machines.commit(best_processor, task, start, duration);
    out.place_task(task,
                   TaskPlacement{best_processor, start, start + duration});
  }

  obs::HotCounters& counters = obs::hot_counters();
  counters.tasks_placed.increment(order.size());
  if (edges_routed > 0) {
    counters.edges_routed.increment(edges_routed);
  }
  return out;
}

}  // namespace edgesched::sched
