// BBSA — Bandwidth-Based Scheduling Algorithm (§5).
//
// Shares OIHSA's processor choice, edge priorities and workload-aware
// routing, but books communications on bandwidth-sharing timelines: an
// edge uses *all remaining* bandwidth of the first route link from its
// ready time and is fluid-forwarded across subsequent links under the
// paper's rate constraints (formulas (4)/(5)) — outflow can exceed
// neither the remaining link capacity nor the rate at which data arrives.
#pragma once

#include "sched/algorithm_spec.hpp"
#include "sched/priorities.hpp"
#include "sched/scheduler.hpp"

namespace edgesched::sched {

class Bbsa final : public Scheduler {
 public:
  struct Options {
    PriorityScheme priority = PriorityScheme::kBottomLevel;
    /// Schedule a ready task's incoming edges by decreasing cost (§4.2).
    bool edge_priority_by_cost = true;
    /// Workload-aware Dijkstra routing (§4.3); false uses minimal BFS
    /// routes (ablation).
    bool modified_routing = true;
    /// Paper semantics (§4.1): all incoming edges of a ready task start
    /// shipping at its ready moment. True lets each edge leave at its own
    /// source's finish instead (ablation).
    bool eager_communication = false;
    /// Task placement policy. §2.1 defines t_s(n, P) = max(t_dr, t_f(P))
    /// with t_f(P) "the current finish time of P"; we read processor
    /// booking with Sinnen's insertion technique (tasks may fill idle
    /// gaps), which reproduces the paper's reported magnitudes — the
    /// literal append reading collapses them (see DESIGN.md §6 and the
    /// model ablation bench). False switches to pure append.
    bool task_insertion = true;
    /// Per-station forwarding latency (§2.2 neglects it; "it can be
    /// included if necessary"). Each extra hop of a route sees the data
    /// this much later.
    double hop_delay = 0.0;
  };

  Bbsa() = default;
  explicit Bbsa(const Options& options) : options_(options) {}

  /// The engine bundle these options denote (BBSA is a preset of the
  /// policy-based list-scheduling engine; see sched/engine.hpp).
  [[nodiscard]] static AlgorithmSpec spec(const Options& options);

  [[nodiscard]] Schedule schedule(
      const dag::TaskGraph& graph,
      const net::Topology& topology) const override;
  [[nodiscard]] Schedule schedule(
      const dag::TaskGraph& graph,
      const PlatformContext& platform) const override;
  [[nodiscard]] std::string name() const override { return "BBSA"; }
  [[nodiscard]] std::uint64_t fingerprint() const override;

 private:
  Options options_;
};

}  // namespace edgesched::sched
