#include "sched/replay.hpp"

#include <algorithm>
#include <vector>

#include "net/routing.hpp"
#include "sched/network_state.hpp"

namespace edgesched::sched {

Schedule replay_under_contention(const dag::TaskGraph& graph,
                                 const net::Topology& topology,
                                 const Schedule& ideal) {
  throw_if(ideal.num_tasks() != graph.num_tasks(),
           "replay_under_contention: schedule does not match the graph");
  Schedule out(ideal.algorithm() + "-replay", graph.num_tasks(),
               graph.num_edges());

  // Execute tasks in the ideal schedule's start order; topological
  // position breaks ties so zero-length tasks stay precedence-safe.
  std::vector<std::size_t> topo_position(graph.num_tasks());
  {
    const std::vector<dag::TaskId> topo = graph.topological_order();
    for (std::size_t i = 0; i < topo.size(); ++i) {
      topo_position[topo[i].index()] = i;
    }
  }
  std::vector<dag::TaskId> order = graph.all_tasks();
  std::sort(order.begin(), order.end(),
            [&](dag::TaskId a, dag::TaskId b) {
              const double sa = ideal.task(a).start;
              const double sb = ideal.task(b).start;
              if (sa != sb) return sa < sb;
              return topo_position[a.index()] < topo_position[b.index()];
            });

  ExclusiveNetworkState network(topology, graph.num_edges());
  MachineState machines(topology);
  net::RouteCache routes(topology);

  for (dag::TaskId task : order) {
    const net::NodeId processor = ideal.task(task).processor;
    throw_if(!processor.valid(),
             "replay_under_contention: unplaced task in input schedule");
    // Same dynamic model as the contention-aware algorithms (§4.1):
    // communications leave at the task's ready moment.
    double ready_moment = 0.0;
    for (dag::EdgeId e : graph.in_edges(task)) {
      ready_moment =
          std::max(ready_moment, out.task(graph.edge(e).src).finish);
    }
    double data_ready = ready_moment;
    for (dag::EdgeId e : graph.in_edges(task)) {
      const dag::Edge& edge = graph.edge(e);
      const TaskPlacement& src = out.task(edge.src);
      EdgeCommunication comm;
      comm.arrival = src.finish;
      if (src.processor == processor || edge.cost <= 0.0) {
        comm.kind = EdgeCommunication::Kind::kLocal;
      } else {
        const net::Route& route = routes.route(src.processor, processor);
        comm.arrival =
            network.commit_edge_basic(e, route, ready_moment, edge.cost);
        comm.kind = EdgeCommunication::Kind::kExclusive;
        comm.route = route;
        const EdgeRecord& record = network.record(e);
        comm.occupations = record.occupations;
      }
      data_ready = std::max(data_ready, comm.arrival);
      out.set_communication(e, std::move(comm));
    }
    const double duration =
        graph.weight(task) / topology.processor_speed(processor);
    const double start =
        machines.earliest_start(processor, data_ready, duration);
    machines.commit(processor, task, start, duration);
    out.place_task(task, TaskPlacement{processor, start, start + duration});
  }
  return out;
}

}  // namespace edgesched::sched
