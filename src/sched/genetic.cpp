#include "sched/genetic.hpp"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "sched/ba.hpp"
#include "sched/intra_run.hpp"
#include "sched/oihsa.hpp"
#include "util/hash.hpp"
#include "util/parallel_for.hpp"
#include "util/rng.hpp"

namespace edgesched::sched {

namespace {

struct Individual {
  Assignment genes;
  double fitness = std::numeric_limits<double>::infinity();
};

/// Decorrelated per-member RNG stream. Every stochastic member of the
/// search — immigrant i at phase 0, offspring k of generation g at phase
/// g+1 — draws all of its randomness from its own generator seeded by
/// (seed, phase, member). The draw sequence is therefore a function of
/// the member's identity, not of execution order, which is what lets the
/// population evaluate in parallel while staying bit-identical to the
/// serial schedule at any worker count (docs/parallelism.md).
Rng member_stream(std::uint64_t seed, std::uint64_t phase,
                  std::uint64_t member) {
  Fingerprint fp;
  fp.mix(seed);
  fp.mix(phase);
  fp.mix(member);
  return Rng(fp.value());
}

Assignment random_assignment(const dag::TaskGraph& graph,
                             const net::Topology& topology, Rng& rng) {
  const auto& processors = topology.processors();
  Assignment assignment(graph.num_tasks());
  for (auto& gene : assignment) {
    gene = processors[rng.index(processors.size())];
  }
  return assignment;
}

}  // namespace

GeneticScheduler::GeneticScheduler(const Options& options)
    : options_(options) {
  throw_if(options.population < 4,
           "GeneticScheduler: population must be at least 4");
  throw_if(options.tournament == 0 ||
               options.tournament > options.population,
           "GeneticScheduler: bad tournament size");
  throw_if(options.mutation_rate < 0.0 || options.mutation_rate > 1.0,
           "GeneticScheduler: mutation_rate outside [0, 1]");
  throw_if(options.replacement_fraction <= 0.0 ||
               options.replacement_fraction > 1.0,
           "GeneticScheduler: replacement_fraction outside (0, 1]");
}

Schedule GeneticScheduler::schedule(const dag::TaskGraph& graph,
                                    const net::Topology& topology) const {
  check_inputs(graph, topology);

  const auto evaluate = [&](const Assignment& genes) {
    // Pure: owns all of its scratch, so concurrent evaluations over one
    // population are safe (and never nest — the fixed-assignment replay
    // does not run the engine's candidate scan).
    return assignment_makespan(graph, topology, genes,
                               options_.evaluation);
  };

  // Population: the two list-scheduler assignments seed the search, the
  // rest are random immigrants, each drawn from its own member stream.
  std::vector<Individual> population;
  population.reserve(options_.population);
  population.push_back(Individual{
      assignment_of(graph, Oihsa{}.schedule(graph, topology)), 0.0});
  population.push_back(Individual{
      assignment_of(graph, BasicAlgorithm{}.schedule(graph, topology)),
      0.0});
  while (population.size() < options_.population) {
    Rng rng = member_stream(options_.seed, 0, population.size());
    population.push_back(
        Individual{random_assignment(graph, topology, rng), 0.0});
  }

  // One worker team for the whole search; generation and evaluation of
  // every member fan across it. Serial at the default worker count of 1.
  util::WorkerTeam team(
      std::min(intra_run_threads(), options_.population));
  team.run(population.size(),
           [&](std::size_t /*lane*/, std::size_t begin, std::size_t end) {
             for (std::size_t i = begin; i < end; ++i) {
               population[i].fitness = evaluate(population[i].genes);
             }
           });

  const std::size_t offspring_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(options_.replacement_fraction *
                                  static_cast<double>(
                                      options_.population)));
  std::vector<Individual> offspring(offspring_count);

  const auto& processors = topology.processors();
  for (std::size_t gen = 0; gen < options_.generations; ++gen) {
    // Offspring k draws parents, crossover and mutation from its own
    // stream and reads the population snapshot (constant until the
    // serial replacement below), so members are order-independent.
    team.run(offspring_count, [&](std::size_t /*lane*/, std::size_t begin,
                                  std::size_t end) {
      for (std::size_t k = begin; k < end; ++k) {
        Rng rng = member_stream(options_.seed, gen + 1, k);
        const auto tournament_pick = [&]() -> const Individual& {
          const Individual* best = nullptr;
          for (std::size_t i = 0; i < options_.tournament; ++i) {
            const Individual& candidate =
                population[rng.index(population.size())];
            if (best == nullptr || candidate.fitness < best->fitness) {
              best = &candidate;
            }
          }
          return *best;
        };
        const Individual& mother = tournament_pick();
        const Individual& father = tournament_pick();
        // Uniform crossover + per-gene mutation.
        Individual child;
        child.genes.resize(graph.num_tasks());
        for (std::size_t g = 0; g < child.genes.size(); ++g) {
          child.genes[g] =
              rng.bernoulli(0.5) ? mother.genes[g] : father.genes[g];
          if (rng.bernoulli(options_.mutation_rate)) {
            child.genes[g] = processors[rng.index(processors.size())];
          }
        }
        child.fitness = evaluate(child.genes);
        offspring[k] = std::move(child);
      }
    });
    // Steady state (serial): offspring replace the worst individuals.
    std::sort(population.begin(), population.end(),
              [](const Individual& a, const Individual& b) {
                return a.fitness < b.fitness;
              });
    for (std::size_t k = 0; k < offspring.size(); ++k) {
      Individual& slot = population[population.size() - 1 - k];
      if (offspring[k].fitness < slot.fitness) {
        slot = std::move(offspring[k]);
      }
    }
  }

  const Individual& best = *std::min_element(
      population.begin(), population.end(),
      [](const Individual& a, const Individual& b) {
        return a.fitness < b.fitness;
      });
  AssignmentOptions labelled = options_.evaluation;
  labelled.label = name();
  return schedule_assignment(graph, topology, best.genes, labelled);
}

}  // namespace edgesched::sched
