#include "sched/genetic.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "sched/ba.hpp"
#include "sched/oihsa.hpp"
#include "util/rng.hpp"

namespace edgesched::sched {

namespace {

struct Individual {
  Assignment genes;
  double fitness = std::numeric_limits<double>::infinity();
};

Assignment random_assignment(const dag::TaskGraph& graph,
                             const net::Topology& topology, Rng& rng) {
  const auto& processors = topology.processors();
  Assignment assignment(graph.num_tasks());
  for (auto& gene : assignment) {
    gene = processors[rng.index(processors.size())];
  }
  return assignment;
}

}  // namespace

GeneticScheduler::GeneticScheduler(const Options& options)
    : options_(options) {
  throw_if(options.population < 4,
           "GeneticScheduler: population must be at least 4");
  throw_if(options.tournament == 0 ||
               options.tournament > options.population,
           "GeneticScheduler: bad tournament size");
  throw_if(options.mutation_rate < 0.0 || options.mutation_rate > 1.0,
           "GeneticScheduler: mutation_rate outside [0, 1]");
  throw_if(options.replacement_fraction <= 0.0 ||
               options.replacement_fraction > 1.0,
           "GeneticScheduler: replacement_fraction outside (0, 1]");
}

Schedule GeneticScheduler::schedule(const dag::TaskGraph& graph,
                                    const net::Topology& topology) const {
  check_inputs(graph, topology);
  Rng rng(options_.seed);
  const auto& processors = topology.processors();

  const auto evaluate = [&](const Assignment& genes) {
    return assignment_makespan(graph, topology, genes,
                               options_.evaluation);
  };

  // Population: the two list-scheduler assignments seed the search, the
  // rest are random immigrants.
  std::vector<Individual> population;
  population.reserve(options_.population);
  population.push_back(Individual{
      assignment_of(graph, Oihsa{}.schedule(graph, topology)), 0.0});
  population.push_back(Individual{
      assignment_of(graph, BasicAlgorithm{}.schedule(graph, topology)),
      0.0});
  while (population.size() < options_.population) {
    population.push_back(
        Individual{random_assignment(graph, topology, rng), 0.0});
  }
  for (Individual& ind : population) {
    ind.fitness = evaluate(ind.genes);
  }

  const auto tournament_pick = [&]() -> const Individual& {
    const Individual* best = nullptr;
    for (std::size_t i = 0; i < options_.tournament; ++i) {
      const Individual& candidate =
          population[rng.index(population.size())];
      if (best == nullptr || candidate.fitness < best->fitness) {
        best = &candidate;
      }
    }
    return *best;
  };

  const std::size_t offspring_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(options_.replacement_fraction *
                                  static_cast<double>(
                                      options_.population)));

  for (std::size_t gen = 0; gen < options_.generations; ++gen) {
    std::vector<Individual> offspring;
    offspring.reserve(offspring_count);
    for (std::size_t k = 0; k < offspring_count; ++k) {
      const Individual& mother = tournament_pick();
      const Individual& father = tournament_pick();
      // Uniform crossover + per-gene mutation.
      Individual child;
      child.genes.resize(graph.num_tasks());
      for (std::size_t g = 0; g < child.genes.size(); ++g) {
        child.genes[g] =
            rng.bernoulli(0.5) ? mother.genes[g] : father.genes[g];
        if (rng.bernoulli(options_.mutation_rate)) {
          child.genes[g] = processors[rng.index(processors.size())];
        }
      }
      child.fitness = evaluate(child.genes);
      offspring.push_back(std::move(child));
    }
    // Steady state: offspring replace the worst individuals.
    std::sort(population.begin(), population.end(),
              [](const Individual& a, const Individual& b) {
                return a.fitness < b.fitness;
              });
    for (std::size_t k = 0; k < offspring.size(); ++k) {
      Individual& slot = population[population.size() - 1 - k];
      if (offspring[k].fitness < slot.fitness) {
        slot = std::move(offspring[k]);
      }
    }
  }

  const Individual& best = *std::min_element(
      population.begin(), population.end(),
      [](const Individual& a, const Individual& b) {
        return a.fitness < b.fitness;
      });
  AssignmentOptions labelled = options_.evaluation;
  labelled.label = name();
  return schedule_assignment(graph, topology, best.genes, labelled);
}

}  // namespace edgesched::sched
