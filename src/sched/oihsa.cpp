#include "sched/oihsa.hpp"

#include <algorithm>
#include <limits>

#include "net/routing.hpp"
#include "obs/counters.hpp"
#include "obs/decision_log.hpp"
#include "obs/trace.hpp"
#include "sched/network_state.hpp"

namespace edgesched::sched {

Schedule Oihsa::schedule(const dag::TaskGraph& graph,
                         const net::Topology& topology) const {
  check_inputs(graph, topology);
  obs::Span run_span("oihsa/schedule", "sched", graph.num_tasks());
  obs::DecisionLog* const log = obs::active_decision_log();
  Schedule out(name(), graph.num_tasks(), graph.num_edges());

  const std::vector<dag::TaskId> order =
      list_order(graph, options_.priority);
  ExclusiveNetworkState network(topology, graph.num_edges(),
                                options_.hop_delay);
  MachineState machines(topology);
  net::RouteCache bfs_routes(topology);
  // Per-run routing scratch: one epoch-stamped Dijkstra workspace reused
  // across every routed edge, and a probe-route memo that short-circuits
  // identical queries while the network load generation is unchanged.
  net::RoutingWorkspace dijkstra_ws;
  net::ProbedRouteCache route_memo;
  const double mls = topology.mean_link_speed();
  std::uint64_t edges_routed = 0;

  for (dag::TaskId task : order) {
    const double weight = graph.weight(task);

    // Dynamic model (§4.1): communications leave when the task is ready.
    double ready_moment = 0.0;
    for (dag::EdgeId e : graph.in_edges(task)) {
      ready_moment =
          std::max(ready_moment, out.task(graph.edge(e).src).finish);
    }

    // Processor choice (§4.1): minimise the static-style finish estimate
    //   max(max_j(t_f(n_j) + c(e_ji)/MLS), t_f(P)) + w(n_i)/s(P),
    // where same-processor communication is free.
    net::NodeId chosen;
    double chosen_estimate = std::numeric_limits<double>::infinity();
    std::vector<obs::ProcessorCandidate> candidates;
    {
      obs::Span select_span("oihsa/select_processor", "sched",
                            task.value());
      for (net::NodeId processor : topology.processors()) {
        double ready_estimate = 0.0;
        for (dag::EdgeId e : graph.in_edges(task)) {
          const dag::Edge& edge = graph.edge(e);
          const TaskPlacement& src = out.task(edge.src);
          double via = src.finish;
          if (src.processor != processor && mls > 0.0) {
            via += edge.cost / mls;
          }
          ready_estimate = std::max(ready_estimate, via);
        }
        const double duration_on_p =
            weight / topology.processor_speed(processor);
        const double availability =
            options_.insertion_aware_estimate
                ? machines.start_for(processor, ready_estimate,
                                     duration_on_p,
                                     options_.task_insertion)
                : std::max(ready_estimate,
                           machines.finish_time(processor));
        const double estimate = availability + duration_on_p;
        if (log != nullptr) {
          candidates.push_back(obs::ProcessorCandidate{
              static_cast<std::uint32_t>(processor.index()),
              ready_estimate, estimate});
        }
        if (estimate < chosen_estimate) {
          chosen_estimate = estimate;
          chosen = processor;
        }
      }
    }
    if (log != nullptr) {
      log->record(obs::TaskDecision{
          name(), static_cast<std::uint32_t>(task.index()),
          static_cast<std::uint32_t>(chosen.index()), chosen_estimate,
          std::move(candidates)});
    }

    // Edge priority (§4.2): the costliest incoming edge books first.
    std::vector<dag::EdgeId> in = graph.in_edges(task);
    if (options_.edge_priority_by_cost) {
      std::stable_sort(in.begin(), in.end(),
                       [&](dag::EdgeId a, dag::EdgeId b) {
                         return graph.cost(a) > graph.cost(b);
                       });
    }

    double data_ready = ready_moment;
    for (dag::EdgeId e : in) {
      const dag::Edge& edge = graph.edge(e);
      const TaskPlacement& src = out.task(edge.src);
      EdgeCommunication comm;
      comm.arrival = src.finish;
      double ship_time = src.finish;
      if (src.processor == chosen || edge.cost <= 0.0) {
        comm.kind = EdgeCommunication::Kind::kLocal;
      } else {
        obs::Span route_span("oihsa/route_edge", "sched", e.value());
        ship_time =
            options_.eager_communication ? src.finish : ready_moment;
        // Modified routing (§4.3): relax on the tentative per-link finish
        // time given the current timelines.
        net::Route route;
        if (options_.modified_routing) {
          const std::uint64_t generation = network.generation();
          if (const net::Route* memo = route_memo.lookup(
                  src.processor, chosen, ship_time, edge.cost,
                  generation)) {
            route = *memo;
          } else {
            const auto probe = [&](net::LinkId link,
                                   const net::ProbeState& state) {
              const timeline::Placement placement = network.probe_link(
                  link, state.earliest_start, state.min_finish, edge.cost);
              return net::ProbeResult{placement.start, placement.finish};
            };
            route = net::dijkstra_route_probe(topology, src.processor,
                                              chosen, ship_time, probe,
                                              &dijkstra_ws);
            route_memo.store(src.processor, chosen, ship_time, edge.cost,
                             generation, route);
          }
        } else {
          route = bfs_routes.route(src.processor, chosen);
        }
        comm.arrival =
            options_.optimal_insertion
                ? network.commit_edge_optimal(e, route, ship_time,
                                              edge.cost)
                : network.commit_edge_basic(e, route, ship_time,
                                            edge.cost);
        comm.kind = EdgeCommunication::Kind::kExclusive;
        comm.route = std::move(route);
        ++edges_routed;
      }
      if (log != nullptr) {
        obs::EdgeDecision decision;
        decision.algorithm = name();
        decision.edge = static_cast<std::uint32_t>(e.index());
        decision.src_task = static_cast<std::uint32_t>(edge.src.index());
        decision.dst_task = static_cast<std::uint32_t>(edge.dst.index());
        decision.local = comm.kind == EdgeCommunication::Kind::kLocal;
        decision.ship_time = ship_time;
        decision.arrival = comm.arrival;
        if (!decision.local) {
          const EdgeRecord& record = network.record(e);
          decision.hops.reserve(record.occupations.size());
          for (const LinkOccupation& occ : record.occupations) {
            decision.hops.push_back(obs::EdgeHop{
                static_cast<std::uint32_t>(occ.link.index()), occ.start,
                occ.finish});
          }
        }
        log->record(std::move(decision));
      }
      data_ready = std::max(data_ready, comm.arrival);
      out.set_communication(e, std::move(comm));
    }

    const double duration = weight / topology.processor_speed(chosen);
    const double start =
        machines.start_for(chosen, data_ready, duration,
                           options_.task_insertion);
    machines.commit(chosen, task, start, duration);
    out.place_task(task, TaskPlacement{chosen, start, start + duration});
  }

  // Deferral may have moved earlier edges' occupations after their
  // communications were recorded; refresh from the final records.
  for (dag::EdgeId e : graph.all_edges()) {
    const EdgeRecord& record = network.record(e);
    if (record.scheduled()) {
      EdgeCommunication comm;
      comm.kind = EdgeCommunication::Kind::kExclusive;
      comm.route = record.route;
      comm.occupations = record.occupations;
      comm.arrival = record.occupations.back().finish;
      out.set_communication(e, std::move(comm));
    }
  }

  obs::HotCounters& counters = obs::hot_counters();
  counters.tasks_placed.increment(order.size());
  if (edges_routed > 0) {
    counters.edges_routed.increment(edges_routed);
  }
  return out;
}

}  // namespace edgesched::sched
