#include "sched/oihsa.hpp"

#include "sched/engine.hpp"

namespace edgesched::sched {

AlgorithmSpec Oihsa::spec(const Options& options) {
  AlgorithmSpec spec;
  spec.name = "OIHSA";
  spec.priority = options.priority;
  spec.selection = SelectionPolicyKind::kMlsEstimate;
  spec.insertion_aware_estimate = options.insertion_aware_estimate;
  spec.edge_order = options.edge_priority_by_cost
                        ? EdgeOrderPolicyKind::kByCostDescending
                        : EdgeOrderPolicyKind::kPredecessorOrder;
  spec.routing = options.modified_routing ? RoutingPolicyKind::kProbeDijkstra
                                          : RoutingPolicyKind::kBfsMinimal;
  spec.insertion = options.optimal_insertion ? InsertionPolicyKind::kOptimal
                                             : InsertionPolicyKind::kFirstFit;
  spec.eager_communication = options.eager_communication;
  spec.task_insertion = options.task_insertion;
  spec.hop_delay = options.hop_delay;
  // OIHSA always records communications from the final link records, even
  // with first-fit insertion (where the refresh is a byte-identical no-op).
  spec.refresh_edge_records = true;
  return spec;
}

Schedule Oihsa::schedule(const dag::TaskGraph& graph,
                         const net::Topology& topology) const {
  check_inputs(graph, topology);
  return ListSchedulingEngine(spec(options_)).run(graph, topology);
}

Schedule Oihsa::schedule(const dag::TaskGraph& graph,
                         const PlatformContext& platform) const {
  check_inputs(graph, platform.topology());
  return ListSchedulingEngine(spec(options_)).run(graph, platform);
}

std::uint64_t Oihsa::fingerprint() const {
  return spec(options_).fingerprint();
}

}  // namespace edgesched::sched
