#include "sched/lower_bounds.hpp"

#include <algorithm>

#include "dag/properties.hpp"

namespace edgesched::sched {

namespace {

double fastest_speed(const net::Topology& topology) {
  double fastest = 0.0;
  for (net::NodeId p : topology.processors()) {
    fastest = std::max(fastest, topology.processor_speed(p));
  }
  throw_if(fastest <= 0.0, "lower bounds: topology has no processors");
  return fastest;
}

}  // namespace

double critical_path_bound(const dag::TaskGraph& graph,
                           const net::Topology& topology) {
  if (graph.empty()) {
    return 0.0;
  }
  const std::vector<double> bl =
      dag::bottom_levels_computation_only(graph);
  return *std::max_element(bl.begin(), bl.end()) /
         fastest_speed(topology);
}

double work_bound(const dag::TaskGraph& graph,
                  const net::Topology& topology) {
  double capacity = 0.0;
  for (net::NodeId p : topology.processors()) {
    capacity += topology.processor_speed(p);
  }
  throw_if(capacity <= 0.0, "lower bounds: topology has no processors");
  return graph.total_computation() / capacity;
}

double max_task_bound(const dag::TaskGraph& graph,
                      const net::Topology& topology) {
  double heaviest = 0.0;
  for (dag::TaskId t : graph.all_tasks()) {
    heaviest = std::max(heaviest, graph.weight(t));
  }
  return heaviest / fastest_speed(topology);
}

double makespan_lower_bound(const dag::TaskGraph& graph,
                            const net::Topology& topology) {
  return std::max({critical_path_bound(graph, topology),
                   work_bound(graph, topology),
                   max_task_bound(graph, topology)});
}

}  // namespace edgesched::sched
