// Schedule visualisation exports.
//
// * `write_chrome_trace` emits Chrome trace-event JSON: load the file in
//   chrome://tracing or https://ui.perfetto.dev to inspect a schedule
//   interactively — one row per processor, one per contention domain,
//   with tasks and communications as duration events.
// * `write_ascii_gantt` renders a fixed-width Gantt chart for terminals
//   and test goldens.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "dag/task_graph.hpp"
#include "net/topology.hpp"
#include "sched/schedule.hpp"

namespace edgesched::sched {

/// Chrome trace-event JSON (the "traceEvents" array format). Durations
/// are exported in microseconds (1 model time unit = 1 µs). Processors
/// become pid 0 rows, contention domains pid 1 rows.
void write_chrome_trace(std::ostream& out, const dag::TaskGraph& graph,
                        const net::Topology& topology,
                        const Schedule& schedule);
[[nodiscard]] std::string to_chrome_trace(const dag::TaskGraph& graph,
                                          const net::Topology& topology,
                                          const Schedule& schedule);

struct GanttOptions {
  /// Character columns of the time axis.
  std::size_t width = 72;
  /// Include one row per contention domain below the processor rows.
  bool include_links = true;
};

/// Fixed-width ASCII Gantt chart: '#' marks task execution, '=' marks
/// link occupation, '.' idle time.
void write_ascii_gantt(std::ostream& out, const dag::TaskGraph& graph,
                       const net::Topology& topology,
                       const Schedule& schedule,
                       const GanttOptions& options = {});
[[nodiscard]] std::string to_ascii_gantt(const dag::TaskGraph& graph,
                                         const net::Topology& topology,
                                         const Schedule& schedule,
                                         const GanttOptions& options = {});

}  // namespace edgesched::sched
