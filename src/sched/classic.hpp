// Classic contention-free list scheduler (the idealised model of §2.2).
//
// Communication between distinct processors costs c(e)/s where s is the
// direct link's speed when one exists, otherwise the topology's mean link
// speed; messages never queue and links are never booked. This is the
// model the paper argues against — the baseline for the contention
// ablation, where its schedule is replayed under real contention.
#pragma once

#include "sched/priorities.hpp"
#include "sched/scheduler.hpp"

namespace edgesched::sched {

class ClassicScheduler final : public Scheduler {
 public:
  struct Options {
    PriorityScheme priority = PriorityScheme::kBottomLevel;
    /// Task placement policy. §2.1 defines t_s(n, P) = max(t_dr, t_f(P))
    /// with t_f(P) "the current finish time of P"; we read processor
    /// booking with Sinnen's insertion technique (tasks may fill idle
    /// gaps), which reproduces the paper's reported magnitudes — the
    /// literal append reading collapses them (see DESIGN.md §6 and the
    /// model ablation bench). False switches to pure append.
    bool task_insertion = true;
  };

  ClassicScheduler() = default;
  explicit ClassicScheduler(const Options& options) : options_(options) {}

  [[nodiscard]] Schedule schedule(
      const dag::TaskGraph& graph,
      const net::Topology& topology) const override;
  /// Keep the base's PlatformContext overload visible (no per-topology
  /// derived state here, so the default forwarding is already right).
  using Scheduler::schedule;
  [[nodiscard]] std::string name() const override { return "CLASSIC"; }

 private:
  Options options_;
};

}  // namespace edgesched::sched
