// Incremental ready queue for the list-scheduling loop.
//
// `list_order` materialises the whole priority order up front with
// Kahn's algorithm; `ReadyQueue` is the same algorithm unrolled into
// the scheduling loop — pop the highest-priority ready task, place it,
// release its successors — so the engine's ordering work is bounded by
// O(E log V) pushes/pops with no O(V) order vector and no second pass
// over the graph. Determinism contract: the pop sequence is *identical*
// to `list_order` over the same priorities (same max-heap comparator,
// same tie-break on task id, same push interleaving — std::push_heap /
// std::pop_heap on both sides), property-tested in
// tests/ready_queue_property_test.cpp. The heap and indegree arrays are
// sized once at construction, so a run performs no ordering-related
// allocations after setup.
#pragma once

#include <cstddef>
#include <vector>

#include "dag/task_graph.hpp"

namespace edgesched::sched {

class ReadyQueue {
 public:
  /// Sizes the heap and indegree arrays for `graph` and seeds every
  /// source task. `priority` must outlive the queue (one value per
  /// task, higher pops first).
  ReadyQueue(const dag::TaskGraph& graph,
             const std::vector<double>& priority);

  /// Pops the highest-priority ready task into `out`; false when no
  /// task is ready (drained, or the graph has a cycle — see
  /// `all_popped`).
  [[nodiscard]] bool pop(dag::TaskId& out);

  /// Releases `task`'s successors after it has been placed, pushing any
  /// that became ready.
  void release_successors(const dag::TaskGraph& graph, dag::TaskId task);

  /// True when every task has been popped; a false value after `pop`
  /// returns false means the graph contains a cycle.
  [[nodiscard]] bool all_popped() const noexcept {
    return popped_ == num_tasks_;
  }

 private:
  struct Entry {
    double priority;
    dag::TaskId task;
    bool operator<(const Entry& other) const {
      if (priority != other.priority) {
        return priority < other.priority;  // max-heap on priority
      }
      return task > other.task;  // then min task id
    }
  };

  void push(dag::TaskId task);

  const std::vector<double>* priority_;
  std::vector<Entry> heap_;
  std::vector<std::size_t> indegree_;
  std::size_t num_tasks_ = 0;
  std::size_t popped_ = 0;
};

}  // namespace edgesched::sched
