// Packetized Basic Algorithm — the extension §2.2 points out BA lacks.
//
// The paper assumes circuit switching because "BA does not consider the
// possible division of communication into packets". This scheduler drops
// that assumption: every cross-processor message is split into
// equal-volume packets, each store-and-forward routed over the minimal
// BFS path with first-fit insertion per hop. Small packets pipeline across
// multi-hop routes (hop h of packet p overlaps hop h+1 of packet p-1) at
// the cost of per-packet scheduling work — the classic circuit-vs-packet
// trade-off, measured by bench/ablation_packet.
#pragma once

#include "sched/algorithm_spec.hpp"
#include "sched/priorities.hpp"
#include "sched/scheduler.hpp"

namespace edgesched::sched {

class PacketizedBa final : public Scheduler {
 public:
  struct Options {
    PriorityScheme priority = PriorityScheme::kBottomLevel;
    /// Target volume per packet; a message of cost c becomes
    /// ceil(c / packet_size) equal-volume packets.
    double packet_size = 250.0;
    /// Paper semantics (§4.1): edges ship at the task's ready moment.
    bool eager_communication = false;
    /// Insertion placement on processors (see ba.hpp).
    bool task_insertion = true;
    /// Per-station forwarding latency (§2.2 neglects it; "it can be
    /// included if necessary"). Each extra hop of a route sees the data
    /// this much later.
    double hop_delay = 0.0;
  };

  PacketizedBa() = default;
  explicit PacketizedBa(const Options& options) : options_(options) {
    throw_if(options.packet_size <= 0.0,
             "PacketizedBa: packet_size must be positive");
  }

  /// The engine bundle these options denote (PACKET-BA is a preset of
  /// the policy-based list-scheduling engine; see sched/engine.hpp).
  [[nodiscard]] static AlgorithmSpec spec(const Options& options);

  [[nodiscard]] Schedule schedule(
      const dag::TaskGraph& graph,
      const net::Topology& topology) const override;
  [[nodiscard]] Schedule schedule(
      const dag::TaskGraph& graph,
      const PlatformContext& platform) const override;
  [[nodiscard]] std::string name() const override { return "PACKET-BA"; }
  [[nodiscard]] std::uint64_t fingerprint() const override;

 private:
  Options options_;
};

}  // namespace edgesched::sched
