#include "sched/ready_queue.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace edgesched::sched {

ReadyQueue::ReadyQueue(const dag::TaskGraph& graph,
                       const std::vector<double>& priority)
    : priority_(&priority), num_tasks_(graph.num_tasks()) {
  throw_if(priority.size() != graph.num_tasks(),
           "ReadyQueue: priority vector size mismatch");
  heap_.reserve(graph.num_tasks());
  indegree_.resize(graph.num_tasks());
  for (dag::TaskId t : graph.all_tasks()) {
    indegree_[t.index()] = graph.in_edges(t).size();
    if (indegree_[t.index()] == 0) {
      push(t);
    }
  }
}

void ReadyQueue::push(dag::TaskId task) {
  heap_.push_back(Entry{(*priority_)[task.index()], task});
  std::push_heap(heap_.begin(), heap_.end());
}

bool ReadyQueue::pop(dag::TaskId& out) {
  if (heap_.empty()) {
    return false;
  }
  std::pop_heap(heap_.begin(), heap_.end());
  out = heap_.back().task;
  heap_.pop_back();
  ++popped_;
  return true;
}

void ReadyQueue::release_successors(const dag::TaskGraph& graph,
                                    dag::TaskId task) {
  for (dag::EdgeId e : graph.out_edges(task)) {
    const dag::TaskId next = graph.edge(e).dst;
    if (--indegree_[next.index()] == 0) {
      push(next);
    }
  }
}

}  // namespace edgesched::sched
