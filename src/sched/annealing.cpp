#include "sched/annealing.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sched/intra_run.hpp"
#include "sched/oihsa.hpp"
#include "util/hash.hpp"
#include "util/parallel_for.hpp"
#include "util/rng.hpp"

namespace edgesched::sched {

namespace {

/// Per-iteration RNG stream: iteration m draws its move (gene, target
/// processor) and its acceptance uniform from a generator seeded by
/// (seed, 1, m), so the draw sequence depends only on the iteration
/// index. The acceptance uniform is drawn eagerly — even for downhill
/// moves that accept unconditionally — which keeps every iteration's
/// consumption of its stream fixed and the trajectory independent of
/// how many neighbors are probed speculatively (docs/parallelism.md).
Rng iteration_stream(std::uint64_t seed, std::uint64_t iteration) {
  Fingerprint fp;
  fp.mix(seed);
  fp.mix(std::uint64_t{1});
  fp.mix(iteration);
  return Rng(fp.value());
}

}  // namespace

AnnealingScheduler::AnnealingScheduler(const Options& options)
    : options_(options) {
  throw_if(options.iterations == 0,
           "AnnealingScheduler: iterations must be > 0");
  throw_if(options.cooling <= 0.0 || options.cooling >= 1.0,
           "AnnealingScheduler: cooling must be in (0, 1)");
  throw_if(options.initial_temperature_fraction <= 0.0,
           "AnnealingScheduler: temperature fraction must be positive");
}

Schedule AnnealingScheduler::schedule(const dag::TaskGraph& graph,
                                      const net::Topology& topology) const {
  check_inputs(graph, topology);
  const auto& processors = topology.processors();

  Assignment current =
      assignment_of(graph, Oihsa{}.schedule(graph, topology));
  double current_cost =
      assignment_makespan(graph, topology, current, options_.evaluation);
  Assignment best = current;
  double best_cost = current_cost;

  double temperature =
      std::max(1e-9, options_.initial_temperature_fraction * current_cost);

  // Speculative neighbor batches: K = lanes consecutive iterations draw
  // their moves from their per-iteration streams, evaluate concurrently
  // against the current state, then replay serially in iteration order.
  // A replayed reject (or null move) leaves the state unchanged, so the
  // next member's speculative cost is still exact; an accept invalidates
  // the rest of the batch, which is discarded and re-drawn from the
  // accepted state. Every decision therefore sees exactly the state the
  // serial walk would — the trajectory is bit-identical at any K,
  // including K = 1 (which IS the serial algorithm; wasted speculative
  // work is the only cost of K > 1).
  struct Move {
    std::size_t gene = 0;
    net::NodeId proc;
    double accept_u = 0.0;
    double cost = 0.0;
    bool null_move = false;
  };
  util::WorkerTeam team(
      std::min(intra_run_threads(), options_.iterations));
  std::vector<Move> batch(team.lanes());

  std::size_t it = 0;
  while (it < options_.iterations) {
    const std::size_t batch_size =
        std::min(batch.size(), options_.iterations - it);
    for (std::size_t m = 0; m < batch_size; ++m) {
      Rng rng = iteration_stream(options_.seed, it + m);
      Move& move = batch[m];
      // Move: reassign one random task to a random processor.
      move.gene = rng.index(graph.num_tasks());
      move.proc = processors[rng.index(processors.size())];
      move.accept_u = rng.uniform_real(0.0, 1.0);
      move.null_move = move.proc == current[move.gene];
      move.cost = 0.0;
    }
    team.run(batch_size, [&](std::size_t /*lane*/, std::size_t begin,
                             std::size_t end) {
      for (std::size_t m = begin; m < end; ++m) {
        Move& move = batch[m];
        if (move.null_move) {
          continue;
        }
        Assignment trial = current;
        trial[move.gene] = move.proc;
        move.cost = assignment_makespan(graph, topology, trial,
                                        options_.evaluation);
      }
    });
    for (std::size_t m = 0; m < batch_size; ++m) {
      const Move& move = batch[m];
      ++it;
      if (move.null_move) {
        continue;  // null move; don't cool
      }
      const double delta = move.cost - current_cost;
      const bool accept =
          delta <= 0.0 || move.accept_u < std::exp(-delta / temperature);
      temperature *= options_.cooling;
      if (accept) {
        current[move.gene] = move.proc;
        current_cost = move.cost;
        if (move.cost < best_cost) {
          best_cost = move.cost;
          best = current;
        }
        break;  // remaining members were probed against a stale state
      }
    }
  }

  AssignmentOptions labelled = options_.evaluation;
  labelled.label = name();
  return schedule_assignment(graph, topology, best, labelled);
}

}  // namespace edgesched::sched
