#include "sched/annealing.hpp"

#include <algorithm>
#include <cmath>

#include "sched/oihsa.hpp"
#include "util/rng.hpp"

namespace edgesched::sched {

AnnealingScheduler::AnnealingScheduler(const Options& options)
    : options_(options) {
  throw_if(options.iterations == 0,
           "AnnealingScheduler: iterations must be > 0");
  throw_if(options.cooling <= 0.0 || options.cooling >= 1.0,
           "AnnealingScheduler: cooling must be in (0, 1)");
  throw_if(options.initial_temperature_fraction <= 0.0,
           "AnnealingScheduler: temperature fraction must be positive");
}

Schedule AnnealingScheduler::schedule(const dag::TaskGraph& graph,
                                      const net::Topology& topology) const {
  check_inputs(graph, topology);
  Rng rng(options_.seed);
  const auto& processors = topology.processors();

  Assignment current =
      assignment_of(graph, Oihsa{}.schedule(graph, topology));
  double current_cost =
      assignment_makespan(graph, topology, current, options_.evaluation);
  Assignment best = current;
  double best_cost = current_cost;

  double temperature =
      std::max(1e-9, options_.initial_temperature_fraction * current_cost);
  for (std::size_t it = 0; it < options_.iterations; ++it) {
    // Move: reassign one random task to a random processor.
    const std::size_t gene = rng.index(graph.num_tasks());
    const net::NodeId old_value = current[gene];
    current[gene] = processors[rng.index(processors.size())];
    if (current[gene] == old_value) {
      continue;  // null move; don't cool
    }
    const double cost = assignment_makespan(graph, topology, current,
                                            options_.evaluation);
    const double delta = cost - current_cost;
    const bool accept =
        delta <= 0.0 ||
        rng.uniform_real(0.0, 1.0) < std::exp(-delta / temperature);
    if (accept) {
      current_cost = cost;
      if (cost < best_cost) {
        best_cost = cost;
        best = current;
      }
    } else {
      current[gene] = old_value;
    }
    temperature *= options_.cooling;
  }

  AssignmentOptions labelled = options_.evaluation;
  labelled.label = name();
  return schedule_assignment(graph, topology, best, labelled);
}

}  // namespace edgesched::sched
