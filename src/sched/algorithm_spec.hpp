// Declarative algorithm bundles for the list-scheduling engine.
//
// Every contention-aware list scheduler of the reproduction is the same
// §4 loop — ready-moment computation, processor selection, in-edge
// ordering, route + commit — differing only in which policy it plugs
// into each step. An `AlgorithmSpec` names those policies declaratively;
// the `ListSchedulingEngine` (engine.hpp) interprets it. The four paper
// algorithms are preset bundles (see registry.hpp):
//
//   bundle     | selection   | edge order | routing        | insertion
//   -----------+-------------+------------+----------------+-----------
//   BA         | blind EFT   | predecessor| minimal BFS    | first-fit
//   OIHSA      | MLS estimate| cost desc  | probe Dijkstra | optimal
//   BBSA       | MLS estimate| cost desc  | probe Dijkstra | fluid bw
//   PACKET-BA  | blind EFT   | predecessor| minimal BFS    | packetized
//
// Any other combination is equally expressible: the ablation benches
// sweep novel bundles (e.g. OIHSA selection + first-fit insertion)
// without bespoke option flags, and the spec's structural `fingerprint`
// lets the service layer cache schedules per bundle, not per class name.
#pragma once

#include <cstdint>
#include <string>

#include "sched/priorities.hpp"
#include "timeline/insertion.hpp"

namespace edgesched::sched {

/// §4.1 processor choice.
enum class SelectionPolicyKind {
  /// Communication-blind earliest finish: ready moment + execution time
  /// through the placement policy (BA's paper reading, PACKET-BA).
  kBlindEft,
  /// Tentatively schedule the task with all incoming communications on
  /// every processor, roll the network back, keep the true earliest
  /// finish (Sinnen's original BA). Requires first-fit insertion — it is
  /// the only commit with a clean rollback.
  kTentativeEft,
  /// Static-style estimate over the mean link speed MLS (OIHSA/BBSA):
  /// max(max_j(t_f(n_j) + c(e_ji)/MLS), availability) + w(n_i)/s(P).
  kMlsEstimate,
};

/// §4.2 order in which a ready task's incoming edges book the network.
enum class EdgeOrderPolicyKind {
  kPredecessorOrder,  ///< the DAG's in-edge order (BA)
  kByCostDescending,  ///< costliest edge books first (OIHSA/BBSA)
};

/// §4.3 route computation.
enum class RoutingPolicyKind {
  kBfsMinimal,     ///< static fewest-hop routes, memoised per (from, to)
  kProbeDijkstra,  ///< workload-aware: relax on tentative per-link finish
};

/// §4.4 / §5: how a routed communication commits into the network state.
/// The kind also selects the network-state model: `kFluidBandwidth` runs
/// on bandwidth-sharing timelines, everything else on exclusive links.
enum class InsertionPolicyKind {
  kFirstFit,        ///< exclusive slots, never displacing (§3)
  kOptimal,         ///< exclusive slots, deferral within slack (§4.4)
  kPacketized,      ///< store-and-forward equal-volume packets (§2.2)
  kFluidBandwidth,  ///< rate profiles under formulas (4)/(5) (§5)
};

/// One declarative algorithm bundle. Value type; two specs with equal
/// fields produce bit-identical schedules on any instance.
struct AlgorithmSpec {
  /// Display name: Schedule::algorithm, decision-log `algorithm` field
  /// and (lower-cased) the span-name prefix.
  std::string name;

  PriorityScheme priority = PriorityScheme::kBottomLevel;
  SelectionPolicyKind selection = SelectionPolicyKind::kBlindEft;
  /// kMlsEstimate only: evaluate the availability term through the
  /// placement policy instead of the literal last-finish time.
  bool insertion_aware_estimate = false;

  EdgeOrderPolicyKind edge_order = EdgeOrderPolicyKind::kPredecessorOrder;

  RoutingPolicyKind routing = RoutingPolicyKind::kBfsMinimal;
  /// kProbeDijkstra only: memoise probe routes under the network-state
  /// load generation (pure fast path; see net::ProbedRouteCache).
  bool route_memo = true;

  InsertionPolicyKind insertion = InsertionPolicyKind::kFirstFit;
  /// kPacketized only: a message of cost c becomes ceil(c/packet_size)
  /// equal-volume packets.
  double packet_size = 250.0;

  /// Dynamic model (§4.1): edges ship at the task's ready moment; true
  /// lets each edge leave at its own source's finish instead.
  bool eager_communication = false;
  /// Task placement: Sinnen's insertion technique (true) vs literal
  /// append t_s = max(t_dr, t_f(P)) (see DESIGN.md §6).
  bool task_insertion = true;
  /// Per-station forwarding latency (§2.2 neglects it by default).
  double hop_delay = 0.0;

  /// Exclusive circuit models only: after the run, rewrite every routed
  /// edge's communication from the final link records. Required with
  /// kOptimal (deferral may have moved occupations booked earlier); a
  /// byte-identical no-op with kFirstFit.
  bool refresh_edge_records = false;

  /// Structural 64-bit fingerprint over every field (including the
  /// name). The service layer keys its schedule cache on this, so two
  /// bundles sharing a display name but differing in any policy cache
  /// independently.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

  /// Throws std::invalid_argument for inconsistent bundles: tentative
  /// selection without first-fit insertion, optimal insertion without
  /// record refresh, non-positive packet size, negative hop delay.
  void validate() const;

  /// One-line policy summary, e.g.
  /// "selection=mls-estimate order=cost-desc routing=probe-dijkstra
  ///  insertion=optimal" (for --list-algorithms and bench labels).
  [[nodiscard]] std::string describe() const;
};

}  // namespace edgesched::sched
