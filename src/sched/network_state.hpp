// Mutable scheduling state over a network topology.
//
// `ExclusiveNetworkState` holds one exclusive `LinkTimeline` per
// contention domain plus, for every committed DAG edge, its route and
// per-link occupations — the information OIHSA's deferral slack (Lemma 2)
// is computed from. `BandwidthNetworkState` is the BBSA counterpart with
// one `BandwidthTimeline` per domain. `MachineState` tracks the processor
// timelines. All three are value types: the Basic Algorithm's tentative
// per-processor evaluation copies the state, schedules into the copy and
// keeps the best.
#pragma once

#include <cstdint>
#include <vector>

#include "dag/task_graph.hpp"
#include "net/topology.hpp"
#include "sched/schedule.hpp"
#include "timeline/bandwidth_timeline.hpp"
#include "timeline/insertion.hpp"
#include "timeline/link_timeline.hpp"
#include "timeline/optimal_insertion.hpp"
#include "timeline/processor_timeline.hpp"

namespace edgesched::sched {

/// Route and committed per-link occupations of one scheduled edge.
struct EdgeRecord {
  net::Route route;
  std::vector<LinkOccupation> occupations;
  /// Load generation the owning state had *before* this edge committed;
  /// lets a clean rollback (`uncommit_edge` of the latest mutation)
  /// restore the generation instead of invalidating route memos.
  std::uint64_t generation_before = 0;
  [[nodiscard]] bool scheduled() const noexcept { return !route.empty(); }
};

class ExclusiveNetworkState {
 public:
  /// `hop_delay` is the per-station forwarding latency the paper's §2.2
  /// neglects by default ("it can be included if necessary"): each
  /// additional hop of a route sees the data `hop_delay` later.
  ExclusiveNetworkState(const net::Topology& topology,
                        std::size_t num_edges, double hop_delay = 0.0);

  /// Flushes accumulated probe/deferral/shift tallies into the global
  /// hot-path counters — one atomic add per counter per state lifetime,
  /// so the per-probe cost stays a plain integer increment.
  ~ExclusiveNetworkState();

  ExclusiveNetworkState(const ExclusiveNetworkState&) = delete;
  ExclusiveNetworkState& operator=(const ExclusiveNetworkState&) = delete;

  [[nodiscard]] const net::Topology& topology() const noexcept {
    return *topology_;
  }

  [[nodiscard]] const timeline::LinkTimeline& timeline(
      net::LinkId link) const {
    return domains_[topology_->domain(link).index()];
  }
  [[nodiscard]] const timeline::LinkTimeline& domain_timeline(
      net::DomainId domain) const {
    return domains_[domain.index()];
  }

  /// Basic-insertion probe of one link without committing — the modified
  /// routing algorithm's relaxation step (§4.3). Uses the precomputed
  /// per-link inverse speed, so each relaxation costs a multiply, not a
  /// divide.
  [[nodiscard]] timeline::Placement probe_link(net::LinkId link,
                                               double t_es_in,
                                               double t_f_min,
                                               double cost) const {
    return domains_[topology_->domain(link).index()].probe_basic(
        t_es_in, t_f_min, cost * inv_speed_[link.index()]);
  }

  /// Monotone *load generation*: bumped by every timeline mutation
  /// (edge/packet commit, deferral shift cascade, uncommit). Two equal
  /// generations imply bit-identical link timelines, which is what
  /// `net::ProbedRouteCache` keys its memo validity on. The only
  /// non-monotone step is the clean-rollback restore in `uncommit_edge`:
  /// undoing the *latest* mutation provably returns to the previous
  /// timeline state, so the previous generation is restored with it.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }

  /// Schedules the edge along `route` with first-fit insertion on every
  /// hop (Basic Algorithm, §3). Returns the arrival time at the route's
  /// final node. `ready` is the source task's finish time.
  double commit_edge_basic(dag::EdgeId edge, const net::Route& route,
                           double ready, double cost);

  /// Schedules the edge along `route` with optimal insertion (§4.4):
  /// already-booked slots may be deferred within their causality slack,
  /// and displaced edges' records are updated. Returns the arrival time.
  double commit_edge_optimal(dag::EdgeId edge, const net::Route& route,
                             double ready, double cost);

  /// Insertion-policy facade: dispatches to the basic or optimal commit.
  double commit_edge(dag::EdgeId edge, const net::Route& route,
                     double ready, double cost,
                     timeline::InsertionKind insertion) {
    return insertion == timeline::InsertionKind::kOptimal
               ? commit_edge_optimal(edge, route, ready, cost)
               : commit_edge_basic(edge, route, ready, cost);
  }

  /// Record of a committed edge; unscheduled edges return an empty record.
  [[nodiscard]] const EdgeRecord& record(dag::EdgeId edge) const {
    EDGESCHED_ASSERT(edge.index() < records_.size());
    return records_[edge.index()];
  }

  /// Removes a committed edge's slots and record. Only safe after
  /// `commit_edge_basic` (optimal insertion may have displaced other
  /// edges, which erasing cannot undo). This is the cheap rollback the
  /// Basic Algorithm's tentative per-processor evaluation relies on.
  void uncommit_edge(dag::EdgeId edge);

  /// Books one store-and-forward packet of `edge` along `route`: each hop
  /// may begin only after the packet fully crossed the previous hop.
  /// Appends the occupations to the edge's record (an edge may own many
  /// packets); returns the packet's arrival time at the route's end.
  double commit_packet(dag::EdgeId edge, const net::Route& route,
                       double ready, double volume);

  /// Total busy time over all domains (network load statistic).
  [[nodiscard]] double total_busy_time() const noexcept;

 private:
  /// Longest deferrable time of an occupied slot living in `domain`
  /// (Lemma 2); 0 on the occupant's last hop.
  [[nodiscard]] double deferral_for(net::DomainId domain,
                                    const timeline::TimeSlot& slot) const;

  const net::Topology* topology_;
  std::vector<timeline::LinkTimeline> domains_;  ///< by DomainId
  std::vector<EdgeRecord> records_;              ///< by EdgeId
  std::vector<double> inv_speed_;                ///< 1/s(L) by LinkId
  double hop_delay_ = 0.0;
  std::uint64_t generation_ = 0;  ///< see generation()
  /// Reused optimal-insertion scratch: one shift buffer for the whole
  /// state instead of one heap allocation per probed hop.
  timeline::OptimalPlacement probe_scratch_;
  // Hot-path tallies, batched into obs counters by the destructor.
  mutable std::uint64_t deferral_scans_ = 0;
  std::uint64_t slot_shifts_ = 0;
  std::uint64_t deferred_insertions_ = 0;
};

class BandwidthNetworkState {
 public:
  explicit BandwidthNetworkState(const net::Topology& topology,
                                 double hop_delay = 0.0);

  /// Flushes the accumulated bandwidth-probe tally into the global
  /// counter (same batching discipline as ExclusiveNetworkState).
  ~BandwidthNetworkState();

  BandwidthNetworkState(const BandwidthNetworkState&) = delete;
  BandwidthNetworkState& operator=(const BandwidthNetworkState&) = delete;

  [[nodiscard]] const net::Topology& topology() const noexcept {
    return *topology_;
  }

  [[nodiscard]] const timeline::BandwidthTimeline& timeline(
      net::LinkId link) const {
    return domains_[topology_->domain(link).index()];
  }

  /// Monotone load generation, the bandwidth counterpart of
  /// `ExclusiveNetworkState::generation()`: bumped by every fluid commit
  /// (the only mutation this state has). Equal generations imply
  /// bit-identical bandwidth timelines, so probe-driven route memos keyed
  /// on it are a pure fast path for BBSA-style bundles too.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }

  /// Routing probe: earliest finish of `cost` volume on this link using
  /// all remaining bandwidth from `t_es_in` (§5, applied to §4.3 routing).
  [[nodiscard]] double probe_finish(net::LinkId link, double t_es_in,
                                    double t_f_min, double cost) const;
  /// First moment any bandwidth is available at or after `t`.
  [[nodiscard]] double probe_first_flow(net::LinkId link, double t) const;

  /// Schedules the edge along `route`: full remaining bandwidth on the
  /// first hop from `ready`, fluid forwarding on subsequent hops, all
  /// profiles committed. Returns (arrival, per-hop profiles).
  struct Transfer {
    double arrival = 0.0;
    std::vector<timeline::RateProfile> profiles;
  };
  Transfer commit_edge(const net::Route& route, double ready, double cost);

 private:
  const net::Topology* topology_;
  std::vector<timeline::BandwidthTimeline> domains_;  ///< by DomainId
  double hop_delay_ = 0.0;
  std::uint64_t generation_ = 0;  ///< see generation()
};

/// Processor timelines, one per topology node (switch entries stay empty).
class MachineState {
 public:
  explicit MachineState(const net::Topology& topology);

  /// The paper's task start (§2.1): t_s(n, P) = max(t_dr, t_f(P)) — tasks
  /// append after the processor's last finish, no insertion.
  [[nodiscard]] double append_start(net::NodeId processor,
                                    double ready) const;
  /// Insertion-policy earliest start (ablation alternative to the paper's
  /// append rule).
  [[nodiscard]] double earliest_start(net::NodeId processor, double ready,
                                      double duration) const;
  /// Start under the selected policy.
  [[nodiscard]] double start_for(net::NodeId processor, double ready,
                                 double duration, bool insertion) const {
    return insertion ? earliest_start(processor, ready, duration)
                     : append_start(processor, ready);
  }
  void commit(net::NodeId processor, dag::TaskId task, double start,
              double duration);
  /// t_f(P): current finish time of the processor.
  [[nodiscard]] double finish_time(net::NodeId processor) const;

  /// Bumped on every `commit`. The engine's candidate scan snapshots it
  /// before fanning workers out and asserts it unchanged after — the
  /// scan is speculative and read-only, nothing may book a slot while
  /// workers probe the timelines.
  [[nodiscard]] std::uint64_t revision() const noexcept { return revision_; }

  /// Arena pre-sizing: gives every timeline capacity for about
  /// `per_processor_hint` slots so a run sized once up front commits
  /// without reallocation in the common balanced case.
  void reserve_slots(std::size_t per_processor_hint);

 private:
  std::vector<timeline::ProcessorTimeline> timelines_;  ///< by node index
  std::uint64_t revision_ = 0;  ///< commit count, see revision()
};

}  // namespace edgesched::sched
