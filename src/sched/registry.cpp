#include "sched/registry.hpp"

#include <cctype>
#include <stdexcept>

#include "sched/annealing.hpp"
#include "sched/ba.hpp"
#include "sched/bbsa.hpp"
#include "sched/classic.hpp"
#include "sched/genetic.hpp"
#include "sched/oihsa.hpp"
#include "sched/packetized.hpp"

namespace edgesched::sched {

namespace {

std::string to_lower(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return lower;
}

std::vector<AlgorithmEntry> build_registry() {
  std::vector<AlgorithmEntry> entries;

  entries.push_back(AlgorithmEntry{
      "ba",
      {},
      "BA",
      "Basic Algorithm (§3): contention-aware baseline, minimal BFS "
      "routes, first-fit insertion",
      [] { return BasicAlgorithm::spec({}); },
      [] { return std::make_unique<BasicAlgorithm>(); }});

  entries.push_back(AlgorithmEntry{
      "oihsa",
      {},
      "OIHSA",
      "Optimal Insertion Hybrid Scheduling Algorithm (§4): MLS estimate "
      "selection, cost-ordered edges, probe routing, optimal insertion",
      [] { return Oihsa::spec({}); },
      [] { return std::make_unique<Oihsa>(); }});

  entries.push_back(AlgorithmEntry{
      "bbsa",
      {},
      "BBSA",
      "Bandwidth-Based Scheduling Algorithm (§5): OIHSA's selection and "
      "routing over fluid bandwidth-sharing links",
      [] { return Bbsa::spec({}); },
      [] { return std::make_unique<Bbsa>(); }});

  entries.push_back(AlgorithmEntry{
      "packet-ba",
      {"packet"},
      "PACKET-BA",
      "Packetized BA (§2.2): store-and-forward equal-volume packets on "
      "exclusive links",
      [] { return PacketizedBa::spec({}); },
      [] { return std::make_unique<PacketizedBa>(); }});

  entries.push_back(AlgorithmEntry{
      "classic",
      {},
      "CLASSIC",
      "Idealised contention-free list scheduler (§2.2) — the model the "
      "paper argues against",
      nullptr,
      [] { return std::make_unique<ClassicScheduler>(); }});

  entries.push_back(AlgorithmEntry{
      "ga",
      {},
      "GA",
      "Genetic algorithm over task-processor assignments, fitness under "
      "real contention",
      nullptr,
      [] { return std::make_unique<GeneticScheduler>(); }});

  entries.push_back(AlgorithmEntry{
      "sa",
      {},
      "SA",
      "Simulated annealing over task-processor assignments, fitness "
      "under real contention",
      nullptr,
      [] { return std::make_unique<AnnealingScheduler>(); }});

  return entries;
}

}  // namespace

const std::vector<AlgorithmEntry>& algorithm_registry() {
  static const std::vector<AlgorithmEntry> registry = build_registry();
  return registry;
}

const AlgorithmEntry* find_algorithm(std::string_view name) {
  const std::string lower = to_lower(name);
  for (const AlgorithmEntry& entry : algorithm_registry()) {
    if (entry.key == lower) {
      return &entry;
    }
    for (const std::string& alias : entry.aliases) {
      if (alias == lower) {
        return &entry;
      }
    }
  }
  return nullptr;
}

std::unique_ptr<Scheduler> make_scheduler(std::string_view name) {
  if (const AlgorithmEntry* entry = find_algorithm(name)) {
    return entry->make();
  }
  std::string known;
  for (const AlgorithmEntry& entry : algorithm_registry()) {
    if (!known.empty()) {
      known += ", ";
    }
    known += entry.key;
  }
  throw std::invalid_argument("unknown algorithm \"" + std::string(name) +
                              "\" (known: " + known + ")");
}

std::string algorithm_list() {
  std::string text;
  for (const AlgorithmEntry& entry : algorithm_registry()) {
    text += entry.key;
    for (const std::string& alias : entry.aliases) {
      text += " | ";
      text += alias;
    }
    text += "\n    ";
    text += entry.summary;
    text += "\n";
    if (entry.engine_backed()) {
      text += "    engine bundle: ";
      text += entry.spec().describe();
      text += "\n";
    }
  }
  return text;
}

}  // namespace edgesched::sched
