// Makespan lower bounds.
//
// Schedulers are heuristics; these bounds are the yardsticks the tests and
// metrics measure them against. All bounds are valid for every scheduling
// model in this library (contention-aware or not), because they ignore
// communication entirely — communication can only delay a schedule.
#pragma once

#include "dag/task_graph.hpp"
#include "net/topology.hpp"

namespace edgesched::sched {

/// Longest computation-only path executed at the fastest processor speed:
/// no schedule can finish a dependence chain faster.
[[nodiscard]] double critical_path_bound(const dag::TaskGraph& graph,
                                         const net::Topology& topology);

/// Total computation divided by the aggregate processing capacity: even a
/// perfectly balanced machine needs this long.
[[nodiscard]] double work_bound(const dag::TaskGraph& graph,
                                const net::Topology& topology);

/// The heaviest single task on the fastest processor.
[[nodiscard]] double max_task_bound(const dag::TaskGraph& graph,
                                    const net::Topology& topology);

/// max of all bounds above.
[[nodiscard]] double makespan_lower_bound(const dag::TaskGraph& graph,
                                          const net::Topology& topology);

}  // namespace edgesched::sched
