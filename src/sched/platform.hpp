// Shared per-topology platform state vs per-run scratch.
//
// The list-scheduling engine historically rebuilt everything from the
// raw `net::Topology` on every `run()` call — BFS route discovery, the
// mean-link-speed reduction, Dijkstra workspaces, candidate buffers.
// That is the right trade for one schedule on one fabric, and the wrong
// one for the repeated-scheduling regimes this toolkit actually serves:
// the service layer absorbing many DAGs against one deployment, sweep
// instances comparing three algorithms on one drawn topology, recovery
// replans on a surviving fabric.
//
// `PlatformContext` is the split: an immutable snapshot of everything
// derivable from the topology alone, built once and shared freely —
//
//   * the all-pairs minimal-route table (`net::StaticRouteTable`),
//   * the mean link speed (the §4.1 MLS estimate denominator),
//   * the topology's structural fingerprint (the service layer's
//     content-address for its platform cache),
//
// paired with a pool of per-run `Workspace` objects holding every piece
// of mutable scratch a run needs (Dijkstra workspace, probe-route memo,
// edge-order and candidate buffers). `checkout()` leases a workspace —
// reusing a pooled one when a previous run returned it, allocating
// fresh under contention — so N concurrent runs over one context never
// share mutable state.
//
// Thread-safety contract: after construction every `const` member of
// `PlatformContext` is safe from any number of threads (the immutable
// parts are never written again; the pool is mutex-guarded). A leased
// `Workspace` belongs to exactly one run on one thread until its lease
// is destroyed. Schedules produced through a shared context are
// byte-identical to per-run rebuilds (tests/platform_context_property_
// test.cpp fuzzes this across the whole algorithm registry).
//
// See docs/platform.md for the ownership/lifetime diagram.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "dag/task_graph.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "obs/decision_log.hpp"

namespace edgesched::sched {

/// All mutable per-run scratch of one engine run, poolable across runs.
/// `begin_run()` re-arms a pooled workspace: the probe-route memo is
/// invalidated (load generations restart per run) and the reusable
/// buffers are cleared; the Dijkstra workspace self-resets via its
/// search epoch.
struct Workspace {
  net::RoutingScratch routing;
  std::vector<dag::EdgeId> order_scratch;
  std::vector<obs::ProcessorCandidate> candidates;
  /// Per-processor scores of one candidate scan: the engine sizes this
  /// to the processor count, workers write disjoint chunks, the
  /// reduction and the decision log read it back in index order.
  std::vector<obs::ProcessorCandidate> scores;
  /// Candidate-evaluation tally batched per run; `flush_counters` moves
  /// it (and the routing scratch's batched tallies) into the global
  /// registry so counter totals are identical at every worker count.
  std::uint64_t candidates_evaluated = 0;

  void begin_run() {
    routing.begin_run();
    order_scratch.clear();
    candidates.clear();
    scores.clear();
  }

  /// Flushes every counter batched in this workspace into the global
  /// registry. The engine calls this once per run per leased workspace.
  void flush_counters();
};

class PlatformContext;

/// RAII lease of one pooled `Workspace`: taken from the context's pool
/// (or freshly allocated when every pooled workspace is leased out) and
/// returned on destruction. Non-copyable, non-movable — the lease is
/// scoped to one run on one thread.
class WorkspaceLease {
 public:
  explicit WorkspaceLease(const PlatformContext& owner);
  ~WorkspaceLease();

  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;

  [[nodiscard]] Workspace& operator*() const noexcept { return *workspace_; }
  [[nodiscard]] Workspace* operator->() const noexcept {
    return workspace_.get();
  }

 private:
  const PlatformContext* owner_;
  std::unique_ptr<Workspace> workspace_;
};

/// Immutable, thread-safe-by-construction snapshot of one topology's
/// derived scheduling state plus a pool of per-run workspaces. Build it
/// once per fabric and share it across every run on that fabric; see
/// the file comment for the contract.
class PlatformContext {
 public:
  /// Non-owning: `topology` must outlive the context (the sweep runner
  /// and recovery replans own the topology alongside the context).
  explicit PlatformContext(const net::Topology& topology);

  /// Shared ownership: the context keeps the topology alive (the
  /// service layer's platform cache hands contexts to jobs that may
  /// outlive the submitting request).
  explicit PlatformContext(std::shared_ptr<const net::Topology> topology);

  PlatformContext(const PlatformContext&) = delete;
  PlatformContext& operator=(const PlatformContext&) = delete;

  [[nodiscard]] const net::Topology& topology() const noexcept {
    return *topology_;
  }
  [[nodiscard]] const net::StaticRouteTable& routes() const noexcept {
    return routes_;
  }
  /// Cached `Topology::mean_link_speed()` — O(L) once per context
  /// instead of once per MLS-estimate run.
  [[nodiscard]] double mean_link_speed() const noexcept {
    return mean_link_speed_;
  }
  /// Cached `Topology::fingerprint()`: the content address the service
  /// layer keys its platform cache on.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_;
  }
  /// Arena-sizing hint for `MachineState::reserve_slots`: the mean
  /// per-processor load of a `num_tasks` run on this fabric.
  [[nodiscard]] std::size_t slot_reserve_hint(
      std::size_t num_tasks) const noexcept {
    return num_tasks / num_processors_ + 8;
  }

  /// Leases a per-run workspace (pooled, allocated on demand).
  [[nodiscard]] WorkspaceLease checkout() const {
    return WorkspaceLease(*this);
  }

  /// Workspaces currently parked in the pool (observability/tests).
  [[nodiscard]] std::size_t pooled_workspaces() const;

 private:
  friend class WorkspaceLease;
  [[nodiscard]] std::unique_ptr<Workspace> acquire() const;
  void release(std::unique_ptr<Workspace> workspace) const;

  std::shared_ptr<const net::Topology> owned_;  ///< may be null
  const net::Topology* topology_;
  net::StaticRouteTable routes_;
  double mean_link_speed_ = 0.0;
  std::uint64_t fingerprint_ = 0;
  std::size_t num_processors_ = 1;
  mutable std::mutex pool_mutex_;
  mutable std::vector<std::unique_ptr<Workspace>> pool_;
};

}  // namespace edgesched::sched
