#include "sched/bbsa.hpp"

#include "sched/engine.hpp"

namespace edgesched::sched {

AlgorithmSpec Bbsa::spec(const Options& options) {
  AlgorithmSpec spec;
  spec.name = "BBSA";
  spec.priority = options.priority;
  // Processor choice is identical to OIHSA (§4.1) with the availability
  // term read literally from the processor's finish time.
  spec.selection = SelectionPolicyKind::kMlsEstimate;
  spec.edge_order = options.edge_priority_by_cost
                        ? EdgeOrderPolicyKind::kByCostDescending
                        : EdgeOrderPolicyKind::kPredecessorOrder;
  spec.routing = options.modified_routing ? RoutingPolicyKind::kProbeDijkstra
                                          : RoutingPolicyKind::kBfsMinimal;
  // No route memo: BBSA commits every routed edge immediately, and the
  // commit bumps the bandwidth generation, so a memoised route could
  // never be reused — the memo would be pure map churn. (Enabling it is
  // still sound; the policy-matrix suite proves it byte-identical.)
  spec.route_memo = false;
  spec.insertion = InsertionPolicyKind::kFluidBandwidth;
  spec.eager_communication = options.eager_communication;
  spec.task_insertion = options.task_insertion;
  spec.hop_delay = options.hop_delay;
  return spec;
}

Schedule Bbsa::schedule(const dag::TaskGraph& graph,
                        const net::Topology& topology) const {
  check_inputs(graph, topology);
  return ListSchedulingEngine(spec(options_)).run(graph, topology);
}

Schedule Bbsa::schedule(const dag::TaskGraph& graph,
                        const PlatformContext& platform) const {
  check_inputs(graph, platform.topology());
  return ListSchedulingEngine(spec(options_)).run(graph, platform);
}

std::uint64_t Bbsa::fingerprint() const {
  return spec(options_).fingerprint();
}

}  // namespace edgesched::sched
