#include "sched/bbsa.hpp"

#include <algorithm>
#include <limits>

#include "net/routing.hpp"
#include "obs/counters.hpp"
#include "obs/decision_log.hpp"
#include "obs/trace.hpp"
#include "sched/network_state.hpp"

namespace edgesched::sched {

Schedule Bbsa::schedule(const dag::TaskGraph& graph,
                        const net::Topology& topology) const {
  check_inputs(graph, topology);
  obs::Span run_span("bbsa/schedule", "sched", graph.num_tasks());
  obs::DecisionLog* const log = obs::active_decision_log();
  Schedule out(name(), graph.num_tasks(), graph.num_edges());

  const std::vector<dag::TaskId> order =
      list_order(graph, options_.priority);
  BandwidthNetworkState network(topology, options_.hop_delay);
  MachineState machines(topology);
  net::RouteCache bfs_routes(topology);
  // Reused across every routed edge (epoch-stamped labels, see routing.hpp).
  net::RoutingWorkspace dijkstra_ws;
  const double mls = topology.mean_link_speed();
  std::uint64_t edges_routed = 0;

  for (dag::TaskId task : order) {
    const double weight = graph.weight(task);

    // Dynamic model (§4.1): communications leave when the task is ready.
    double ready_moment = 0.0;
    for (dag::EdgeId e : graph.in_edges(task)) {
      ready_moment =
          std::max(ready_moment, out.task(graph.edge(e).src).finish);
    }

    // Processor choice — identical to OIHSA (§4.1).
    net::NodeId chosen;
    double chosen_estimate = std::numeric_limits<double>::infinity();
    std::vector<obs::ProcessorCandidate> candidates;
    {
      obs::Span select_span("bbsa/select_processor", "sched",
                            task.value());
      for (net::NodeId processor : topology.processors()) {
        double ready_estimate = 0.0;
        for (dag::EdgeId e : graph.in_edges(task)) {
          const dag::Edge& edge = graph.edge(e);
          const TaskPlacement& src = out.task(edge.src);
          double via = src.finish;
          if (src.processor != processor && mls > 0.0) {
            via += edge.cost / mls;
          }
          ready_estimate = std::max(ready_estimate, via);
        }
        const double estimate =
            std::max(ready_estimate, machines.finish_time(processor)) +
            weight / topology.processor_speed(processor);
        if (log != nullptr) {
          candidates.push_back(obs::ProcessorCandidate{
              static_cast<std::uint32_t>(processor.index()),
              ready_estimate, estimate});
        }
        if (estimate < chosen_estimate) {
          chosen_estimate = estimate;
          chosen = processor;
        }
      }
    }
    if (log != nullptr) {
      log->record(obs::TaskDecision{
          name(), static_cast<std::uint32_t>(task.index()),
          static_cast<std::uint32_t>(chosen.index()), chosen_estimate,
          std::move(candidates)});
    }

    // Edge priority (§4.2).
    std::vector<dag::EdgeId> in = graph.in_edges(task);
    if (options_.edge_priority_by_cost) {
      std::stable_sort(in.begin(), in.end(),
                       [&](dag::EdgeId a, dag::EdgeId b) {
                         return graph.cost(a) > graph.cost(b);
                       });
    }

    double data_ready = ready_moment;
    for (dag::EdgeId e : in) {
      const dag::Edge& edge = graph.edge(e);
      const TaskPlacement& src = out.task(edge.src);
      EdgeCommunication comm;
      comm.arrival = src.finish;
      double ship_time = src.finish;
      if (src.processor == chosen || edge.cost <= 0.0) {
        comm.kind = EdgeCommunication::Kind::kLocal;
      } else {
        obs::Span route_span("bbsa/route_edge", "sched", e.value());
        ship_time =
            options_.eager_communication ? src.finish : ready_moment;
        net::Route route;
        if (options_.modified_routing) {
          // Relaxation key: earliest finish of the full volume using the
          // link's remaining bandwidth (the bandwidth analogue of §4.3).
          const auto probe = [&](net::LinkId link,
                                 const net::ProbeState& state) {
            return net::ProbeResult{
                network.probe_first_flow(link, state.earliest_start),
                network.probe_finish(link, state.earliest_start,
                                     state.min_finish, edge.cost)};
          };
          route = net::dijkstra_route_probe(topology, src.processor,
                                            chosen, ship_time, probe,
                                            &dijkstra_ws);
        } else {
          route = bfs_routes.route(src.processor, chosen);
        }
        BandwidthNetworkState::Transfer transfer =
            network.commit_edge(route, ship_time, edge.cost);
        comm.kind = EdgeCommunication::Kind::kBandwidth;
        comm.route = std::move(route);
        comm.profiles = std::move(transfer.profiles);
        comm.arrival = transfer.arrival;
        ++edges_routed;
      }
      if (log != nullptr) {
        obs::EdgeDecision decision;
        decision.algorithm = name();
        decision.edge = static_cast<std::uint32_t>(e.index());
        decision.src_task = static_cast<std::uint32_t>(edge.src.index());
        decision.dst_task = static_cast<std::uint32_t>(edge.dst.index());
        decision.local = comm.kind == EdgeCommunication::Kind::kLocal;
        decision.ship_time = ship_time;
        decision.arrival = comm.arrival;
        for (std::size_t i = 0; i < comm.profiles.size(); ++i) {
          decision.hops.push_back(obs::EdgeHop{
              static_cast<std::uint32_t>(comm.route[i].index()),
              comm.profiles[i].start_time(),
              comm.profiles[i].finish_time()});
        }
        log->record(std::move(decision));
      }
      data_ready = std::max(data_ready, comm.arrival);
      out.set_communication(e, std::move(comm));
    }

    const double duration = weight / topology.processor_speed(chosen);
    const double start =
        machines.start_for(chosen, data_ready, duration,
                           options_.task_insertion);
    machines.commit(chosen, task, start, duration);
    out.place_task(task, TaskPlacement{chosen, start, start + duration});
  }

  obs::HotCounters& counters = obs::hot_counters();
  counters.tasks_placed.increment(order.size());
  if (edges_routed > 0) {
    counters.edges_routed.increment(edges_routed);
  }
  return out;
}

}  // namespace edgesched::sched
