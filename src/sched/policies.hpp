// Policy interfaces of the list-scheduling engine.
//
// The §4 list-scheduling loop makes four pluggable decisions per task:
//
//   * `ProcessorSelectionPolicy` — which processor the ready task takes
//     (§4.1: blind EFT, tentative EFT, or the MLS finish estimate).
//   * `EdgeOrderPolicy` — the order its incoming edges book the network
//     (§4.2: predecessor order, or costliest first).
//   * `RoutingPolicy` — the route of each non-local communication
//     (§4.3: static minimal BFS, or the finish-time-keyed Dijkstra over
//     `NetworkStateModel::probe`, optionally memoised under the state's
//     load generation).
//   * `InsertionPolicy` — how the routed communication commits into the
//     network state and what it writes into the schedule's
//     `EdgeCommunication` (§3 first-fit, §4.4 optimal, §2.2 packetized,
//     §5 fluid bandwidth).
//
// Concrete policies live in policies.cpp; the engine resolves them from
// an `AlgorithmSpec` via the `make_*_policy` factories. Policies are
// per-run objects: they may hold scratch state (the tentative-EFT commit
// list, the cost-sort buffer) but no cross-run state.
#pragma once

#include <memory>
#include <vector>

#include "dag/task_graph.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "obs/decision_log.hpp"
#include "sched/algorithm_spec.hpp"
#include "sched/network_model.hpp"
#include "sched/network_state.hpp"
#include "sched/schedule.hpp"

namespace edgesched::sched {

class RoutingPolicy {
 public:
  RoutingPolicy() = default;
  virtual ~RoutingPolicy() = default;

  RoutingPolicy(const RoutingPolicy&) = delete;
  RoutingPolicy& operator=(const RoutingPolicy&) = delete;

  /// The route one communication of `cost` units takes from `from` to
  /// `to` when shipped at `ship_time`. The returned reference stays valid
  /// until the next `route` call on this policy (it points into the
  /// policy's cache or scratch — no per-edge allocation on cache hits).
  [[nodiscard]] virtual const net::Route& route(NetworkStateModel& network,
                                                net::NodeId from,
                                                net::NodeId to,
                                                double ship_time,
                                                double cost) = 0;
};

/// Everything a selection policy may consult: the run's read-only inputs
/// plus the mutable network (tentative EFT commits into it and rolls
/// back) and the routing policy (tentative routes use the same routes the
/// final commit will).
struct EngineState {
  const dag::TaskGraph& graph;
  const net::Topology& topology;
  const AlgorithmSpec& spec;
  const Schedule& out;
  const MachineState& machines;
  NetworkStateModel& network;
  RoutingPolicy& routing;
};

class ProcessorSelectionPolicy {
 public:
  /// Outcome of one selection.
  struct Choice {
    net::NodeId processor;
    /// The score that won (logged as the decision's chosen estimate):
    /// predicted finish for the EFT policies, the §4.1 estimate for MLS.
    double score = 0.0;
    /// Tentative EFT only: the task start observed for the winner, which
    /// the engine asserts the re-commit reproduces. Negative when the
    /// policy makes no such prediction.
    double expected_start = -1.0;
  };

  ProcessorSelectionPolicy() = default;
  virtual ~ProcessorSelectionPolicy() = default;

  ProcessorSelectionPolicy(const ProcessorSelectionPolicy&) = delete;
  ProcessorSelectionPolicy& operator=(const ProcessorSelectionPolicy&) =
      delete;

  /// Picks the processor for `task`, ready at `ready_moment` with
  /// execution weight `weight`, whose incoming edges will book in the
  /// order `in`. Appends one entry per evaluated processor to
  /// `candidates` when non-null (decision logging).
  [[nodiscard]] virtual Choice select(
      const EngineState& state, dag::TaskId task, double weight,
      double ready_moment, const std::vector<dag::EdgeId>& in,
      std::vector<obs::ProcessorCandidate>* candidates) = 0;

  /// True when this policy scores each processor independently without
  /// mutating any engine state — `score_candidate` is then the single
  /// source of the selection arithmetic and the engine owns the scan
  /// over processors (serial or fanned across a worker team; identical
  /// either way, see docs/parallelism.md). Policies that must mutate
  /// state between candidates (tentative EFT commits trial edges into
  /// the network) return false and keep their serial `select`.
  [[nodiscard]] virtual bool supports_candidate_scan() const {
    return false;
  }

  /// Scores one processor for the scan: returns the candidate record
  /// (processor index, data-ready estimate, finish/estimate score) the
  /// serial `select` would have produced for this processor. Must be
  /// const and touch only read-only state — the engine calls it from
  /// worker threads concurrently. Only called when
  /// `supports_candidate_scan()` is true.
  [[nodiscard]] virtual obs::ProcessorCandidate score_candidate(
      const EngineState& state, dag::TaskId task, double weight,
      double ready_moment, const std::vector<dag::EdgeId>& in,
      net::NodeId processor) const {
    (void)state;
    (void)task;
    (void)weight;
    (void)ready_moment;
    (void)in;
    (void)processor;
    return obs::ProcessorCandidate{};
  }
};

class EdgeOrderPolicy {
 public:
  EdgeOrderPolicy() = default;
  virtual ~EdgeOrderPolicy() = default;

  EdgeOrderPolicy(const EdgeOrderPolicy&) = delete;
  EdgeOrderPolicy& operator=(const EdgeOrderPolicy&) = delete;

  /// The order `task`'s incoming edges book the network. May return a
  /// reference to the graph's own in-edge list (predecessor order) or to
  /// `scratch` after reordering into it.
  [[nodiscard]] virtual const std::vector<dag::EdgeId>& order(
      const dag::TaskGraph& graph, dag::TaskId task,
      std::vector<dag::EdgeId>& scratch) = 0;
};

class InsertionPolicy {
 public:
  InsertionPolicy() = default;
  virtual ~InsertionPolicy() = default;

  InsertionPolicy(const InsertionPolicy&) = delete;
  InsertionPolicy& operator=(const InsertionPolicy&) = delete;

  /// Books the routed communication into the network state and fills
  /// `comm` (kind, route, occupations/profiles, arrival).
  virtual void commit(NetworkStateModel& network, dag::EdgeId edge,
                      const net::Route& route, double ship_time, double cost,
                      EdgeCommunication& comm) = 0;

  /// Decision-log hops of a communication this policy just committed.
  virtual void append_hops(NetworkStateModel& network, dag::EdgeId edge,
                           const EdgeCommunication& comm,
                           std::vector<obs::EdgeHop>& hops) const = 0;
};

/// `mean_link_speed` is the topology's MLS, precomputed by the caller —
/// from the raw topology for a standalone run, from the shared
/// `PlatformContext` when one is threaded through (identical value
/// either way; only the kMlsEstimate policy consults it).
[[nodiscard]] std::unique_ptr<ProcessorSelectionPolicy> make_selection_policy(
    const AlgorithmSpec& spec, double mean_link_speed);
[[nodiscard]] std::unique_ptr<EdgeOrderPolicy> make_edge_order_policy(
    const AlgorithmSpec& spec);
/// `scratch` (Dijkstra workspace, probe-route memo) must outlive the
/// policy; the engine leases one per run. `static_routes`, when
/// non-null, is the shared platform's immutable all-pairs route table —
/// BFS routing reads it instead of owning a per-run `RouteCache`
/// (byte-identical routes either way).
[[nodiscard]] std::unique_ptr<RoutingPolicy> make_routing_policy(
    const AlgorithmSpec& spec, const net::Topology& topology,
    net::RoutingScratch& scratch,
    const net::StaticRouteTable* static_routes);
[[nodiscard]] std::unique_ptr<InsertionPolicy> make_insertion_policy(
    const AlgorithmSpec& spec);

}  // namespace edgesched::sched
