// OIHSA — Optimal Insertion Hybrid Scheduling Algorithm (§4).
//
// Contention-aware list scheduler combining four heuristics:
//   1. processor choice by a static-style estimate over the mean link
//      speed MLS (§4.1);
//   2. incoming edges scheduled in decreasing cost order (§4.2);
//   3. workload-aware routing: Dijkstra keyed on the edge's tentative
//      finish time per link (§4.3);
//   4. optimal insertion with deferral of already-booked edges within
//      their link-causality slack (§4.4, Theorem 1).
// The options expose each ingredient for the ablation benches.
#pragma once

#include "sched/algorithm_spec.hpp"
#include "sched/priorities.hpp"
#include "sched/scheduler.hpp"

namespace edgesched::sched {

class Oihsa final : public Scheduler {
 public:
  struct Options {
    PriorityScheme priority = PriorityScheme::kBottomLevel;
    /// Schedule a ready task's incoming edges by decreasing cost (§4.2);
    /// false falls back to predecessor order (ablation).
    bool edge_priority_by_cost = true;
    /// Workload-aware Dijkstra routing (§4.3); false uses minimal BFS
    /// routes (ablation).
    bool modified_routing = true;
    /// Optimal insertion with deferral (§4.4); false uses first-fit
    /// insertion (ablation).
    bool optimal_insertion = true;
    /// Paper semantics (§4.1): all incoming edges of a ready task start
    /// shipping at its ready moment. True lets each edge leave at its own
    /// source's finish instead (ablation).
    bool eager_communication = false;
    /// Evaluate the t_f(P) term of the §4.1 criterion through the actual
    /// placement policy (insertion-aware availability) instead of the
    /// literal last-finish time. Interpretive; see DESIGN.md §6.
    bool insertion_aware_estimate = false;
    /// Task placement policy. §2.1 defines t_s(n, P) = max(t_dr, t_f(P))
    /// with t_f(P) "the current finish time of P"; we read processor
    /// booking with Sinnen's insertion technique (tasks may fill idle
    /// gaps), which reproduces the paper's reported magnitudes — the
    /// literal append reading collapses them (see DESIGN.md §6 and the
    /// model ablation bench). False switches to pure append.
    bool task_insertion = true;
    /// Per-station forwarding latency (§2.2 neglects it; "it can be
    /// included if necessary"). Each extra hop of a route sees the data
    /// this much later.
    double hop_delay = 0.0;
  };

  Oihsa() = default;
  explicit Oihsa(const Options& options) : options_(options) {}

  /// The engine bundle these options denote (OIHSA is a preset of the
  /// policy-based list-scheduling engine; see sched/engine.hpp).
  [[nodiscard]] static AlgorithmSpec spec(const Options& options);

  [[nodiscard]] Schedule schedule(
      const dag::TaskGraph& graph,
      const net::Topology& topology) const override;
  [[nodiscard]] Schedule schedule(
      const dag::TaskGraph& graph,
      const PlatformContext& platform) const override;
  [[nodiscard]] std::string name() const override { return "OIHSA"; }
  [[nodiscard]] std::uint64_t fingerprint() const override;

 private:
  Options options_;
};

}  // namespace edgesched::sched
