// Central algorithm registry.
//
// One table of every scheduler the toolkit can instantiate by name,
// replacing the string-to-scheduler dispatch that used to be copied in
// the CLI, the comparison example and the service layer. Engine-backed
// entries (BA, OIHSA, BBSA, PACKET-BA) also expose their default
// `AlgorithmSpec` bundle so callers can derive novel policy combinations
// from a preset instead of writing a spec from scratch.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sched/algorithm_spec.hpp"
#include "sched/scheduler.hpp"

namespace edgesched::sched {

/// One algorithm instantiable by name.
struct AlgorithmEntry {
  std::string key;                   ///< canonical lower-case lookup key
  std::vector<std::string> aliases;  ///< accepted alternative spellings
  std::string display;               ///< Scheduler::name() of the default
  std::string summary;               ///< one-liner for listings
  /// Engine-backed entries: the default policy bundle. Null for
  /// schedulers that do not run on the list-scheduling engine (the
  /// idealised classic model and the search-based GA/SA).
  std::function<AlgorithmSpec()> spec;
  /// Default-configured instance factory; never null.
  std::function<std::unique_ptr<Scheduler>()> make;

  [[nodiscard]] bool engine_backed() const noexcept {
    return static_cast<bool>(spec);
  }
};

/// The registry, in display order. Built once, immutable afterwards.
[[nodiscard]] const std::vector<AlgorithmEntry>& algorithm_registry();

/// Case-insensitive lookup by key or alias; nullptr when unknown.
[[nodiscard]] const AlgorithmEntry* find_algorithm(std::string_view name);

/// Instantiates the named algorithm with default options. Throws
/// std::invalid_argument naming the known keys when the name is unknown.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    std::string_view name);

/// Human-readable registry listing (--list-algorithms): one line per
/// entry with key, aliases, summary, and the policy bundle for
/// engine-backed algorithms.
[[nodiscard]] std::string algorithm_list();

}  // namespace edgesched::sched
