#include "sched/policies.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace edgesched::sched {

namespace {

ExclusiveNetworkState& require_exclusive(NetworkStateModel& network) {
  ExclusiveNetworkState* const state = network.exclusive_state();
  EDGESCHED_ASSERT_MSG(state != nullptr,
                       "policy requires the exclusive network model");
  return *state;
}

BandwidthNetworkState& require_bandwidth(NetworkStateModel& network) {
  BandwidthNetworkState* const state = network.bandwidth_state();
  EDGESCHED_ASSERT_MSG(state != nullptr,
                       "policy requires the bandwidth network model");
  return *state;
}

// ---------------------------------------------------------------------------
// Processor selection (§4.1)

/// Communication-blind EFT: ready moment + execution time through the
/// task placement policy (BA's paper reading, PACKET-BA).
///
/// Scan-capable: each candidate is scored from the machine timelines
/// alone (const probes, no commits), so the engine may fan
/// `score_candidate` across workers. `select` stays the one-call serial
/// shape for callers outside the engine and runs the same arithmetic.
class BlindEftSelection final : public ProcessorSelectionPolicy {
 public:
  bool supports_candidate_scan() const override { return true; }

  obs::ProcessorCandidate score_candidate(
      const EngineState& state, dag::TaskId /*task*/, double weight,
      double ready_moment, const std::vector<dag::EdgeId>& /*in*/,
      net::NodeId processor) const override {
    const double duration =
        weight / state.topology.processor_speed(processor);
    const double start = state.machines.start_for(
        processor, ready_moment, duration, state.spec.task_insertion);
    return obs::ProcessorCandidate{
        static_cast<std::uint32_t>(processor.index()), ready_moment,
        start + duration};
  }

  Choice select(const EngineState& state, dag::TaskId task, double weight,
                double ready_moment, const std::vector<dag::EdgeId>& in,
                std::vector<obs::ProcessorCandidate>* candidates) override {
    net::NodeId best_processor;
    double best_finish = std::numeric_limits<double>::infinity();
    for (net::NodeId processor : state.topology.processors()) {
      const obs::ProcessorCandidate candidate =
          score_candidate(state, task, weight, ready_moment, in, processor);
      if (candidates != nullptr) {
        candidates->push_back(candidate);
      }
      if (candidate.estimate < best_finish) {
        best_finish = candidate.estimate;
        best_processor = processor;
      }
    }
    return Choice{best_processor, best_finish, -1.0};
  }
};

/// Tentative EFT (Sinnen's original BA): schedule the task with all its
/// incoming communications on every processor, roll the network back,
/// keep the true earliest finish. Basic insertion never displaces
/// existing slots, so rollback is a plain erase.
class TentativeEftSelection final : public ProcessorSelectionPolicy {
 public:
  Choice select(const EngineState& state, dag::TaskId /*task*/,
                double weight, double ready_moment,
                const std::vector<dag::EdgeId>& in,
                std::vector<obs::ProcessorCandidate>* candidates) override {
    ExclusiveNetworkState& network = require_exclusive(state.network);
    net::NodeId best_processor;
    double best_finish = std::numeric_limits<double>::infinity();
    double best_start = 0.0;
    for (net::NodeId processor : state.topology.processors()) {
      committed_.clear();
      double data_ready = ready_moment;
      for (dag::EdgeId e : in) {
        const dag::Edge& edge = state.graph.edge(e);
        const TaskPlacement& src = state.out.task(edge.src);
        double arrival = src.finish;
        if (src.processor != processor && edge.cost > 0.0) {
          const double ship_time =
              state.spec.eager_communication ? src.finish : ready_moment;
          const net::Route& route = state.routing.route(
              state.network, src.processor, processor, ship_time, edge.cost);
          arrival = network.commit_edge_basic(e, route, ship_time, edge.cost);
          committed_.push_back(e);
        }
        data_ready = std::max(data_ready, arrival);
      }
      const double duration =
          weight / state.topology.processor_speed(processor);
      const double start = state.machines.start_for(
          processor, data_ready, duration, state.spec.task_insertion);
      const double finish = start + duration;
      if (candidates != nullptr) {
        candidates->push_back(obs::ProcessorCandidate{
            static_cast<std::uint32_t>(processor.index()), data_ready,
            finish});
      }
      if (finish < best_finish) {
        best_finish = finish;
        best_start = start;
        best_processor = processor;
      }
      for (auto it = committed_.rbegin(); it != committed_.rend(); ++it) {
        network.uncommit_edge(*it);
      }
    }
    return Choice{best_processor, best_finish, best_start};
  }

 private:
  /// Edges this trial committed, for rollback between candidates.
  std::vector<dag::EdgeId> committed_;
};

/// OIHSA/BBSA choice (§4.1): minimise the static-style finish estimate
///   max(max_j(t_f(n_j) + c(e_ji)/MLS), availability) + w(n_i)/s(P),
/// where same-processor communication is free. The availability term is
/// the processor's literal finish time, or (insertion-aware variant) the
/// start the placement policy would actually yield.
class MlsEstimateSelection final : public ProcessorSelectionPolicy {
 public:
  MlsEstimateSelection(double mean_link_speed, bool insertion_aware)
      : mls_(mean_link_speed), insertion_aware_(insertion_aware) {}

  bool supports_candidate_scan() const override { return true; }

  obs::ProcessorCandidate score_candidate(
      const EngineState& state, dag::TaskId /*task*/, double weight,
      double /*ready_moment*/, const std::vector<dag::EdgeId>& in,
      net::NodeId processor) const override {
    double ready_estimate = 0.0;
    for (dag::EdgeId e : in) {
      const dag::Edge& edge = state.graph.edge(e);
      const TaskPlacement& src = state.out.task(edge.src);
      double via = src.finish;
      if (src.processor != processor && mls_ > 0.0) {
        via += edge.cost / mls_;
      }
      ready_estimate = std::max(ready_estimate, via);
    }
    const double duration_on_p =
        weight / state.topology.processor_speed(processor);
    const double availability =
        insertion_aware_
            ? state.machines.start_for(processor, ready_estimate,
                                       duration_on_p,
                                       state.spec.task_insertion)
            : std::max(ready_estimate,
                       state.machines.finish_time(processor));
    return obs::ProcessorCandidate{
        static_cast<std::uint32_t>(processor.index()), ready_estimate,
        availability + duration_on_p};
  }

  Choice select(const EngineState& state, dag::TaskId task, double weight,
                double ready_moment, const std::vector<dag::EdgeId>& in,
                std::vector<obs::ProcessorCandidate>* candidates) override {
    net::NodeId chosen;
    double chosen_estimate = std::numeric_limits<double>::infinity();
    for (net::NodeId processor : state.topology.processors()) {
      const obs::ProcessorCandidate candidate =
          score_candidate(state, task, weight, ready_moment, in, processor);
      if (candidates != nullptr) {
        candidates->push_back(candidate);
      }
      if (candidate.estimate < chosen_estimate) {
        chosen_estimate = candidate.estimate;
        chosen = processor;
      }
    }
    return Choice{chosen, chosen_estimate, -1.0};
  }

 private:
  double mls_;
  bool insertion_aware_;
};

// ---------------------------------------------------------------------------
// Edge order (§4.2)

class PredecessorEdgeOrder final : public EdgeOrderPolicy {
 public:
  const std::vector<dag::EdgeId>& order(
      const dag::TaskGraph& graph, dag::TaskId task,
      std::vector<dag::EdgeId>& /*scratch*/) override {
    return graph.in_edges(task);
  }
};

/// The costliest incoming edge books first; stable, so equal costs keep
/// predecessor order.
class ByCostEdgeOrder final : public EdgeOrderPolicy {
 public:
  const std::vector<dag::EdgeId>& order(
      const dag::TaskGraph& graph, dag::TaskId task,
      std::vector<dag::EdgeId>& scratch) override {
    scratch = graph.in_edges(task);
    std::stable_sort(scratch.begin(), scratch.end(),
                     [&](dag::EdgeId a, dag::EdgeId b) {
                       return graph.cost(a) > graph.cost(b);
                     });
    return scratch;
  }
};

// ---------------------------------------------------------------------------
// Routing (§4.3)

/// Static minimal routing: fewest hops. Reads the shared platform's
/// immutable all-pairs table when one is supplied; otherwise owns a
/// lazy per-run `RouteCache` (the standalone-run shape, where eager
/// all-pairs BFS would be wasted work). Both sources return
/// byte-identical routes.
class BfsRouting final : public RoutingPolicy {
 public:
  BfsRouting(const net::Topology& topology,
             const net::StaticRouteTable* table)
      : table_(table) {
    if (table_ == nullptr) {
      cache_ = std::make_unique<net::RouteCache>(topology);
    }
  }

  const net::Route& route(NetworkStateModel& /*network*/, net::NodeId from,
                          net::NodeId to, double /*ship_time*/,
                          double /*cost*/) override {
    return table_ != nullptr ? table_->route(from, to)
                             : cache_->route(from, to);
  }

 private:
  const net::StaticRouteTable* table_;
  std::unique_ptr<net::RouteCache> cache_;
};

/// Modified routing (§4.3): Dijkstra relaxing on the tentative per-link
/// finish time the network model's probe reports, with an optional memo
/// keyed on the model's load generation (a pure fast path: a hit returns
/// exactly the route the search would recompute).
class ProbeDijkstraRouting final : public RoutingPolicy {
 public:
  ProbeDijkstraRouting(const net::Topology& topology,
                       net::RoutingScratch& scratch, bool memo)
      : topology_(topology), scratch_(scratch), memo_(memo) {}

  const net::Route& route(NetworkStateModel& network, net::NodeId from,
                          net::NodeId to, double ship_time,
                          double cost) override {
    if (memo_) {
      const std::uint64_t generation = network.generation();
      if (const net::Route* hit = scratch_.memo.lookup(from, to, ship_time,
                                                       cost, generation)) {
        return *hit;
      }
      route_ = search(network, from, to, ship_time, cost);
      scratch_.memo.store(from, to, ship_time, cost, generation, route_);
      return route_;
    }
    route_ = search(network, from, to, ship_time, cost);
    return route_;
  }

 private:
  // The probe runs once per Dijkstra relaxation — the innermost loop of
  // modified routing — so the known network models get concrete lambdas
  // the search template can inline, exactly as the pre-engine schedulers
  // did. The virtual NetworkStateModel::probe stays as the path for
  // models this policy does not know about.
  net::Route search(NetworkStateModel& network, net::NodeId from,
                    net::NodeId to, double ship_time, double cost) {
    if (ExclusiveNetworkState* exclusive = network.exclusive_state()) {
      const auto probe = [exclusive, cost](net::LinkId link,
                                           const net::ProbeState& state) {
        const timeline::Placement placement = exclusive->probe_link(
            link, state.earliest_start, state.min_finish, cost);
        return net::ProbeResult{placement.start, placement.finish};
      };
      return net::dijkstra_route_probe(topology_, from, to, ship_time,
                                       probe, &scratch_.workspace);
    }
    if (BandwidthNetworkState* bandwidth = network.bandwidth_state()) {
      const auto probe = [bandwidth, cost](net::LinkId link,
                                           const net::ProbeState& state) {
        return net::ProbeResult{
            bandwidth->probe_first_flow(link, state.earliest_start),
            bandwidth->probe_finish(link, state.earliest_start,
                                    state.min_finish, cost)};
      };
      return net::dijkstra_route_probe(topology_, from, to, ship_time,
                                       probe, &scratch_.workspace);
    }
    const auto probe = [&network, cost](net::LinkId link,
                                        const net::ProbeState& state) {
      return network.probe(link, state, cost);
    };
    return net::dijkstra_route_probe(topology_, from, to, ship_time, probe,
                                     &scratch_.workspace);
  }

  const net::Topology& topology_;
  net::RoutingScratch& scratch_;
  bool memo_;
  net::Route route_;
};

// ---------------------------------------------------------------------------
// Insertion / commit (§3, §4.4, §2.2, §5)

/// Shared by the exclusive circuit policies: decision-log hops from the
/// edge's committed link record.
void append_record_hops(NetworkStateModel& network, dag::EdgeId edge,
                        std::vector<obs::EdgeHop>& hops) {
  const EdgeRecord& record = require_exclusive(network).record(edge);
  hops.reserve(hops.size() + record.occupations.size());
  for (const LinkOccupation& occ : record.occupations) {
    hops.push_back(obs::EdgeHop{static_cast<std::uint32_t>(occ.link.index()),
                                occ.start, occ.finish});
  }
}

/// First-fit exclusive slots (§3), never displacing booked edges.
class FirstFitInsertion final : public InsertionPolicy {
 public:
  void commit(NetworkStateModel& network, dag::EdgeId edge,
              const net::Route& route, double ship_time, double cost,
              EdgeCommunication& comm) override {
    ExclusiveNetworkState& state = require_exclusive(network);
    comm.arrival = state.commit_edge_basic(edge, route, ship_time, cost);
    comm.kind = EdgeCommunication::Kind::kExclusive;
    comm.route = route;
    comm.occupations = state.record(edge).occupations;
  }

  void append_hops(NetworkStateModel& network, dag::EdgeId edge,
                   const EdgeCommunication& /*comm*/,
                   std::vector<obs::EdgeHop>& hops) const override {
    append_record_hops(network, edge, hops);
  }
};

/// Optimal insertion (§4.4): booked slots may defer within their
/// causality slack. The schedule's occupations are left empty here —
/// later deferrals can move them, so the engine's end-of-run record
/// refresh (NetworkStateModel::finalize) writes the final values.
class OptimalInsertion final : public InsertionPolicy {
 public:
  void commit(NetworkStateModel& network, dag::EdgeId edge,
              const net::Route& route, double ship_time, double cost,
              EdgeCommunication& comm) override {
    comm.arrival = require_exclusive(network).commit_edge_optimal(
        edge, route, ship_time, cost);
    comm.kind = EdgeCommunication::Kind::kExclusive;
    // No comm.route/occupations here: optimal insertion only runs with
    // refresh_edge_records (AlgorithmSpec::validate), and the end-of-run
    // refresh rewrites every routed edge from the final link records —
    // anything copied now would be dead work, possibly already stale.
  }

  void append_hops(NetworkStateModel& network, dag::EdgeId edge,
                   const EdgeCommunication& /*comm*/,
                   std::vector<obs::EdgeHop>& hops) const override {
    append_record_hops(network, edge, hops);
  }
};

/// Store-and-forward packets on exclusive slots (§2.2): the message
/// splits into equal-volume packets, each hop of a packet starts only
/// after the packet fully crossed the previous hop.
class PacketizedInsertion final : public InsertionPolicy {
 public:
  explicit PacketizedInsertion(double packet_size)
      : packet_size_(packet_size) {}

  void commit(NetworkStateModel& network, dag::EdgeId edge,
              const net::Route& route, double ship_time, double cost,
              EdgeCommunication& comm) override {
    ExclusiveNetworkState& state = require_exclusive(network);
    const std::size_t packets = static_cast<std::size_t>(
        std::max(1.0, std::ceil(cost / packet_size_)));
    const double volume = cost / static_cast<double>(packets);
    double arrival = ship_time;
    for (std::size_t p = 0; p < packets; ++p) {
      arrival = std::max(arrival,
                         state.commit_packet(edge, route, ship_time, volume));
    }
    comm.kind = EdgeCommunication::Kind::kPacketized;
    comm.route = route;
    comm.occupations = state.record(edge).occupations;
    comm.packet_count = packets;
    comm.arrival = arrival;
  }

  void append_hops(NetworkStateModel& network, dag::EdgeId edge,
                   const EdgeCommunication& /*comm*/,
                   std::vector<obs::EdgeHop>& hops) const override {
    append_record_hops(network, edge, hops);
  }

 private:
  double packet_size_;
};

/// Fluid bandwidth sharing (§5): full remaining bandwidth on the first
/// hop, fluid forwarding on subsequent hops, rate profiles committed.
class FluidBandwidthInsertion final : public InsertionPolicy {
 public:
  void commit(NetworkStateModel& network, dag::EdgeId edge,
              const net::Route& route, double ship_time, double cost,
              EdgeCommunication& comm) override {
    (void)edge;
    BandwidthNetworkState::Transfer transfer =
        require_bandwidth(network).commit_edge(route, ship_time, cost);
    comm.kind = EdgeCommunication::Kind::kBandwidth;
    comm.route = route;
    comm.profiles = std::move(transfer.profiles);
    comm.arrival = transfer.arrival;
  }

  void append_hops(NetworkStateModel& /*network*/, dag::EdgeId /*edge*/,
                   const EdgeCommunication& comm,
                   std::vector<obs::EdgeHop>& hops) const override {
    for (std::size_t i = 0; i < comm.profiles.size(); ++i) {
      hops.push_back(obs::EdgeHop{
          static_cast<std::uint32_t>(comm.route[i].index()),
          comm.profiles[i].start_time(), comm.profiles[i].finish_time()});
    }
  }
};

}  // namespace

std::unique_ptr<ProcessorSelectionPolicy> make_selection_policy(
    const AlgorithmSpec& spec, double mean_link_speed) {
  switch (spec.selection) {
    case SelectionPolicyKind::kBlindEft:
      return std::make_unique<BlindEftSelection>();
    case SelectionPolicyKind::kTentativeEft:
      return std::make_unique<TentativeEftSelection>();
    case SelectionPolicyKind::kMlsEstimate:
      return std::make_unique<MlsEstimateSelection>(
          mean_link_speed, spec.insertion_aware_estimate);
  }
  EDGESCHED_ASSERT_MSG(false, "unknown selection policy kind");
  return nullptr;
}

std::unique_ptr<EdgeOrderPolicy> make_edge_order_policy(
    const AlgorithmSpec& spec) {
  switch (spec.edge_order) {
    case EdgeOrderPolicyKind::kPredecessorOrder:
      return std::make_unique<PredecessorEdgeOrder>();
    case EdgeOrderPolicyKind::kByCostDescending:
      return std::make_unique<ByCostEdgeOrder>();
  }
  EDGESCHED_ASSERT_MSG(false, "unknown edge-order policy kind");
  return nullptr;
}

std::unique_ptr<RoutingPolicy> make_routing_policy(
    const AlgorithmSpec& spec, const net::Topology& topology,
    net::RoutingScratch& scratch,
    const net::StaticRouteTable* static_routes) {
  switch (spec.routing) {
    case RoutingPolicyKind::kBfsMinimal:
      return std::make_unique<BfsRouting>(topology, static_routes);
    case RoutingPolicyKind::kProbeDijkstra:
      return std::make_unique<ProbeDijkstraRouting>(topology, scratch,
                                                    spec.route_memo);
  }
  EDGESCHED_ASSERT_MSG(false, "unknown routing policy kind");
  return nullptr;
}

std::unique_ptr<InsertionPolicy> make_insertion_policy(
    const AlgorithmSpec& spec) {
  switch (spec.insertion) {
    case InsertionPolicyKind::kFirstFit:
      return std::make_unique<FirstFitInsertion>();
    case InsertionPolicyKind::kOptimal:
      return std::make_unique<OptimalInsertion>();
    case InsertionPolicyKind::kPacketized:
      return std::make_unique<PacketizedInsertion>(spec.packet_size);
    case InsertionPolicyKind::kFluidBandwidth:
      return std::make_unique<FluidBandwidthInsertion>();
  }
  EDGESCHED_ASSERT_MSG(false, "unknown insertion policy kind");
  return nullptr;
}

}  // namespace edgesched::sched
