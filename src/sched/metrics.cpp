#include "sched/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "sched/lower_bounds.hpp"

namespace edgesched::sched {

std::vector<double> domain_busy_times(const dag::TaskGraph& graph,
                                      const net::Topology& topology,
                                      const Schedule& schedule) {
  std::vector<double> busy(topology.num_domains(), 0.0);
  for (dag::EdgeId e : graph.all_edges()) {
    const EdgeCommunication& comm = schedule.communication(e);
    if (comm.kind == EdgeCommunication::Kind::kExclusive ||
        comm.kind == EdgeCommunication::Kind::kPacketized) {
      for (const LinkOccupation& occ : comm.occupations) {
        busy[topology.domain(occ.link).index()] +=
            occ.finish - occ.start;
      }
    } else if (comm.kind == EdgeCommunication::Kind::kBandwidth) {
      for (std::size_t i = 0; i < comm.profiles.size(); ++i) {
        // Busy time weighted by the used bandwidth fraction, so a
        // half-rate transfer counts half.
        const double capacity = topology.link_speed(comm.route[i]);
        busy[topology.domain(comm.route[i]).index()] +=
            comm.profiles[i].volume() / capacity;
      }
    }
  }
  return busy;
}

ScheduleMetrics compute_metrics(const dag::TaskGraph& graph,
                                const net::Topology& topology,
                                const Schedule& schedule) {
  ScheduleMetrics m;
  m.makespan = schedule.makespan();

  const double cp_bound = critical_path_bound(graph, topology);
  m.slr = cp_bound > 0.0 ? m.makespan / cp_bound : 0.0;

  double fastest = 0.0;
  for (net::NodeId p : topology.processors()) {
    fastest = std::max(fastest, topology.processor_speed(p));
  }
  const double serial =
      fastest > 0.0 ? graph.total_computation() / fastest : 0.0;
  m.speedup = m.makespan > 0.0 ? serial / m.makespan : 0.0;
  m.efficiency =
      topology.num_processors() > 0
          ? m.speedup / static_cast<double>(topology.num_processors())
          : 0.0;

  double busy = 0.0;
  for (dag::TaskId t : graph.all_tasks()) {
    const TaskPlacement& p = schedule.task(t);
    if (p.placed()) {
      busy += p.finish - p.start;
    }
  }
  m.processor_utilisation =
      (m.makespan > 0.0 && topology.num_processors() > 0)
          ? busy / (m.makespan *
                    static_cast<double>(topology.num_processors()))
          : 0.0;

  const std::vector<double> domain_busy =
      domain_busy_times(graph, topology, schedule);
  for (double b : domain_busy) {
    m.network_busy_time += b;
  }
  m.link_utilisation =
      (m.makespan > 0.0 && !domain_busy.empty())
          ? m.network_busy_time /
                (m.makespan * static_cast<double>(domain_busy.size()))
          : 0.0;

  double hops = 0.0;
  double delay = 0.0;
  for (dag::EdgeId e : graph.all_edges()) {
    const EdgeCommunication& comm = schedule.communication(e);
    if (comm.kind == EdgeCommunication::Kind::kLocal) {
      ++m.local_edges;
    } else {
      ++m.remote_edges;
      hops += static_cast<double>(comm.route.size());
      delay += comm.arrival -
               schedule.task(graph.edge(e).src).finish;
    }
  }
  if (m.remote_edges > 0) {
    m.mean_route_length =
        hops / static_cast<double>(m.remote_edges);
    m.mean_communication_delay =
        delay / static_cast<double>(m.remote_edges);
  }
  return m;
}

std::string to_string(const ScheduleMetrics& m) {
  std::ostringstream os;
  os << "makespan              " << m.makespan << "\n"
     << "SLR                   " << m.slr << "\n"
     << "speedup               " << m.speedup << "\n"
     << "efficiency            " << m.efficiency << "\n"
     << "processor utilisation " << m.processor_utilisation << "\n"
     << "network busy time     " << m.network_busy_time << "\n"
     << "link utilisation      " << m.link_utilisation << "\n"
     << "local / remote edges  " << m.local_edges << " / "
     << m.remote_edges << "\n"
     << "mean route length     " << m.mean_route_length << "\n"
     << "mean comm delay       " << m.mean_communication_delay << "\n";
  return os.str();
}

}  // namespace edgesched::sched
