#include "sched/network_state.hpp"

#include <algorithm>
#include <cmath>

#include "obs/counters.hpp"
#include "obs/decision_log.hpp"

namespace edgesched::sched {

namespace {
constexpr double kEps = 1e-9;

/// Relative time tolerance for matching recorded occupations to slots.
double match_eps(double t) { return 1e-9 * std::max(1.0, std::abs(t)); }
}  // namespace

ExclusiveNetworkState::ExclusiveNetworkState(const net::Topology& topology,
                                             std::size_t num_edges,
                                             double hop_delay)
    : topology_(&topology),
      domains_(topology.num_domains()),
      records_(num_edges),
      hop_delay_(hop_delay) {
  throw_if(hop_delay < 0.0,
           "ExclusiveNetworkState: hop delay must be >= 0");
  // Hoist the per-probe division out of the hot path: relaxation probes
  // and commits consume cost * (1/s(L)) instead of cost / s(L).
  inv_speed_.reserve(topology.num_links());
  for (net::LinkId l : topology.all_links()) {
    inv_speed_.push_back(1.0 / topology.link_speed(l));
  }
}

ExclusiveNetworkState::~ExclusiveNetworkState() {
  std::uint64_t basic = 0;
  std::uint64_t optimal = 0;
  for (const timeline::LinkTimeline& tl : domains_) {
    basic += tl.probe_stats().basic_probes;
    optimal += tl.probe_stats().optimal_probes;
  }
  obs::HotCounters& counters = obs::hot_counters();
  std::uint64_t gap_steps = 0;
  std::uint64_t scan_steps = 0;
  for (const timeline::LinkTimeline& tl : domains_) {
    gap_steps += tl.probe_stats().probe_gap_steps;
    scan_steps += tl.probe_stats().optimal_scan_steps;
  }
  if (basic > 0) counters.link_probes.increment(basic);
  if (optimal > 0) counters.optimal_probes.increment(optimal);
  if (gap_steps > 0) counters.probe_gap_steps.increment(gap_steps);
  if (scan_steps > 0) counters.optimal_scan_steps.increment(scan_steps);
  if (deferral_scans_ > 0) {
    counters.deferral_scans.increment(deferral_scans_);
  }
  if (slot_shifts_ > 0) counters.slot_shifts.increment(slot_shifts_);
  if (deferred_insertions_ > 0) {
    counters.deferred_insertions.increment(deferred_insertions_);
  }
}

double ExclusiveNetworkState::commit_edge_basic(dag::EdgeId edge,
                                                const net::Route& route,
                                                double ready, double cost) {
  EDGESCHED_ASSERT_MSG(!route.empty(), "cannot commit an edge on an empty "
                                       "route");
  EDGESCHED_ASSERT_MSG(!records_[edge.index()].scheduled(),
                       "edge committed twice");
  EdgeRecord record;
  record.route = route;
  record.occupations.reserve(route.size());
  record.generation_before = generation_++;
  double t_es_in = ready;
  double t_f_min = 0.0;
  for (net::LinkId link : route) {
    const double duration = cost * inv_speed_[link.index()];
    timeline::LinkTimeline& tl =
        domains_[topology_->domain(link).index()];
    const timeline::Placement placement =
        tl.probe_basic(t_es_in, t_f_min, duration);
    tl.commit(placement, edge);
    record.occupations.push_back(LinkOccupation{
        link, placement.earliest_start, placement.start, placement.finish});
    // Cut-through: the next hop sees the flow start (and finish) one
    // station delay later.
    t_es_in = placement.start + hop_delay_;
    t_f_min = placement.finish + hop_delay_;
  }
  records_[edge.index()] = std::move(record);
  return t_f_min - hop_delay_;
}

double ExclusiveNetworkState::commit_edge_optimal(dag::EdgeId edge,
                                                  const net::Route& route,
                                                  double ready,
                                                  double cost) {
  EDGESCHED_ASSERT_MSG(!route.empty(), "cannot commit an edge on an empty "
                                       "route");
  EDGESCHED_ASSERT_MSG(!records_[edge.index()].scheduled(),
                       "edge committed twice");
  EdgeRecord record;
  record.route = route;
  record.occupations.reserve(route.size());
  record.generation_before = generation_++;
  double t_es_in = ready;
  double t_f_min = 0.0;
  for (net::LinkId link : route) {
    const net::DomainId domain = topology_->domain(link);
    const double duration = cost * inv_speed_[link.index()];
    timeline::LinkTimeline& tl = domains_[domain.index()];
    const auto deferral = [this, domain](const timeline::TimeSlot& slot) {
      return deferral_for(domain, slot);
    };
    timeline::OptimalPlacement& optimal = probe_scratch_;
    timeline::probe_optimal_into(tl, t_es_in, t_f_min, duration, deferral,
                                 optimal);

    // Displaced occupants: update their records while the pre-shift slot
    // times are still visible for matching.
    double slack_consumed = 0.0;
    for (const timeline::SlotShift& shift : optimal.shifts) {
      const timeline::TimeSlot& old_slot = tl.slots()[shift.position];
      slack_consumed += shift.new_finish - old_slot.finish;
      EdgeRecord& displaced = records_[shift.edge.index()];
      bool matched = false;
      for (std::size_t i = 0; i < displaced.occupations.size(); ++i) {
        LinkOccupation& occ = displaced.occupations[i];
        if (topology_->domain(displaced.route[i]) == domain &&
            std::abs(occ.start - old_slot.start) <= match_eps(occ.start) &&
            std::abs(occ.finish - old_slot.finish) <=
                match_eps(occ.finish)) {
          occ.earliest_start = shift.new_earliest_start;
          occ.start = shift.new_start;
          occ.finish = shift.new_finish;
          matched = true;
          break;
        }
      }
      EDGESCHED_ASSERT_MSG(matched,
                           "displaced slot has no matching edge record");
    }
    timeline::commit_optimal(tl, optimal, edge);
    slot_shifts_ += optimal.shifts.size();
    if (!optimal.shifts.empty()) {
      ++deferred_insertions_;
    }
    if (obs::DecisionLog* log = obs::active_decision_log()) {
      log->record(obs::InsertionDecision{
          static_cast<std::uint32_t>(edge.index()),
          static_cast<std::uint32_t>(link.index()),
          /*deferral=*/!optimal.shifts.empty(),
          static_cast<std::uint32_t>(optimal.shifts.size()),
          slack_consumed, optimal.placement.start,
          optimal.placement.finish});
    }

    record.occupations.push_back(LinkOccupation{
        link, optimal.placement.earliest_start, optimal.placement.start,
        optimal.placement.finish});
    t_es_in = optimal.placement.start + hop_delay_;
    t_f_min = optimal.placement.finish + hop_delay_;
  }
  records_[edge.index()] = std::move(record);
  return t_f_min - hop_delay_;
}

double ExclusiveNetworkState::commit_packet(dag::EdgeId edge,
                                            const net::Route& route,
                                            double ready, double volume) {
  EDGESCHED_ASSERT_MSG(!route.empty(),
                       "cannot commit a packet on an empty route");
  EdgeRecord& record = records_[edge.index()];
  if (!record.scheduled()) {
    record.generation_before = generation_;
  }
  ++generation_;
  double arrival = ready;
  for (net::LinkId link : route) {
    const double duration = volume * inv_speed_[link.index()];
    timeline::LinkTimeline& tl =
        domains_[topology_->domain(link).index()];
    // Store-and-forward: the packet is available at this hop only once it
    // fully crossed the previous one, so t_es = previous finish and there
    // is no cross-hop minimum-finish coupling.
    const timeline::Placement placement =
        tl.probe_basic(arrival, 0.0, duration);
    tl.commit(placement, edge);
    record.route.push_back(link);
    record.occupations.push_back(LinkOccupation{
        link, placement.earliest_start, placement.start, placement.finish});
    arrival = placement.finish + hop_delay_;
  }
  return arrival - hop_delay_;
}

void ExclusiveNetworkState::uncommit_edge(dag::EdgeId edge) {
  EdgeRecord& record = records_[edge.index()];
  EDGESCHED_ASSERT_MSG(record.scheduled(), "uncommit of unscheduled edge");
  for (std::size_t i = 0; i < record.occupations.size(); ++i) {
    const LinkOccupation& occ = record.occupations[i];
    timeline::LinkTimeline& tl =
        domains_[topology_->domain(record.route[i]).index()];
    bool erased = false;
    const std::vector<timeline::TimeSlot>& slots = tl.slots();
    for (std::size_t j = 0; j < slots.size(); ++j) {
      if (slots[j].edge == edge &&
          std::abs(slots[j].start - occ.start) <= match_eps(occ.start) &&
          std::abs(slots[j].finish - occ.finish) <=
              match_eps(occ.finish)) {
        tl.erase(j);
        erased = true;
        break;
      }
    }
    EDGESCHED_ASSERT_MSG(erased, "uncommit could not find the slot");
  }
  if (generation_ == record.generation_before + 1) {
    // Clean rollback of the latest mutation: the timelines are exactly
    // the pre-commit state again, so route memos keyed on the previous
    // generation are valid once more.
    generation_ = record.generation_before;
  } else {
    ++generation_;
  }
  record = EdgeRecord{};
}

double ExclusiveNetworkState::deferral_for(
    net::DomainId domain, const timeline::TimeSlot& slot) const {
  ++deferral_scans_;
  const EdgeRecord& record = records_[slot.edge.index()];
  EDGESCHED_ASSERT_MSG(record.scheduled(),
                       "occupied slot references an unscheduled edge");
  for (std::size_t i = 0; i < record.occupations.size(); ++i) {
    const LinkOccupation& occ = record.occupations[i];
    if (topology_->domain(record.route[i]) == domain &&
        std::abs(occ.start - slot.start) <= match_eps(occ.start) &&
        std::abs(occ.finish - slot.finish) <= match_eps(occ.finish)) {
      if (i + 1 == record.occupations.size()) {
        return 0.0;  // last hop: the destination task depends on t_f here
      }
      const LinkOccupation& next = record.occupations[i + 1];
      return std::max(
          0.0, std::min(next.earliest_start - occ.earliest_start,
                        next.finish - occ.finish));
    }
  }
  EDGESCHED_ASSERT_MSG(false, "slot has no matching occupation record");
  return 0.0;
}

double ExclusiveNetworkState::total_busy_time() const noexcept {
  double busy = 0.0;
  for (const timeline::LinkTimeline& tl : domains_) {
    busy += tl.busy_time();
  }
  return busy;
}

BandwidthNetworkState::BandwidthNetworkState(const net::Topology& topology,
                                             double hop_delay)
    : topology_(&topology), hop_delay_(hop_delay) {
  throw_if(hop_delay < 0.0,
           "BandwidthNetworkState: hop delay must be >= 0");
  domains_.reserve(topology.num_domains());
  // Domain capacity is its links' speed; builders give all links of a
  // shared domain one speed, which we re-derive (and check) here.
  std::vector<double> capacity(topology.num_domains(), -1.0);
  for (net::LinkId l : topology.all_links()) {
    double& slot = capacity[topology.domain(l).index()];
    const double speed = topology.link_speed(l);
    EDGESCHED_ASSERT_MSG(slot < 0.0 || std::abs(slot - speed) <= kEps,
                         "links of one contention domain disagree on speed");
    slot = speed;
  }
  for (double c : capacity) {
    domains_.emplace_back(c > 0.0 ? c : 1.0);
  }
}

BandwidthNetworkState::~BandwidthNetworkState() {
  std::uint64_t probes = 0;
  for (const timeline::BandwidthTimeline& tl : domains_) {
    probes += tl.probe_count();
  }
  if (probes > 0) {
    obs::hot_counters().bandwidth_probes.increment(probes);
  }
}

double BandwidthNetworkState::probe_finish(net::LinkId link, double t_es_in,
                                           double t_f_min,
                                           double cost) const {
  const timeline::BandwidthTimeline& tl =
      domains_[topology_->domain(link).index()];
  return std::max(tl.earliest_finish(t_es_in, cost), t_f_min);
}

double BandwidthNetworkState::probe_first_flow(net::LinkId link,
                                               double t) const {
  return domains_[topology_->domain(link).index()].first_available(t);
}

BandwidthNetworkState::Transfer BandwidthNetworkState::commit_edge(
    const net::Route& route, double ready, double cost) {
  EDGESCHED_ASSERT_MSG(!route.empty(), "cannot commit an edge on an empty "
                                       "route");
  ++generation_;
  Transfer transfer;
  transfer.profiles.reserve(route.size());
  for (std::size_t i = 0; i < route.size(); ++i) {
    timeline::BandwidthTimeline& tl =
        domains_[topology_->domain(route[i]).index()];
    timeline::RateProfile profile =
        (i == 0) ? tl.transfer_from(ready, cost)
                 : tl.forward(hop_delay_ > 0.0
                                  ? transfer.profiles.back().shifted(
                                        hop_delay_)
                                  : transfer.profiles.back());
    tl.consume(profile);
    transfer.profiles.push_back(std::move(profile));
  }
  transfer.arrival = transfer.profiles.back().finish_time();
  return transfer;
}

MachineState::MachineState(const net::Topology& topology)
    : timelines_(topology.num_nodes()) {}

double MachineState::append_start(net::NodeId processor,
                                  double ready) const {
  EDGESCHED_ASSERT(processor.index() < timelines_.size());
  return std::max(ready, timelines_[processor.index()].last_finish());
}

double MachineState::earliest_start(net::NodeId processor, double ready,
                                    double duration) const {
  EDGESCHED_ASSERT(processor.index() < timelines_.size());
  return timelines_[processor.index()].earliest_start(ready, duration);
}

void MachineState::commit(net::NodeId processor, dag::TaskId task,
                          double start, double duration) {
  EDGESCHED_ASSERT(processor.index() < timelines_.size());
  timelines_[processor.index()].commit(task, start, duration);
  ++revision_;
}

double MachineState::finish_time(net::NodeId processor) const {
  EDGESCHED_ASSERT(processor.index() < timelines_.size());
  return timelines_[processor.index()].last_finish();
}

void MachineState::reserve_slots(std::size_t per_processor_hint) {
  for (timeline::ProcessorTimeline& tl : timelines_) {
    tl.reserve(per_processor_hint);
  }
}

}  // namespace edgesched::sched
