#include "sched/classic.hpp"

#include <algorithm>
#include <limits>

#include "sched/network_state.hpp"

namespace edgesched::sched {

namespace {

/// Assumed transfer speed between two distinct processors in the
/// idealised model: the direct link's speed when one exists, otherwise
/// the mean link speed.
double assumed_speed(const net::Topology& topology, net::NodeId from,
                     net::NodeId to, double mls) {
  for (net::LinkId l : topology.out_links(from)) {
    if (topology.link(l).dst == to) {
      return topology.link_speed(l);
    }
  }
  return mls > 0.0 ? mls : 1.0;
}

}  // namespace

Schedule ClassicScheduler::schedule(const dag::TaskGraph& graph,
                                    const net::Topology& topology) const {
  check_inputs(graph, topology);
  Schedule out(name(), graph.num_tasks(), graph.num_edges());

  const std::vector<dag::TaskId> order =
      list_order(graph, options_.priority);
  MachineState machines(topology);
  const double mls = topology.mean_link_speed();

  for (dag::TaskId task : order) {
    const double weight = graph.weight(task);

    net::NodeId chosen;
    double chosen_finish = std::numeric_limits<double>::infinity();
    double chosen_start = 0.0;
    std::vector<double> chosen_arrivals;

    for (net::NodeId processor : topology.processors()) {
      std::vector<double> arrivals;
      arrivals.reserve(graph.in_edges(task).size());
      double data_ready = 0.0;
      for (dag::EdgeId e : graph.in_edges(task)) {
        const dag::Edge& edge = graph.edge(e);
        const TaskPlacement& src = out.task(edge.src);
        double arrival = src.finish;
        if (src.processor != processor && edge.cost > 0.0) {
          arrival += edge.cost / assumed_speed(topology, src.processor,
                                               processor, mls);
        }
        arrivals.push_back(arrival);
        data_ready = std::max(data_ready, arrival);
      }
      const double duration = weight / topology.processor_speed(processor);
      const double start = machines.start_for(
          processor, data_ready, duration, options_.task_insertion);
      const double finish = start + duration;
      if (finish < chosen_finish) {
        chosen = processor;
        chosen_finish = finish;
        chosen_start = start;
        chosen_arrivals = std::move(arrivals);
      }
    }

    const double duration = weight / topology.processor_speed(chosen);
    machines.commit(chosen, task, chosen_start, duration);
    out.place_task(task,
                   TaskPlacement{chosen, chosen_start, chosen_finish});

    const std::vector<dag::EdgeId>& in = graph.in_edges(task);
    for (std::size_t i = 0; i < in.size(); ++i) {
      const dag::Edge& edge = graph.edge(in[i]);
      const TaskPlacement& src = out.task(edge.src);
      EdgeCommunication comm;
      comm.arrival = chosen_arrivals[i];
      comm.kind = (src.processor == chosen || edge.cost <= 0.0)
                      ? EdgeCommunication::Kind::kLocal
                      : EdgeCommunication::Kind::kContentionFree;
      out.set_communication(in[i], std::move(comm));
    }
  }
  return out;
}

}  // namespace edgesched::sched
