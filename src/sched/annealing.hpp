// Simulated-annealing scheduler over processor assignments.
//
// The second metaheuristic family of the paper's introduction [6]. The
// search state is a task→processor map; a move reassigns one random task;
// fitness is the contention-aware fixed-assignment makespan. Geometric
// cooling with Metropolis acceptance, started from the OIHSA assignment.
//
// Each iteration draws its move and acceptance uniform from its own
// (seed, iteration)-keyed stream, so batches of speculative neighbors
// evaluate across the intra-run worker team (sched/intra_run.hpp) while
// the accept/reject walk stays bit-identical to the serial run at any
// worker count. See docs/parallelism.md.
#pragma once

#include <cstdint>

#include "sched/assignment.hpp"
#include "sched/scheduler.hpp"

namespace edgesched::sched {

class AnnealingScheduler final : public Scheduler {
 public:
  struct Options {
    std::size_t iterations = 800;
    /// Initial temperature as a fraction of the starting makespan.
    double initial_temperature_fraction = 0.05;
    /// Geometric cooling factor applied every iteration.
    double cooling = 0.995;
    std::uint64_t seed = 1;
    AssignmentOptions evaluation;
  };

  AnnealingScheduler() = default;
  explicit AnnealingScheduler(const Options& options);

  [[nodiscard]] Schedule schedule(
      const dag::TaskGraph& graph,
      const net::Topology& topology) const override;
  /// Keep the base's PlatformContext overload visible (no per-topology
  /// derived state here, so the default forwarding is already right).
  using Scheduler::schedule;
  [[nodiscard]] std::string name() const override { return "SA"; }

 private:
  Options options_;
};

}  // namespace edgesched::sched
