// Experiment workloads: the paper's evaluation configuration (§6).
//
//   * task counts U(40, 1000) — scaled down by default, restorable via
//     EDGESCHED_FULL=1 or explicit fields;
//   * computation and communication costs U(1, 1000), communication then
//     rescaled to the target CCR;
//   * processor counts {2, 4, 8, 16, 32, 64, 128};
//   * CCR in {0.1..1.0 step 0.1} ∪ {2..10 step 1};
//   * homogeneous: all speeds 1; heterogeneous: speeds U(1, 10);
//   * network: random WAN with switch fan-out U(4, 16).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dag/task_graph.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"

namespace edgesched::sim {

struct ExperimentConfig {
  bool heterogeneous = false;
  std::vector<double> ccr_values;
  std::vector<std::size_t> processor_counts;
  std::size_t tasks_min = 40;
  std::size_t tasks_max = 1000;  // the paper's U(40, 1000)
  std::size_t repetitions = 3;
  std::uint64_t seed = 20060815;  // ICPP 2006

  /// Paper defaults; environment variables EDGESCHED_TASKS_MIN/MAX,
  /// EDGESCHED_REPS, EDGESCHED_SEED override, and EDGESCHED_FULL=1 raises
  /// the repetition count for smoother curves.
  [[nodiscard]] static ExperimentConfig defaults(bool heterogeneous);

  /// The paper's 19 CCR sampling points.
  [[nodiscard]] static std::vector<double> paper_ccr_values();
  /// The paper's processor counts {2,...,128}.
  [[nodiscard]] static std::vector<std::size_t> paper_processor_counts();
};

/// One randomly drawn (graph, topology) problem instance.
struct Instance {
  dag::TaskGraph graph;
  net::Topology topology;
  double target_ccr = 0.0;
};

/// Draws an instance for the given processor count and CCR.
[[nodiscard]] Instance make_instance(const ExperimentConfig& config,
                                     std::size_t num_processors, double ccr,
                                     Rng& rng);

}  // namespace edgesched::sim
