// Schedule robustness under runtime duration noise.
//
// Static schedules are computed from nominal task costs; real executions
// jitter. This module replays a schedule through the discrete-event
// executor (src/exec) in work-conserving mode with multiplicatively
// perturbed task durations (the standard robustness methodology for
// static DAG scheduling) and reports the makespan distribution: a
// schedule whose makespan explodes under ±20 % noise is a fragile one
// regardless of its nominal value.
#pragma once

#include <cstdint>

#include "dag/task_graph.hpp"
#include "net/topology.hpp"
#include "sched/assignment.hpp"
#include "sched/schedule.hpp"
#include "sim/stats.hpp"

namespace edgesched::sim {

struct PerturbationOptions {
  /// Each task weight is multiplied by U(1 - spread, 1 + spread).
  double spread = 0.2;
  std::size_t trials = 30;
  std::uint64_t seed = 7;
};

struct RobustnessReport {
  /// Makespan of the schedule replayed with nominal durations
  /// (work-conserving, so it can undercut the planned makespan).
  double nominal_makespan = 0.0;
  /// Distribution of perturbed makespans.
  RunningStats perturbed;
  /// Mean perturbed makespan / nominal — 1.0 means noise averages out.
  double mean_slowdown = 0.0;
  /// Worst observed slowdown.
  double worst_slowdown = 0.0;
};

/// Replays `schedule` under the discrete-event executor with perturbed
/// task durations (event-driven dispatch; one derived seed per trial).
/// Communication costs are left nominal (the noise models computation
/// variance).
[[nodiscard]] RobustnessReport assess_robustness(
    const dag::TaskGraph& graph, const net::Topology& topology,
    const sched::Schedule& schedule,
    const PerturbationOptions& options = {});

}  // namespace edgesched::sim
