// Streaming statistics (Welford) for experiment aggregation.
#pragma once

#include <cstddef>

namespace edgesched::sim {

class RunningStats {
 public:
  void add(double value) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Half-width of the normal-approximation 95 % confidence interval.
  [[nodiscard]] double ci95_halfwidth() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace edgesched::sim
