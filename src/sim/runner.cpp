#include "sim/runner.hpp"

#include <memory>

#include "sched/ba.hpp"
#include "sched/bbsa.hpp"
#include "sched/oihsa.hpp"
#include "sched/validator.hpp"

namespace edgesched::sim {

InstanceResult run_instance(
    const Instance& instance,
    const std::vector<std::unique_ptr<sched::Scheduler>>& schedulers,
    bool validate_schedules) {
  InstanceResult result;
  result.makespans.reserve(schedulers.size());
  for (const auto& scheduler : schedulers) {
    const sched::Schedule schedule =
        scheduler->schedule(instance.graph, instance.topology);
    if (validate_schedules) {
      sched::validate_or_throw(instance.graph, instance.topology, schedule);
    }
    result.makespans.push_back(schedule.makespan());
  }
  return result;
}

double improvement_pct(double baseline, double candidate) {
  if (baseline <= 0.0) {
    return 0.0;
  }
  return 100.0 * (baseline - candidate) / baseline;
}

namespace {

/// Shared sweep core: for every (x-point, secondary value, repetition)
/// triple, draw an instance and accumulate the improvements at the
/// x-point. `x_is_ccr` selects which figure family is produced.
std::vector<SweepPoint> sweep(const ExperimentConfig& config, bool x_is_ccr,
                              bool validate_schedules,
                              const ProgressFn& progress) {
  std::vector<std::unique_ptr<sched::Scheduler>> schedulers;
  schedulers.push_back(std::make_unique<sched::BasicAlgorithm>());
  schedulers.push_back(std::make_unique<sched::Oihsa>());
  schedulers.push_back(std::make_unique<sched::Bbsa>());

  const std::size_t x_count =
      x_is_ccr ? config.ccr_values.size() : config.processor_counts.size();
  const std::size_t y_count =
      x_is_ccr ? config.processor_counts.size() : config.ccr_values.size();
  std::vector<SweepPoint> points(x_count);

  const std::size_t total = x_count * y_count * config.repetitions;
  std::size_t completed = 0;
  Rng root(config.seed);
  for (std::size_t xi = 0; xi < x_count; ++xi) {
    points[xi].x = x_is_ccr
                       ? config.ccr_values[xi]
                       : static_cast<double>(config.processor_counts[xi]);
    for (std::size_t yi = 0; yi < y_count; ++yi) {
      const double ccr =
          x_is_ccr ? config.ccr_values[xi] : config.ccr_values[yi];
      const std::size_t procs = x_is_ccr ? config.processor_counts[yi]
                                         : config.processor_counts[xi];
      for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
        Rng rng = root.fork();
        const Instance instance = make_instance(config, procs, ccr, rng);
        const InstanceResult result =
            run_instance(instance, schedulers, validate_schedules);
        const double ba = result.makespans[0];
        points[xi].ba_makespan.add(ba);
        points[xi].oihsa_improvement_pct.add(
            improvement_pct(ba, result.makespans[1]));
        points[xi].bbsa_improvement_pct.add(
            improvement_pct(ba, result.makespans[2]));
        ++completed;
        if (progress) {
          progress(completed, total);
        }
      }
    }
  }
  return points;
}

}  // namespace

std::vector<SweepPoint> sweep_ccr(const ExperimentConfig& config,
                                  bool validate_schedules,
                                  const ProgressFn& progress) {
  return sweep(config, /*x_is_ccr=*/true, validate_schedules, progress);
}

std::vector<SweepPoint> sweep_processors(const ExperimentConfig& config,
                                         bool validate_schedules,
                                         const ProgressFn& progress) {
  return sweep(config, /*x_is_ccr=*/false, validate_schedules, progress);
}

std::vector<SweepPoint> sweep_task_counts(
    const ExperimentConfig& config,
    const std::vector<std::size_t>& task_counts, bool validate_schedules,
    const ProgressFn& progress) {
  throw_if(task_counts.empty(), "sweep_task_counts: no task counts");
  std::vector<std::unique_ptr<sched::Scheduler>> schedulers;
  schedulers.push_back(std::make_unique<sched::BasicAlgorithm>());
  schedulers.push_back(std::make_unique<sched::Oihsa>());
  schedulers.push_back(std::make_unique<sched::Bbsa>());

  std::vector<SweepPoint> points(task_counts.size());
  const std::size_t total = task_counts.size() *
                            config.ccr_values.size() *
                            config.processor_counts.size() *
                            config.repetitions;
  std::size_t completed = 0;
  Rng root(config.seed);
  for (std::size_t xi = 0; xi < task_counts.size(); ++xi) {
    points[xi].x = static_cast<double>(task_counts[xi]);
    ExperimentConfig pinned = config;
    pinned.tasks_min = task_counts[xi];
    pinned.tasks_max = task_counts[xi];
    for (double ccr : config.ccr_values) {
      for (std::size_t procs : config.processor_counts) {
        for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
          Rng rng = root.fork();
          const Instance instance =
              make_instance(pinned, procs, ccr, rng);
          const InstanceResult result =
              run_instance(instance, schedulers, validate_schedules);
          const double ba = result.makespans[0];
          points[xi].ba_makespan.add(ba);
          points[xi].oihsa_improvement_pct.add(
              improvement_pct(ba, result.makespans[1]));
          points[xi].bbsa_improvement_pct.add(
              improvement_pct(ba, result.makespans[2]));
          ++completed;
          if (progress) {
            progress(completed, total);
          }
        }
      }
    }
  }
  return points;
}

}  // namespace edgesched::sim
