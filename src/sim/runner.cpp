#include "sim/runner.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sched/ba.hpp"
#include "sched/bbsa.hpp"
#include "sched/oihsa.hpp"
#include "sched/platform.hpp"
#include "sched/validator.hpp"
#include "svc/thread_pool.hpp"
#include "util/env.hpp"

namespace edgesched::sim {

InstanceResult run_instance(
    const Instance& instance,
    const std::vector<std::unique_ptr<sched::Scheduler>>& schedulers,
    bool validate_schedules) {
  InstanceResult result;
  result.makespans.reserve(schedulers.size());
  // One platform snapshot per instance: every sweep scheduler reuses the
  // same route table and derived reductions instead of re-deriving them
  // (byte-identical to the per-call path; see sched/platform.hpp).
  const sched::PlatformContext platform(instance.topology);
  for (const auto& scheduler : schedulers) {
    const sched::Schedule schedule =
        scheduler->schedule(instance.graph, platform);
    if (validate_schedules) {
      sched::validate_or_throw(instance.graph, instance.topology, schedule);
    }
    result.makespans.push_back(schedule.makespan());
  }
  return result;
}

double improvement_pct(double baseline, double candidate) {
  if (baseline <= 0.0) {
    return 0.0;
  }
  return 100.0 * (baseline - candidate) / baseline;
}

std::size_t default_sweep_threads() {
  const std::int64_t env = env_int("EDGESCHED_THREADS", 0);
  if (env > 0) {
    return static_cast<std::size_t>(env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

namespace {

/// The sweep algorithms (BA baseline + the paper's two). Constructed per
/// worker job: the schedulers are stateless (immutable options only), so
/// fresh instances are behaviourally identical to shared ones and keep
/// workers free of shared mutable state.
std::vector<std::unique_ptr<sched::Scheduler>> sweep_schedulers() {
  std::vector<std::unique_ptr<sched::Scheduler>> schedulers;
  schedulers.push_back(std::make_unique<sched::BasicAlgorithm>());
  schedulers.push_back(std::make_unique<sched::Oihsa>());
  schedulers.push_back(std::make_unique<sched::Bbsa>());
  return schedulers;
}

/// One pre-planned instance: everything a worker needs, including the
/// exact RNG seed the serial loop would have used at this position.
struct SweepJob {
  std::size_t point_index = 0;
  const ExperimentConfig* config = nullptr;
  std::size_t procs = 0;
  double ccr = 0.0;
  std::uint64_t rng_seed = 0;
};

InstanceResult run_job(const SweepJob& job, bool validate_schedules) {
  obs::Span span("sim/instance", "sim", job.point_index);
  obs::hot_counters().sweep_instances.increment();
  Rng rng(job.rng_seed);  // == root.fork() at this loop position
  const Instance instance =
      make_instance(*job.config, job.procs, job.ccr, rng);
  return run_instance(instance, sweep_schedulers(), validate_schedules);
}

/// Executes all jobs (serially for effective thread count 1, otherwise on
/// a pool), then folds the per-instance makespans into the sweep points
/// in job order — the serial accumulation order — so the resulting
/// statistics are byte-identical for every thread count.
std::vector<SweepPoint> execute_jobs(std::vector<SweepPoint> points,
                                     const std::vector<SweepJob>& jobs,
                                     bool validate_schedules,
                                     const ProgressFn& progress,
                                     std::size_t threads) {
  const std::size_t total = jobs.size();
  std::vector<InstanceResult> results(total);

  if (threads == 0) {
    threads = default_sweep_threads();
  }
  threads = std::min(threads, std::max<std::size_t>(total, 1));

  if (threads <= 1) {
    for (std::size_t i = 0; i < total; ++i) {
      results[i] = run_job(jobs[i], validate_schedules);
      if (progress) {
        progress(i + 1, total);
      }
    }
  } else {
    svc::ThreadPool pool(threads);
    std::mutex progress_mutex;
    std::size_t completed = 0;
    std::vector<std::future<void>> futures;
    futures.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
      futures.push_back(pool.submit([&, i]() {
        results[i] = run_job(jobs[i], validate_schedules);
        // Serialise progress accounting and the callback itself: the
        // callback may be invoked from any worker, never concurrently.
        const std::lock_guard<std::mutex> lock(progress_mutex);
        ++completed;
        if (progress) {
          progress(completed, total);
        }
      }));
    }
    for (auto& future : futures) {
      future.get();  // re-throws the first worker failure
    }
  }

  for (std::size_t i = 0; i < total; ++i) {
    SweepPoint& point = points[jobs[i].point_index];
    const double ba = results[i].makespans[0];
    point.ba_makespan.add(ba);
    point.oihsa_improvement_pct.add(
        improvement_pct(ba, results[i].makespans[1]));
    point.bbsa_improvement_pct.add(
        improvement_pct(ba, results[i].makespans[2]));
  }
  return points;
}

/// Shared sweep core: for every (x-point, secondary value, repetition)
/// triple, draw an instance and accumulate the improvements at the
/// x-point. `x_is_ccr` selects which figure family is produced.
std::vector<SweepPoint> sweep(const ExperimentConfig& config, bool x_is_ccr,
                              bool validate_schedules,
                              const ProgressFn& progress,
                              std::size_t threads) {
  const std::size_t x_count =
      x_is_ccr ? config.ccr_values.size() : config.processor_counts.size();
  const std::size_t y_count =
      x_is_ccr ? config.processor_counts.size() : config.ccr_values.size();
  std::vector<SweepPoint> points(x_count);

  std::vector<SweepJob> jobs;
  jobs.reserve(x_count * y_count * config.repetitions);
  Rng root(config.seed);
  for (std::size_t xi = 0; xi < x_count; ++xi) {
    points[xi].x = x_is_ccr
                       ? config.ccr_values[xi]
                       : static_cast<double>(config.processor_counts[xi]);
    for (std::size_t yi = 0; yi < y_count; ++yi) {
      const double ccr =
          x_is_ccr ? config.ccr_values[xi] : config.ccr_values[yi];
      const std::size_t procs = x_is_ccr ? config.processor_counts[yi]
                                         : config.processor_counts[xi];
      for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
        // root.next() is precisely the seed root.fork() would construct
        // an Rng from at this point of the serial loop.
        jobs.push_back(SweepJob{xi, &config, procs, ccr, root.next()});
      }
    }
  }
  return execute_jobs(std::move(points), jobs, validate_schedules, progress,
                      threads);
}

}  // namespace

std::vector<SweepPoint> sweep_ccr(const ExperimentConfig& config,
                                  bool validate_schedules,
                                  const ProgressFn& progress,
                                  std::size_t threads) {
  return sweep(config, /*x_is_ccr=*/true, validate_schedules, progress,
               threads);
}

std::vector<SweepPoint> sweep_processors(const ExperimentConfig& config,
                                         bool validate_schedules,
                                         const ProgressFn& progress,
                                         std::size_t threads) {
  return sweep(config, /*x_is_ccr=*/false, validate_schedules, progress,
               threads);
}

std::vector<SweepPoint> sweep_task_counts(
    const ExperimentConfig& config,
    const std::vector<std::size_t>& task_counts, bool validate_schedules,
    const ProgressFn& progress, std::size_t threads) {
  throw_if(task_counts.empty(), "sweep_task_counts: no task counts");

  std::vector<SweepPoint> points(task_counts.size());
  // Pinned per-point configs live here so job pointers stay valid for the
  // whole execution.
  std::vector<ExperimentConfig> pinned(task_counts.size(), config);
  std::vector<SweepJob> jobs;
  jobs.reserve(task_counts.size() * config.ccr_values.size() *
               config.processor_counts.size() * config.repetitions);
  Rng root(config.seed);
  for (std::size_t xi = 0; xi < task_counts.size(); ++xi) {
    points[xi].x = static_cast<double>(task_counts[xi]);
    pinned[xi].tasks_min = task_counts[xi];
    pinned[xi].tasks_max = task_counts[xi];
    for (double ccr : config.ccr_values) {
      for (std::size_t procs : config.processor_counts) {
        for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
          jobs.push_back(SweepJob{xi, &pinned[xi], procs, ccr, root.next()});
        }
      }
    }
  }
  return execute_jobs(std::move(points), jobs, validate_schedules, progress,
                      threads);
}

}  // namespace edgesched::sim
