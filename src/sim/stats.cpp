#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>

namespace edgesched::sim {

void RunningStats::add(double value) noexcept {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept {
  return std::sqrt(variance());
}

double RunningStats::ci95_halfwidth() const noexcept {
  return count_ < 2
             ? 0.0
             : 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

}  // namespace edgesched::sim
