// Experiment runner: sweeps reproducing the paper's figures.
//
// Fig. 1/3: % improvement in makespan of OIHSA and BBSA over BA as a
// function of CCR, averaged over processor counts and repetitions.
// Fig. 2/4: the same improvement as a function of processor count,
// averaged over CCR and repetitions.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"
#include "sim/stats.hpp"
#include "sim/workload.hpp"

namespace edgesched::sim {

/// Makespans of one instance under a set of algorithms.
struct InstanceResult {
  std::vector<double> makespans;  ///< parallel to the scheduler list
};

/// Runs every scheduler on the instance; optionally validates each
/// schedule (throws on violation).
[[nodiscard]] InstanceResult run_instance(
    const Instance& instance,
    const std::vector<std::unique_ptr<sched::Scheduler>>& schedulers,
    bool validate_schedules);

/// One x-axis point of an improvement sweep.
struct SweepPoint {
  double x = 0.0;  ///< CCR or processor count
  RunningStats oihsa_improvement_pct;
  RunningStats bbsa_improvement_pct;
  RunningStats ba_makespan;
};

/// Progress callback: (completed instances, total instances).
using ProgressFn = std::function<void(std::size_t, std::size_t)>;

/// Fig. 1 (homogeneous) / Fig. 3 (heterogeneous): improvement vs CCR.
[[nodiscard]] std::vector<SweepPoint> sweep_ccr(
    const ExperimentConfig& config, bool validate_schedules = false,
    const ProgressFn& progress = {});

/// Fig. 2 (homogeneous) / Fig. 4 (heterogeneous): improvement vs
/// processor count.
[[nodiscard]] std::vector<SweepPoint> sweep_processors(
    const ExperimentConfig& config, bool validate_schedules = false,
    const ProgressFn& progress = {});

/// Extension experiment (not in the paper): improvement vs task count.
/// Each x point pins the instance size to `task_counts[i]` and averages
/// over the config's CCR values and processor counts.
[[nodiscard]] std::vector<SweepPoint> sweep_task_counts(
    const ExperimentConfig& config,
    const std::vector<std::size_t>& task_counts,
    bool validate_schedules = false, const ProgressFn& progress = {});

/// Percentage improvement of `candidate` over `baseline` makespans.
[[nodiscard]] double improvement_pct(double baseline, double candidate);

}  // namespace edgesched::sim
