// Experiment runner: sweeps reproducing the paper's figures.
//
// Fig. 1/3: % improvement in makespan of OIHSA and BBSA over BA as a
// function of CCR, averaged over processor counts and repetitions.
// Fig. 2/4: the same improvement as a function of processor count,
// averaged over CCR and repetitions.
//
// Parallel execution. Each sweep fans its instances out over a
// svc::ThreadPool. Results are *deterministic by construction* and
// byte-identical to a serial run regardless of thread count or execution
// order:
//   1. every instance's RNG seed is pre-generated from the master seed in
//      the canonical (x, secondary, repetition) loop order, so instance i
//      sees exactly the stream the serial loop would have given it;
//   2. per-instance makespans are collected into a dense result buffer,
//      and the SweepPoint statistics are accumulated *after* all workers
//      finish, again in canonical loop order — Welford accumulation sees
//      the same values in the same order, hence identical floats.
//
// Thread-safety contract for ProgressFn: after parallelisation the
// progress callback is invoked from worker threads. The runner serialises
// all invocations behind an internal mutex (a callback never runs
// concurrently with itself), and `completed` is strictly increasing from
// 1 to `total` — but calls happen on arbitrary threads, so the callback
// must not touch thread-affine state (e.g. it may write to stderr, but
// must not assume it runs on the caller's thread) and should return
// quickly: it executes inside the accounting critical section.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"
#include "sim/stats.hpp"
#include "sim/workload.hpp"

namespace edgesched::sim {

/// Makespans of one instance under a set of algorithms.
struct InstanceResult {
  std::vector<double> makespans;  ///< parallel to the scheduler list
};

/// Runs every scheduler on the instance; optionally validates each
/// schedule (throws on violation).
[[nodiscard]] InstanceResult run_instance(
    const Instance& instance,
    const std::vector<std::unique_ptr<sched::Scheduler>>& schedulers,
    bool validate_schedules);

/// One x-axis point of an improvement sweep.
struct SweepPoint {
  double x = 0.0;  ///< CCR or processor count
  RunningStats oihsa_improvement_pct;
  RunningStats bbsa_improvement_pct;
  RunningStats ba_makespan;
};

/// Progress callback: (completed instances, total instances). See the
/// thread-safety contract in the header comment above.
using ProgressFn = std::function<void(std::size_t, std::size_t)>;

/// Worker threads a sweep will use for `threads == 0`: the
/// EDGESCHED_THREADS environment variable when set to a positive value,
/// otherwise std::thread::hardware_concurrency (at least 1).
[[nodiscard]] std::size_t default_sweep_threads();

/// Fig. 1 (homogeneous) / Fig. 3 (heterogeneous): improvement vs CCR.
/// `threads`: 0 = default_sweep_threads(), 1 = run serially in the
/// calling thread, n = fan out over n pool workers.
[[nodiscard]] std::vector<SweepPoint> sweep_ccr(
    const ExperimentConfig& config, bool validate_schedules = false,
    const ProgressFn& progress = {}, std::size_t threads = 0);

/// Fig. 2 (homogeneous) / Fig. 4 (heterogeneous): improvement vs
/// processor count.
[[nodiscard]] std::vector<SweepPoint> sweep_processors(
    const ExperimentConfig& config, bool validate_schedules = false,
    const ProgressFn& progress = {}, std::size_t threads = 0);

/// Extension experiment (not in the paper): improvement vs task count.
/// Each x point pins the instance size to `task_counts[i]` and averages
/// over the config's CCR values and processor counts.
[[nodiscard]] std::vector<SweepPoint> sweep_task_counts(
    const ExperimentConfig& config,
    const std::vector<std::size_t>& task_counts,
    bool validate_schedules = false, const ProgressFn& progress = {},
    std::size_t threads = 0);

/// Percentage improvement of `candidate` over `baseline` makespans.
[[nodiscard]] double improvement_pct(double baseline, double candidate);

}  // namespace edgesched::sim
