#include "sim/perturbation.hpp"

#include "exec/executor.hpp"
#include "util/hash.hpp"

namespace edgesched::sim {

RobustnessReport assess_robustness(const dag::TaskGraph& graph,
                                   const net::Topology& topology,
                                   const sched::Schedule& schedule,
                                   const PerturbationOptions& options) {
  throw_if(options.spread < 0.0 || options.spread >= 1.0,
           "assess_robustness: spread must be in [0, 1)");
  throw_if(options.trials == 0, "assess_robustness: trials must be > 0");

  // Event-driven (work-conserving) replay: tasks start as soon as their
  // inputs and processor allow, in planned per-processor order. That is
  // the re-execution semantics robustness analysis wants — a lucky draw
  // can finish *before* the nominal plan, an unlucky one after.
  exec::ExecutionOptions run;
  run.dispatch = exec::DispatchMode::kEventDriven;

  RobustnessReport report;
  report.nominal_makespan =
      exec::execute(graph, topology, schedule, run).achieved_makespan;

  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    // Per-trial seed derived by hashing, so trials are independent
    // streams and the whole sweep is a pure function of options.seed.
    Fingerprint fp;
    fp.mix(options.seed);
    fp.mix(static_cast<std::uint64_t>(trial));
    run.model.duration_spread = options.spread;
    run.model.seed = fp.value();
    report.perturbed.add(
        exec::execute(graph, topology, schedule, run).achieved_makespan);
  }
  if (report.nominal_makespan > 0.0) {
    report.mean_slowdown =
        report.perturbed.mean() / report.nominal_makespan;
    report.worst_slowdown =
        report.perturbed.max() / report.nominal_makespan;
  }
  return report;
}

}  // namespace edgesched::sim
