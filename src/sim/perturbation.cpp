#include "sim/perturbation.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace edgesched::sim {

RobustnessReport assess_robustness(const dag::TaskGraph& graph,
                                   const net::Topology& topology,
                                   const sched::Schedule& schedule,
                                   const PerturbationOptions& options) {
  throw_if(options.spread < 0.0 || options.spread >= 1.0,
           "assess_robustness: spread must be in [0, 1)");
  throw_if(options.trials == 0, "assess_robustness: trials must be > 0");

  const sched::Assignment assignment =
      sched::assignment_of(graph, schedule);
  RobustnessReport report;
  report.nominal_makespan =
      sched::assignment_makespan(graph, topology, assignment);

  Rng rng(options.seed);
  dag::TaskGraph perturbed = graph;  // weights rewritten per trial
  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    for (dag::TaskId t : graph.all_tasks()) {
      const double factor = rng.uniform_real(1.0 - options.spread,
                                             1.0 + options.spread);
      perturbed.set_weight(t, graph.weight(t) * factor);
    }
    report.perturbed.add(
        sched::assignment_makespan(perturbed, topology, assignment));
  }
  if (report.nominal_makespan > 0.0) {
    report.mean_slowdown =
        report.perturbed.mean() / report.nominal_makespan;
    report.worst_slowdown =
        report.perturbed.max() / report.nominal_makespan;
  }
  return report;
}

}  // namespace edgesched::sim
