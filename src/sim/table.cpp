#include "sim/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

namespace edgesched::sim {

void print_sweep(std::ostream& out, const std::string& x_label,
                 const std::vector<SweepPoint>& points) {
  out << std::setw(10) << x_label << " | " << std::setw(22)
      << "OIHSA vs BA [%]" << " | " << std::setw(22) << "BBSA vs BA [%]"
      << " | " << std::setw(14) << "BA makespan" << "\n";
  out << std::string(10, '-') << "-+-" << std::string(22, '-') << "-+-"
      << std::string(22, '-') << "-+-" << std::string(14, '-') << "\n";
  for (const SweepPoint& p : points) {
    out << std::setw(10) << p.x << " | " << std::setw(14) << std::fixed
        << std::setprecision(2) << p.oihsa_improvement_pct.mean() << " ± "
        << std::setw(5) << p.oihsa_improvement_pct.ci95_halfwidth() << " | "
        << std::setw(14) << p.bbsa_improvement_pct.mean() << " ± "
        << std::setw(5) << p.bbsa_improvement_pct.ci95_halfwidth() << " | "
        << std::setw(14) << std::setprecision(1) << p.ba_makespan.mean()
        << "\n";
    out.unsetf(std::ios::fixed);
    out << std::setprecision(6);
  }
}

void write_sweep_csv(std::ostream& out, const std::string& x_label,
                     const std::vector<SweepPoint>& points) {
  out << x_label
      << ",oihsa_improvement_pct,oihsa_ci95,bbsa_improvement_pct,bbsa_ci95,"
         "ba_makespan,samples\n";
  for (const SweepPoint& p : points) {
    out << p.x << ',' << p.oihsa_improvement_pct.mean() << ','
        << p.oihsa_improvement_pct.ci95_halfwidth() << ','
        << p.bbsa_improvement_pct.mean() << ','
        << p.bbsa_improvement_pct.ci95_halfwidth() << ','
        << p.ba_makespan.mean() << ',' << p.oihsa_improvement_pct.count()
        << "\n";
  }
}

void print_sweep_chart(std::ostream& out, const std::string& x_label,
                       const std::vector<SweepPoint>& points) {
  double peak = 1.0;
  for (const SweepPoint& p : points) {
    peak = std::max({peak, p.oihsa_improvement_pct.mean(),
                     p.bbsa_improvement_pct.mean()});
  }
  constexpr int kWidth = 50;
  out << "improvement over BA (o = OIHSA, b = BBSA), full bar = "
      << std::fixed << std::setprecision(1) << peak << "%\n";
  out << std::setprecision(6);
  out.unsetf(std::ios::fixed);
  for (const SweepPoint& p : points) {
    const auto bar = [&](double value) {
      const int n = static_cast<int>(
          std::round(std::clamp(value / peak, 0.0, 1.0) * kWidth));
      return std::string(static_cast<std::size_t>(std::max(0, n)), '#');
    };
    out << std::setw(8) << p.x << ' ' << x_label << "\n";
    out << "   o " << bar(p.oihsa_improvement_pct.mean()) << ' '
        << std::fixed << std::setprecision(1)
        << p.oihsa_improvement_pct.mean() << "%\n";
    out << "   b " << bar(p.bbsa_improvement_pct.mean()) << ' '
        << p.bbsa_improvement_pct.mean() << "%\n";
    out << std::setprecision(6);
    out.unsetf(std::ios::fixed);
  }
}

}  // namespace edgesched::sim
