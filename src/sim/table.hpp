// Result presentation: aligned ASCII tables and CSV files for the
// figure-reproduction benches.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/runner.hpp"

namespace edgesched::sim {

/// Prints a sweep as an aligned table:
///   x | OIHSA vs BA % (± ci) | BBSA vs BA % (± ci) | BA makespan
void print_sweep(std::ostream& out, const std::string& x_label,
                 const std::vector<SweepPoint>& points);

/// Writes the sweep as CSV with a header row.
void write_sweep_csv(std::ostream& out, const std::string& x_label,
                     const std::vector<SweepPoint>& points);

/// Crude console bar chart of the two improvement series (the shape check
/// for the paper's figures).
void print_sweep_chart(std::ostream& out, const std::string& x_label,
                       const std::vector<SweepPoint>& points);

}  // namespace edgesched::sim
