#include "sim/workload.hpp"

#include "dag/generators.hpp"
#include "dag/properties.hpp"
#include "net/builders.hpp"
#include "util/env.hpp"

namespace edgesched::sim {

std::vector<double> ExperimentConfig::paper_ccr_values() {
  std::vector<double> values;
  for (int i = 1; i <= 10; ++i) {
    values.push_back(static_cast<double>(i) / 10.0);
  }
  for (int i = 2; i <= 10; ++i) {
    values.push_back(static_cast<double>(i));
  }
  return values;
}

std::vector<std::size_t> ExperimentConfig::paper_processor_counts() {
  return {2, 4, 8, 16, 32, 64, 128};
}

ExperimentConfig ExperimentConfig::defaults(bool heterogeneous) {
  ExperimentConfig config;
  config.heterogeneous = heterogeneous;
  config.ccr_values = paper_ccr_values();
  config.processor_counts = paper_processor_counts();
  if (env_flag("EDGESCHED_FULL", false)) {
    config.repetitions = 10;
  }
  config.tasks_min = static_cast<std::size_t>(env_int(
      "EDGESCHED_TASKS_MIN", static_cast<std::int64_t>(config.tasks_min)));
  config.tasks_max = static_cast<std::size_t>(env_int(
      "EDGESCHED_TASKS_MAX", static_cast<std::int64_t>(config.tasks_max)));
  config.repetitions = static_cast<std::size_t>(env_int(
      "EDGESCHED_REPS", static_cast<std::int64_t>(config.repetitions)));
  config.seed = static_cast<std::uint64_t>(
      env_int("EDGESCHED_SEED", static_cast<std::int64_t>(config.seed)));
  return config;
}

Instance make_instance(const ExperimentConfig& config,
                       std::size_t num_processors, double ccr, Rng& rng) {
  throw_if(config.tasks_min == 0 || config.tasks_min > config.tasks_max,
           "make_instance: bad task count range");
  dag::LayeredDagParams dag_params;
  dag_params.num_tasks = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(config.tasks_min),
                      static_cast<std::int64_t>(config.tasks_max)));
  dag_params.comp_min = 1.0;
  dag_params.comp_max = 1000.0;
  dag_params.comm_min = 1.0;
  dag_params.comm_max = 1000.0;

  Instance instance{dag::random_layered(dag_params, rng), net::Topology{},
                    ccr};
  dag::rescale_to_ccr(instance.graph, ccr);

  net::RandomWanParams wan;
  wan.num_processors = num_processors;
  wan.speeds.heterogeneous = config.heterogeneous;
  instance.topology = net::random_wan(wan, rng);
  return instance;
}

}  // namespace edgesched::sim
