#include "svc/thread_pool.hpp"

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace edgesched::svc {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) {
      num_threads = 1;
    }
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::post(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    throw_if(!accepting_, "ThreadPool::submit: pool is shut down");
    queue_.push_back(std::move(job));
  }
  work_ready_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [this]() { return !queue_.empty() || !accepting_; });
      if (queue_.empty()) {
        return;  // shutting down and fully drained
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      obs::Span span("svc/job", "svc");
      job();  // exceptions are captured by the packaged_task wrapper
    }
    obs::hot_counters().pool_jobs.increment();
  }
}

void ThreadPool::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!accepting_ && workers_.empty()) {
      return;  // already shut down
    }
    accepting_ = false;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
}

std::size_t ThreadPool::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace edgesched::svc
