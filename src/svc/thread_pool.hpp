// Fixed-size worker pool with a FIFO work queue.
//
// The pool is the execution substrate of the service layer: the
// scheduler service (svc/scheduler_service.hpp) and the parallel sweep
// runner (sim/runner.hpp) both fan work out over it. Design points:
//
//   * fixed worker count chosen at construction — scheduling work is
//     CPU-bound, so elastic growth would only add contention;
//   * `submit` wraps any nullary callable in a std::packaged_task, so
//     results *and exceptions* travel to the caller through the returned
//     std::future;
//   * graceful shutdown: `shutdown()` (and the destructor) stop accepting
//     new work, let the workers drain everything already queued, then
//     join. Work submitted before shutdown is never dropped.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/error.hpp"
#include "util/parallel_for.hpp"

namespace edgesched::svc {

class ThreadPool {
 public:
  /// Starts `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Stops accepting work, drains the queue, joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a nullary callable and returns a future of its result. The
  /// callable's return value or thrown exception is delivered through the
  /// future. Throws std::invalid_argument after shutdown().
  template <typename F>
  auto submit(F fn) -> std::future<std::invoke_result_t<F&>> {
    using Result = std::invoke_result_t<F&>;
    // std::function requires copyable targets, so the move-only
    // packaged_task rides in a shared_ptr.
    auto task =
        std::make_shared<std::packaged_task<Result()>>(std::move(fn));
    std::future<Result> future = task->get_future();
    post([task]() { (*task)(); });
    return future;
  }

  /// Runs `body(lane, begin, end)` over the `util::static_chunk`
  /// partition of [0, n) into `lanes` chunks: lanes 1..lanes-1 are
  /// submitted to the pool, the calling thread executes lane 0, and the
  /// call returns after every lane finished (rethrowing the first
  /// failure, caller's lane first). The deterministic partition means
  /// bodies writing disjoint per-index slots produce output independent
  /// of `lanes` — the same contract as `util::WorkerTeam::run`. Must not
  /// be called from inside a pool worker (the nested wait could deadlock
  /// on a saturated queue).
  template <typename Body>
  void parallel_for(std::size_t n, std::size_t lanes, const Body& body) {
    if (lanes <= 1 || n == 0) {
      body(std::size_t{0}, std::size_t{0}, n);
      return;
    }
    std::vector<std::future<void>> futures;
    futures.reserve(lanes - 1);
    for (std::size_t lane = 1; lane < lanes; ++lane) {
      const util::ChunkRange range = util::static_chunk(n, lanes, lane);
      if (range.empty()) {
        continue;
      }
      futures.push_back(submit(
          [&body, lane, range]() { body(lane, range.begin, range.end); }));
    }
    const util::ChunkRange own = util::static_chunk(n, lanes, 0);
    std::exception_ptr first_failure;
    try {
      body(std::size_t{0}, own.begin, own.end);
    } catch (...) {
      first_failure = std::current_exception();
    }
    for (std::future<void>& future : futures) {
      try {
        future.get();
      } catch (...) {
        if (first_failure == nullptr) {
          first_failure = std::current_exception();
        }
      }
    }
    if (first_failure != nullptr) {
      std::rethrow_exception(first_failure);
    }
  }

  /// Stops accepting new work, waits for queued work to finish, joins all
  /// workers. Idempotent; called by the destructor.
  void shutdown();

  /// Number of worker threads.
  [[nodiscard]] std::size_t num_threads() const noexcept {
    return workers_.size();
  }

  /// Jobs queued but not yet picked up by a worker.
  [[nodiscard]] std::size_t pending() const;

 private:
  void post(std::function<void()> job);
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool accepting_ = true;
};

}  // namespace edgesched::svc
