// Fixed-size worker pool with a FIFO work queue.
//
// The pool is the execution substrate of the service layer: the
// scheduler service (svc/scheduler_service.hpp) and the parallel sweep
// runner (sim/runner.hpp) both fan work out over it. Design points:
//
//   * fixed worker count chosen at construction — scheduling work is
//     CPU-bound, so elastic growth would only add contention;
//   * `submit` wraps any nullary callable in a std::packaged_task, so
//     results *and exceptions* travel to the caller through the returned
//     std::future;
//   * graceful shutdown: `shutdown()` (and the destructor) stop accepting
//     new work, let the workers drain everything already queued, then
//     join. Work submitted before shutdown is never dropped.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace edgesched::svc {

class ThreadPool {
 public:
  /// Starts `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Stops accepting work, drains the queue, joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a nullary callable and returns a future of its result. The
  /// callable's return value or thrown exception is delivered through the
  /// future. Throws std::invalid_argument after shutdown().
  template <typename F>
  auto submit(F fn) -> std::future<std::invoke_result_t<F&>> {
    using Result = std::invoke_result_t<F&>;
    // std::function requires copyable targets, so the move-only
    // packaged_task rides in a shared_ptr.
    auto task =
        std::make_shared<std::packaged_task<Result()>>(std::move(fn));
    std::future<Result> future = task->get_future();
    post([task]() { (*task)(); });
    return future;
  }

  /// Stops accepting new work, waits for queued work to finish, joins all
  /// workers. Idempotent; called by the destructor.
  void shutdown();

  /// Number of worker threads.
  [[nodiscard]] std::size_t num_threads() const noexcept {
    return workers_.size();
  }

  /// Jobs queued but not yet picked up by a worker.
  [[nodiscard]] std::size_t pending() const;

 private:
  void post(std::function<void()> job);
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool accepting_ = true;
};

}  // namespace edgesched::svc
