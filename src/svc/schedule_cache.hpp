// Content-addressed LRU cache of computed schedules.
//
// Scheduling is pure: the same (graph, topology, algorithm) triple always
// yields the same Schedule, so results can be memoised under a canonical
// key. The key is the 64-bit `request_fingerprint` combining
// `TaskGraph::fingerprint()`, `Topology::fingerprint()` and the algorithm
// name — identical content hashes identically no matter how or when the
// objects were built, which is what lets independent clients share hits.
//
// Thread safety: every public member is safe to call concurrently; a
// single mutex guards the LRU list, the index and the counters. Cached
// schedules are handed out as shared_ptr<const Schedule>, so an entry
// evicted while a client still holds the pointer stays alive for that
// client.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "dag/task_graph.hpp"
#include "net/topology.hpp"
#include "sched/schedule.hpp"

namespace edgesched::svc {

/// Canonical cache key of a scheduling request. Graph/topology/node/task
/// *names* do not contribute (see the fingerprint() contracts); the
/// algorithm name does, byte for byte.
[[nodiscard]] std::uint64_t request_fingerprint(
    const dag::TaskGraph& graph, const net::Topology& topology,
    std::string_view algorithm);

/// Structural variant: keys on `sched::Scheduler::fingerprint()` instead
/// of a display name, so two algorithm bundles sharing a name but
/// differing in any policy (or options) cache independently. This is the
/// key the scheduler service uses.
[[nodiscard]] std::uint64_t request_fingerprint(
    const dag::TaskGraph& graph, const net::Topology& topology,
    std::uint64_t algorithm_fingerprint);

/// Monotonic cache counters (snapshot; see ScheduleCache::stats()).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

class ScheduleCache {
 public:
  using SchedulePtr = std::shared_ptr<const sched::Schedule>;

  /// Capacity is the maximum number of retained schedules; must be >= 1.
  explicit ScheduleCache(std::size_t capacity);

  /// Returns the cached schedule and refreshes its LRU position, or
  /// nullptr on a miss. Counts a hit or a miss.
  [[nodiscard]] SchedulePtr get(std::uint64_t key);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// one when full. A put of an existing key replaces the value.
  void put(std::uint64_t key, SchedulePtr schedule);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] CacheStats stats() const;

  /// Drops every entry; counters are preserved.
  void clear();

 private:
  using LruList = std::list<std::pair<std::uint64_t, SchedulePtr>>;

  mutable std::mutex mutex_;
  std::size_t capacity_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, LruList::iterator> index_;
  CacheStats stats_;
};

}  // namespace edgesched::svc
