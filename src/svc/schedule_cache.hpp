// Content-addressed LRU cache of computed schedules.
//
// Scheduling is pure: the same (graph, topology, algorithm) triple always
// yields the same Schedule, so results can be memoised under a canonical
// key. The key is the 64-bit `request_fingerprint` combining
// `TaskGraph::fingerprint()`, `Topology::fingerprint()` and the algorithm
// name — identical content hashes identically no matter how or when the
// objects were built, which is what lets independent clients share hits.
//
// The LRU mechanics (thread safety, eviction, counters) live in the
// generic svc::LruCache — this header fixes the value type and owns the
// request-fingerprint helpers.
#pragma once

#include <cstdint>
#include <string_view>

#include "dag/task_graph.hpp"
#include "net/topology.hpp"
#include "sched/schedule.hpp"
#include "svc/lru_cache.hpp"

namespace edgesched::svc {

/// Canonical cache key of a scheduling request. Graph/topology/node/task
/// *names* do not contribute (see the fingerprint() contracts); the
/// algorithm name does, byte for byte.
[[nodiscard]] std::uint64_t request_fingerprint(
    const dag::TaskGraph& graph, const net::Topology& topology,
    std::string_view algorithm);

/// Structural variant: keys on `sched::Scheduler::fingerprint()` instead
/// of a display name, so two algorithm bundles sharing a name but
/// differing in any policy (or options) cache independently. This is the
/// key the scheduler service uses.
[[nodiscard]] std::uint64_t request_fingerprint(
    const dag::TaskGraph& graph, const net::Topology& topology,
    std::uint64_t algorithm_fingerprint);

class ScheduleCache : public LruCache<sched::Schedule> {
 public:
  using SchedulePtr = std::shared_ptr<const sched::Schedule>;
  using LruCache<sched::Schedule>::LruCache;
};

}  // namespace edgesched::svc
