// Generic content-addressed LRU cache.
//
// Both service caches — computed schedules and execution reports — are
// the same structure: a bounded map from a canonical 64-bit request
// fingerprint to a shared_ptr of an immutable result, with
// least-recently-used eviction and monotonic hit/miss counters.
// `LruCache<V>` is that structure; `ScheduleCache` and `ExecutionCache`
// are thin aliases-by-inheritance that fix V.
//
// Thread safety: every public member is safe to call concurrently; a
// single mutex guards the LRU list, the index and the counters. Cached
// values are handed out as shared_ptr<const V>, so an entry evicted
// while a client still holds the pointer stays alive for that client.
//
// Besides the snapshot `stats()`, a cache can mirror its traffic into
// registry counters (`bind_counters`): each get() bumps the bound hit
// or miss counter exactly once, each eviction the eviction counter, so
// the `*_{hits,misses,evictions}_total` series the metrics snapshot
// exports track stats() one-for-one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "svc/metrics.hpp"
#include "util/error.hpp"

namespace edgesched::svc {

/// Monotonic cache counters (snapshot; see LruCache::stats()).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

template <typename V>
class LruCache {
 public:
  using ValuePtr = std::shared_ptr<const V>;

  /// Capacity is the maximum number of retained entries; must be >= 1.
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {
    throw_if(capacity == 0, "LruCache: capacity must be >= 1");
  }

  /// Mirrors cache traffic into externally owned counters (typically a
  /// MetricsRegistry's `*_total` series): every subsequent hit, miss and
  /// eviction increments the corresponding counter once. Null pointers
  /// disable the respective mirror. The counters must outlive the cache.
  void bind_counters(Counter* hits, Counter* misses, Counter* evictions) {
    const std::lock_guard<std::mutex> lock(mutex_);
    hits_counter_ = hits;
    misses_counter_ = misses;
    evictions_counter_ = evictions;
  }

  /// Returns the cached value and refreshes its LRU position, or nullptr
  /// on a miss. Counts a hit or a miss.
  [[nodiscard]] ValuePtr get(std::uint64_t key) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      if (misses_counter_ != nullptr) {
        misses_counter_->increment();
      }
      return nullptr;
    }
    ++stats_.hits;
    if (hits_counter_ != nullptr) {
      hits_counter_->increment();
    }
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    return it->second->second;
  }

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// one when full. A put of an existing key replaces the value.
  void put(std::uint64_t key, ValuePtr value) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    if (lru_.size() >= capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
      ++stats_.evictions;
      if (evictions_counter_ != nullptr) {
        evictions_counter_->increment();
      }
    }
    lru_.emplace_front(key, std::move(value));
    index_.emplace(key, lru_.begin());
    ++stats_.insertions;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] CacheStats stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  /// Drops every entry; counters are preserved.
  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    index_.clear();
  }

 private:
  using LruList = std::list<std::pair<std::uint64_t, ValuePtr>>;

  mutable std::mutex mutex_;
  std::size_t capacity_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, typename LruList::iterator> index_;
  CacheStats stats_;
  Counter* hits_counter_ = nullptr;       ///< see bind_counters()
  Counter* misses_counter_ = nullptr;
  Counter* evictions_counter_ = nullptr;
};

}  // namespace edgesched::svc
