// Concurrent scheduling service: job API over the thread pool + cache.
//
// The service turns the scheduler library into something that absorbs
// many concurrent requests:
//
//          submit(graph, topology, algorithm)
//                        |
//                  fingerprint key
//                        |
//              cache hit -+- cache miss
//                 |              |
//          ready future     ThreadPool job ----> Scheduler::schedule
//                                |                      |
//                           cache.put  <------  shared_ptr<const Schedule>
//
// Requests are accepted as shared_ptr<const TaskGraph/Topology> so that a
// client can submit many requests against the same objects without
// copying them per job; the service keeps them alive until the job ran.
// Results come back as std::future<shared_ptr<const Schedule>>; scheduler
// exceptions propagate through the future.
//
// Every accepted request increments `svc_requests_total`; completed
// schedules record their wall-clock latency in `svc_schedule_seconds`,
// and cache traffic shows up both in each cache's own stats() and in
// the `svc_{,exec_,platform_}cache_{hits,misses,evictions}_total`
// counters (bound via LruCache::bind_counters, so the metrics snapshot
// exports all three caches uniformly).
//
// Beyond the result caches the service amortises two kinds of
// per-request setup:
//
//   * Schedulers resolved by registry name are memoised (one instance
//     per canonical key, shared by every job) — repeated submissions
//     stop re-validating the spec and re-interning span names.
//   * A content-addressed `PlatformCache` keyed by
//     `Topology::fingerprint()` shares one immutable
//     `sched::PlatformContext` — all-pairs route table, cached
//     reductions, pooled per-run workspaces — across every job against
//     the same fabric (sched/platform.hpp; `share_platform` disables
//     the sharing for ablation/benchmarking).
//
// Concurrency notes: all members are thread-safe. Two concurrent submits
// of the same not-yet-cached request both compute (last put wins) — the
// cache deduplicates storage, not in-flight work; for the pure functions
// served here recomputation is merely redundant, never wrong. The same
// holds for two jobs racing to build one platform context.
#pragma once

#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "dag/task_graph.hpp"
#include "exec/executor.hpp"
#include "exec/report.hpp"
#include "net/topology.hpp"
#include "sched/algorithm_spec.hpp"
#include "sched/platform.hpp"
#include "sched/scheduler.hpp"
#include "svc/lru_cache.hpp"
#include "svc/metrics.hpp"
#include "svc/schedule_cache.hpp"
#include "svc/thread_pool.hpp"

namespace edgesched::svc {

struct ServiceConfig {
  /// Worker threads; 0 means hardware concurrency.
  std::size_t threads = 0;
  /// Maximum cached schedules (LRU beyond that).
  std::size_t cache_capacity = 1024;
  /// Maximum cached execution reports (LRU beyond that).
  std::size_t exec_cache_capacity = 256;
  /// Maximum cached platform contexts (LRU beyond that). Contexts are
  /// per-topology, so this bounds the number of distinct fabrics whose
  /// derived state stays resident.
  std::size_t platform_cache_capacity = 64;
  /// Share one PlatformContext per topology across jobs (the platform
  /// cache). False rebuilds the context for every job — the cold
  /// baseline bench/service_throughput measures against.
  bool share_platform = true;
  /// Run every computed schedule through sched::validate_or_throw.
  bool validate = false;
  /// Intra-run worker threads each pool job may fan its candidate scan
  /// across (sched/intra_run.hpp); 0 means hardware concurrency. The
  /// service clamps the product `intra_threads × pool threads` to
  /// hardware concurrency so concurrent jobs cannot oversubscribe the
  /// machine — `SchedulerService::effective_intra_threads()` reports the
  /// clamped value, which is also exported as the
  /// `svc_intra_threads_effective` metric. The default of 1 keeps jobs
  /// serial (one core per job, the pool provides the parallelism).
  std::size_t intra_threads = 1;
};

/// Content-addressed LRU cache of execution reports; execution is as pure
/// as scheduling (seeded model, scripted faults), so replays memoise too.
using ExecutionCache = LruCache<exec::ExecutionReport>;

/// Content-addressed LRU cache of immutable per-topology platform
/// contexts, keyed by `Topology::fingerprint()`.
using PlatformCache = LruCache<sched::PlatformContext>;

class SchedulerService {
 public:
  using SchedulePtr = ScheduleCache::SchedulePtr;
  using ExecutionPtr = ExecutionCache::ValuePtr;

  explicit SchedulerService(ServiceConfig config = {});

  /// Drains in-flight jobs, then stops the workers.
  ~SchedulerService();

  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  /// Enqueues one scheduling request. `algorithm` is resolved through
  /// `make_scheduler` immediately, so an unknown name throws here rather
  /// than through the future. Cache hits resolve the future immediately
  /// without touching the pool.
  [[nodiscard]] std::future<SchedulePtr> submit(
      std::shared_ptr<const dag::TaskGraph> graph,
      std::shared_ptr<const net::Topology> topology,
      const std::string& algorithm);

  /// Enqueues one scheduling request for an explicit engine bundle —
  /// preset or novel. The cache key is the spec's structural
  /// fingerprint, so two bundles sharing a display name but differing in
  /// any policy cache independently. Throws std::invalid_argument for an
  /// inconsistent spec (AlgorithmSpec::validate).
  [[nodiscard]] std::future<SchedulePtr> submit(
      std::shared_ptr<const dag::TaskGraph> graph,
      std::shared_ptr<const net::Topology> topology,
      const sched::AlgorithmSpec& spec);

  /// Convenience wrapper: submit and wait. Copies the inputs into shared
  /// ownership; prefer `submit` with shared_ptr when issuing batches.
  [[nodiscard]] SchedulePtr schedule_now(const dag::TaskGraph& graph,
                                         const net::Topology& topology,
                                         const std::string& algorithm);

  /// Enqueues one execution request: replay `schedule` on the pool under
  /// the discrete-event executor (src/exec). Keyed by the instance, the
  /// schedule's result fingerprint and the execution options, so repeated
  /// what-if replays of one plan hit the execution cache. Option
  /// validation errors throw here; runtime failures (fail-stop aborts,
  /// retry exhaustion) come back as reports with completed == false.
  [[nodiscard]] std::future<ExecutionPtr> execute(
      std::shared_ptr<const dag::TaskGraph> graph,
      std::shared_ptr<const net::Topology> topology, SchedulePtr schedule,
      exec::ExecutionOptions options = {});

  /// Convenience wrapper: execute and wait (copies the inputs).
  [[nodiscard]] ExecutionPtr execute_now(
      const dag::TaskGraph& graph, const net::Topology& topology,
      const sched::Schedule& schedule,
      const exec::ExecutionOptions& options = {});

  [[nodiscard]] const ScheduleCache& cache() const noexcept {
    return cache_;
  }
  [[nodiscard]] const ExecutionCache& execution_cache() const noexcept {
    return exec_cache_;
  }
  [[nodiscard]] const PlatformCache& platform_cache() const noexcept {
    return platform_cache_;
  }
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] std::size_t num_threads() const noexcept {
    return pool_.num_threads();
  }
  /// Intra-run worker count every job actually runs with: the configured
  /// `ServiceConfig::intra_threads` clamped so that `intra × pool`
  /// never exceeds hardware concurrency (always >= 1).
  [[nodiscard]] std::size_t effective_intra_threads() const noexcept {
    return effective_intra_threads_;
  }

  /// Stops accepting requests and drains workers (idempotent).
  void shutdown() { pool_.shutdown(); }

  /// Algorithm factory, resolved through the central
  /// `sched::algorithm_registry()` (case-insensitive keys and aliases;
  /// see sched/registry.hpp). Throws std::invalid_argument for unknown
  /// names.
  [[nodiscard]] static std::unique_ptr<sched::Scheduler> make_scheduler(
      std::string_view name);

  /// Memoised variant of `make_scheduler`: one shared scheduler instance
  /// per canonical registry key (aliases and case variants share), so
  /// repeated submissions of the same algorithm skip spec validation and
  /// span-name interning. Schedulers are stateless between runs, hence
  /// safe to share across pool workers. Throws std::invalid_argument for
  /// unknown names.
  [[nodiscard]] std::shared_ptr<const sched::Scheduler> scheduler_for(
      std::string_view name);

 private:
  /// Common path: cache by the scheduler's structural fingerprint, or
  /// compute on the pool.
  [[nodiscard]] std::future<SchedulePtr> submit_scheduler(
      std::shared_ptr<const dag::TaskGraph> graph,
      std::shared_ptr<const net::Topology> topology,
      std::shared_ptr<const sched::Scheduler> scheduler);

  /// Returns the shared platform context for `topology`, building and
  /// caching it on first sight (keyed by content fingerprint). Called on
  /// worker threads; concurrent builds of the same context are benign
  /// (last put wins, both results equivalent).
  [[nodiscard]] std::shared_ptr<const sched::PlatformContext> platform_for(
      const std::shared_ptr<const net::Topology>& topology);

  ServiceConfig config_;
  std::size_t effective_intra_threads_ = 1;  ///< see effective_intra_threads
  MetricsRegistry metrics_;
  ScheduleCache cache_;
  ExecutionCache exec_cache_;
  PlatformCache platform_cache_;
  ThreadPool pool_;
  Counter& requests_;
  Counter& failures_;
  Histogram& latency_;
  Counter& exec_requests_;
  Histogram& exec_latency_;
  std::mutex scheduler_mutex_;
  std::unordered_map<std::string, std::shared_ptr<const sched::Scheduler>>
      schedulers_;  ///< keyed by canonical registry key; see scheduler_for
};

}  // namespace edgesched::svc
