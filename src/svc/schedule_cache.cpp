#include "svc/schedule_cache.hpp"

#include "util/hash.hpp"

namespace edgesched::svc {

std::uint64_t request_fingerprint(const dag::TaskGraph& graph,
                                  const net::Topology& topology,
                                  std::string_view algorithm) {
  Fingerprint fp;
  fp.mix(graph.fingerprint());
  fp.mix(topology.fingerprint());
  fp.mix(algorithm);
  return fp.value();
}

std::uint64_t request_fingerprint(const dag::TaskGraph& graph,
                                  const net::Topology& topology,
                                  std::uint64_t algorithm_fingerprint) {
  Fingerprint fp;
  fp.mix(graph.fingerprint());
  fp.mix(topology.fingerprint());
  fp.mix(algorithm_fingerprint);
  return fp.value();
}

}  // namespace edgesched::svc
