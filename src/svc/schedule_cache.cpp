#include "svc/schedule_cache.hpp"

#include "util/error.hpp"
#include "util/hash.hpp"

namespace edgesched::svc {

std::uint64_t request_fingerprint(const dag::TaskGraph& graph,
                                  const net::Topology& topology,
                                  std::string_view algorithm) {
  Fingerprint fp;
  fp.mix(graph.fingerprint());
  fp.mix(topology.fingerprint());
  fp.mix(algorithm);
  return fp.value();
}

std::uint64_t request_fingerprint(const dag::TaskGraph& graph,
                                  const net::Topology& topology,
                                  std::uint64_t algorithm_fingerprint) {
  Fingerprint fp;
  fp.mix(graph.fingerprint());
  fp.mix(topology.fingerprint());
  fp.mix(algorithm_fingerprint);
  return fp.value();
}

ScheduleCache::ScheduleCache(std::size_t capacity) : capacity_(capacity) {
  throw_if(capacity == 0, "ScheduleCache: capacity must be >= 1");
}

ScheduleCache::SchedulePtr ScheduleCache::get(std::uint64_t key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void ScheduleCache::put(std::uint64_t key, SchedulePtr schedule) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(schedule);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.emplace_front(key, std::move(schedule));
  index_.emplace(key, lru_.begin());
  ++stats_.insertions;
}

std::size_t ScheduleCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

CacheStats ScheduleCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ScheduleCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace edgesched::svc
