// Thread-safe service metrics: counters and latency histograms.
//
// A MetricsRegistry is a named set of monotonic counters and log2-bucket
// latency histograms that worker threads update wait-free (atomics only)
// and that `text_dump()` renders in a Prometheus-style line format:
//
//   counter svc_requests_total 128
//   histogram svc_schedule_seconds count 96 sum 1.73e+00
//   histogram svc_schedule_seconds le 9.53674e-07 0
//   ...
//   histogram svc_schedule_seconds le +inf 96
//   histogram svc_schedule_seconds p50 0.0123
//   histogram svc_schedule_seconds p95 0.0611
//   histogram svc_schedule_seconds p99 0.102
//
// Bucket layout: powers of two from 2^-20 s (~0.95 µs) to 2^7 s (128 s),
// one implicit +inf bucket — every factor-of-two band between a
// microsecond and two minutes gets its own bucket, so there is no
// decade-wide hole (the PR 2 layout jumped 1 s -> 100 s and collapsed
// all 1–100 s latencies into one bucket) and `quantile()` estimates are
// within one power of two of the true value (linear interpolation inside
// the winning bucket does much better in practice; bounds tested in
// tests/obs_metrics_quantile_test.cpp).
//
// Metric objects are created on first use and live as long as the
// registry; the references returned by `counter()` / `histogram()` stay
// valid, so hot paths resolve a metric once and update it lock-free.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace edgesched::svc {

/// Monotonic counter; wait-free increments.
class Counter {
 public:
  void increment(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  /// Zeroes the counter in place (the object survives, so references
  /// held by hot paths stay valid). Test/tooling use only.
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

namespace detail {

/// Smallest histogram bucket bound exponent: 2^-20 s ~ 0.95 µs.
inline constexpr int kHistogramMinExponent = -20;
/// Largest finite histogram bucket bound exponent: 2^7 s = 128 s.
inline constexpr int kHistogramMaxExponent = 7;
inline constexpr std::size_t kHistogramNumBounds =
    static_cast<std::size_t>(kHistogramMaxExponent - kHistogramMinExponent +
                             1);

constexpr std::array<double, kHistogramNumBounds> make_histogram_bounds() {
  std::array<double, kHistogramNumBounds> bounds{};
  double value = 1.0;
  for (int e = 0; e > kHistogramMinExponent; --e) {
    value /= 2.0;  // powers of two are exact in binary floating point
  }
  for (std::size_t i = 0; i < kHistogramNumBounds; ++i) {
    bounds[i] = value;
    value *= 2.0;
  }
  return bounds;
}

}  // namespace detail

/// Latency histogram with log2 buckets from ~1 µs to 128 s. Values are
/// seconds. Cumulative queries (`cumulative_le`) follow the Prometheus
/// `le` convention.
class Histogram {
 public:
  static constexpr int kMinExponent = detail::kHistogramMinExponent;
  static constexpr int kMaxExponent = detail::kHistogramMaxExponent;

  /// Bucket upper bounds in seconds (2^kMinExponent ... 2^kMaxExponent);
  /// one implicit +inf bucket follows.
  static constexpr std::array<double, detail::kHistogramNumBounds>
      kUpperBounds = detail::make_histogram_bounds();
  static constexpr std::size_t kNumBuckets = kUpperBounds.size() + 1;

  void observe(double seconds) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Observations in bucket `i` (i == kUpperBounds.size() is +inf).
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Observations <= kUpperBounds[i] (cumulative, Prometheus `le`).
  [[nodiscard]] std::uint64_t cumulative_le(std::size_t i) const noexcept;

  /// Estimated value at quantile `q` in [0, 1]: finds the bucket holding
  /// the ceil(q * count)-th observation and interpolates linearly inside
  /// it (0 when empty; the lower/upper bucket bound for q <= 0 / q >= 1
  /// observations in the +inf bucket clamp to the largest finite bound).
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Zeroes all buckets, count and sum in place. Test/tooling use only.
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Named collection of counters and histograms.
class MetricsRegistry {
 public:
  /// Returns the counter named `name`, creating it on first use. The
  /// reference stays valid for the registry's lifetime.
  [[nodiscard]] Counter& counter(const std::string& name);

  /// Returns the histogram named `name`, creating it on first use.
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// Renders every metric in the line format documented above, in one
  /// deterministic sorted-by-name sequence across both metric kinds —
  /// output never depends on registration order.
  [[nodiscard]] std::string text_dump() const;

  /// Current counter values, sorted by name.
  [[nodiscard]] std::map<std::string, std::uint64_t> counter_values() const;

  /// count/sum summary of one histogram.
  struct HistogramSummary {
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  /// Current histogram summaries, sorted by name.
  [[nodiscard]] std::map<std::string, HistogramSummary> histogram_values()
      const;

  /// Full point-in-time copy of one histogram: every bucket plus
  /// count/sum. The consumer for snapshots/exposition (obs/metrics_snapshot).
  struct HistogramData {
    std::array<std::uint64_t, Histogram::kNumBuckets> buckets{};
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  /// Current full histogram copies, sorted by name. Buckets are read
  /// without a global atomic snapshot: concurrent observes may straddle
  /// the copy by one observation, which monitoring tolerates.
  [[nodiscard]] std::map<std::string, HistogramData> histogram_data() const;

  /// Zeroes every metric in place without destroying it: references
  /// previously returned by `counter()` / `histogram()` stay valid, so
  /// tests that share a process-global registry can start from a clean
  /// slate regardless of what ran before them.
  void reset_for_test();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace edgesched::svc
