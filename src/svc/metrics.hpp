// Thread-safe service metrics: counters and latency histograms.
//
// A MetricsRegistry is a named set of monotonic counters and fixed-bucket
// latency histograms that worker threads update wait-free (atomics only)
// and that `text_dump()` renders in a Prometheus-style line format:
//
//   counter svc_requests_total 128
//   histogram svc_schedule_seconds count 96 sum 1.73e+00
//   histogram svc_schedule_seconds le 1e-05 0
//   ...
//   histogram svc_schedule_seconds le +inf 96
//
// Metric objects are created on first use and live as long as the
// registry; the references returned by `counter()` / `histogram()` stay
// valid, so hot paths resolve a metric once and update it lock-free.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace edgesched::svc {

/// Monotonic counter; wait-free increments.
class Counter {
 public:
  void increment(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  /// Zeroes the counter in place (the object survives, so references
  /// held by hot paths stay valid). Test/tooling use only.
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Latency histogram with decade buckets from 1 µs to 100 s. Values are
/// seconds. Cumulative queries (`cumulative_le`) follow the Prometheus
/// `le` convention.
class Histogram {
 public:
  /// Bucket upper bounds in seconds; one implicit +inf bucket follows.
  static constexpr std::array<double, 8> kUpperBounds = {
      1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 100.0};
  static constexpr std::size_t kNumBuckets = kUpperBounds.size() + 1;

  void observe(double seconds) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Observations in bucket `i` (i == kUpperBounds.size() is +inf).
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Observations <= kUpperBounds[i] (cumulative, Prometheus `le`).
  [[nodiscard]] std::uint64_t cumulative_le(std::size_t i) const noexcept;

  /// Zeroes all buckets, count and sum in place. Test/tooling use only.
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Named collection of counters and histograms.
class MetricsRegistry {
 public:
  /// Returns the counter named `name`, creating it on first use. The
  /// reference stays valid for the registry's lifetime.
  [[nodiscard]] Counter& counter(const std::string& name);

  /// Returns the histogram named `name`, creating it on first use.
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// Renders every metric in the line format documented above, in one
  /// deterministic sorted-by-name sequence across both metric kinds —
  /// output never depends on registration order.
  [[nodiscard]] std::string text_dump() const;

  /// Current counter values, sorted by name.
  [[nodiscard]] std::map<std::string, std::uint64_t> counter_values() const;

  /// count/sum summary of one histogram.
  struct HistogramSummary {
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  /// Current histogram summaries, sorted by name.
  [[nodiscard]] std::map<std::string, HistogramSummary> histogram_values()
      const;

  /// Zeroes every metric in place without destroying it: references
  /// previously returned by `counter()` / `histogram()` stay valid, so
  /// tests that share a process-global registry can start from a clean
  /// slate regardless of what ran before them.
  void reset_for_test();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace edgesched::svc
