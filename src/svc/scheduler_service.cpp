#include "svc/scheduler_service.hpp"

#include <chrono>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/run_context.hpp"
#include "sched/engine.hpp"
#include "sched/intra_run.hpp"
#include "sched/registry.hpp"
#include "sched/validator.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace edgesched::svc {

SchedulerService::SchedulerService(ServiceConfig config)
    : config_(config),
      cache_(config.cache_capacity),
      exec_cache_(config.exec_cache_capacity),
      platform_cache_(config.platform_cache_capacity),
      pool_(config.threads),
      requests_(metrics_.counter("svc_requests_total")),
      failures_(metrics_.counter("svc_failures_total")),
      latency_(metrics_.histogram("svc_schedule_seconds")),
      exec_requests_(metrics_.counter("svc_exec_requests_total")),
      exec_latency_(metrics_.histogram("svc_execute_seconds")) {
  // All three caches mirror their traffic into registry counters so the
  // metrics snapshot exports them uniformly (satellite: shared LRU
  // bookkeeping + *_total series per cache).
  cache_.bind_counters(&metrics_.counter("svc_cache_hits_total"),
                       &metrics_.counter("svc_cache_misses_total"),
                       &metrics_.counter("svc_cache_evictions_total"));
  exec_cache_.bind_counters(
      &metrics_.counter("svc_exec_cache_hits_total"),
      &metrics_.counter("svc_exec_cache_misses_total"),
      &metrics_.counter("svc_exec_cache_evictions_total"));
  platform_cache_.bind_counters(
      &metrics_.counter("svc_platform_cache_hits_total"),
      &metrics_.counter("svc_platform_cache_misses_total"),
      &metrics_.counter("svc_platform_cache_evictions_total"));
  // Oversubscription guard: whatever was asked for, each job's intra-run
  // fan-out times the pool's own width stays within the machine. The
  // effective value is computed once here and exported so `text_dump`
  // (and any metrics scrape) shows what jobs actually run with.
  effective_intra_threads_ =
      sched::clamped_intra_threads(config_.intra_threads,
                                   pool_.num_threads());
  metrics_.counter("svc_intra_threads_effective")
      .increment(static_cast<std::uint64_t>(effective_intra_threads_));
}

SchedulerService::~SchedulerService() { shutdown(); }

std::unique_ptr<sched::Scheduler> SchedulerService::make_scheduler(
    std::string_view name) {
  return sched::make_scheduler(name);
}

std::shared_ptr<const sched::Scheduler> SchedulerService::scheduler_for(
    std::string_view name) {
  const sched::AlgorithmEntry* entry = sched::find_algorithm(name);
  if (entry == nullptr) {
    // Delegates the error path: make_scheduler throws the canonical
    // invalid_argument listing the known keys.
    return make_scheduler(name);
  }
  const std::lock_guard<std::mutex> lock(scheduler_mutex_);
  auto it = schedulers_.find(entry->key);
  if (it == schedulers_.end()) {
    it = schedulers_.emplace(entry->key, entry->make()).first;
  }
  return it->second;
}

std::shared_ptr<const sched::PlatformContext> SchedulerService::platform_for(
    const std::shared_ptr<const net::Topology>& topology) {
  if (!config_.share_platform) {
    // Ablation/benchmark mode: pay the full per-job derivation cost.
    return std::make_shared<const sched::PlatformContext>(topology);
  }
  const std::uint64_t key = topology->fingerprint();
  if (PlatformCache::ValuePtr cached = platform_cache_.get(key)) {
    return cached;
  }
  // Concurrent misses both build; last put wins. The contexts are
  // equivalent (derived deterministically from the same topology), so
  // either result is correct for every racer.
  auto built = std::make_shared<const sched::PlatformContext>(topology);
  platform_cache_.put(key, built);
  return built;
}

std::future<SchedulerService::SchedulePtr> SchedulerService::submit(
    std::shared_ptr<const dag::TaskGraph> graph,
    std::shared_ptr<const net::Topology> topology,
    const std::string& algorithm) {
  // Resolve the algorithm up front: unknown names should fail loudly at
  // the call site, not asynchronously. Resolution is memoised per
  // canonical registry key (see scheduler_for).
  return submit_scheduler(std::move(graph), std::move(topology),
                          scheduler_for(algorithm));
}

std::future<SchedulerService::SchedulePtr> SchedulerService::submit(
    std::shared_ptr<const dag::TaskGraph> graph,
    std::shared_ptr<const net::Topology> topology,
    const sched::AlgorithmSpec& spec) {
  // SpecScheduler's constructor validates the bundle, so an inconsistent
  // spec throws here rather than through the future.
  return submit_scheduler(std::move(graph), std::move(topology),
                          std::make_unique<sched::SpecScheduler>(spec));
}

std::future<SchedulerService::SchedulePtr> SchedulerService::submit_scheduler(
    std::shared_ptr<const dag::TaskGraph> graph,
    std::shared_ptr<const net::Topology> topology,
    std::shared_ptr<const sched::Scheduler> scheduler) {
  throw_if(graph == nullptr, "SchedulerService::submit: null graph");
  throw_if(topology == nullptr, "SchedulerService::submit: null topology");
  requests_.increment();

  // Mint the run ID at submission time (not in the job body) so IDs are
  // allocated in submission order — deterministic however the pool
  // interleaves the work. A caller-installed run scope is reused.
  const std::uint64_t caller_run = obs::current_run_id();
  const std::uint64_t run_id =
      caller_run != obs::kNoRun ? caller_run : obs::mint_run_id();

  // Key on the scheduler's structural fingerprint, not its display name:
  // two bundles named alike but differing in any policy cache apart.
  const std::uint64_t key =
      request_fingerprint(*graph, *topology, scheduler->fingerprint());
  if (SchedulePtr cached = cache_.get(key)) {
    obs::flight_recorder().record(obs::FlightEventKind::kCache,
                                  "svc/schedule", 0.0, 1);
    std::promise<SchedulePtr> ready;
    ready.set_value(std::move(cached));
    return ready.get_future();
  }
  obs::flight_recorder().record(obs::FlightEventKind::kCache, "svc/schedule",
                                0.0, 0);

  return pool_.submit([this, key, run_id, graph = std::move(graph),
                       topology = std::move(topology),
                       scheduler = std::move(scheduler)]() -> SchedulePtr {
    const obs::ScopedRunId run_scope(run_id);
    const sched::ScopedIntraThreads intra_scope(effective_intra_threads_);
    const auto start = std::chrono::steady_clock::now();
    try {
      // Resolve the shared per-topology platform on the worker: the
      // derived state (route table, reductions, workspace pool) is built
      // once per fabric and reused by every job that follows.
      const std::shared_ptr<const sched::PlatformContext> platform =
          platform_for(topology);
      auto schedule = std::make_shared<const sched::Schedule>(
          scheduler->schedule(*graph, *platform));
      if (config_.validate) {
        sched::validate_or_throw(*graph, *topology, *schedule);
      }
      latency_.observe(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count());
      cache_.put(key, schedule);
      obs::flight_recorder().record(
          obs::FlightEventKind::kJob, "svc/schedule", 0.0,
          schedule->num_tasks(), schedule->makespan());
      return schedule;
    } catch (...) {
      failures_.increment();
      throw;  // delivered to the caller through the future
    }
  });
}

std::future<SchedulerService::ExecutionPtr> SchedulerService::execute(
    std::shared_ptr<const dag::TaskGraph> graph,
    std::shared_ptr<const net::Topology> topology, SchedulePtr schedule,
    exec::ExecutionOptions options) {
  throw_if(graph == nullptr, "SchedulerService::execute: null graph");
  throw_if(topology == nullptr, "SchedulerService::execute: null topology");
  throw_if(schedule == nullptr, "SchedulerService::execute: null schedule");
  // Fail loudly at the call site on malformed options.
  options.model.validate();
  options.faults.validate(*topology);
  exec_requests_.increment();

  // Execution is pure in (instance, schedule result, options): the model
  // and fault plan are seeded, so a replay memoises like a schedule.
  Fingerprint request;
  request.mix(schedule->fingerprint());
  request.mix(options.fingerprint());
  const std::uint64_t caller_run = obs::current_run_id();
  const std::uint64_t run_id =
      caller_run != obs::kNoRun ? caller_run : obs::mint_run_id();

  const std::uint64_t key =
      request_fingerprint(*graph, *topology, request.value());
  if (ExecutionPtr cached = exec_cache_.get(key)) {
    obs::flight_recorder().record(obs::FlightEventKind::kCache, "svc/execute",
                                  0.0, 1);
    std::promise<ExecutionPtr> ready;
    ready.set_value(std::move(cached));
    return ready.get_future();
  }
  obs::flight_recorder().record(obs::FlightEventKind::kCache, "svc/execute",
                                0.0, 0);

  auto shared_options =
      std::make_shared<const exec::ExecutionOptions>(std::move(options));
  return pool_.submit([this, key, run_id, graph = std::move(graph),
                       topology = std::move(topology),
                       schedule = std::move(schedule),
                       shared_options]() -> ExecutionPtr {
    const obs::ScopedRunId run_scope(run_id);
    const sched::ScopedIntraThreads intra_scope(effective_intra_threads_);
    const auto start = std::chrono::steady_clock::now();
    try {
      auto report = std::make_shared<const exec::ExecutionReport>(
          exec::execute(*graph, *topology, *schedule, *shared_options));
      exec_latency_.observe(std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                                .count());
      exec_cache_.put(key, report);
      obs::flight_recorder().record(
          obs::FlightEventKind::kJob, "svc/execute", 0.0,
          report->events, report->achieved_makespan);
      return report;
    } catch (...) {
      failures_.increment();
      throw;  // delivered to the caller through the future
    }
  });
}

SchedulerService::ExecutionPtr SchedulerService::execute_now(
    const dag::TaskGraph& graph, const net::Topology& topology,
    const sched::Schedule& schedule, const exec::ExecutionOptions& options) {
  return execute(std::make_shared<const dag::TaskGraph>(graph),
                 std::make_shared<const net::Topology>(topology),
                 std::make_shared<const sched::Schedule>(schedule), options)
      .get();
}

SchedulerService::SchedulePtr SchedulerService::schedule_now(
    const dag::TaskGraph& graph, const net::Topology& topology,
    const std::string& algorithm) {
  return submit(std::make_shared<const dag::TaskGraph>(graph),
                std::make_shared<const net::Topology>(topology), algorithm)
      .get();
}

}  // namespace edgesched::svc
