#include "svc/scheduler_service.hpp"

#include <chrono>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/run_context.hpp"
#include "sched/engine.hpp"
#include "sched/registry.hpp"
#include "sched/validator.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace edgesched::svc {

SchedulerService::SchedulerService(ServiceConfig config)
    : config_(config),
      cache_(config.cache_capacity),
      exec_cache_(config.exec_cache_capacity),
      pool_(config.threads),
      requests_(metrics_.counter("svc_requests_total")),
      cache_hits_(metrics_.counter("svc_cache_hits_total")),
      cache_misses_(metrics_.counter("svc_cache_misses_total")),
      failures_(metrics_.counter("svc_failures_total")),
      latency_(metrics_.histogram("svc_schedule_seconds")),
      exec_requests_(metrics_.counter("svc_exec_requests_total")),
      exec_cache_hits_(metrics_.counter("svc_exec_cache_hits_total")),
      exec_cache_misses_(metrics_.counter("svc_exec_cache_misses_total")),
      exec_latency_(metrics_.histogram("svc_execute_seconds")) {}

SchedulerService::~SchedulerService() { shutdown(); }

std::unique_ptr<sched::Scheduler> SchedulerService::make_scheduler(
    std::string_view name) {
  return sched::make_scheduler(name);
}

std::future<SchedulerService::SchedulePtr> SchedulerService::submit(
    std::shared_ptr<const dag::TaskGraph> graph,
    std::shared_ptr<const net::Topology> topology,
    const std::string& algorithm) {
  // Resolve the algorithm up front: unknown names should fail loudly at
  // the call site, not asynchronously.
  return submit_scheduler(std::move(graph), std::move(topology),
                          make_scheduler(algorithm));
}

std::future<SchedulerService::SchedulePtr> SchedulerService::submit(
    std::shared_ptr<const dag::TaskGraph> graph,
    std::shared_ptr<const net::Topology> topology,
    const sched::AlgorithmSpec& spec) {
  // SpecScheduler's constructor validates the bundle, so an inconsistent
  // spec throws here rather than through the future.
  return submit_scheduler(std::move(graph), std::move(topology),
                          std::make_unique<sched::SpecScheduler>(spec));
}

std::future<SchedulerService::SchedulePtr> SchedulerService::submit_scheduler(
    std::shared_ptr<const dag::TaskGraph> graph,
    std::shared_ptr<const net::Topology> topology,
    std::unique_ptr<sched::Scheduler> scheduler) {
  throw_if(graph == nullptr, "SchedulerService::submit: null graph");
  throw_if(topology == nullptr, "SchedulerService::submit: null topology");
  requests_.increment();

  // Mint the run ID at submission time (not in the job body) so IDs are
  // allocated in submission order — deterministic however the pool
  // interleaves the work. A caller-installed run scope is reused.
  const std::uint64_t caller_run = obs::current_run_id();
  const std::uint64_t run_id =
      caller_run != obs::kNoRun ? caller_run : obs::mint_run_id();

  // Key on the scheduler's structural fingerprint, not its display name:
  // two bundles named alike but differing in any policy cache apart.
  const std::uint64_t key =
      request_fingerprint(*graph, *topology, scheduler->fingerprint());
  if (SchedulePtr cached = cache_.get(key)) {
    cache_hits_.increment();
    obs::flight_recorder().record(obs::FlightEventKind::kCache,
                                  "svc/schedule", 0.0, 1);
    std::promise<SchedulePtr> ready;
    ready.set_value(std::move(cached));
    return ready.get_future();
  }
  cache_misses_.increment();
  obs::flight_recorder().record(obs::FlightEventKind::kCache, "svc/schedule",
                                0.0, 0);

  // shared_ptr<Scheduler> because the lambda must be copyable for
  // std::function (see ThreadPool::submit).
  std::shared_ptr<sched::Scheduler> shared_scheduler = std::move(scheduler);
  return pool_.submit([this, key, run_id, graph = std::move(graph),
                       topology = std::move(topology),
                       shared_scheduler]() -> SchedulePtr {
    const obs::ScopedRunId run_scope(run_id);
    const auto start = std::chrono::steady_clock::now();
    try {
      auto schedule = std::make_shared<const sched::Schedule>(
          shared_scheduler->schedule(*graph, *topology));
      if (config_.validate) {
        sched::validate_or_throw(*graph, *topology, *schedule);
      }
      latency_.observe(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count());
      cache_.put(key, schedule);
      obs::flight_recorder().record(
          obs::FlightEventKind::kJob, "svc/schedule", 0.0,
          schedule->num_tasks(), schedule->makespan());
      return schedule;
    } catch (...) {
      failures_.increment();
      throw;  // delivered to the caller through the future
    }
  });
}

std::future<SchedulerService::ExecutionPtr> SchedulerService::execute(
    std::shared_ptr<const dag::TaskGraph> graph,
    std::shared_ptr<const net::Topology> topology, SchedulePtr schedule,
    exec::ExecutionOptions options) {
  throw_if(graph == nullptr, "SchedulerService::execute: null graph");
  throw_if(topology == nullptr, "SchedulerService::execute: null topology");
  throw_if(schedule == nullptr, "SchedulerService::execute: null schedule");
  // Fail loudly at the call site on malformed options.
  options.model.validate();
  options.faults.validate(*topology);
  exec_requests_.increment();

  // Execution is pure in (instance, schedule result, options): the model
  // and fault plan are seeded, so a replay memoises like a schedule.
  Fingerprint request;
  request.mix(schedule->fingerprint());
  request.mix(options.fingerprint());
  const std::uint64_t caller_run = obs::current_run_id();
  const std::uint64_t run_id =
      caller_run != obs::kNoRun ? caller_run : obs::mint_run_id();

  const std::uint64_t key =
      request_fingerprint(*graph, *topology, request.value());
  if (ExecutionPtr cached = exec_cache_.get(key)) {
    exec_cache_hits_.increment();
    obs::flight_recorder().record(obs::FlightEventKind::kCache, "svc/execute",
                                  0.0, 1);
    std::promise<ExecutionPtr> ready;
    ready.set_value(std::move(cached));
    return ready.get_future();
  }
  exec_cache_misses_.increment();
  obs::flight_recorder().record(obs::FlightEventKind::kCache, "svc/execute",
                                0.0, 0);

  auto shared_options =
      std::make_shared<const exec::ExecutionOptions>(std::move(options));
  return pool_.submit([this, key, run_id, graph = std::move(graph),
                       topology = std::move(topology),
                       schedule = std::move(schedule),
                       shared_options]() -> ExecutionPtr {
    const obs::ScopedRunId run_scope(run_id);
    const auto start = std::chrono::steady_clock::now();
    try {
      auto report = std::make_shared<const exec::ExecutionReport>(
          exec::execute(*graph, *topology, *schedule, *shared_options));
      exec_latency_.observe(std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                                .count());
      exec_cache_.put(key, report);
      obs::flight_recorder().record(
          obs::FlightEventKind::kJob, "svc/execute", 0.0,
          report->events, report->achieved_makespan);
      return report;
    } catch (...) {
      failures_.increment();
      throw;  // delivered to the caller through the future
    }
  });
}

SchedulerService::ExecutionPtr SchedulerService::execute_now(
    const dag::TaskGraph& graph, const net::Topology& topology,
    const sched::Schedule& schedule, const exec::ExecutionOptions& options) {
  return execute(std::make_shared<const dag::TaskGraph>(graph),
                 std::make_shared<const net::Topology>(topology),
                 std::make_shared<const sched::Schedule>(schedule), options)
      .get();
}

SchedulerService::SchedulePtr SchedulerService::schedule_now(
    const dag::TaskGraph& graph, const net::Topology& topology,
    const std::string& algorithm) {
  return submit(std::make_shared<const dag::TaskGraph>(graph),
                std::make_shared<const net::Topology>(topology), algorithm)
      .get();
}

}  // namespace edgesched::svc
