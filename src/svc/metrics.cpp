#include "svc/metrics.hpp"

#include <sstream>

namespace edgesched::svc {

void Histogram::observe(double seconds) noexcept {
  std::size_t bucket = kUpperBounds.size();  // +inf by default
  for (std::size_t i = 0; i < kUpperBounds.size(); ++i) {
    if (seconds <= kUpperBounds[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is C++20 but not universally lowered;
  // a CAS loop is portable and the histogram is not on a tight loop.
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + seconds,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::cumulative_le(std::size_t i) const noexcept {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= i && b < kNumBuckets; ++b) {
    total += bucket(b);
  }
  return total;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

std::string MetricsRegistry::text_dump() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, counter] : counters_) {
    os << "counter " << name << ' ' << counter->value() << '\n';
  }
  for (const auto& [name, histogram] : histograms_) {
    os << "histogram " << name << " count " << histogram->count() << " sum "
       << histogram->sum() << '\n';
    for (std::size_t i = 0; i < Histogram::kUpperBounds.size(); ++i) {
      os << "histogram " << name << " le " << Histogram::kUpperBounds[i]
         << ' ' << histogram->cumulative_le(i) << '\n';
    }
    os << "histogram " << name << " le +inf " << histogram->count() << '\n';
  }
  return os.str();
}

}  // namespace edgesched::svc
