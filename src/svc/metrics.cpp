#include "svc/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace edgesched::svc {

void Histogram::observe(double seconds) noexcept {
  // O(1) bucket lookup: for s in (2^(e-1), 2^e] the winning bound is
  // 2^e; frexp gives s = m * 2^e with m in [0.5, 1), so the bound
  // exponent is e unless s sits exactly on the lower power of two.
  std::size_t bucket;
  if (!(seconds > kUpperBounds.front())) {  // also catches <= 0 and NaN
    bucket = 0;
  } else if (seconds > kUpperBounds.back()) {
    bucket = kUpperBounds.size();  // +inf
  } else {
    int exponent = 0;
    const double mantissa = std::frexp(seconds, &exponent);
    if (mantissa == 0.5) {
      --exponent;  // exactly 2^(e-1): it belongs in the lower bucket
    }
    bucket = static_cast<std::size_t>(exponent - kMinExponent);
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is C++20 but not universally lowered;
  // a CAS loop is portable and the histogram is not on a tight loop.
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + seconds,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::cumulative_le(std::size_t i) const noexcept {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= i && b < kNumBuckets; ++b) {
    total += bucket(b);
  }
  return total;
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) {
    return 0.0;
  }
  if (q < 0.0) {
    q = 0.0;
  } else if (q > 1.0) {
    q = 1.0;
  }
  // Rank of the target observation, 1-based (q = 0 -> first, q = 1 ->
  // last), then a cumulative walk to the bucket holding it.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t in_bucket = bucket(i);
    if (in_bucket == 0) {
      continue;
    }
    if (cumulative + in_bucket >= rank) {
      if (i >= kUpperBounds.size()) {
        return kUpperBounds.back();  // +inf bucket clamps
      }
      const double upper = kUpperBounds[i];
      const double lower = i == 0 ? 0.0 : kUpperBounds[i - 1];
      // Observations spread uniformly inside the bucket for estimation.
      const double position = static_cast<double>(rank - cumulative) /
                              static_cast<double>(in_bucket);
      return lower + (upper - lower) * position;
    }
    cumulative += in_bucket;
  }
  return kUpperBounds.back();
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

std::string MetricsRegistry::text_dump() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  // One merged pass over both (already name-sorted) maps, so the dump is
  // a single sorted-by-name sequence whatever order metrics were created
  // in or which kind they are.
  auto counter_it = counters_.begin();
  auto histogram_it = histograms_.begin();
  const auto emit_counter = [&os](const auto& entry) {
    os << "counter " << entry.first << ' ' << entry.second->value() << '\n';
  };
  const auto emit_histogram = [&os](const auto& entry) {
    const auto& [name, histogram] = entry;
    os << "histogram " << name << " count " << histogram->count() << " sum "
       << histogram->sum() << '\n';
    for (std::size_t i = 0; i < Histogram::kUpperBounds.size(); ++i) {
      os << "histogram " << name << " le " << Histogram::kUpperBounds[i]
         << ' ' << histogram->cumulative_le(i) << '\n';
    }
    os << "histogram " << name << " le +inf " << histogram->count() << '\n';
    os << "histogram " << name << " p50 " << histogram->quantile(0.50)
       << '\n';
    os << "histogram " << name << " p95 " << histogram->quantile(0.95)
       << '\n';
    os << "histogram " << name << " p99 " << histogram->quantile(0.99)
       << '\n';
  };
  while (counter_it != counters_.end() ||
         histogram_it != histograms_.end()) {
    const bool take_counter =
        histogram_it == histograms_.end() ||
        (counter_it != counters_.end() &&
         counter_it->first <= histogram_it->first);
    if (take_counter) {
      emit_counter(*counter_it++);
    } else {
      emit_histogram(*histogram_it++);
    }
  }
  return os.str();
}

std::map<std::string, std::uint64_t> MetricsRegistry::counter_values()
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> values;
  for (const auto& [name, counter] : counters_) {
    values[name] = counter->value();
  }
  return values;
}

std::map<std::string, MetricsRegistry::HistogramSummary>
MetricsRegistry::histogram_values() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, HistogramSummary> values;
  for (const auto& [name, histogram] : histograms_) {
    values[name] = HistogramSummary{histogram->count(), histogram->sum()};
  }
  return values;
}

std::map<std::string, MetricsRegistry::HistogramData>
MetricsRegistry::histogram_data() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, HistogramData> values;
  for (const auto& [name, histogram] : histograms_) {
    HistogramData data;
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      data.buckets[i] = histogram->bucket(i);
    }
    data.count = histogram->count();
    data.sum = histogram->sum();
    values.emplace(name, data);
  }
  return values;
}

void MetricsRegistry::reset_for_test() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    counter->reset();
  }
  for (const auto& [name, histogram] : histograms_) {
    histogram->reset();
  }
}

}  // namespace edgesched::svc
