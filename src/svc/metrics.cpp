#include "svc/metrics.hpp"

#include <sstream>

namespace edgesched::svc {

void Histogram::observe(double seconds) noexcept {
  std::size_t bucket = kUpperBounds.size();  // +inf by default
  for (std::size_t i = 0; i < kUpperBounds.size(); ++i) {
    if (seconds <= kUpperBounds[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is C++20 but not universally lowered;
  // a CAS loop is portable and the histogram is not on a tight loop.
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + seconds,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::cumulative_le(std::size_t i) const noexcept {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= i && b < kNumBuckets; ++b) {
    total += bucket(b);
  }
  return total;
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

std::string MetricsRegistry::text_dump() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  // One merged pass over both (already name-sorted) maps, so the dump is
  // a single sorted-by-name sequence whatever order metrics were created
  // in or which kind they are.
  auto counter_it = counters_.begin();
  auto histogram_it = histograms_.begin();
  const auto emit_counter = [&os](const auto& entry) {
    os << "counter " << entry.first << ' ' << entry.second->value() << '\n';
  };
  const auto emit_histogram = [&os](const auto& entry) {
    const auto& [name, histogram] = entry;
    os << "histogram " << name << " count " << histogram->count() << " sum "
       << histogram->sum() << '\n';
    for (std::size_t i = 0; i < Histogram::kUpperBounds.size(); ++i) {
      os << "histogram " << name << " le " << Histogram::kUpperBounds[i]
         << ' ' << histogram->cumulative_le(i) << '\n';
    }
    os << "histogram " << name << " le +inf " << histogram->count() << '\n';
  };
  while (counter_it != counters_.end() ||
         histogram_it != histograms_.end()) {
    const bool take_counter =
        histogram_it == histograms_.end() ||
        (counter_it != counters_.end() &&
         counter_it->first <= histogram_it->first);
    if (take_counter) {
      emit_counter(*counter_it++);
    } else {
      emit_histogram(*histogram_it++);
    }
  }
  return os.str();
}

std::map<std::string, std::uint64_t> MetricsRegistry::counter_values()
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> values;
  for (const auto& [name, counter] : counters_) {
    values[name] = counter->value();
  }
  return values;
}

std::map<std::string, MetricsRegistry::HistogramSummary>
MetricsRegistry::histogram_values() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, HistogramSummary> values;
  for (const auto& [name, histogram] : histograms_) {
    values[name] = HistogramSummary{histogram->count(), histogram->sum()};
  }
  return values;
}

void MetricsRegistry::reset_for_test() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    counter->reset();
  }
  for (const auto& [name, histogram] : histograms_) {
    histogram->reset();
  }
}

}  // namespace edgesched::svc
