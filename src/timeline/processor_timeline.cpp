#include "timeline/processor_timeline.hpp"

#include <algorithm>
#include <limits>

#include "timeline/tolerance.hpp"

namespace edgesched::timeline {

double ProcessorTimeline::earliest_start(double ready_time,
                                         double duration) const {
  EDGESCHED_ASSERT_MSG(duration >= 0.0, "task duration must be >= 0");
  double gap_start = 0.0;
  for (std::size_t i = 0; i <= slots_.size(); ++i) {
    const double gap_end = (i < slots_.size())
                               ? slots_[i].start
                               : std::numeric_limits<double>::infinity();
    const double start = std::max(gap_start, ready_time);
    if (start + duration <= gap_end + time_eps(gap_end)) {
      return start;
    }
    if (i < slots_.size()) {
      gap_start = slots_[i].finish;
    }
  }
  EDGESCHED_ASSERT_MSG(false, "unreachable: open tail always admits task");
  return 0.0;
}

void ProcessorTimeline::commit(dag::TaskId task, double start,
                               double duration) {
  const double finish = start + duration;
  // Order by (start, finish): zero-length slots sharing a start (dummy
  // entry/exit tasks, recovery re-staging stubs) sort before a longer
  // slot beginning at the same instant, so each side passes its
  // neighbour check instead of tripping the other's.
  const auto insert_at = std::upper_bound(
      slots_.begin(), slots_.end(), std::make_pair(start, finish),
      [](const std::pair<double, double>& value, const TaskSlot& slot) {
        if (value.first != slot.start) {
          return value.first < slot.start;
        }
        return value.second < slot.finish;
      });
  // Placement must not overlap its neighbours.
  if (insert_at != slots_.begin()) {
    EDGESCHED_ASSERT_MSG(
        std::prev(insert_at)->finish <= start + time_eps(start),
                         "task overlaps its predecessor on the processor");
  }
  if (insert_at != slots_.end()) {
    EDGESCHED_ASSERT_MSG(finish <= insert_at->start + time_eps(finish),
                         "task overlaps its successor on the processor");
  }
  slots_.insert(insert_at, TaskSlot{start, finish, task});
}

double ProcessorTimeline::busy_time() const noexcept {
  double busy = 0.0;
  for (const TaskSlot& slot : slots_) {
    busy += slot.finish - slot.start;
  }
  return busy;
}

}  // namespace edgesched::timeline
