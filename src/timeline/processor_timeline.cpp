#include "timeline/processor_timeline.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "timeline/tolerance.hpp"

namespace edgesched::timeline {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

ProcessorTimeline::ProcessorTimeline() {
  gaps_.insert_at(0, 0.0, kInf);  // idle machine: one open gap
}

double ProcessorTimeline::earliest_start_linear(double ready_time,
                                                double duration) const {
  EDGESCHED_ASSERT_MSG(duration >= 0.0, "task duration must be >= 0");
  double gap_start = 0.0;
  for (std::size_t i = 0; i <= slots_.size(); ++i) {
    const double gap_end = (i < slots_.size())
                               ? slots_[i].start
                               : std::numeric_limits<double>::infinity();
    const double start = std::max(gap_start, ready_time);
    if (start + duration <= gap_end + time_eps(gap_end)) {
      return start;
    }
    if (i < slots_.size()) {
      gap_start = slots_[i].finish;
    }
  }
  EDGESCHED_ASSERT_MSG(false, "unreachable: open tail always admits task");
  return 0.0;
}

double ProcessorTimeline::earliest_start(double ready_time,
                                         double duration) const {
  if (slots_.size() < kIndexedScanThreshold) {
    return earliest_start_linear(ready_time, duration);
  }
  EDGESCHED_ASSERT_MSG(duration >= 0.0, "task duration must be >= 0");
  // Gaps ending before min_finish - 2 eps cannot admit the task: their
  // admission cap tops out below the earliest possible finish. Binary
  // search past them (same skip bound LinkTimeline::first_candidate_gap
  // uses), then let the index resume the scan in gap order.
  const double min_finish = ready_time + duration;
  const double threshold = min_finish - 2.0 * time_eps(min_finish);
  const auto first = std::lower_bound(
      slots_.begin(), slots_.end(), threshold,
      [](const TaskSlot& slot, double value) { return slot.start < value; });
  const auto from_pos = static_cast<std::size_t>(first - slots_.begin());
  double start = 0.0;
  const bool found =
      gaps_.find_first_fit(from_pos, ready_time, duration, start);
  EDGESCHED_ASSERT_MSG(found, "unreachable: open tail always admits task");
  return start;
}

void ProcessorTimeline::commit(dag::TaskId task, double start,
                               double duration) {
  const double finish = start + duration;
  // Order by (start, finish): zero-length slots sharing a start (dummy
  // entry/exit tasks, recovery re-staging stubs) sort before a longer
  // slot beginning at the same instant, so each side passes its
  // neighbour check instead of tripping the other's.
  const auto insert_at = std::upper_bound(
      slots_.begin(), slots_.end(), std::make_pair(start, finish),
      [](const std::pair<double, double>& value, const TaskSlot& slot) {
        if (value.first != slot.start) {
          return value.first < slot.start;
        }
        return value.second < slot.finish;
      });
  // Placement must not overlap its neighbours.
  if (insert_at != slots_.begin()) {
    EDGESCHED_ASSERT_MSG(
        std::prev(insert_at)->finish <= start + time_eps(start),
                         "task overlaps its predecessor on the processor");
  }
  if (insert_at != slots_.end()) {
    EDGESCHED_ASSERT_MSG(finish <= insert_at->start + time_eps(finish),
                         "task overlaps its successor on the processor");
  }
  // The slot lands in gap #at; the index replaces that gap with the
  // left and right remainders (possibly empty or eps-inverted — exactly
  // the gaps a linear rescan of the updated slots would derive).
  const auto at = static_cast<std::size_t>(insert_at - slots_.begin());
  const double gap_start = at == 0 ? 0.0 : slots_[at - 1].finish;
  const double gap_end = at == slots_.size() ? kInf : slots_[at].start;
  gaps_.split_at(at, gap_start, start, finish, gap_end);
  slots_.insert(insert_at, TaskSlot{start, finish, task});
}

void ProcessorTimeline::reserve(std::size_t num_slots) {
  slots_.reserve(num_slots);
  gaps_.reserve(num_slots + 1);
}

double ProcessorTimeline::busy_time() const noexcept {
  double busy = 0.0;
  for (const TaskSlot& slot : slots_) {
    busy += slot.finish - slot.start;
  }
  return busy;
}

void ProcessorTimeline::check_invariants() const {
  std::vector<std::pair<double, double>> indexed;
  gaps_.collect(indexed);
  EDGESCHED_ASSERT_MSG(indexed.size() == slots_.size() + 1,
                       "gap index count diverged from slots");
  double gap_start = 0.0;
  for (std::size_t i = 0; i <= slots_.size(); ++i) {
    const double gap_end = (i < slots_.size()) ? slots_[i].start : kInf;
    EDGESCHED_ASSERT_MSG(indexed[i].first == gap_start &&
                             indexed[i].second == gap_end + time_eps(gap_end),
                         "gap index entry diverged from slots");
    if (i < slots_.size()) {
      gap_start = slots_[i].finish;
    }
  }
}

}  // namespace edgesched::timeline
