// Bandwidth-sharing link timeline — the schedulable state of one
// contention domain under BBSA (§5).
//
// Where the exclusive `LinkTimeline` books whole intervals, this timeline
// tracks the *remaining* transfer rate over time as a piecewise-constant
// function starting at the full link speed. An idle interval is just a
// stretch with 100 % remaining rate (the paper treats both uniformly).
// Edges claim rate profiles; overlapping transfers share the link, and the
// paper's formulas (4)/(5) are realised by the fluid `forward` sweep:
// outflow on this link can exceed neither its remaining capacity nor the
// cumulative inflow from the previous link.
#pragma once

#include <cstdint>
#include <vector>

#include "timeline/rate_profile.hpp"
#include "util/error.hpp"

namespace edgesched::timeline {

class BandwidthTimeline {
 public:
  /// `capacity` is the link's transfer speed s(L) > 0.
  explicit BandwidthTimeline(double capacity);

  [[nodiscard]] double capacity() const noexcept { return capacity_; }

  /// Remaining rate at time t.
  [[nodiscard]] double remaining_at(double t) const;

  /// Source-side transfer: all `volume` is available at `ready_time`; the
  /// edge greedily uses every drop of remaining bandwidth from then on.
  /// Returns the transfer profile; does not commit.
  [[nodiscard]] RateProfile transfer_from(double ready_time,
                                          double volume) const;

  /// Forwarding transfer: moves `inflow.volume()` across this link subject
  /// to cum_out(t) <= cum_in(t) (data must have arrived on the previous
  /// link) and rate_out(t) <= remaining(t). Greedy, hence earliest-finish.
  /// Returns the transfer profile; does not commit.
  [[nodiscard]] RateProfile forward(const RateProfile& inflow) const;

  /// Books a probed profile: subtracts it from the remaining rate.
  /// The profile must respect the current remaining capacity.
  void consume(const RateProfile& profile);

  /// First time >= t with positive remaining rate.
  [[nodiscard]] double first_available(double t) const;

  /// Earliest time by which `volume` could finish if sent from `t` using
  /// all remaining bandwidth — the routing probe for BBSA.
  [[nodiscard]] double earliest_finish(double t, double volume) const;

  /// Routing probes answered (`earliest_finish` calls). Plain tally — a
  /// timeline is owned by one single-threaded scheduling state, which
  /// batches the sum into the global counter on destruction.
  [[nodiscard]] std::uint64_t probe_count() const noexcept {
    return probe_count_;
  }

  /// Piecewise representation, for tests: (start, remaining) pairs; each
  /// entry holds until the next entry's start, the last one forever.
  [[nodiscard]] const std::vector<std::pair<double, double>>& breakpoints()
      const noexcept {
    return breakpoints_;
  }

  /// Verifies representation invariants.
  void check_invariants() const;

 private:
  /// Ensures a breakpoint exists exactly at time t; returns its index.
  std::size_t split_at(double t);
  /// Index of the breakpoint segment containing time t.
  [[nodiscard]] std::size_t segment_index(double t) const;

  double capacity_;
  /// Sorted (start, remaining) pairs covering [0, inf); starts strictly
  /// increase and the first entry is at t = 0.
  std::vector<std::pair<double, double>> breakpoints_;
  mutable std::uint64_t probe_count_ = 0;
};

}  // namespace edgesched::timeline
