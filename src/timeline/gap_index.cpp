#include "timeline/gap_index.hpp"

#include <cmath>
#include <limits>

#include "timeline/tolerance.hpp"
#include "util/error.hpp"

namespace edgesched::timeline {

namespace {

/// splitmix64 — deterministic priority stream for the treap. Sequential
/// counters hash to well-scattered 64-bit values, giving the expected
/// O(log n) shape without any run-to-run nondeterminism.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Upper bound on any duration the gap can admit under the tolerant
/// test `max(gap_start, ready) + duration <= cap`: admission implies
/// duration <= cap - gap_start up to rounding, and one `time_eps` of
/// slack (1e-9 relative) exceeds that rounding by ~7 orders of
/// magnitude. Over-estimation only costs a rejected exact test at the
/// node; under-estimation is impossible, so pruning stays sound.
double admit_bound(double gap_start, double cap) {
  if (std::isinf(cap)) {
    return cap;
  }
  return (cap - gap_start) + time_eps(cap);
}

}  // namespace

void GapIndex::clear() {
  nodes_.clear();
  root_ = -1;
  free_head_ = -1;
  counter_ = 0;
}

std::int32_t GapIndex::alloc_node(double gap_start, double gap_end) {
  std::int32_t n;
  if (free_head_ >= 0) {
    n = free_head_;
    free_head_ = nodes_[static_cast<std::size_t>(n)].left;
  } else {
    n = static_cast<std::int32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  Node& node = nodes_[static_cast<std::size_t>(n)];
  node.gap_start = gap_start;
  // Same floating-point expression the linear scan evaluates per gap;
  // precomputing it preserves bit-identical admission decisions.
  node.cap = gap_end + time_eps(gap_end);
  node.score = admit_bound(gap_start, node.cap);
  node.best = node.score;
  node.prio = mix(counter_++);
  node.size = 1;
  node.left = -1;
  node.right = -1;
  return n;
}

void GapIndex::free_node(std::int32_t n) {
  nodes_[static_cast<std::size_t>(n)].left = free_head_;
  free_head_ = n;
}

void GapIndex::pull(std::int32_t t) {
  Node& node = nodes_[static_cast<std::size_t>(t)];
  node.size = 1;
  node.best = node.score;
  if (node.left >= 0) {
    const Node& l = nodes_[static_cast<std::size_t>(node.left)];
    node.size += l.size;
    if (l.best > node.best) {
      node.best = l.best;
    }
  }
  if (node.right >= 0) {
    const Node& r = nodes_[static_cast<std::size_t>(node.right)];
    node.size += r.size;
    if (r.best > node.best) {
      node.best = r.best;
    }
  }
}

void GapIndex::split(std::int32_t t, std::size_t count, std::int32_t& a,
                     std::int32_t& b) {
  if (t < 0) {
    a = -1;
    b = -1;
    return;
  }
  Node& node = nodes_[static_cast<std::size_t>(t)];
  const std::size_t left_size =
      node.left >= 0 ? nodes_[static_cast<std::size_t>(node.left)].size : 0;
  if (count <= left_size) {
    split(node.left, count, a, node.left);
    b = t;
  } else {
    split(node.right, count - left_size - 1, node.right, b);
    a = t;
  }
  pull(t);
}

std::int32_t GapIndex::merge(std::int32_t a, std::int32_t b) {
  if (a < 0) {
    return b;
  }
  if (b < 0) {
    return a;
  }
  Node& na = nodes_[static_cast<std::size_t>(a)];
  Node& nb = nodes_[static_cast<std::size_t>(b)];
  if (na.prio < nb.prio) {
    na.right = merge(na.right, b);
    pull(a);
    return a;
  }
  nb.left = merge(a, nb.left);
  pull(b);
  return b;
}

void GapIndex::insert_at(std::size_t pos, double gap_start, double gap_end) {
  EDGESCHED_ASSERT_MSG(pos <= size(), "gap insert position out of range");
  const std::int32_t n = alloc_node(gap_start, gap_end);
  std::int32_t a = -1;
  std::int32_t b = -1;
  split(root_, pos, a, b);
  root_ = merge(merge(a, n), b);
}

void GapIndex::erase_at(std::size_t pos) {
  EDGESCHED_ASSERT_MSG(pos < size(), "gap erase position out of range");
  std::int32_t a = -1;
  std::int32_t b = -1;
  std::int32_t c = -1;
  split(root_, pos, a, b);
  split(b, 1, b, c);
  free_node(b);
  root_ = merge(a, c);
}

void GapIndex::split_at(std::size_t pos, double gap_start, double slot_start,
                        double slot_finish, double gap_end) {
  erase_at(pos);
  insert_at(pos, gap_start, slot_start);
  insert_at(pos + 1, slot_finish, gap_end);
}

bool GapIndex::find_rec(std::int32_t t, std::size_t skip, double ready_time,
                        double duration, double& out_start) const {
  if (t < 0) {
    return false;
  }
  const Node& node = nodes_[static_cast<std::size_t>(t)];
  // `best` bounds every gap in the subtree, skipped or not, so the
  // prune is sound regardless of the remaining skip count.
  if (node.best < duration) {
    return false;
  }
  const std::size_t left_size =
      node.left >= 0 ? nodes_[static_cast<std::size_t>(node.left)].size : 0;
  if (skip < left_size &&
      find_rec(node.left, skip, ready_time, duration, out_start)) {
    return true;
  }
  if (skip <= left_size && node.score >= duration) {
    // Exact admission test — bit-for-bit the linear scan's predicate.
    const double start = std::max(node.gap_start, ready_time);
    if (start + duration <= node.cap) {
      out_start = start;
      return true;
    }
  }
  const std::size_t consumed = left_size + 1;
  return find_rec(node.right, skip > consumed ? skip - consumed : 0,
                  ready_time, duration, out_start);
}

bool GapIndex::find_first_fit(std::size_t from_pos, double ready_time,
                              double duration, double& out_start) const {
  return find_rec(root_, from_pos, ready_time, duration, out_start);
}

void GapIndex::collect_rec(std::int32_t t,
                           std::vector<std::pair<double, double>>& out) const {
  if (t < 0) {
    return;
  }
  const Node& node = nodes_[static_cast<std::size_t>(t)];
  collect_rec(node.left, out);
  out.emplace_back(node.gap_start, node.cap);
  collect_rec(node.right, out);
}

void GapIndex::collect(std::vector<std::pair<double, double>>& out) const {
  out.clear();
  collect_rec(root_, out);
}

}  // namespace edgesched::timeline
