#include "timeline/optimal_insertion.hpp"

#include <algorithm>
#include <limits>

#include "timeline/tolerance.hpp"

namespace edgesched::timeline {

OptimalPlacement probe_optimal(const LinkTimeline& timeline, double t_es_in,
                               double t_f_min, double duration,
                               const DeferralFn& deferral) {
  EDGESCHED_ASSERT_MSG(duration > 0.0, "edge duration must be positive");
  timeline.count_optimal_probe();
  const std::vector<TimeSlot>& slots = timeline.slots();
  const std::size_t count = slots.size();

  // Fallback: append after the last slot — always feasible. Start is
  // computed first so earliest_start <= start holds exactly.
  OptimalPlacement best;
  {
    const double earliest = std::max(timeline.last_finish(), t_es_in);
    const double start = std::max(earliest, t_f_min - duration);
    best.placement = Placement{earliest, start, start + duration, count};
  }

  // Tail-to-head scan (formula (2)): accum is the largest accumulated
  // deferral available at the current slot; overwriting `best` on every
  // feasible position leaves the head-most — and therefore earliest —
  // one (Theorem 1).
  double accum = 0.0;
  for (std::size_t i = count; i-- > 0;) {
    const TimeSlot& slot = slots[i];
    const double dt = std::max(0.0, deferral(slot));
    if (i + 1 == count) {
      accum = dt;
    } else {
      accum = std::min(dt, accum + (slots[i + 1].start - slot.finish));
    }
    const double gap_start = (i == 0) ? 0.0 : slots[i - 1].finish;
    const double earliest = std::max(gap_start, t_es_in);
    const double start = std::max(earliest, t_f_min - duration);
    const double finish = start + duration;
    if (finish <= slot.start + accum + time_eps(finish)) {
      best.placement = Placement{earliest, start, finish, i};
    }
  }

  // Cascade of displaced slots behind the chosen position.
  best.shifts.clear();
  double frontier = best.placement.finish;
  for (std::size_t j = best.placement.position; j < count; ++j) {
    const TimeSlot& slot = slots[j];
    if (slot.start + time_eps(slot.start) >= frontier) {
      break;
    }
    const double delta = frontier - slot.start;
    EDGESCHED_ASSERT_MSG(
        delta <= std::max(0.0, deferral(slot)) + time_eps(frontier),
        "cascade exceeded a slot's deferral slack");
    best.shifts.push_back(SlotShift{j, slot.edge,
                                    slot.earliest_start + delta,
                                    slot.start + delta,
                                    slot.finish + delta});
    frontier = slot.finish + delta;
  }
  return best;
}

void commit_optimal(LinkTimeline& timeline, const OptimalPlacement& result,
                    dag::EdgeId edge) {
  for (const SlotShift& shift : result.shifts) {
    timeline.shift_slot(shift.position, shift.new_earliest_start,
                        shift.new_start, shift.new_finish);
  }
  timeline.commit(result.placement, edge);
}

}  // namespace edgesched::timeline
