#include "timeline/optimal_insertion.hpp"

#include <algorithm>
#include <limits>

#include "timeline/tolerance.hpp"

namespace edgesched::timeline {

namespace {

void probe_impl(const LinkTimeline& timeline, double t_es_in,
                double t_f_min, double duration,
                const DeferralFn& deferral, bool early_exit,
                OptimalPlacement& best) {
  EDGESCHED_ASSERT_MSG(duration > 0.0, "edge duration must be positive");
  timeline.count_optimal_probe();
  const std::vector<TimeSlot>& slots = timeline.slots();
  const std::size_t count = slots.size();

  // Fallback: append after the last slot — always feasible. Start is
  // computed first so earliest_start <= start holds exactly.
  {
    const double earliest = std::max(timeline.last_finish(), t_es_in);
    const double start = std::max(earliest, t_f_min - duration);
    best.placement = Placement{earliest, start, start + duration, count};
  }
  best.shifts.clear();

  // No feasible finish anywhere can precede this bound (it is the finish
  // of the head-most conceivable gap). The slack-exhaustion early exit
  // compares effective deadlines against it.
  const double min_finish =
      std::max(t_es_in, t_f_min - duration) + duration;

  // Tail-to-head scan (formula (2)): accum is the largest accumulated
  // deferral available at the current slot; overwriting `best` on every
  // feasible position leaves the head-most — and therefore earliest —
  // one (Theorem 1).
  double accum = 0.0;
  std::uint64_t steps = 0;
  for (std::size_t i = count; i-- > 0;) {
    const TimeSlot& slot = slots[i];
    if (early_exit && i + 1 < count) {
      // Slack exhaustion: even with unbounded own slack, this slot's
      // effective deadline cannot exceed the tail's accumulated slack
      // plus the gap just crossed. Deadlines only shrink head-wards
      // (slot.start + accum is non-increasing as i decreases), so once
      // the bound drops below the minimum feasible finish no head-ward
      // position can admit the edge; the append fallback or a feasible
      // position already found stands.
      const double deadline_bound =
          slot.start + accum + (slots[i + 1].start - slot.finish);
      if (deadline_bound + 2.0 * time_eps(min_finish) < min_finish) {
        break;
      }
    }
    ++steps;
    const double dt = std::max(0.0, deferral(slot));
    if (i + 1 == count) {
      accum = dt;
    } else {
      accum = std::min(dt, accum + (slots[i + 1].start - slot.finish));
    }
    const double gap_start = (i == 0) ? 0.0 : slots[i - 1].finish;
    const double earliest = std::max(gap_start, t_es_in);
    const double start = std::max(earliest, t_f_min - duration);
    const double finish = start + duration;
    if (finish <= slot.start + accum + time_eps(finish)) {
      best.placement = Placement{earliest, start, finish, i};
    }
  }
  timeline.count_optimal_scan_steps(steps);

  // Cascade of displaced slots behind the chosen position.
  double frontier = best.placement.finish;
  for (std::size_t j = best.placement.position; j < count; ++j) {
    const TimeSlot& slot = slots[j];
    if (slot.start + time_eps(slot.start) >= frontier) {
      break;
    }
    const double delta = frontier - slot.start;
    EDGESCHED_ASSERT_MSG(
        delta <= std::max(0.0, deferral(slot)) + time_eps(frontier),
        "cascade exceeded a slot's deferral slack");
    best.shifts.push_back(SlotShift{j, slot.edge,
                                    slot.earliest_start + delta,
                                    slot.start + delta,
                                    slot.finish + delta});
    frontier = slot.finish + delta;
  }
}

}  // namespace

OptimalPlacement probe_optimal(const LinkTimeline& timeline, double t_es_in,
                               double t_f_min, double duration,
                               const DeferralFn& deferral) {
  OptimalPlacement best;
  probe_impl(timeline, t_es_in, t_f_min, duration, deferral,
             /*early_exit=*/true, best);
  return best;
}

void probe_optimal_into(const LinkTimeline& timeline, double t_es_in,
                        double t_f_min, double duration,
                        const DeferralFn& deferral, OptimalPlacement& out) {
  probe_impl(timeline, t_es_in, t_f_min, duration, deferral,
             /*early_exit=*/true, out);
}

OptimalPlacement probe_optimal_linear(const LinkTimeline& timeline,
                                      double t_es_in, double t_f_min,
                                      double duration,
                                      const DeferralFn& deferral) {
  OptimalPlacement best;
  probe_impl(timeline, t_es_in, t_f_min, duration, deferral,
             /*early_exit=*/false, best);
  return best;
}

void commit_optimal(LinkTimeline& timeline, const OptimalPlacement& result,
                    dag::EdgeId edge) {
  for (const SlotShift& shift : result.shifts) {
    timeline.shift_slot(shift.position, shift.new_earliest_start,
                        shift.new_start, shift.new_finish);
  }
  timeline.commit(result.placement, edge);
}

}  // namespace edgesched::timeline
