#include "timeline/bandwidth_timeline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace edgesched::timeline {

namespace {
constexpr double kEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();

/// First breakpoint strictly after t in a sorted vector; kInf if none.
/// Exact comparison: progress may be infinitesimal near a breakpoint, but
/// each breakpoint is crossed at most once, so the sweep stays linear.
double next_after(const std::vector<double>& points, double t) {
  const auto it = std::upper_bound(points.begin(), points.end(), t);
  return it == points.end() ? kInf : *it;
}

}  // namespace

BandwidthTimeline::BandwidthTimeline(double capacity) : capacity_(capacity) {
  throw_if(capacity <= 0.0,
           "BandwidthTimeline: capacity must be positive");
  breakpoints_.emplace_back(0.0, capacity);
}

std::size_t BandwidthTimeline::segment_index(double t) const {
  EDGESCHED_ASSERT(t >= -kEps);
  // Last breakpoint with start <= t.
  const auto it = std::upper_bound(
      breakpoints_.begin(), breakpoints_.end(), t,
      [](double value, const std::pair<double, double>& bp) {
        return value < bp.first;
      });
  EDGESCHED_ASSERT(it != breakpoints_.begin());
  return static_cast<std::size_t>(it - breakpoints_.begin()) - 1;
}

std::size_t BandwidthTimeline::split_at(double t) {
  const std::size_t idx = segment_index(t);
  if (std::abs(breakpoints_[idx].first - t) <= kEps) {
    return idx;
  }
  breakpoints_.insert(
      breakpoints_.begin() + static_cast<std::ptrdiff_t>(idx) + 1,
      {t, breakpoints_[idx].second});
  return idx + 1;
}

double BandwidthTimeline::remaining_at(double t) const {
  return breakpoints_[segment_index(t)].second;
}

RateProfile BandwidthTimeline::transfer_from(double ready_time,
                                             double volume) const {
  EDGESCHED_ASSERT_MSG(volume > 0.0, "transfer volume must be positive");
  RateProfile out;
  double t = std::max(ready_time, 0.0);
  double sent = 0.0;
  // Completion is volume-relative: at large schedule times an absolute
  // residual below one ulp of t can never be transferred.
  const double vol_eps = kEps * std::max(1.0, volume);
  std::size_t i = segment_index(t);
  while (sent < volume - vol_eps) {
    const double seg_end =
        (i + 1 < breakpoints_.size()) ? breakpoints_[i + 1].first : kInf;
    const double rate = breakpoints_[i].second;
    if (rate > kEps) {
      const double t_done = t + (volume - sent) / rate;
      if (t_done <= t) {
        break;  // residual below the representable time grid
      }
      const double t_end = std::min(seg_end, t_done);
      // Sub-epsilon slivers (boundary float noise) would violate the
      // profile's segment invariants; their volume still counts so the
      // sweep's fluid accounting stays exact (the profile drifts by at
      // most rate·eps per boundary, far below the validator tolerance).
      if (t_end - t > kEps) {
        out.append(t, t_end, rate);
      }
      sent += rate * (t_end - t);
      t = t_end;
      if (t_done <= seg_end) {
        break;
      }
    } else {
      EDGESCHED_ASSERT_MSG(seg_end < kInf,
                           "tail of a bandwidth timeline must have capacity");
      t = seg_end;
    }
    ++i;
  }
  return out;
}

RateProfile BandwidthTimeline::forward(const RateProfile& inflow) const {
  const double volume = inflow.volume();
  EDGESCHED_ASSERT_MSG(volume > kEps, "forward: empty inflow");
  const std::vector<double> in_points = inflow.breakpoints();
  std::vector<double> bw_points;
  bw_points.reserve(breakpoints_.size());
  for (const auto& bp : breakpoints_) {
    bw_points.push_back(bp.first);
  }

  RateProfile out;
  double t = inflow.start_time();
  double sent = 0.0;
  double arrived = 0.0;
  // Completion and backlog tests are volume-relative: a residual backlog
  // of ~1e-9 at t ~ 1e6 implies a drain step below one ulp of t, which
  // cannot advance the sweep — such residuals are float noise, not data.
  const double vol_eps = kEps * std::max(1.0, volume);
  // Every iteration either transfers volume or advances to the next
  // breakpoint, so the sweep is linear in the breakpoint count; the guard
  // is purely defensive.
  std::size_t guard =
      8 * (in_points.size() + bw_points.size()) + 64;
  while (sent < volume - vol_eps) {
    EDGESCHED_ASSERT_MSG(guard-- > 0, "forward sweep failed to converge");
    const double t_next =
        std::min(next_after(in_points, t), next_after(bw_points, t));
    // Rates are constant on (t, t_next); probing the midpoint keeps the
    // rate lookups consistent with the breakpoint lookup even when t sits
    // a floating-point hair away from a boundary.
    const double probe_t = (t_next < kInf) ? 0.5 * (t + t_next) : t + 1.0;
    const double r_in = inflow.rate_at(probe_t);
    const double r_cap = remaining_at(probe_t);
    const double backlog = arrived - sent;
    if (backlog > vol_eps && r_cap > kEps) {
      if (t + backlog / r_cap <= t) {
        // The whole backlog drains in less than one ulp of t: it is float
        // noise below the representable time grid. Absorb it; if all data
        // has arrived the transfer is complete.
        if (arrived >= volume - vol_eps) {
          break;
        }
        sent = arrived;
        continue;
      }
      double t_end = t_next;
      if (r_cap > r_in + kEps) {
        // Backlog drains; splitting at the drain point keeps the output
        // rate exact within each stretch.
        t_end = std::min(t_end, t + backlog / (r_cap - r_in));
      }
      const double t_done = t + (volume - sent) / r_cap;
      t_end = std::min(t_end, t_done);
      if (t_end - t > kEps) {
        out.append(t, t_end, r_cap);
      }
      sent += r_cap * (t_end - t);
      arrived += r_in * (t_end - t);
      t = t_end;
    } else if (backlog > vol_eps) {
      // Backlog but no capacity: wait for the next event.
      EDGESCHED_ASSERT_MSG(t_next < kInf,
                           "no capacity and no further events");
      arrived += r_in * (t_next - t);
      t = t_next;
    } else {
      const double rate = std::min(r_cap, r_in);
      if (rate > kEps) {
        const double t_done = t + (volume - sent) / rate;
        if (t_done <= t) {
          break;  // residual below the representable time grid
        }
        const double t_end = std::min(t_next, t_done);
        if (t_end - t > kEps) {
          out.append(t, t_end, rate);
        }
        sent += rate * (t_end - t);
        arrived += r_in * (t_end - t);
        t = t_end;
      } else {
        EDGESCHED_ASSERT_MSG(t_next < kInf,
                             "forward stalled with no further events");
        arrived += r_in * (t_next - t);
        t = t_next;
      }
    }
    // Clamp accumulated float error in the inflow integral.
    arrived = std::min(arrived, volume);
  }
  return out;
}

void BandwidthTimeline::consume(const RateProfile& profile) {
  for (const RateSegment& seg : profile.segments()) {
    const std::size_t first = split_at(seg.start);
    const std::size_t last = split_at(seg.end);
    for (std::size_t i = first; i < last; ++i) {
      double& remaining = breakpoints_[i].second;
      EDGESCHED_ASSERT_MSG(remaining >= seg.rate - 1e-6,
                           "profile exceeds remaining bandwidth");
      remaining = std::max(0.0, remaining - seg.rate);
    }
  }
}

double BandwidthTimeline::first_available(double t) const {
  std::size_t i = segment_index(std::max(t, 0.0));
  double at = std::max(t, 0.0);
  while (breakpoints_[i].second <= kEps) {
    EDGESCHED_ASSERT_MSG(i + 1 < breakpoints_.size(),
                         "tail of a bandwidth timeline must have capacity");
    at = breakpoints_[i + 1].first;
    ++i;
  }
  return at;
}

double BandwidthTimeline::earliest_finish(double t, double volume) const {
  EDGESCHED_ASSERT_MSG(volume > 0.0, "volume must be positive");
  ++probe_count_;
  double at = std::max(t, 0.0);
  double sent = 0.0;
  std::size_t i = segment_index(at);
  while (true) {
    const double seg_end =
        (i + 1 < breakpoints_.size()) ? breakpoints_[i + 1].first : kInf;
    const double rate = breakpoints_[i].second;
    if (rate > kEps) {
      const double t_done = at + (volume - sent) / rate;
      if (t_done <= seg_end) {
        return t_done;
      }
      sent += rate * (seg_end - at);
    } else {
      EDGESCHED_ASSERT_MSG(seg_end < kInf,
                           "tail of a bandwidth timeline must have capacity");
    }
    at = seg_end;
    ++i;
  }
}

void BandwidthTimeline::check_invariants() const {
  EDGESCHED_ASSERT(!breakpoints_.empty());
  EDGESCHED_ASSERT(breakpoints_.front().first == 0.0);
  for (std::size_t i = 0; i < breakpoints_.size(); ++i) {
    EDGESCHED_ASSERT(breakpoints_[i].second >= 0.0);
    EDGESCHED_ASSERT(breakpoints_[i].second <= capacity_ + 1e-6);
    if (i > 0) {
      EDGESCHED_ASSERT(breakpoints_[i - 1].first < breakpoints_[i].first);
    }
  }
}

}  // namespace edgesched::timeline
