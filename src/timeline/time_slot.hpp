// Time-slot primitives shared by the exclusive link timelines and the
// processor timelines.
#pragma once

#include <cstddef>

#include "dag/task_graph.hpp"

namespace edgesched::timeline {

/// One occupied interval on an exclusive link timeline. The slot occupies
/// [start, finish]; `earliest_start` records t_es — when the edge *could*
/// have started on this link — which bounds how far the slot may later be
/// deferred (OIHSA, §4.4).
struct TimeSlot {
  double earliest_start = 0.0;  ///< t_es(e, L)
  double start = 0.0;           ///< t_s(e, L), virtual start
  double finish = 0.0;          ///< t_f(e, L)
  dag::EdgeId edge;             ///< occupant
};

/// A tentative (uncommitted) placement of an edge on one link.
struct Placement {
  double earliest_start = 0.0;  ///< t_es(e, L)
  double start = 0.0;           ///< t_s(e, L); slot is [start, finish]
  double finish = 0.0;          ///< t_f(e, L)
  std::size_t position = 0;     ///< slot index the new slot is inserted at
};

}  // namespace edgesched::timeline
