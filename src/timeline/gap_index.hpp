// Hierarchical index over a processor timeline's idle gaps.
//
// `GapIndex` mirrors the gap sequence a linear scan over sorted task
// slots would visit: gap i runs from slot i-1's finish (0 before the
// first slot) to slot i's start (+inf after the last). It is an
// *implicit treap* — nodes are ordered by gap position, not by a key —
// because eps-tolerant commits can leave gap starts non-monotone within
// a tolerance window, and byte-identical first-fit answers require
// scanning gaps in exactly the linear scan's index order.
//
// Each node is augmented with a conservative admissibility bound
// (`score`, an upper bound on the longest duration the gap can admit
// under the eps-tolerant test) and each subtree with the max score
// below it, so `find_first_fit` descends past whole subtrees that
// cannot admit the request and evaluates the *exact* admission
// predicate — the same floating-point expression the linear scan uses —
// only at surviving candidates. Expected O(log n) per query and per
// update; the bound inflation (one `time_eps`) dwarfs every rounding
// error in the predicate, so pruning never skips an admitting gap.
//
// Nodes live in a pool (`std::vector` + free list) addressed by index,
// which keeps the structure trivially copyable — `MachineState` is a
// value type and the Basic Algorithm copies it during tentative
// evaluation. Treap priorities come from a hash of a per-index
// insertion counter: deterministic, so equal commit sequences produce
// equal trees and equal traversal costs on every run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace edgesched::timeline {

class GapIndex {
 public:
  /// Number of gaps currently indexed.
  [[nodiscard]] std::size_t size() const noexcept {
    return root_ < 0 ? 0 : nodes_[static_cast<std::size_t>(root_)].size;
  }
  [[nodiscard]] bool empty() const noexcept { return root_ < 0; }

  /// Pre-sizes the node pool (a timeline of n slots has n + 1 gaps).
  void reserve(std::size_t gaps) { nodes_.reserve(gaps); }

  /// Drops every gap; pool capacity is retained.
  void clear();

  /// Inserts a gap [gap_start, gap_end) at position `pos` (0-based;
  /// `pos == size()` appends). `gap_end` may be +inf for the tail gap.
  void insert_at(std::size_t pos, double gap_start, double gap_end);

  /// Removes the gap at position `pos`.
  void erase_at(std::size_t pos);

  /// Commit helper: replaces the gap at `pos` with the two gaps a slot
  /// [slot_start, slot_finish] splits it into.
  void split_at(std::size_t pos, double gap_start, double slot_start,
                double slot_finish, double gap_end);

  /// First gap at position >= from_pos admitting [start, start+duration]
  /// with start = max(gap_start, ready_time) under the eps-tolerant
  /// test; writes that start and returns true, or returns false when no
  /// indexed gap admits (never happens while the +inf tail gap is
  /// present at or after from_pos).
  [[nodiscard]] bool find_first_fit(std::size_t from_pos, double ready_time,
                                    double duration,
                                    double& out_start) const;

  /// In-order (gap_start, admission cap) pairs, for invariant checks.
  void collect(std::vector<std::pair<double, double>>& out) const;

 private:
  struct Node {
    double gap_start = 0.0;
    double cap = 0.0;    ///< gap_end + time_eps(gap_end), precomputed
    double score = 0.0;  ///< admissibility upper bound for this gap
    double best = 0.0;   ///< max score in this subtree
    std::uint64_t prio = 0;
    std::size_t size = 1;
    std::int32_t left = -1;
    std::int32_t right = -1;
  };

  [[nodiscard]] std::int32_t alloc_node(double gap_start, double gap_end);
  void free_node(std::int32_t n);
  void pull(std::int32_t t);
  void split(std::int32_t t, std::size_t count, std::int32_t& a,
             std::int32_t& b);
  [[nodiscard]] std::int32_t merge(std::int32_t a, std::int32_t b);
  [[nodiscard]] bool find_rec(std::int32_t t, std::size_t skip,
                              double ready_time, double duration,
                              double& out_start) const;
  void collect_rec(std::int32_t t,
                   std::vector<std::pair<double, double>>& out) const;

  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
  std::int32_t free_head_ = -1;
  std::uint64_t counter_ = 0;  ///< hashed into deterministic priorities
};

}  // namespace edgesched::timeline
