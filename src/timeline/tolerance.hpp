// Time comparison tolerance.
//
// Schedule times grow with the workload (makespans reach 1e7 at paper
// scale), so a fixed absolute epsilon either rejects 1-ulp rounding noise
// at large magnitudes or masks real bugs at small ones. All timeline
// invariants compare with a tolerance relative to the operand magnitude.
#pragma once

#include <algorithm>
#include <cmath>

namespace edgesched::timeline {

/// Absolute tolerance appropriate for times of the given magnitude.
[[nodiscard]] inline double time_eps(double magnitude) noexcept {
  return 1e-9 * std::max(1.0, std::abs(magnitude));
}

}  // namespace edgesched::timeline
