#include "timeline/link_timeline.hpp"

#include <algorithm>
#include <limits>

#include "timeline/tolerance.hpp"

namespace edgesched::timeline {

Placement LinkTimeline::probe_basic(double t_es_in, double t_f_min,
                                    double duration) const {
  EDGESCHED_ASSERT_MSG(duration > 0.0, "edge duration must be positive");
  ++probe_stats_.basic_probes;
  // Walk the idle intervals in time order: before the first slot, between
  // consecutive slots, after the last slot (unbounded). The slot start is
  // computed first so that earliest_start <= start holds exactly, with no
  // rounding from (earliest + duration) - duration.
  double gap_start = 0.0;
  for (std::size_t i = 0; i <= slots_.size(); ++i) {
    const double gap_end = (i < slots_.size())
                               ? slots_[i].start
                               : std::numeric_limits<double>::infinity();
    const double earliest = std::max(gap_start, t_es_in);
    const double start = std::max(earliest, t_f_min - duration);
    const double finish = start + duration;
    if (finish <= gap_end + time_eps(finish)) {
      return Placement{earliest, start, finish, i};
    }
    if (i < slots_.size()) {
      gap_start = slots_[i].finish;
    }
  }
  EDGESCHED_ASSERT_MSG(false, "unreachable: open tail always admits edge");
  return {};
}

void LinkTimeline::commit(const Placement& placement, dag::EdgeId edge) {
  EDGESCHED_ASSERT(placement.position <= slots_.size());
  EDGESCHED_ASSERT(placement.start <=
                   placement.finish + time_eps(placement.finish));
  slots_.insert(slots_.begin() + static_cast<std::ptrdiff_t>(
                                     placement.position),
                TimeSlot{placement.earliest_start, placement.start,
                         placement.finish, edge});
  check_invariants();
}

void LinkTimeline::erase(std::size_t position) {
  EDGESCHED_ASSERT(position < slots_.size());
  slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(position));
}

double LinkTimeline::busy_time() const noexcept {
  double busy = 0.0;
  for (const TimeSlot& slot : slots_) {
    busy += slot.finish - slot.start;
  }
  return busy;
}

void LinkTimeline::shift_slot(std::size_t index, double new_earliest_start,
                              double new_start, double new_finish) {
  EDGESCHED_ASSERT(index < slots_.size());
  TimeSlot& slot = slots_[index];
  EDGESCHED_ASSERT_MSG(new_start >= slot.start - time_eps(slot.start),
                       "slots may only be deferred, never advanced");
  slot.earliest_start = new_earliest_start;
  slot.start = new_start;
  slot.finish = new_finish;
}

void LinkTimeline::check_invariants() const {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const TimeSlot& slot = slots_[i];
    EDGESCHED_ASSERT_MSG(slot.start <= slot.finish + time_eps(slot.finish),
                         "slot start after finish");
    EDGESCHED_ASSERT_MSG(
        slot.earliest_start <= slot.start + time_eps(slot.start),
                         "slot earliest_start after start");
    if (i > 0) {
      EDGESCHED_ASSERT_MSG(
          slots_[i - 1].finish <= slot.start + time_eps(slot.start),
                           "slots overlap or are unsorted");
    }
  }
}

}  // namespace edgesched::timeline
