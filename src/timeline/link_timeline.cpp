#include "timeline/link_timeline.hpp"

#include <algorithm>
#include <limits>

#include "timeline/tolerance.hpp"

namespace edgesched::timeline {

namespace {
/// Minimum slot-arena capacity reserved on the first commit. Timelines
/// live by the hundred inside a network state (one per contention
/// domain) and by the thousand across a sweep; skipping the 1→2→4→8
/// realloc ramp is a measurable allocation saving.
constexpr std::size_t kArenaBlock = 16;
}  // namespace

std::size_t LinkTimeline::first_candidate_gap(double min_finish) const {
  // A gap ending at slots_[i].start admits the edge only if
  //   finish <= gap_end + time_eps(finish), with finish >= min_finish.
  // For gap_end < min_finish - 2*eps(min_finish) both cannot hold (the
  // relative eps of any feasible finish in such a gap is bounded by
  // eps(min_finish)), so those gaps are skipped wholesale. Gap ends are
  // non-decreasing (sorted, disjoint slots), hence one lower_bound.
  const double threshold = min_finish - 2.0 * time_eps(min_finish);
  const auto it =
      std::lower_bound(slots_.begin(), slots_.end(), threshold,
                       [](const TimeSlot& slot, double t) {
                         return slot.start < t;
                       });
  return static_cast<std::size_t>(it - slots_.begin());
}

Placement LinkTimeline::probe_from(std::size_t first, double t_es_in,
                                   double t_f_min, double duration) const {
  // Walk the idle intervals in time order from gap `first`: before slot
  // `first`, between consecutive slots, after the last slot (unbounded).
  // The slot start is computed first so that earliest_start <= start
  // holds exactly, with no rounding from (earliest + duration) - duration.
  double gap_start = (first == 0) ? 0.0 : slots_[first - 1].finish;
  for (std::size_t i = first; i <= slots_.size(); ++i) {
    ++probe_stats_.probe_gap_steps;
    const double gap_end = (i < slots_.size())
                               ? slots_[i].start
                               : std::numeric_limits<double>::infinity();
    const double earliest = std::max(gap_start, t_es_in);
    const double start = std::max(earliest, t_f_min - duration);
    const double finish = start + duration;
    if (finish <= gap_end + time_eps(finish)) {
      return Placement{earliest, start, finish, i};
    }
    if (i < slots_.size()) {
      gap_start = slots_[i].finish;
    }
  }
  EDGESCHED_ASSERT_MSG(false, "unreachable: open tail always admits edge");
  return {};
}

Placement LinkTimeline::probe_basic(double t_es_in, double t_f_min,
                                    double duration) const {
  EDGESCHED_ASSERT_MSG(duration > 0.0, "edge duration must be positive");
  ++probe_stats_.basic_probes;
  // Gap-index fast path: no feasible finish can precede
  // max(t_es_in + duration, t_f_min), so start the first-fit walk at the
  // first gap whose end reaches that bound (binary search) instead of at
  // the head of the timeline.
  const double min_finish =
      std::max(t_es_in, t_f_min - duration) + duration;
  return probe_from(first_candidate_gap(min_finish), t_es_in, t_f_min,
                    duration);
}

Placement LinkTimeline::probe_basic_linear(double t_es_in, double t_f_min,
                                           double duration) const {
  EDGESCHED_ASSERT_MSG(duration > 0.0, "edge duration must be positive");
  ++probe_stats_.basic_probes;
  return probe_from(0, t_es_in, t_f_min, duration);
}

void LinkTimeline::commit(const Placement& placement, dag::EdgeId edge) {
  EDGESCHED_ASSERT(placement.position <= slots_.size());
  EDGESCHED_ASSERT(placement.start <=
                   placement.finish + time_eps(placement.finish));
  if (slots_.capacity() == slots_.size()) {
    // Arena growth: jump straight to a block-sized capacity so many
    // short timelines never reallocate more than once.
    slots_.reserve(std::max(kArenaBlock, slots_.size() * 2));
  }
  slots_.insert(slots_.begin() + static_cast<std::ptrdiff_t>(
                                     placement.position),
                TimeSlot{placement.earliest_start, placement.start,
                         placement.finish, edge});
  // Local invariant check: an insertion can only break ordering or
  // disjointness against its immediate neighbours, so O(1) suffices here
  // (the full-walk `check_invariants` stays available to tests and the
  // schedule validator).
  const std::size_t at = placement.position;
  EDGESCHED_ASSERT_MSG(
      placement.earliest_start <=
          placement.start + time_eps(placement.start),
      "slot earliest_start after start");
  EDGESCHED_ASSERT_MSG(
      at == 0 || slots_[at - 1].finish <=
                     placement.start + time_eps(placement.start),
      "inserted slot overlaps its predecessor");
  EDGESCHED_ASSERT_MSG(
      at + 1 == slots_.size() ||
          placement.finish <=
              slots_[at + 1].start + time_eps(slots_[at + 1].start),
      "inserted slot overlaps its successor");
}

void LinkTimeline::erase(std::size_t position) {
  EDGESCHED_ASSERT(position < slots_.size());
  slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(position));
}

double LinkTimeline::busy_time() const noexcept {
  double busy = 0.0;
  for (const TimeSlot& slot : slots_) {
    busy += slot.finish - slot.start;
  }
  return busy;
}

void LinkTimeline::shift_slot(std::size_t index, double new_earliest_start,
                              double new_start, double new_finish) {
  EDGESCHED_ASSERT(index < slots_.size());
  TimeSlot& slot = slots_[index];
  EDGESCHED_ASSERT_MSG(new_start >= slot.start - time_eps(slot.start),
                       "slots may only be deferred, never advanced");
  slot.earliest_start = new_earliest_start;
  slot.start = new_start;
  slot.finish = new_finish;
}

void LinkTimeline::check_invariants() const {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const TimeSlot& slot = slots_[i];
    EDGESCHED_ASSERT_MSG(slot.start <= slot.finish + time_eps(slot.finish),
                         "slot start after finish");
    EDGESCHED_ASSERT_MSG(
        slot.earliest_start <= slot.start + time_eps(slot.start),
                         "slot earliest_start after start");
    if (i > 0) {
      EDGESCHED_ASSERT_MSG(
          slots_[i - 1].finish <= slot.start + time_eps(slot.start),
                           "slots overlap or are unsorted");
    }
  }
}

}  // namespace edgesched::timeline
