// Processor timeline: non-preemptive task execution slots with an
// insertion-based placement policy (a task may fill an idle gap between
// already-scheduled tasks when it fits entirely).
#pragma once

#include <cstddef>
#include <vector>

#include "dag/task_graph.hpp"
#include "timeline/gap_index.hpp"
#include "util/error.hpp"

namespace edgesched::timeline {

/// One task execution interval on a processor.
struct TaskSlot {
  double start = 0.0;
  double finish = 0.0;
  dag::TaskId task;
};

class ProcessorTimeline {
 public:
  ProcessorTimeline();

  /// Earliest start >= ready_time such that [start, start + duration] fits
  /// into an idle interval (insertion policy). Served by the hierarchical
  /// gap index above `kIndexedScanThreshold` slots — expected
  /// O(log n) — and by `earliest_start_linear` below it; both return
  /// bit-identical answers (property-tested in
  /// processor_gap_index_property_test).
  [[nodiscard]] double earliest_start(double ready_time,
                                      double duration) const;

  /// Reference linear scan over every idle gap — the semantics the
  /// indexed path must reproduce byte-for-byte. Kept as the equivalence
  /// oracle; O(n).
  [[nodiscard]] double earliest_start_linear(double ready_time,
                                             double duration) const;

  /// Books the task at the given start; `start` must come from
  /// `earliest_start` against the current state.
  void commit(dag::TaskId task, double start, double duration);

  /// Pre-sizes the slot vector and gap index for about `num_slots`
  /// commits, so a scheduler can arena-allocate once per run instead of
  /// growing per placement.
  void reserve(std::size_t num_slots);

  [[nodiscard]] const std::vector<TaskSlot>& slots() const noexcept {
    return slots_;
  }
  /// Finish time of the last task; 0 when idle. This is t_f(P).
  [[nodiscard]] double last_finish() const noexcept {
    return slots_.empty() ? 0.0 : slots_.back().finish;
  }
  [[nodiscard]] double busy_time() const noexcept;

  /// Asserts the gap index mirrors the slot-derived gap sequence
  /// exactly (count, starts and admission caps). Test hook; O(n).
  void check_invariants() const;

  /// Below this many slots `earliest_start` scans linearly: the scan
  /// beats the index's binary search + tree descent on short timelines,
  /// and both paths agree bit-for-bit.
  static constexpr std::size_t kIndexedScanThreshold = 16;

 private:
  std::vector<TaskSlot> slots_;  ///< sorted by start, pairwise disjoint
  GapIndex gaps_;                ///< idle gaps, mirrored on every commit
};

}  // namespace edgesched::timeline
