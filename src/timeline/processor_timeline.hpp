// Processor timeline: non-preemptive task execution slots with an
// insertion-based placement policy (a task may fill an idle gap between
// already-scheduled tasks when it fits entirely).
#pragma once

#include <cstddef>
#include <vector>

#include "dag/task_graph.hpp"
#include "util/error.hpp"

namespace edgesched::timeline {

/// One task execution interval on a processor.
struct TaskSlot {
  double start = 0.0;
  double finish = 0.0;
  dag::TaskId task;
};

class ProcessorTimeline {
 public:
  /// Earliest start >= ready_time such that [start, start + duration] fits
  /// into an idle interval (insertion policy).
  [[nodiscard]] double earliest_start(double ready_time,
                                      double duration) const;

  /// Books the task at the given start; `start` must come from
  /// `earliest_start` against the current state.
  void commit(dag::TaskId task, double start, double duration);

  [[nodiscard]] const std::vector<TaskSlot>& slots() const noexcept {
    return slots_;
  }
  /// Finish time of the last task; 0 when idle. This is t_f(P).
  [[nodiscard]] double last_finish() const noexcept {
    return slots_.empty() ? 0.0 : slots_.back().finish;
  }
  [[nodiscard]] double busy_time() const noexcept;

 private:
  std::vector<TaskSlot> slots_;  ///< sorted by start, pairwise disjoint
};

}  // namespace edgesched::timeline
