// Piecewise-constant transfer-rate profiles.
//
// BBSA (§5) spreads one edge's communication over multiple time slots with
// varying bandwidth shares. A `RateProfile` records the resulting absolute
// transfer rate (volume per time, i.e. s(L)·br) of one edge on one link as
// a sorted sequence of disjoint positive-rate segments. The fluid
// forwarding rules of the paper (formulas (4)/(5)) become two cumulative
// constraints over these profiles: outflow on the next link can never
// exceed what has arrived, nor the link's remaining capacity.
#pragma once

#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace edgesched::timeline {

/// One constant-rate stretch of a transfer.
struct RateSegment {
  double start = 0.0;
  double end = 0.0;
  double rate = 0.0;  ///< absolute rate (volume per unit time), > 0
};

class RateProfile {
 public:
  /// Appends a segment; must begin at or after the previous segment's end.
  /// Adjacent segments with equal rates are merged.
  void append(double start, double end, double rate);

  [[nodiscard]] const std::vector<RateSegment>& segments() const noexcept {
    return segments_;
  }
  [[nodiscard]] bool empty() const noexcept { return segments_.empty(); }

  /// Total transferred volume.
  [[nodiscard]] double volume() const noexcept;

  /// Time the first byte moves; 0 for an empty profile.
  [[nodiscard]] double start_time() const noexcept {
    return segments_.empty() ? 0.0 : segments_.front().start;
  }
  /// Time the last byte moves; 0 for an empty profile.
  [[nodiscard]] double finish_time() const noexcept {
    return segments_.empty() ? 0.0 : segments_.back().end;
  }

  /// Volume transferred in [start_time, t].
  [[nodiscard]] double cumulative(double t) const noexcept;

  /// Instantaneous rate at time t (0 between/outside segments).
  [[nodiscard]] double rate_at(double t) const noexcept;

  /// Sorted distinct segment boundaries (for sweep-line algorithms).
  [[nodiscard]] std::vector<double> breakpoints() const;

  /// The same profile displaced by `delta` time units (hop delays).
  [[nodiscard]] RateProfile shifted(double delta) const;

  /// Verifies ordering and positivity invariants.
  void check_invariants() const;

 private:
  std::vector<RateSegment> segments_;
};

}  // namespace edgesched::timeline
