// OIHSA's optimal insertion (§4.4).
//
// Unlike first-fit, already-scheduled edges may be *deferred* within the
// slack their own route grants them (Lemma 2): an edge stalled on link L
// whose next route link starts later than necessary can slide towards that
// start without violating link causality, enlarging an idle interval. The
// tail-to-head `accum` scan (formula (2)) computes, for every occupied
// slot, the largest accumulated deferral available behind it; insertion
// before a slot is feasible iff the candidate finish fits into the gap
// plus that slack (formula (3)). Theorem 1: the head-most feasible
// position yields the earliest possible start.
//
// ## Early exit on slack exhaustion
//
// The scan keeps the invariant that a slot's *effective deadline*
// `slot.start + accum` is non-increasing towards the head (accum can grow
// head-wards only by the gap it just crossed, which the start loses
// again). The candidate finish, by contrast, can never drop below
// `max(t_es_in + duration, t_f_min)`. Once the deadline falls below that
// bound, no head-ward position can ever be feasible and the scan stops —
// on packed timelines probed near the tail this turns the O(n) walk into
// O(tail window). The placements produced are identical to the full scan
// (property-tested).
//
// Deferral slack depends on where each occupant edge sits on its *next*
// route link, which only the scheduler knows — callers supply it through
// `DeferralFn`.
#pragma once

#include <functional>
#include <vector>

#include "timeline/link_timeline.hpp"

namespace edgesched::timeline {

/// Returns the longest time the given occupied slot may be deferred on
/// this link without violating link causality towards the occupant's next
/// route link (0 if this is the occupant's last link).
using DeferralFn = std::function<double(const TimeSlot&)>;

/// One slot displaced by an optimal insertion, with its post-shift times.
struct SlotShift {
  std::size_t position = 0;  ///< index *before* the new slot is inserted
  dag::EdgeId edge;          ///< occupant that moved
  double new_earliest_start = 0.0;
  double new_start = 0.0;
  double new_finish = 0.0;
};

/// Outcome of an optimal-insertion probe.
struct OptimalPlacement {
  Placement placement;
  std::vector<SlotShift> shifts;  ///< displaced slots, head to tail
};

/// Probes the optimal insertion of an edge with the given incoming state.
/// Does not mutate the timeline. The result's shifts are expressed against
/// the current slot indices.
[[nodiscard]] OptimalPlacement probe_optimal(const LinkTimeline& timeline,
                                             double t_es_in, double t_f_min,
                                             double duration,
                                             const DeferralFn& deferral);

/// Allocation-free variant: writes the result into `out`, reusing its
/// shift buffer. The per-edge hot loop (one probe per route hop) calls
/// this with a scratch `OptimalPlacement` owned by the network state.
void probe_optimal_into(const LinkTimeline& timeline, double t_es_in,
                        double t_f_min, double duration,
                        const DeferralFn& deferral, OptimalPlacement& out);

/// Reference probe without the slack-exhaustion early exit; the
/// property-test oracle for `probe_optimal`. Schedulers must not use it.
[[nodiscard]] OptimalPlacement probe_optimal_linear(
    const LinkTimeline& timeline, double t_es_in, double t_f_min,
    double duration, const DeferralFn& deferral);

/// Applies a probed optimal placement: shifts the displaced slots, then
/// inserts the new slot. The placement must have been probed against the
/// current timeline state.
void commit_optimal(LinkTimeline& timeline, const OptimalPlacement& result,
                    dag::EdgeId edge);

}  // namespace edgesched::timeline
