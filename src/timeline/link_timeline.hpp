// Exclusive link timeline: the schedulable state of one contention domain.
//
// Communications do not preempt each other (§2.2), so a link is a sorted
// sequence of disjoint occupied `TimeSlot`s. `probe_basic` implements the
// Basic Algorithm's first-fit insertion search (§3): find the earliest
// idle interval that admits the edge without violating link causality.
// The OIHSA optimal insertion lives in optimal_insertion.hpp because it
// additionally needs deferral slack derived from *other* links.
//
// ## Invariants the gap index relies on
//
// The slot vector is the free-gap index: slots are sorted by `start` and
// pairwise disjoint (`check_invariants`), so the idle intervals are
// exactly (0, slots[0].start), (slots[i].finish, slots[i+1].start), ...,
// (slots.back().finish, +inf), and both gap ends are non-decreasing in
// the slot index. `probe_basic` exploits that monotonicity: a gap whose
// end precedes the edge's minimum possible finish
// `max(t_es_in + duration, t_f_min)` can never admit the edge, so the
// first candidate gap is found with one binary search over `start`
// (the "first-fit hint") and the linear walk starts there instead of at
// slot 0. Every mutation (`commit`, `erase`, `shift_slot`) must keep the
// sorted/disjoint property or the hint search returns wrong gaps —
// `shift_slot` may therefore only defer, never advance, a slot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "timeline/time_slot.hpp"
#include "util/error.hpp"

namespace edgesched::timeline {

class LinkTimeline {
 public:
  /// Probe-work tallies. Plain (non-atomic) members: a timeline belongs
  /// to exactly one scheduling state, which is used by one thread; the
  /// owning network state batches these into the global counters.
  struct ProbeStats {
    std::uint64_t basic_probes = 0;
    std::uint64_t optimal_probes = 0;
    /// Idle intervals examined by `probe_basic` (after the gap-index
    /// skip). steps/probe ≈ 1 on healthy workloads; a drift upwards
    /// means the binary-search hint stopped paying.
    std::uint64_t probe_gap_steps = 0;
    /// Occupied slots visited by the optimal-insertion tail-to-head
    /// scan (after the slack-exhaustion early exit).
    std::uint64_t optimal_scan_steps = 0;
  };

  /// First-fit search: the earliest placement with
  ///   t_f = max(gap_start + dur, t_es_in + dur, t_f_min) inside an idle
  /// interval. `t_es_in` is the earliest start arriving from the previous
  /// hop (or the source task); `t_f_min` the previous hop's finish (0 on
  /// the first hop); `duration` = c(e)/s(L). Never fails: the open tail
  /// after the last slot always admits the edge.
  ///
  /// O(log n) binary search for the first gap that can admit the edge,
  /// then a first-fit walk that in practice inspects O(1) gaps. Returns
  /// placements identical to `probe_basic_linear` (property-tested).
  [[nodiscard]] Placement probe_basic(double t_es_in, double t_f_min,
                                      double duration) const;

  /// Reference implementation of `probe_basic` walking every idle
  /// interval from the head. Kept only as the property-test oracle for
  /// the indexed search — schedulers must use `probe_basic`.
  [[nodiscard]] Placement probe_basic_linear(double t_es_in, double t_f_min,
                                             double duration) const;

  /// Inserts the probed slot. The placement must come from a probe against
  /// the current timeline state.
  void commit(const Placement& placement, dag::EdgeId edge);

  /// Removes the slot at `position` (used by schedule replay, the Basic
  /// Algorithm's rollback and tests). Keeps the arena capacity.
  void erase(std::size_t position);

  /// Pre-sizes the slot arena (capacity only; no slots are created).
  void reserve(std::size_t capacity) { slots_.reserve(capacity); }

  [[nodiscard]] const std::vector<TimeSlot>& slots() const noexcept {
    return slots_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  [[nodiscard]] bool empty() const noexcept { return slots_.empty(); }

  /// Finish time of the last slot; 0 when idle.
  [[nodiscard]] double last_finish() const noexcept {
    return slots_.empty() ? 0.0 : slots_.back().finish;
  }

  /// Total occupied time (for load statistics).
  [[nodiscard]] double busy_time() const noexcept;

  /// Direct slot mutation for the optimal-insertion cascade. `index` must
  /// be valid and the new interval must keep the sequence sorted and
  /// disjoint (checked) — deferral only ever moves slots later, which
  /// preserves the gap-index monotonicity documented above.
  void shift_slot(std::size_t index, double new_earliest_start,
                  double new_start, double new_finish);

  /// Verifies internal invariants: sorted, disjoint, start <= finish,
  /// earliest_start <= start. Throws InternalError on violation.
  void check_invariants() const;

  [[nodiscard]] const ProbeStats& probe_stats() const noexcept {
    return probe_stats_;
  }
  /// Counted by probe_optimal (a free function that only sees a const
  /// timeline); logically mutable statistics, not timeline state.
  void count_optimal_probe() const noexcept {
    ++probe_stats_.optimal_probes;
  }
  void count_optimal_scan_steps(std::uint64_t steps) const noexcept {
    probe_stats_.optimal_scan_steps += steps;
  }

 private:
  /// Index of the first slot whose preceding-or-own gap could admit a
  /// finish of `min_finish` — the binary-searched first-fit hint.
  [[nodiscard]] std::size_t first_candidate_gap(double min_finish) const;

  /// Shared first-fit walk starting at gap `first` (see probe_basic).
  [[nodiscard]] Placement probe_from(std::size_t first, double t_es_in,
                                     double t_f_min, double duration) const;

  std::vector<TimeSlot> slots_;  ///< sorted by start, pairwise disjoint
  mutable ProbeStats probe_stats_;
};

}  // namespace edgesched::timeline
