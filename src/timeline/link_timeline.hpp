// Exclusive link timeline: the schedulable state of one contention domain.
//
// Communications do not preempt each other (§2.2), so a link is a sorted
// sequence of disjoint occupied `TimeSlot`s. `probe_basic` implements the
// Basic Algorithm's first-fit insertion search (§3): find the earliest
// idle interval that admits the edge without violating link causality.
// The OIHSA optimal insertion lives in optimal_insertion.hpp because it
// additionally needs deferral slack derived from *other* links.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "timeline/time_slot.hpp"
#include "util/error.hpp"

namespace edgesched::timeline {

class LinkTimeline {
 public:
  /// Probe-work tallies. Plain (non-atomic) members: a timeline belongs
  /// to exactly one scheduling state, which is used by one thread; the
  /// owning network state batches these into the global counters.
  struct ProbeStats {
    std::uint64_t basic_probes = 0;
    std::uint64_t optimal_probes = 0;
  };

  /// First-fit search: the earliest placement with
  ///   t_f = max(gap_start + dur, t_es_in + dur, t_f_min) inside an idle
  /// interval. `t_es_in` is the earliest start arriving from the previous
  /// hop (or the source task); `t_f_min` the previous hop's finish (0 on
  /// the first hop); `duration` = c(e)/s(L). Never fails: the open tail
  /// after the last slot always admits the edge.
  [[nodiscard]] Placement probe_basic(double t_es_in, double t_f_min,
                                      double duration) const;

  /// Inserts the probed slot. The placement must come from a probe against
  /// the current timeline state.
  void commit(const Placement& placement, dag::EdgeId edge);

  /// Removes the slot at `position` (used by schedule replay and tests).
  void erase(std::size_t position);

  [[nodiscard]] const std::vector<TimeSlot>& slots() const noexcept {
    return slots_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  [[nodiscard]] bool empty() const noexcept { return slots_.empty(); }

  /// Finish time of the last slot; 0 when idle.
  [[nodiscard]] double last_finish() const noexcept {
    return slots_.empty() ? 0.0 : slots_.back().finish;
  }

  /// Total occupied time (for load statistics).
  [[nodiscard]] double busy_time() const noexcept;

  /// Direct slot mutation for the optimal-insertion cascade. `index` must
  /// be valid and the new interval must keep the sequence sorted and
  /// disjoint (checked).
  void shift_slot(std::size_t index, double new_earliest_start,
                  double new_start, double new_finish);

  /// Verifies internal invariants: sorted, disjoint, start <= finish,
  /// earliest_start <= start. Throws InternalError on violation.
  void check_invariants() const;

  [[nodiscard]] const ProbeStats& probe_stats() const noexcept {
    return probe_stats_;
  }
  /// Counted by probe_optimal (a free function that only sees a const
  /// timeline); logically mutable statistics, not timeline state.
  void count_optimal_probe() const noexcept {
    ++probe_stats_.optimal_probes;
  }

 private:
  std::vector<TimeSlot> slots_;  ///< sorted by start, pairwise disjoint
  mutable ProbeStats probe_stats_;
};

}  // namespace edgesched::timeline
