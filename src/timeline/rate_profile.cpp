#include "timeline/rate_profile.hpp"

#include <algorithm>
#include <cmath>

namespace edgesched::timeline {

namespace {
constexpr double kEps = 1e-9;
}  // namespace

void RateProfile::append(double start, double end, double rate) {
  EDGESCHED_ASSERT_MSG(end > start + kEps, "empty or inverted rate segment");
  EDGESCHED_ASSERT_MSG(rate > kEps, "rate segments must be positive");
  if (!segments_.empty()) {
    RateSegment& last = segments_.back();
    EDGESCHED_ASSERT_MSG(start >= last.end - kEps,
                         "rate segments must be appended in time order");
    if (std::abs(start - last.end) <= kEps &&
        std::abs(rate - last.rate) <= kEps) {
      last.end = end;  // merge contiguous equal-rate stretches
      return;
    }
  }
  segments_.push_back(RateSegment{start, end, rate});
}

double RateProfile::volume() const noexcept {
  double total = 0.0;
  for (const RateSegment& seg : segments_) {
    total += seg.rate * (seg.end - seg.start);
  }
  return total;
}

double RateProfile::cumulative(double t) const noexcept {
  double total = 0.0;
  for (const RateSegment& seg : segments_) {
    if (t <= seg.start) {
      break;
    }
    total += seg.rate * (std::min(t, seg.end) - seg.start);
  }
  return total;
}

double RateProfile::rate_at(double t) const noexcept {
  for (const RateSegment& seg : segments_) {
    if (t < seg.start) {
      return 0.0;
    }
    if (t < seg.end) {
      return seg.rate;
    }
  }
  return 0.0;
}

std::vector<double> RateProfile::breakpoints() const {
  std::vector<double> points;
  points.reserve(segments_.size() * 2);
  for (const RateSegment& seg : segments_) {
    if (points.empty() || points.back() < seg.start - kEps) {
      points.push_back(seg.start);
    }
    points.push_back(seg.end);
  }
  return points;
}

RateProfile RateProfile::shifted(double delta) const {
  RateProfile result;
  for (const RateSegment& seg : segments_) {
    result.append(seg.start + delta, seg.end + delta, seg.rate);
  }
  return result;
}

void RateProfile::check_invariants() const {
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    EDGESCHED_ASSERT(segments_[i].end > segments_[i].start);
    EDGESCHED_ASSERT(segments_[i].rate > 0.0);
    if (i > 0) {
      EDGESCHED_ASSERT(segments_[i - 1].end <= segments_[i].start + kEps);
    }
  }
}

}  // namespace edgesched::timeline
