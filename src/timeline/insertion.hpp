// Insertion-policy facade over the exclusive-link probe/commit pair.
//
// The timeline layer offers two ways to place an edge occupation on a
// link: first-fit (`LinkTimeline::probe_basic`, §3) and optimal insertion
// with deferral of booked slots (`probe_optimal_into`, §4.4). The
// scheduling engine selects between them per algorithm bundle; this enum
// is the seam it selects through, so callers above the timeline layer
// never name the individual probe functions. The bandwidth model has a
// single fluid commit and therefore no insertion choice — it is a
// different `NetworkStateModel`, not a third insertion kind.
#pragma once

namespace edgesched::timeline {

/// How an edge occupation is placed into an exclusive link timeline.
enum class InsertionKind {
  kFirstFit,  ///< earliest gap at or after t_es, never displacing (§3)
  kOptimal,   ///< may defer booked slots within their slack (§4.4)
};

}  // namespace edgesched::timeline
