#include "obs/naming.hpp"

#include <cctype>
#include <mutex>
#include <unordered_set>

namespace edgesched::obs {

namespace {
std::mutex g_intern_mutex;
std::unordered_set<std::string>& intern_table() {
  // Leaked on purpose: interned names must outlive every tracer export,
  // including ones that happen during static destruction.
  static auto* table = new std::unordered_set<std::string>();
  return *table;
}
}  // namespace

const char* intern_name(std::string_view name) {
  std::lock_guard<std::mutex> lock(g_intern_mutex);
  return intern_table().emplace(name).first->c_str();
}

SpanNames::SpanNames(std::string_view algorithm) {
  std::string prefix;
  prefix.reserve(algorithm.size());
  for (const char c : algorithm) {
    prefix.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  schedule = intern_name(prefix + "/schedule");
  select_processor = intern_name(prefix + "/select_processor");
  route_edge = intern_name(prefix + "/route_edge");
}

}  // namespace edgesched::obs
