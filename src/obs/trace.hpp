// Span-based runtime tracer for the scheduler itself.
//
// `sched/trace_export` visualises the *schedule* an algorithm produced;
// this tracer records the *algorithm running*: every instrumented phase
// (priority computation, processor selection, edge routing, insertion,
// pool jobs, sweep instances) opens an RAII `Span`, and the collected
// events export as a Chrome trace-event JSON file that chrome://tracing
// and https://ui.perfetto.dev open directly.
//
// Cost model — the tracer is always compiled in, so the disabled path
// must be nearly free:
//   * kDisabled  — a Span is one relaxed atomic load and a branch; no
//     clock read, no allocation (the "null sink" the overhead bench
//     measures).
//   * kAggregate — no events are stored; each span folds its duration
//     into a per-thread name -> {count, total} table. Cheap enough to
//     leave on during benchmarks, and the source of the per-phase totals
//     in BENCH_*.json telemetry.
//   * kFull      — every span becomes a trace event in a per-thread
//     buffer (bounded by kMaxEventsPerThread; overflow counts as
//     `dropped`). Threads merge at export time.
//
// Thread model: each thread owns a registered buffer guarded by its own
// (uncontended) mutex, so recording never blocks other threads and
// exports are race-free even while workers are live. Buffers persist
// after thread exit so their events survive until `clear()`.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "obs/run_context.hpp"

namespace edgesched::obs {

enum class TraceMode : int { kDisabled = 0, kAggregate = 1, kFull = 2 };

namespace detail {
extern std::atomic<int> g_trace_mode;
}  // namespace detail

/// True when spans record anything at all (aggregate or full mode). This
/// is the hot-path check: one relaxed load.
[[nodiscard]] inline bool tracing_enabled() noexcept {
  return detail::g_trace_mode.load(std::memory_order_relaxed) !=
         static_cast<int>(TraceMode::kDisabled);
}

inline constexpr std::uint64_t kNoArg = ~std::uint64_t{0};

/// One completed span, Chrome trace-event "X" phase.
struct TraceEvent {
  const char* name = nullptr;      ///< static string literal
  const char* category = nullptr;  ///< static string literal
  std::int64_t start_ns = 0;       ///< steady-clock nanoseconds
  std::int64_t duration_ns = 0;
  std::uint64_t arg = kNoArg;  ///< optional payload (task/edge id, ...)
  std::uint64_t run_id = 0;    ///< correlating run (obs/run_context), 0 none
};

/// Aggregated statistics of one span name.
struct SpanTotal {
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
  [[nodiscard]] double total_seconds() const noexcept {
    return static_cast<double>(total_ns) * 1e-9;
  }
};

class Tracer {
 public:
  /// Events kept per thread in kFull mode before dropping.
  static constexpr std::size_t kMaxEventsPerThread = 1u << 20;

  [[nodiscard]] static Tracer& instance();

  void set_mode(TraceMode mode) noexcept;
  [[nodiscard]] TraceMode mode() const noexcept;

  /// Discards all recorded events, totals and drop counts (buffers stay
  /// registered; outstanding spans of live threads still land safely).
  void clear();

  /// Stored events across all threads (kFull mode only).
  [[nodiscard]] std::size_t event_count() const;
  /// Events discarded because a thread buffer was full.
  [[nodiscard]] std::uint64_t dropped() const;
  /// Distinct threads that have recorded at least one span.
  [[nodiscard]] std::size_t thread_count() const;

  /// Merged per-name span statistics (populated in both kAggregate and
  /// kFull modes).
  [[nodiscard]] std::map<std::string, SpanTotal> span_totals() const;

  /// Writes the Chrome trace-event JSON document ("traceEvents" array of
  /// complete events, microsecond timestamps, one tid per recording
  /// thread). Loadable by Perfetto / chrome://tracing as-is.
  void write_chrome_trace(std::ostream& os) const;

  /// Records one completed span into the calling thread's buffer. Called
  /// by ~Span; callable directly for externally-timed phases.
  void record(const TraceEvent& event);

  struct ThreadBuffer;  ///< implementation detail, defined in trace.cpp

 private:
  Tracer() = default;
  [[nodiscard]] ThreadBuffer& local_buffer();
};

/// RAII span. Constructing with tracing disabled costs one atomic load;
/// `name` and `category` must be string literals (they are stored by
/// pointer).
class Span {
 public:
  explicit Span(const char* name, const char* category = "sched",
                std::uint64_t arg = kNoArg) noexcept {
    if (tracing_enabled()) {
      name_ = name;
      category_ = category;
      arg_ = arg;
      run_id_ = current_run_id();
      start_ = std::chrono::steady_clock::now();
      active_ = true;
    }
  }
  ~Span() {
    if (active_) {
      finish();
    }
  }

  /// Ends the span before scope exit (idempotent; the destructor then
  /// records nothing).
  void close() noexcept {
    if (active_) {
      active_ = false;
      finish();
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void finish() noexcept;

  const char* name_ = nullptr;
  const char* category_ = nullptr;
  std::uint64_t arg_ = kNoArg;
  std::uint64_t run_id_ = 0;
  std::chrono::steady_clock::time_point start_{};
  bool active_ = false;
};

}  // namespace edgesched::obs
