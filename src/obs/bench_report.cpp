#include "obs/bench_report.hpp"

#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace edgesched::obs {

BenchReport::BenchReport(std::string name)
    : name_(std::move(name)), root_(JsonValue::object()) {
  root_.set("name", JsonValue(name_));
  root_.set("schema", JsonValue("edgesched-bench-telemetry-v1"));
}

void BenchReport::add_span_totals() {
  JsonValue totals = JsonValue::object();
  for (const auto& [name, total] : Tracer::instance().span_totals()) {
    totals.set(name, JsonValue::object()
                         .set("count", JsonValue(total.count))
                         .set("seconds", JsonValue(total.total_seconds())));
  }
  root_.set("span_totals", std::move(totals));
}

void BenchReport::add_counters() { add_counters(global_metrics()); }

void BenchReport::add_counters(const svc::MetricsRegistry& registry) {
  JsonValue counters = JsonValue::object();
  for (const auto& [name, value] : registry.counter_values()) {
    counters.set(name, JsonValue(value));
  }
  root_.set("counters", std::move(counters));

  JsonValue histograms = JsonValue::object();
  for (const auto& [name, summary] : registry.histogram_values()) {
    histograms.set(name,
                   JsonValue::object()
                       .set("count", JsonValue(summary.count))
                       .set("sum_seconds", JsonValue(summary.sum)));
  }
  root_.set("histograms", std::move(histograms));
}

std::string BenchReport::default_path() const {
  const char* dir = std::getenv("EDGESCHED_BENCH_DIR");
  std::string path = dir != nullptr && *dir != '\0' ? std::string(dir) : ".";
  if (path.back() != '/') {
    path += '/';
  }
  return path + "BENCH_" + name_ + ".json";
}

std::string BenchReport::write() const {
  const std::string path = default_path();
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("BenchReport: cannot open " + path);
  }
  write(file);
  return path;
}

void BenchReport::write(std::ostream& os) const {
  root_.write(os, 2);
  os << '\n';
}

}  // namespace edgesched::obs
