#include "obs/metrics_snapshot.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <ostream>
#include <sstream>

namespace edgesched::obs {

namespace {

std::atomic<std::uint64_t> g_next_sequence{1};

/// Prometheus renders `le` bounds and sample values with the shortest
/// round-trip format; ostream default formatting (6 significant digits)
/// is stable and good enough for power-of-two bounds.
std::string format_double(double value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

}  // namespace

MetricsSnapshot MetricsSnapshot::capture(
    const svc::MetricsRegistry& registry) {
  MetricsSnapshot snapshot;
  snapshot.sequence = g_next_sequence.fetch_add(1, std::memory_order_relaxed);
  snapshot.counters = registry.counter_values();
  snapshot.histograms = registry.histogram_data();
  return snapshot;
}

MetricsSnapshot MetricsSnapshot::delta_since(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta;
  delta.sequence = sequence;
  for (const auto& [name, value] : counters) {
    std::uint64_t base = 0;
    if (const auto it = earlier.counters.find(name);
        it != earlier.counters.end()) {
      base = it->second;
    }
    delta.counters[name] = value >= base ? value - base : 0;
  }
  for (const auto& [name, data] : histograms) {
    svc::MetricsRegistry::HistogramData base;
    if (const auto it = earlier.histograms.find(name);
        it != earlier.histograms.end()) {
      base = it->second;
    }
    svc::MetricsRegistry::HistogramData diff;
    for (std::size_t i = 0; i < data.buckets.size(); ++i) {
      diff.buckets[i] = data.buckets[i] >= base.buckets[i]
                            ? data.buckets[i] - base.buckets[i]
                            : 0;
    }
    diff.count = data.count >= base.count ? data.count - base.count : 0;
    diff.sum = data.sum >= base.sum ? data.sum - base.sum : 0.0;
    delta.histograms.emplace(name, diff);
  }
  return delta;
}

double MetricsSnapshot::quantile(
    const svc::MetricsRegistry::HistogramData& data, double q) noexcept {
  // Mirror of svc::Histogram::quantile over frozen buckets.
  std::uint64_t total = 0;
  for (const std::uint64_t in_bucket : data.buckets) {
    total += in_bucket;
  }
  if (total == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total))));
  const auto& bounds = svc::Histogram::kUpperBounds;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < data.buckets.size(); ++i) {
    const std::uint64_t in_bucket = data.buckets[i];
    if (in_bucket == 0) {
      continue;
    }
    if (cumulative + in_bucket >= rank) {
      if (i >= bounds.size()) {
        return bounds.back();  // +inf bucket clamps
      }
      const double upper = bounds[i];
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double position = static_cast<double>(rank - cumulative) /
                              static_cast<double>(in_bucket);
      return lower + (upper - lower) * position;
    }
    cumulative += in_bucket;
  }
  return bounds.back();
}

std::string MetricsSnapshot::to_prometheus() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters) {
    os << "# TYPE " << name << " counter\n";
    os << name << ' ' << value << '\n';
  }
  const auto& bounds = svc::Histogram::kUpperBounds;
  for (const auto& [name, data] : histograms) {
    os << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += data.buckets[i];
      os << name << "_bucket{le=\"" << format_double(bounds[i]) << "\"} "
         << cumulative << '\n';
    }
    cumulative += data.buckets[bounds.size()];
    os << name << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
    os << name << "_count " << data.count << '\n';
    os << name << "_sum " << format_double(data.sum) << '\n';
    // Non-standard convenience lines; scrapers that only understand the
    // histogram type ignore unknown series.
    os << name << "{quantile=\"0.5\"} " << format_double(quantile(data, 0.50))
       << '\n';
    os << name << "{quantile=\"0.95\"} " << format_double(quantile(data, 0.95))
       << '\n';
    os << name << "{quantile=\"0.99\"} " << format_double(quantile(data, 0.99))
       << '\n';
  }
  return os.str();
}

JsonValue MetricsSnapshot::to_json() const {
  JsonValue counters_json = JsonValue::object();
  for (const auto& [name, value] : counters) {
    counters_json.set(name, JsonValue(value));
  }
  JsonValue histograms_json = JsonValue::object();
  for (const auto& [name, data] : histograms) {
    JsonValue buckets = JsonValue::array();
    for (const std::uint64_t in_bucket : data.buckets) {
      buckets.push(JsonValue(in_bucket));
    }
    histograms_json.set(name,
                        JsonValue::object()
                            .set("count", JsonValue(data.count))
                            .set("sum", JsonValue(data.sum))
                            .set("buckets", std::move(buckets))
                            .set("p50", JsonValue(quantile(data, 0.50)))
                            .set("p95", JsonValue(quantile(data, 0.95)))
                            .set("p99", JsonValue(quantile(data, 0.99))));
  }
  return JsonValue::object()
      .set("type", JsonValue("metrics_snapshot"))
      .set("sequence", JsonValue(sequence))
      .set("counters", std::move(counters_json))
      .set("histograms", std::move(histograms_json));
}

void write_snapshot_line(std::ostream& os, const MetricsSnapshot& snapshot) {
  os << snapshot.to_json().dump() << '\n';
}

PeriodicSnapshotter::PeriodicSnapshotter(const svc::MetricsRegistry& registry,
                                         std::ostream& os, Options options)
    : registry_(registry), os_(os), options_(options) {
  thread_ = std::thread([this] { run(); });
}

PeriodicSnapshotter::~PeriodicSnapshotter() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  write_once();  // final line: short runs still leave one snapshot behind
}

void PeriodicSnapshotter::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    if (cv_.wait_for(lock, options_.interval, [this] { return stop_; })) {
      return;
    }
    lock.unlock();
    write_once();
    lock.lock();
  }
}

void PeriodicSnapshotter::write_once() {
  const MetricsSnapshot current = MetricsSnapshot::capture(registry_);
  if (options_.deltas) {
    write_snapshot_line(os_, current.delta_since(previous_));
    previous_ = current;
  } else {
    write_snapshot_line(os_, current);
  }
  written_.fetch_add(1, std::memory_order_relaxed);
  os_.flush();
}

}  // namespace edgesched::obs
