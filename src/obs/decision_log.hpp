// Structured scheduling decision log.
//
// The paper's contributions are decisions: which processor minimised the
// §4.1 estimate, which route the finish-time-keyed Dijkstra picked, and
// whether optimal insertion placed an edge first-fit or by deferring
// booked slots (Lemma 2). The schedulers record those decisions here so
// that tests can assert *why* a schedule looks the way it does and the
// CLI can dump a JSONL audit of a run.
//
// Activation mirrors the tracer: a process-global `active` pointer, set
// by `ScopedDecisionLog` (RAII, restores the previous log). When no log
// is installed the per-decision cost is one relaxed atomic load at the
// top of `Scheduler::schedule` — the ids here are plain integers so the
// log stays independent of the dag/net layers.
//
// Thread model: `record` is mutex-serialised, so one log may absorb a
// parallel sweep (ordering across concurrent instances is then arrival
// order). With a sink stream attached the log streams each line instead
// of storing it — constant memory for arbitrarily long runs.
//
// Run correlation: `record` stamps each decision with the thread's
// current run ID (obs/run_context) when the caller left `run` at 0, and
// the JSONL gains a `"run":N` member for stamped records — so one log
// absorbing a parallel sweep still attributes every line to its run.
//
// JSONL schema (one object per line, `type` discriminates; full schema
// reference in docs/observability.md):
//   {"type":"task","algorithm":"OIHSA","task":3,"chosen_processor":1,
//    "chosen_estimate":9.0,"candidates":[
//      {"processor":0,"ready_estimate":8.0,"estimate":9.0},...]}
//   {"type":"edge","algorithm":"OIHSA","edge":4,"src_task":1,
//    "dst_task":3,"local":false,"ship_time":5.0,"arrival":9.0,
//    "hops":[{"link":0,"start":5.0,"finish":9.0}]}
//   {"type":"insertion","edge":4,"link":0,"outcome":"deferral",
//    "shifts":2,"slack_consumed":1.5,"start":3.0,"finish":5.0}
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace edgesched::obs {

/// One processor considered by the §4.1 selection loop.
struct ProcessorCandidate {
  std::uint32_t processor = 0;
  double ready_estimate = 0.0;  ///< estimated data-ready moment on it
  double estimate = 0.0;        ///< estimated task finish on it
};

/// Outcome of one task's processor selection.
struct TaskDecision {
  std::string algorithm;
  std::uint32_t task = 0;
  std::uint32_t chosen_processor = 0;
  double chosen_estimate = 0.0;
  std::vector<ProcessorCandidate> candidates;  ///< in evaluation order
  std::uint64_t run = 0;  ///< correlating run ID (filled by record())
};

/// One link occupation of a routed edge.
struct EdgeHop {
  std::uint32_t link = 0;
  double start = 0.0;
  double finish = 0.0;
};

/// Outcome of booking one DAG edge (§4.2 order, §4.3 route).
struct EdgeDecision {
  std::string algorithm;
  std::uint32_t edge = 0;
  std::uint32_t src_task = 0;
  std::uint32_t dst_task = 0;
  bool local = false;      ///< same processor or zero cost: no network
  double ship_time = 0.0;  ///< when the data left the source
  double arrival = 0.0;    ///< when the destination has the data
  std::vector<EdgeHop> hops;  ///< per-link tentative finish times; empty
                              ///< when local
  std::uint64_t run = 0;  ///< correlating run ID (filled by record())
};

/// One runtime recovery choice of the discrete-event executor (src/exec):
/// how a fault was answered — a retry of the killed work, a reschedule of
/// the remaining subgraph onto the surviving topology, or an abort.
/// JSONL: {"type":"recovery","policy":"reschedule","action":"reschedule",
///   "time":12.5,"fault_kind":"processor","fault_target":2,
///   "permanent":true,"algorithm":"oihsa","tasks_remaining":7,
///   "replan_makespan":31.0}
struct RecoveryDecision {
  std::string policy;      ///< configured RecoveryPolicy name
  std::string action;      ///< "retry" | "reschedule" | "abort"
  std::string fault_kind;  ///< "processor" | "link"
  std::uint32_t fault_target = 0;
  bool permanent = false;
  double time = 0.0;            ///< virtual time of the decision
  std::string algorithm;        ///< replanning algorithm ("" for retries)
  std::uint32_t tasks_remaining = 0;
  double replan_makespan = 0.0; ///< sub-schedule makespan (0 for retries)
  std::uint64_t run = 0;  ///< correlating run ID (filled by record())
};

/// Outcome of one optimal-insertion commit on one link (§4.4).
struct InsertionDecision {
  std::uint32_t edge = 0;
  std::uint32_t link = 0;
  bool deferral = false;       ///< false: plain first-fit position
  std::uint32_t shifts = 0;    ///< booked slots displaced
  double slack_consumed = 0.0; ///< total time the displaced slots moved
  double start = 0.0;
  double finish = 0.0;
  std::uint64_t run = 0;  ///< correlating run ID (filled by record())
};

class DecisionLog {
 public:
  DecisionLog() = default;
  /// Streaming mode: every record is serialised to `sink` immediately and
  /// not stored (the accessors then stay empty).
  explicit DecisionLog(std::ostream& sink) : sink_(&sink) {}

  DecisionLog(const DecisionLog&) = delete;
  DecisionLog& operator=(const DecisionLog&) = delete;

  void record(TaskDecision decision);
  void record(EdgeDecision decision);
  void record(InsertionDecision decision);
  void record(RecoveryDecision decision);

  /// Snapshot accessors (copies; safe while workers still record).
  [[nodiscard]] std::vector<TaskDecision> task_decisions() const;
  [[nodiscard]] std::vector<EdgeDecision> edge_decisions() const;
  [[nodiscard]] std::vector<InsertionDecision> insertion_decisions() const;
  [[nodiscard]] std::vector<RecoveryDecision> recovery_decisions() const;
  /// Total records across all three kinds.
  [[nodiscard]] std::size_t size() const;

  /// Writes every stored record, one JSON object per line, in recording
  /// order (no-op in streaming mode — the sink already has them).
  void write_jsonl(std::ostream& os) const;

  /// The log schedulers currently record into; nullptr when none.
  [[nodiscard]] static DecisionLog* active() noexcept;

 private:
  enum class Kind : std::uint8_t { kTask, kEdge, kInsertion, kRecovery };

  void append_line(const std::string& line);

  mutable std::mutex mutex_;
  std::ostream* sink_ = nullptr;
  std::vector<TaskDecision> tasks_;
  std::vector<EdgeDecision> edges_;
  std::vector<InsertionDecision> insertions_;
  std::vector<RecoveryDecision> recoveries_;
  std::vector<std::pair<Kind, std::size_t>> order_;
};

/// Installs `log` as the process-global active decision log for this
/// scope; restores the previous log (usually nullptr) on destruction.
class ScopedDecisionLog {
 public:
  explicit ScopedDecisionLog(DecisionLog& log);
  ~ScopedDecisionLog();

  ScopedDecisionLog(const ScopedDecisionLog&) = delete;
  ScopedDecisionLog& operator=(const ScopedDecisionLog&) = delete;

 private:
  DecisionLog* previous_;
};

namespace detail {
extern std::atomic<DecisionLog*> g_active_decision_log;
}  // namespace detail

/// Hot-path check: the currently installed log, or nullptr.
[[nodiscard]] inline DecisionLog* active_decision_log() noexcept {
  return detail::g_active_decision_log.load(std::memory_order_acquire);
}

}  // namespace edgesched::obs
