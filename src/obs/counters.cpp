#include "obs/counters.hpp"

namespace edgesched::obs {

svc::MetricsRegistry& global_metrics() {
  static svc::MetricsRegistry* registry = new svc::MetricsRegistry();
  return *registry;
}

HotCounters& hot_counters() {
  static HotCounters* counters = [] {
    svc::MetricsRegistry& m = global_metrics();
    return new HotCounters{
        m.counter("sched_dijkstra_relaxations_total"),
        m.counter("sched_link_probes_total"),
        m.counter("sched_optimal_probes_total"),
        m.counter("sched_deferral_scans_total"),
        m.counter("sched_slot_shifts_total"),
        m.counter("sched_deferred_insertions_total"),
        m.counter("sched_bandwidth_probes_total"),
        m.counter("net_route_cache_hits_total"),
        m.counter("net_route_cache_misses_total"),
        m.counter("net_route_memo_hits_total"),
        m.counter("net_route_memo_misses_total"),
        m.counter("sched_probe_gap_steps_total"),
        m.counter("sched_optimal_scan_steps_total"),
        m.counter("sched_candidates_evaluated_total"),
        m.counter("sched_tasks_placed_total"),
        m.counter("sched_edges_routed_total"),
        m.counter("svc_pool_jobs_total"),
        m.counter("sim_sweep_instances_total"),
        m.counter("exec_events_total"),
        m.counter("exec_faults_injected_total"),
        m.counter("exec_retries_total"),
        m.counter("exec_reschedules_total"),
    };
  }();
  return *counters;
}

}  // namespace edgesched::obs
