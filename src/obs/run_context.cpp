#include "obs/run_context.hpp"

#include <atomic>

namespace edgesched::obs {

namespace detail {
thread_local std::uint64_t t_current_run_id = kNoRun;
}  // namespace detail

namespace {
std::atomic<std::uint64_t> g_next_run_id{1};
}  // namespace

std::uint64_t mint_run_id() noexcept {
  return g_next_run_id.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace edgesched::obs
