// Spec-derived observability names.
//
// The scheduling engine names its spans and decision records after the
// algorithm bundle it is running ("ba/schedule", "oihsa/route_edge", ...),
// one scheme for every bundle instead of per-algorithm string literals.
// `Span` stores names by pointer for the disabled-tracing fast path, so
// dynamically derived names must outlive every tracer export:
// `intern_name` returns a process-lifetime pointer for any string, and
// `SpanNames` derives the three per-phase names of one bundle once per
// run (three interner lookups, nothing on the per-task path).
#pragma once

#include <string>
#include <string_view>

namespace edgesched::obs {

/// Returns a pointer to a process-lifetime copy of `name`. Repeated calls
/// with equal strings return the same pointer. Thread-safe; the intern
/// table is append-only and never freed (bounded by the set of distinct
/// algorithm names seen in the process).
[[nodiscard]] const char* intern_name(std::string_view name);

/// The per-phase span names of one algorithm bundle: lower-cased display
/// name plus the fixed phase suffixes the tracer dashboarding keys on.
struct SpanNames {
  explicit SpanNames(std::string_view algorithm);

  const char* schedule;          ///< "<algo>/schedule"
  const char* select_processor;  ///< "<algo>/select_processor"
  const char* route_edge;        ///< "<algo>/route_edge"
};

}  // namespace edgesched::obs
