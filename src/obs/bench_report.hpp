// Machine-readable benchmark telemetry: BENCH_<name>.json.
//
// Every bench binary writes one JSON document describing the run — wall
// time, per-phase span totals (from the tracer's aggregate table),
// counter values (from the global metrics registry) and whatever
// result-series the binary adds (makespan statistics, sweep points).
// The files are the PR-over-PR perf trajectory: CI validates and archives
// them, so a regression shows up as a diff in numbers rather than as an
// anecdote.
//
// Output location: `$EDGESCHED_BENCH_DIR/BENCH_<name>.json`, defaulting
// to the current working directory.
#pragma once

#include <string>

#include "obs/json.hpp"
#include "svc/metrics.hpp"

namespace edgesched::obs {

class BenchReport {
 public:
  explicit BenchReport(std::string name);

  /// The mutable document; pre-populated with "name" and "schema".
  [[nodiscard]] JsonValue& root() noexcept { return root_; }

  void set_number(const std::string& key, double value) {
    root_.set(key, JsonValue(value));
  }
  void set_string(const std::string& key, std::string value) {
    root_.set(key, JsonValue(std::move(value)));
  }

  /// Snapshots the tracer's merged span totals into "span_totals":
  /// {name: {count, seconds}}. Empty object when tracing was disabled.
  void add_span_totals();

  /// Snapshots `registry` counter values into "counters" and histogram
  /// count/sum pairs into "histograms". Defaults to the global scheduler
  /// metrics.
  void add_counters();
  void add_counters(const svc::MetricsRegistry& registry);

  /// `BENCH_<name>.json` inside $EDGESCHED_BENCH_DIR (or the CWD).
  [[nodiscard]] std::string default_path() const;

  /// Writes the document to `default_path()`; returns the path written.
  /// Throws std::runtime_error when the file cannot be opened.
  std::string write() const;
  void write(std::ostream& os) const;

 private:
  std::string name_;
  JsonValue root_;
};

}  // namespace edgesched::obs
