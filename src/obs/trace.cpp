#include "obs/trace.hpp"

#include <cstdio>
#include <memory>
#include <mutex>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "obs/json.hpp"

namespace edgesched::obs {

namespace detail {
std::atomic<int> g_trace_mode{static_cast<int>(TraceMode::kDisabled)};
}  // namespace detail

/// Per-thread recording state. Guarded by its own mutex: the owning
/// thread is the only writer, so the lock is uncontended on the hot path,
/// but it makes concurrent exports (and TSan) happy.
struct Tracer::ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::unordered_map<const char*, SpanTotal> totals;
  std::uint64_t dropped = 0;
  std::uint64_t tid = 0;
};

namespace {

/// Registry of every thread's buffer. Buffers are never removed (a
/// handful of pointers per thread lifetime), so raw thread_local pointers
/// into it stay valid forever.
struct BufferRegistry {
  std::mutex mutex;
  std::vector<std::unique_ptr<Tracer::ThreadBuffer>> buffers;
};

BufferRegistry& registry() {
  static BufferRegistry* instance = new BufferRegistry();
  return *instance;
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  thread_local ThreadBuffer* buffer = [] {
    auto owned = std::make_unique<ThreadBuffer>();
    ThreadBuffer* raw = owned.get();
    BufferRegistry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    raw->tid = reg.buffers.size() + 1;
    reg.buffers.push_back(std::move(owned));
    return raw;
  }();
  return *buffer;
}

void Tracer::set_mode(TraceMode mode) noexcept {
  detail::g_trace_mode.store(static_cast<int>(mode),
                             std::memory_order_relaxed);
}

TraceMode Tracer::mode() const noexcept {
  return static_cast<TraceMode>(
      detail::g_trace_mode.load(std::memory_order_relaxed));
}

void Tracer::clear() {
  BufferRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& buffer : reg.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
    buffer->totals.clear();
    buffer->dropped = 0;
  }
}

void Tracer::record(const TraceEvent& event) {
  ThreadBuffer& buffer = local_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  SpanTotal& total = buffer.totals[event.name];
  ++total.count;
  total.total_ns += event.duration_ns;
  if (mode() == TraceMode::kFull) {
    if (buffer.events.size() < kMaxEventsPerThread) {
      buffer.events.push_back(event);
    } else {
      ++buffer.dropped;
    }
  }
}

std::size_t Tracer::event_count() const {
  BufferRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::size_t count = 0;
  for (const auto& buffer : reg.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    count += buffer->events.size();
  }
  return count;
}

std::uint64_t Tracer::dropped() const {
  BufferRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::uint64_t dropped = 0;
  for (const auto& buffer : reg.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    dropped += buffer->dropped;
  }
  return dropped;
}

std::size_t Tracer::thread_count() const {
  BufferRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::size_t threads = 0;
  for (const auto& buffer : reg.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    if (!buffer->events.empty() || !buffer->totals.empty()) {
      ++threads;
    }
  }
  return threads;
}

std::map<std::string, SpanTotal> Tracer::span_totals() const {
  BufferRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::map<std::string, SpanTotal> merged;
  for (const auto& buffer : reg.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    for (const auto& [name, total] : buffer->totals) {
      SpanTotal& slot = merged[name];
      slot.count += total.count;
      slot.total_ns += total.total_ns;
    }
  }
  return merged;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  BufferRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  // Streamed, not built as a JsonValue: full traces can hold millions of
  // events and the writer must not double their memory footprint.
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& buffer : reg.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    for (const TraceEvent& event : buffer->events) {
      if (!first) {
        os << ',';
      }
      first = false;
      // Timestamps are microseconds; print with fixed millisecond-epoch
      // precision so large steady-clock values survive formatting.
      char ts[48];
      char dur[48];
      std::snprintf(ts, sizeof(ts), "%.3f",
                    static_cast<double>(event.start_ns) / 1000.0);
      std::snprintf(dur, sizeof(dur), "%.3f",
                    static_cast<double>(event.duration_ns) / 1000.0);
      os << "\n{\"name\":\"" << json_escape(event.name) << "\",\"cat\":\""
         << json_escape(event.category) << "\",\"ph\":\"X\",\"pid\":1,"
         << "\"tid\":" << buffer->tid << ",\"ts\":" << ts << ",\"dur\":"
         << dur;
      if (event.arg != kNoArg || event.run_id != 0) {
        os << ",\"args\":{";
        bool first_arg = true;
        if (event.arg != kNoArg) {
          os << "\"id\":" << event.arg;
          first_arg = false;
        }
        if (event.run_id != 0) {
          os << (first_arg ? "" : ",") << "\"run_id\":" << event.run_id;
        }
        os << '}';
      }
      os << '}';
    }
  }
  os << "\n]}\n";
}

void Span::finish() noexcept {
  const auto end = std::chrono::steady_clock::now();
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.start_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       start_.time_since_epoch())
                       .count();
  event.duration_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
          .count();
  event.arg = arg_;
  event.run_id = run_id_;
  // A span that straddles a disable still records: losing the event would
  // be more surprising than one extra entry.
  Tracer::instance().record(event);
}

}  // namespace edgesched::obs
