// Minimal JSON value: build, serialise, parse.
//
// The observability layer emits three machine-readable artifacts — Chrome
// trace-event files, JSONL decision logs and BENCH_*.json telemetry — and
// the test suite plus the CI checker must be able to read them back
// without external dependencies. This is a deliberately small tree value:
// objects are sorted maps (deterministic serialisation), numbers are
// doubles that print as integers when they are integral, and the parser
// accepts exactly the JSON subset RFC 8259 defines (no comments, no
// trailing commas).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace edgesched::obs {

/// Escapes a string for embedding between JSON double quotes.
[[nodiscard]] std::string json_escape(std::string_view text);

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null
  JsonValue(bool value) : type_(Type::kBool), bool_(value) {}
  JsonValue(double value) : type_(Type::kNumber), number_(value) {}
  /// Any integral type widens to double (exact below 2^53, which covers
  /// every counter this codebase emits).
  template <typename T>
    requires std::is_integral_v<T> && (!std::is_same_v<T, bool>)
  JsonValue(T value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(std::string value)
      : type_(Type::kString), string_(std::move(value)) {}
  JsonValue(const char* value) : JsonValue(std::string(value)) {}

  [[nodiscard]] static JsonValue object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }
  [[nodiscard]] static JsonValue array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }

  [[nodiscard]] Type type() const noexcept { return type_; }

  /// Object member assignment; converts a null value to an object first.
  JsonValue& set(const std::string& key, JsonValue value);
  /// Array append; converts a null value to an array first.
  JsonValue& push(JsonValue value);

  [[nodiscard]] bool contains(const std::string& key) const;
  /// Object member / array element access; throws std::out_of_range.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  [[nodiscard]] const JsonValue& at(std::size_t index) const;
  /// Object and array element count; 0 for scalars.
  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] const std::map<std::string, JsonValue>& members() const {
    return object_;
  }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Serialises; `indent >= 0` pretty-prints with that many leading
  /// spaces per level, `indent < 0` emits the compact single-line form.
  void write(std::ostream& os, int indent = -1) const;
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parses a complete JSON document (throws std::runtime_error with the
  /// byte offset on malformed input; trailing garbage is an error).
  [[nodiscard]] static JsonValue parse(std::string_view text);

 private:
  void write_impl(std::ostream& os, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

}  // namespace edgesched::obs
