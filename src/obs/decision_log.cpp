#include "obs/decision_log.hpp"

#include <ostream>

#include "obs/json.hpp"
#include "obs/run_context.hpp"

namespace edgesched::obs {

namespace detail {
std::atomic<DecisionLog*> g_active_decision_log{nullptr};
}  // namespace detail

namespace {

/// Adds the correlating `"run"` member when the decision was recorded
/// inside a run scope; records from scope-less callers keep the PR 2
/// line shape unchanged.
JsonValue& set_run(JsonValue& value, std::uint64_t run) {
  if (run != 0) {
    value.set("run", JsonValue(run));
  }
  return value;
}

JsonValue to_json(const TaskDecision& d) {
  JsonValue candidates = JsonValue::array();
  for (const ProcessorCandidate& c : d.candidates) {
    candidates.push(JsonValue::object()
                        .set("processor", JsonValue(c.processor))
                        .set("ready_estimate", JsonValue(c.ready_estimate))
                        .set("estimate", JsonValue(c.estimate)));
  }
  JsonValue value = JsonValue::object()
                        .set("type", JsonValue("task"))
                        .set("algorithm", JsonValue(d.algorithm))
                        .set("task", JsonValue(d.task))
                        .set("chosen_processor", JsonValue(d.chosen_processor))
                        .set("chosen_estimate", JsonValue(d.chosen_estimate))
                        .set("candidates", std::move(candidates));
  return set_run(value, d.run);
}

JsonValue to_json(const EdgeDecision& d) {
  JsonValue hops = JsonValue::array();
  for (const EdgeHop& hop : d.hops) {
    hops.push(JsonValue::object()
                  .set("link", JsonValue(hop.link))
                  .set("start", JsonValue(hop.start))
                  .set("finish", JsonValue(hop.finish)));
  }
  JsonValue value = JsonValue::object()
                        .set("type", JsonValue("edge"))
                        .set("algorithm", JsonValue(d.algorithm))
                        .set("edge", JsonValue(d.edge))
                        .set("src_task", JsonValue(d.src_task))
                        .set("dst_task", JsonValue(d.dst_task))
                        .set("local", JsonValue(d.local))
                        .set("ship_time", JsonValue(d.ship_time))
                        .set("arrival", JsonValue(d.arrival))
                        .set("hops", std::move(hops));
  return set_run(value, d.run);
}

JsonValue to_json(const RecoveryDecision& d) {
  JsonValue value = JsonValue::object()
                        .set("type", JsonValue("recovery"))
                        .set("policy", JsonValue(d.policy))
                        .set("action", JsonValue(d.action))
                        .set("fault_kind", JsonValue(d.fault_kind))
                        .set("fault_target", JsonValue(d.fault_target))
                        .set("permanent", JsonValue(d.permanent))
                        .set("time", JsonValue(d.time))
                        .set("algorithm", JsonValue(d.algorithm))
                        .set("tasks_remaining", JsonValue(d.tasks_remaining))
                        .set("replan_makespan", JsonValue(d.replan_makespan));
  return set_run(value, d.run);
}

JsonValue to_json(const InsertionDecision& d) {
  JsonValue value = JsonValue::object()
                        .set("type", JsonValue("insertion"))
                        .set("edge", JsonValue(d.edge))
                        .set("link", JsonValue(d.link))
                        .set("outcome",
                             JsonValue(d.deferral ? "deferral" : "first_fit"))
                        .set("shifts", JsonValue(d.shifts))
                        .set("slack_consumed", JsonValue(d.slack_consumed))
                        .set("start", JsonValue(d.start))
                        .set("finish", JsonValue(d.finish));
  return set_run(value, d.run);
}

}  // namespace

void DecisionLog::record(TaskDecision decision) {
  if (decision.run == 0) {
    decision.run = current_run_id();
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (sink_ != nullptr) {
    *sink_ << to_json(decision).dump() << '\n';
    return;
  }
  order_.emplace_back(Kind::kTask, tasks_.size());
  tasks_.push_back(std::move(decision));
}

void DecisionLog::record(EdgeDecision decision) {
  if (decision.run == 0) {
    decision.run = current_run_id();
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (sink_ != nullptr) {
    *sink_ << to_json(decision).dump() << '\n';
    return;
  }
  order_.emplace_back(Kind::kEdge, edges_.size());
  edges_.push_back(std::move(decision));
}

void DecisionLog::record(InsertionDecision decision) {
  if (decision.run == 0) {
    decision.run = current_run_id();
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (sink_ != nullptr) {
    *sink_ << to_json(decision).dump() << '\n';
    return;
  }
  order_.emplace_back(Kind::kInsertion, insertions_.size());
  insertions_.push_back(decision);
}

void DecisionLog::record(RecoveryDecision decision) {
  if (decision.run == 0) {
    decision.run = current_run_id();
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (sink_ != nullptr) {
    *sink_ << to_json(decision).dump() << '\n';
    return;
  }
  order_.emplace_back(Kind::kRecovery, recoveries_.size());
  recoveries_.push_back(std::move(decision));
}

std::vector<TaskDecision> DecisionLog::task_decisions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return tasks_;
}

std::vector<EdgeDecision> DecisionLog::edge_decisions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return edges_;
}

std::vector<InsertionDecision> DecisionLog::insertion_decisions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return insertions_;
}

std::vector<RecoveryDecision> DecisionLog::recovery_decisions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recoveries_;
}

std::size_t DecisionLog::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return order_.size();
}

void DecisionLog::write_jsonl(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [kind, index] : order_) {
    switch (kind) {
      case Kind::kTask:
        os << to_json(tasks_[index]).dump() << '\n';
        break;
      case Kind::kEdge:
        os << to_json(edges_[index]).dump() << '\n';
        break;
      case Kind::kInsertion:
        os << to_json(insertions_[index]).dump() << '\n';
        break;
      case Kind::kRecovery:
        os << to_json(recoveries_[index]).dump() << '\n';
        break;
    }
  }
}

DecisionLog* DecisionLog::active() noexcept { return active_decision_log(); }

ScopedDecisionLog::ScopedDecisionLog(DecisionLog& log)
    : previous_(detail::g_active_decision_log.exchange(
          &log, std::memory_order_acq_rel)) {}

ScopedDecisionLog::~ScopedDecisionLog() {
  detail::g_active_decision_log.store(previous_, std::memory_order_release);
}

}  // namespace edgesched::obs
