// Point-in-time metrics exposition: snapshot, delta, Prometheus text,
// JSON, and a periodic JSONL snapshotter for long-running services.
//
// `MetricsRegistry` answers "what are the totals right now"; this module
// turns that into production artifacts:
//
//   * `MetricsSnapshot::capture(registry)` — a consistent-enough copy of
//     every counter and full histogram (buckets, count, sum) at one
//     moment, tagged with a monotonically increasing sequence number.
//   * `delta_since(earlier)` — the traffic between two snapshots
//     (counter differences, per-bucket histogram differences), which is
//     what a scrape-interval rate wants.
//   * `to_prometheus()` — text exposition format (`# TYPE` comments,
//     `_bucket{le=...}`, `_count`, `_sum`, plus non-standard
//     `{quantile=...}` gauge lines for p50/p95/p99).
//   * `to_json()` — the same data as one obs/json document, the shape
//     the CLI's `--metrics-json` writes and `tools/check_json`
//     validates in CI.
//   * `PeriodicSnapshotter` — a background thread appending one
//     JSON-per-line snapshot (full or delta) to a stream every interval,
//     so a service exports its history without any scrape
//     infrastructure.
//
// Determinism: a snapshot of deterministic counters serialises
// byte-identically across same-seed runs (sorted maps, obs/json number
// formatting). Sequence numbers are process-local.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "obs/json.hpp"
#include "svc/metrics.hpp"

namespace edgesched::obs {

struct MetricsSnapshot {
  /// Process-local capture sequence number (1, 2, ... in capture order;
  /// 0 for default-constructed and delta snapshots).
  std::uint64_t sequence = 0;

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, svc::MetricsRegistry::HistogramData> histograms;

  /// Copies every metric of `registry` now.
  [[nodiscard]] static MetricsSnapshot capture(
      const svc::MetricsRegistry& registry);

  /// The traffic between `earlier` and this snapshot: counter and
  /// per-bucket differences (clamped at 0 if a metric was reset in
  /// between). Metrics absent from `earlier` count from zero.
  [[nodiscard]] MetricsSnapshot delta_since(
      const MetricsSnapshot& earlier) const;

  /// Prometheus text exposition format.
  [[nodiscard]] std::string to_prometheus() const;

  /// One JSON document: {"type":"metrics_snapshot","sequence":N,
  ///  "counters":{...},"histograms":{name:{"count","sum","buckets":[...],
  ///  "p50","p95","p99"}}}.
  [[nodiscard]] JsonValue to_json() const;

  /// Estimated quantile of one captured histogram (same estimator as
  /// svc::Histogram::quantile, applied to the frozen buckets).
  [[nodiscard]] static double quantile(
      const svc::MetricsRegistry::HistogramData& data, double q) noexcept;
};

/// Appends `snapshot.to_json()` (compact, one line) to `os`.
void write_snapshot_line(std::ostream& os, const MetricsSnapshot& snapshot);

struct SnapshotterOptions {
  std::chrono::milliseconds interval{1000};
  /// true: each line is the delta since the previous snapshot;
  /// false: each line is the full running totals.
  bool deltas = false;
};

/// Background thread writing one snapshot line per interval.
class PeriodicSnapshotter {
 public:
  using Options = SnapshotterOptions;

  /// Starts snapshotting `registry` into `os` immediately (the first
  /// line is written after one interval). The stream and registry must
  /// outlive this object.
  PeriodicSnapshotter(const svc::MetricsRegistry& registry, std::ostream& os,
                      Options options = {});

  /// Stops the thread and writes one final snapshot line (so short runs
  /// always leave at least one line behind).
  ~PeriodicSnapshotter();

  PeriodicSnapshotter(const PeriodicSnapshotter&) = delete;
  PeriodicSnapshotter& operator=(const PeriodicSnapshotter&) = delete;

  /// Lines written so far.
  [[nodiscard]] std::uint64_t snapshots_written() const noexcept {
    return written_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  void write_once();

  const svc::MetricsRegistry& registry_;
  std::ostream& os_;
  Options options_;
  MetricsSnapshot previous_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<std::uint64_t> written_{0};
  std::thread thread_;
};

}  // namespace edgesched::obs
