#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace edgesched::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  if (type_ == Type::kNull) {
    type_ = Type::kObject;
  }
  if (type_ != Type::kObject) {
    throw std::logic_error("JsonValue::set on a non-object");
  }
  object_[key] = std::move(value);
  return *this;
}

JsonValue& JsonValue::push(JsonValue value) {
  if (type_ == Type::kNull) {
    type_ = Type::kArray;
  }
  if (type_ != Type::kArray) {
    throw std::logic_error("JsonValue::push on a non-array");
  }
  array_.push_back(std::move(value));
  return *this;
}

bool JsonValue::contains(const std::string& key) const {
  return type_ == Type::kObject && object_.count(key) != 0;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  if (type_ != Type::kObject) {
    throw std::out_of_range("JsonValue::at(key) on a non-object");
  }
  const auto it = object_.find(key);
  if (it == object_.end()) {
    throw std::out_of_range("JsonValue: no member \"" + key + "\"");
  }
  return it->second;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  if (type_ != Type::kArray || index >= array_.size()) {
    throw std::out_of_range("JsonValue::at(index) out of range");
  }
  return array_[index];
}

std::size_t JsonValue::size() const noexcept {
  switch (type_) {
    case Type::kArray:
      return array_.size();
    case Type::kObject:
      return object_.size();
    default:
      return 0;
  }
}

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) {
    throw std::logic_error("JsonValue::as_bool on a non-bool");
  }
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) {
    throw std::logic_error("JsonValue::as_number on a non-number");
  }
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) {
    throw std::logic_error("JsonValue::as_string on a non-string");
  }
  return string_;
}

namespace {

void write_number(std::ostream& os, double value) {
  if (!std::isfinite(value)) {
    os << "null";  // JSON has no inf/nan
    return;
  }
  // Integral doubles within the exactly-representable range print as
  // integers so counters round-trip without a fractional tail.
  if (value == std::floor(value) && std::abs(value) < 9.007199254740992e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
    os << buffer;
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  os << buffer;
}

}  // namespace

void JsonValue::write_impl(std::ostream& os, int indent, int depth) const {
  const std::string pad =
      indent >= 0 ? std::string(static_cast<std::size_t>(indent) *
                                    (static_cast<std::size_t>(depth) + 1),
                                ' ')
                  : std::string();
  const std::string close_pad =
      indent >= 0
          ? std::string(
                static_cast<std::size_t>(indent) * static_cast<std::size_t>(
                                                       depth),
                ' ')
          : std::string();
  const char* nl = indent >= 0 ? "\n" : "";
  switch (type_) {
    case Type::kNull:
      os << "null";
      break;
    case Type::kBool:
      os << (bool_ ? "true" : "false");
      break;
    case Type::kNumber:
      write_number(os, number_);
      break;
    case Type::kString:
      os << '"' << json_escape(string_) << '"';
      break;
    case Type::kArray: {
      if (array_.empty()) {
        os << "[]";
        break;
      }
      os << '[' << nl;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        os << pad;
        array_[i].write_impl(os, indent, depth + 1);
        if (i + 1 < array_.size()) {
          os << ',';
        }
        os << nl;
      }
      os << close_pad << ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        os << "{}";
        break;
      }
      os << '{' << nl;
      std::size_t i = 0;
      for (const auto& [key, value] : object_) {
        os << pad << '"' << json_escape(key) << "\":";
        if (indent >= 0) {
          os << ' ';
        }
        value.write_impl(os, indent, depth + 1);
        if (++i < object_.size()) {
          os << ',';
        }
        os << nl;
      }
      os << close_pad << '}';
      break;
    }
  }
}

void JsonValue::write(std::ostream& os, int indent) const {
  write_impl(os, indent, 0);
}

std::string JsonValue::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) {
          fail("invalid literal");
        }
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) {
          fail("invalid literal");
        }
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) {
          fail("invalid literal");
        }
        return JsonValue();
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue value = JsonValue::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      value.set(key, parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue value = JsonValue::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    for (;;) {
      value.push(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // Minimal UTF-8 encoding; surrogate pairs are passed through as
          // two 3-byte sequences (sufficient for our own artifacts).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    try {
      std::size_t consumed = 0;
      const double value = std::stod(token, &consumed);
      if (consumed != token.size()) {
        fail("malformed number");
      }
      return JsonValue(value);
    } catch (const std::logic_error&) {
      fail("malformed number");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace edgesched::obs
