#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "obs/run_context.hpp"
#include "util/env.hpp"

namespace edgesched::obs {

const char* flight_event_kind_name(FlightEventKind kind) noexcept {
  switch (kind) {
    case FlightEventKind::kSchedule:
      return "schedule";
    case FlightEventKind::kExecStart:
      return "exec_start";
    case FlightEventKind::kExecRound:
      return "exec_round";
    case FlightEventKind::kFault:
      return "fault";
    case FlightEventKind::kRecovery:
      return "recovery";
    case FlightEventKind::kExecEnd:
      return "exec_end";
    case FlightEventKind::kAbort:
      return "abort";
    case FlightEventKind::kJob:
      return "job";
    case FlightEventKind::kCache:
      return "cache";
    case FlightEventKind::kNote:
      return "note";
  }
  return "unknown";
}

/// Per-thread ring. Same locking model as Tracer::ThreadBuffer: the
/// owning thread is the only writer, so the mutex is uncontended on the
/// record path but makes concurrent dumps (and TSan) happy.
struct FlightRecorder::ThreadRing {
  std::mutex mutex;
  std::deque<FlightEntry> entries;
};

namespace {

/// Registry of every thread's ring; rings are never removed so the raw
/// thread_local pointers into it stay valid for the process lifetime.
struct RingRegistry {
  std::mutex mutex;
  std::vector<std::unique_ptr<FlightRecorder::ThreadRing>> rings;
};

RingRegistry& registry() {
  static RingRegistry* instance = new RingRegistry();
  return *instance;
}

}  // namespace

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

FlightRecorder::ThreadRing& FlightRecorder::local_ring() {
  thread_local ThreadRing* ring = [] {
    auto owned = std::make_unique<ThreadRing>();
    ThreadRing* raw = owned.get();
    RingRegistry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    reg.rings.push_back(std::move(owned));
    return raw;
  }();
  return *ring;
}

void FlightRecorder::set_capacity(std::size_t capacity) noexcept {
  capacity_.store(std::max<std::size_t>(1, capacity),
                  std::memory_order_relaxed);
}

void FlightRecorder::record(FlightEventKind kind, const char* label,
                            double time, std::uint64_t a, double b) {
  if (!enabled()) {
    return;
  }
  FlightEntry entry;
  entry.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  entry.run = current_run_id();
  entry.kind = kind;
  entry.label = label;
  entry.time = time;
  entry.a = a;
  entry.b = b;
  const std::size_t capacity = this->capacity();
  ThreadRing& ring = local_ring();
  const std::lock_guard<std::mutex> lock(ring.mutex);
  while (ring.entries.size() >= capacity) {
    ring.entries.pop_front();
  }
  ring.entries.push_back(entry);
}

std::size_t FlightRecorder::size() const {
  RingRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::size_t total = 0;
  for (const auto& ring : reg.rings) {
    const std::lock_guard<std::mutex> ring_lock(ring->mutex);
    total += ring->entries.size();
  }
  return total;
}

void FlightRecorder::clear() {
  RingRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& ring : reg.rings) {
    const std::lock_guard<std::mutex> ring_lock(ring->mutex);
    ring->entries.clear();
  }
  next_seq_.store(1, std::memory_order_relaxed);
}

JsonValue FlightRecorder::dump_json(const std::string& reason) const {
  std::vector<FlightEntry> merged;
  {
    RingRegistry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto& ring : reg.rings) {
      const std::lock_guard<std::mutex> ring_lock(ring->mutex);
      merged.insert(merged.end(), ring->entries.begin(),
                    ring->entries.end());
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const FlightEntry& lhs, const FlightEntry& rhs) {
              return lhs.seq < rhs.seq;
            });
  JsonValue entries = JsonValue::array();
  for (const FlightEntry& entry : merged) {
    entries.push(JsonValue::object()
                     .set("seq", JsonValue(entry.seq))
                     .set("run", JsonValue(entry.run))
                     .set("kind", JsonValue(flight_event_kind_name(entry.kind)))
                     .set("label", JsonValue(entry.label))
                     .set("time", JsonValue(entry.time))
                     .set("a", JsonValue(entry.a))
                     .set("b", JsonValue(entry.b)));
  }
  return JsonValue::object()
      .set("type", JsonValue("postmortem"))
      .set("reason", JsonValue(reason))
      .set("entries", std::move(entries));
}

void FlightRecorder::write_postmortem(std::ostream& os,
                                      const std::string& reason) const {
  os << dump_json(reason).dump(2) << '\n';
}

std::string FlightRecorder::maybe_write_postmortem(
    const std::string& reason) const {
  const std::string dir = env_string("EDGESCHED_POSTMORTEM_DIR", "");
  if (dir.empty()) {
    return "";
  }
  // Deterministic filename: keyed by reason only, so same-seed reruns
  // overwrite rather than accumulate.
  std::string slug = reason;
  for (char& c : slug) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (!keep) {
      c = '_';
    }
  }
  const std::string path = dir + "/postmortem_" + slug + ".json";
  std::ofstream os(path);
  if (!os) {
    return "";
  }
  write_postmortem(os, reason);
  return path;
}

}  // namespace edgesched::obs
