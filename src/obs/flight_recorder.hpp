// Always-on postmortem flight recorder.
//
// The tracer and decision log are opt-in: when a run fails they were
// usually off, and the evidence is gone. The flight recorder is the
// opposite trade — always on, bounded, coarse. Every thread keeps a
// small ring of the last `capacity()` milestone events (a schedule
// produced, a fault injected, a recovery decision, a run finishing, a
// service job), and when something goes wrong the rings merge into one
// JSON postmortem that shows what the process was doing just before.
//
// Cost discipline: recording sites are coarse (per schedule() call, per
// fault/recovery/round — never per task, edge or simulated event), the
// enabled check is one relaxed atomic load, and a disabled recorder
// records nothing. Benchmarks (bench/telemetry.hpp) disable it for the
// measured region so the ≤2% disabled-path overhead envelope covers
// "tracer + recorder off".
//
// Determinism: entries carry *virtual* time and logical payloads only —
// no wall clock — so same-seed runs dump byte-identical postmortems.
// The global sequence number orders entries across threads; under the
// single-threaded CLI it is exactly the recording order.
//
// Dump triggers (all funnel through `maybe_write_postmortem`):
//   * exec::execute on validator failure or recovery exhaustion,
//   * the CLI on demand (`edgesched_cli run --postmortem <file>`),
//   * anything else that wants a black-box snapshot.
// Automatic dumps are written only when EDGESCHED_POSTMORTEM_DIR is set
// (tests and CI point it at a scratch directory; interactive runs stay
// quiet). Format reference: docs/observability.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/json.hpp"

namespace edgesched::obs {

/// Milestone kinds the recorder distinguishes. Payload fields `a`/`b`
/// are kind-specific (documented per enumerator).
enum class FlightEventKind : std::uint8_t {
  kSchedule = 0,   ///< engine produced a schedule; a=tasks, b=makespan
  kExecStart = 1,  ///< executor run started; a=tasks, b=0
  kExecRound = 2,  ///< executor (re)plan round ended; a=round, b=vtime
  kFault = 3,      ///< fault injected; a=target id, b=vtime
  kRecovery = 4,   ///< recovery decision; a=tasks remaining, b=vtime
  kExecEnd = 5,    ///< executor run finished; a=completed!=0, b=makespan
  kAbort = 6,      ///< run aborted (exhaustion/fail-stop); a=round, b=vtime
  kJob = 7,        ///< service job finished; a=job id, b=0
  kCache = 8,      ///< service cache lookup; a=hit!=0, b=0
  kNote = 9,       ///< free-form milestone; payload site-defined
};

/// Stable lowercase name of `kind` (JSON `"kind"` member).
[[nodiscard]] const char* flight_event_kind_name(
    FlightEventKind kind) noexcept;

/// One recorded milestone.
struct FlightEntry {
  std::uint64_t seq = 0;  ///< global recording order (1-based)
  std::uint64_t run = 0;  ///< correlating run ID (obs/run_context), 0 none
  FlightEventKind kind = FlightEventKind::kNote;
  const char* label = "";  ///< static string literal (site description)
  double time = 0.0;       ///< virtual/model time when known, else 0
  std::uint64_t a = 0;     ///< kind-specific payload
  double b = 0.0;          ///< kind-specific payload
};

class FlightRecorder {
 public:
  /// Default per-thread ring capacity (entries).
  static constexpr std::size_t kDefaultCapacity = 256;

  [[nodiscard]] static FlightRecorder& instance();

  /// Records one milestone into the calling thread's ring, stamping it
  /// with the next global sequence number and the thread's current run
  /// ID. No-op while disabled.
  void record(FlightEventKind kind, const char* label, double time = 0.0,
              std::uint64_t a = 0, double b = 0.0);

  /// Hot-path check: one relaxed atomic load.
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Per-thread ring capacity. Setting it applies to rings lazily (each
  /// ring trims at its next record); existing entries are kept.
  [[nodiscard]] std::size_t capacity() const noexcept {
    return capacity_.load(std::memory_order_relaxed);
  }
  void set_capacity(std::size_t capacity) noexcept;

  /// Entries currently held across all threads (≤ threads × capacity).
  [[nodiscard]] std::size_t size() const;

  /// Discards all recorded entries (rings stay registered) and resets
  /// the sequence counter — so tests and the CLI start from seq 1.
  void clear();

  /// Merges every thread's ring in sequence order into one postmortem
  /// document: {"type":"postmortem","reason":reason,
  ///  "entries":[{"seq","run","kind","label","time","a","b"},...]}.
  [[nodiscard]] JsonValue dump_json(const std::string& reason) const;

  /// Writes `dump_json(reason)` to `os`, pretty-printed, trailing newline.
  void write_postmortem(std::ostream& os, const std::string& reason) const;

  /// Automatic-trigger hook: when the EDGESCHED_POSTMORTEM_DIR
  /// environment variable names a directory, writes
  /// `<dir>/postmortem_<reason>.json` and returns the path; otherwise
  /// does nothing and returns "". Failures to open the file are
  /// swallowed (the recorder must never take down the run it is
  /// documenting).
  std::string maybe_write_postmortem(const std::string& reason) const;

  struct ThreadRing;  ///< implementation detail, defined in the .cpp

 private:
  FlightRecorder() = default;
  [[nodiscard]] ThreadRing& local_ring();

  std::atomic<bool> enabled_{true};
  std::atomic<std::size_t> capacity_{kDefaultCapacity};
  std::atomic<std::uint64_t> next_seq_{1};
};

/// Shorthand for FlightRecorder::instance().
[[nodiscard]] inline FlightRecorder& flight_recorder() {
  return FlightRecorder::instance();
}

/// Disables the recorder for a scope (benchmark measured regions);
/// restores the previous state on destruction.
class ScopedFlightRecorderPause {
 public:
  ScopedFlightRecorderPause()
      : previous_(flight_recorder().enabled()) {
    flight_recorder().set_enabled(false);
  }
  ~ScopedFlightRecorderPause() { flight_recorder().set_enabled(previous_); }

  ScopedFlightRecorderPause(const ScopedFlightRecorderPause&) = delete;
  ScopedFlightRecorderPause& operator=(const ScopedFlightRecorderPause&) =
      delete;

 private:
  bool previous_;
};

}  // namespace edgesched::obs
