// Hot-path scheduler counters.
//
// The schedulers, timelines and routing layer count the work their inner
// loops perform (Dijkstra relaxations, insertion probes, deferral scans,
// route-cache traffic, ...) into one process-global svc::MetricsRegistry.
// Counters are always on; the cost discipline is *batching*: inner loops
// accumulate into plain locals or per-object members and flush a single
// atomic add per route / per scheduling state, so the per-operation cost
// on the hot path is a non-atomic increment.
//
// `hot_counters()` resolves every counter once (the references stay valid
// for the process lifetime; `MetricsRegistry::reset_for_test()` zeroes
// values without invalidating them). The full catalog is documented in
// docs/observability.md.
#pragma once

#include "svc/metrics.hpp"

namespace edgesched::obs {

/// Process-global registry for scheduler/runtime counters. Distinct from
/// any svc::SchedulerService instance registry (those track service
/// traffic; this one tracks algorithm internals).
[[nodiscard]] svc::MetricsRegistry& global_metrics();

/// Pre-resolved counter references for instrumented hot paths.
struct HotCounters {
  svc::Counter& dijkstra_relaxations;  ///< modified-routing probe relaxations
  svc::Counter& link_probes;           ///< first-fit insertion searches
  svc::Counter& optimal_probes;        ///< optimal-insertion searches
  svc::Counter& deferral_scans;        ///< Lemma-2 slack evaluations
  svc::Counter& slot_shifts;           ///< occupations displaced by deferral
  svc::Counter& deferred_insertions;   ///< insertions that displaced slots
  svc::Counter& bandwidth_probes;      ///< BBSA bandwidth routing probes
  svc::Counter& route_cache_hits;
  svc::Counter& route_cache_misses;
  svc::Counter& route_memo_hits;    ///< probe-route memo fast-path hits
  svc::Counter& route_memo_misses;  ///< probe-route memo recomputations
  svc::Counter& probe_gap_steps;    ///< idle intervals examined by probes
  svc::Counter& optimal_scan_steps; ///< slots visited by the accum scan
  svc::Counter& candidates_evaluated;  ///< processor candidates scored
  svc::Counter& tasks_placed;
  svc::Counter& edges_routed;  ///< remote edges committed to the network
  svc::Counter& pool_jobs;     ///< svc::ThreadPool jobs executed
  svc::Counter& sweep_instances;
  svc::Counter& exec_events;       ///< executor events processed
  svc::Counter& exec_faults;       ///< fault events injected
  svc::Counter& exec_retries;      ///< task/transfer attempts restarted
  svc::Counter& exec_reschedules;  ///< online replans performed
};

[[nodiscard]] HotCounters& hot_counters();

}  // namespace edgesched::obs
