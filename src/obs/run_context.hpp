// Run correlation: one process-unique ID per scheduling/execution run.
//
// PR 2's telemetry streams — engine spans, DecisionLog JSONL, hot
// counters — and PR 5's execution events grew up independently, so a
// `svc` job, the spans it produced, the decisions it logged and the
// ExecutionReport it returned were four disjoint artifacts. A RunContext
// stitches them together: `SchedulerService::submit`/`execute` (and the
// CLI, and `exec::execute` when called bare) mint one run ID per
// request, install it for the scope of the work, and every event
// recorded inside that scope — trace events, decision records, flight
// recorder entries, the execution report — carries it.
//
// Determinism: IDs come from one process-global counter, so they are
// allocated in submission order — under a fixed seed and submission
// order (the CLI, the tests, any serial driver) the same run gets the
// same ID every invocation, which keeps same-seed artifact dumps
// byte-identical.
//
// Cost model: `current_run_id()` is one thread-local load; installing a
// scope is two. Nothing allocates. The ID is propagated per *thread* —
// a pool job installs the scope inside the job body, so work executed
// on behalf of a run is tagged no matter which worker picks it up.
#pragma once

#include <cstdint>

namespace edgesched::obs {

/// ID of "no active run" (events recorded outside any scope).
inline constexpr std::uint64_t kNoRun = 0;

/// Allocates the next process-unique run ID (1, 2, 3, ... in call
/// order). Thread-safe.
[[nodiscard]] std::uint64_t mint_run_id() noexcept;

namespace detail {
extern thread_local std::uint64_t t_current_run_id;
}  // namespace detail

/// The run ID installed on this thread, or kNoRun.
[[nodiscard]] inline std::uint64_t current_run_id() noexcept {
  return detail::t_current_run_id;
}

/// Installs `run_id` as this thread's current run for the scope's
/// lifetime; restores the previous value (usually kNoRun) on
/// destruction. Nests: an inner scope shadows the outer one.
class ScopedRunId {
 public:
  explicit ScopedRunId(std::uint64_t run_id) noexcept
      : previous_(detail::t_current_run_id) {
    detail::t_current_run_id = run_id;
  }
  ~ScopedRunId() { detail::t_current_run_id = previous_; }

  ScopedRunId(const ScopedRunId&) = delete;
  ScopedRunId& operator=(const ScopedRunId&) = delete;

 private:
  std::uint64_t previous_;
};

}  // namespace edgesched::obs
