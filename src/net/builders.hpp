// Topology factories.
//
// `random_wan` is the evaluation network of the paper (§6): switches each
// connecting U(4,16) processors, switches randomly interconnected but
// mutually reachable. The regular fabrics (fully connected, star, ring,
// mesh, torus, hypercube, fat-tree, bus) serve tests, examples and
// ablations; `fully_connected` with uniform speeds is the classic
// contention-free model's network made explicit.
#pragma once

#include <cstddef>
#include <vector>

#include "net/topology.hpp"
#include "util/rng.hpp"

namespace edgesched::net {

/// Speed configuration shared by the builders. Homogeneous systems use
/// fixed speeds (paper: all 1); heterogeneous systems draw integer speeds
/// from U(min, max) (paper: U(1, 10)).
struct SpeedConfig {
  bool heterogeneous = false;
  double fixed_processor_speed = 1.0;
  double fixed_link_speed = 1.0;
  double processor_speed_min = 1.0;
  double processor_speed_max = 10.0;
  double link_speed_min = 1.0;
  double link_speed_max = 10.0;

  [[nodiscard]] double processor_speed(Rng& rng) const;
  [[nodiscard]] double link_speed(Rng& rng) const;
};

/// Every pair of processors joined by a dedicated full-duplex cable: the
/// idealised fully connected machine, but with explicit (and therefore
/// schedulable) links.
[[nodiscard]] Topology fully_connected(std::size_t num_processors,
                                       const SpeedConfig& speeds, Rng& rng);

/// All processors hang off one central switch. The single switch makes
/// every cross-processor message share the fabric — the simplest contended
/// topology.
[[nodiscard]] Topology switched_star(std::size_t num_processors,
                                     const SpeedConfig& speeds, Rng& rng);

/// Processors in a cycle, duplex cables between neighbours; messages are
/// forwarded through intermediate processors.
[[nodiscard]] Topology ring(std::size_t num_processors,
                            const SpeedConfig& speeds, Rng& rng);

/// rows × cols grid of processors with duplex cables between 4-neighbours.
[[nodiscard]] Topology mesh2d(std::size_t rows, std::size_t cols,
                              const SpeedConfig& speeds, Rng& rng);

/// Like mesh2d plus wraparound cables.
[[nodiscard]] Topology torus2d(std::size_t rows, std::size_t cols,
                               const SpeedConfig& speeds, Rng& rng);

/// 2^dimensions processors, duplex cable per hypercube edge.
[[nodiscard]] Topology hypercube(std::size_t dimensions,
                                 const SpeedConfig& speeds, Rng& rng);

/// Two-level switch tree: `num_leaf_switches` leaf switches with
/// `processors_per_switch` processors each, all leaves connected to a
/// core switch by duplex uplinks.
[[nodiscard]] Topology fat_tree(std::size_t num_leaf_switches,
                                std::size_t processors_per_switch,
                                const SpeedConfig& speeds, Rng& rng);

/// All processors on one shared bus (a hyperedge of H): every transfer
/// contends for the same medium.
[[nodiscard]] Topology bus(std::size_t num_processors,
                           const SpeedConfig& speeds, Rng& rng);

/// Dragonfly-style fabric: `groups` groups of `switches_per_group`
/// switches (fully meshed inside a group, one global cable between every
/// pair of groups), each switch hosting `processors_per_switch`
/// processors. The staple of modern HPC interconnects.
[[nodiscard]] Topology dragonfly(std::size_t groups,
                                 std::size_t switches_per_group,
                                 std::size_t processors_per_switch,
                                 const SpeedConfig& speeds, Rng& rng);

/// Balanced switch tree of `levels` levels and arity `arity` with
/// processors on the leaf switches — a deeper generalisation of
/// `fat_tree`.
[[nodiscard]] Topology switch_tree(std::size_t levels, std::size_t arity,
                                   std::size_t processors_per_leaf,
                                   const SpeedConfig& speeds, Rng& rng);

/// Parameters of the paper's random wide-area network.
struct RandomWanParams {
  std::size_t num_processors = 16;
  /// Switch fan-out drawn from U(fanout_min, fanout_max) — paper: U(4,16).
  std::size_t fanout_min = 4;
  std::size_t fanout_max = 16;
  /// Probability of each extra switch-switch cable beyond the random
  /// spanning tree that guarantees connectivity.
  double extra_switch_link_probability = 0.3;
  SpeedConfig speeds;
};

/// Random multi-switch WAN per the paper: processors partitioned over
/// switches with random fan-out, switches joined by a random spanning tree
/// plus extra random cables for route diversity.
[[nodiscard]] Topology random_wan(const RandomWanParams& params, Rng& rng);

}  // namespace edgesched::net
