#include "net/routing.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace edgesched::net {

Route bfs_route(const Topology& topology, NodeId from, NodeId to) {
  throw_if(from.index() >= topology.num_nodes() ||
               to.index() >= topology.num_nodes(),
           "bfs_route: invalid endpoint");
  if (from == to) {
    return {};
  }
  std::vector<LinkId> parent(topology.num_nodes());
  std::vector<bool> seen(topology.num_nodes(), false);
  std::queue<NodeId> frontier;
  frontier.push(from);
  seen[from.index()] = true;
  while (!frontier.empty() && !seen[to.index()]) {
    const NodeId current = frontier.front();
    frontier.pop();
    for (LinkId l : topology.out_links(current)) {
      const NodeId next = topology.link(l).dst;
      if (!seen[next.index()]) {
        seen[next.index()] = true;
        parent[next.index()] = l;
        frontier.push(next);
      }
    }
  }
  throw_if(!seen[to.index()], "bfs_route: destination unreachable");
  Route route;
  NodeId at = to;
  while (at != from) {
    const LinkId hop = parent[at.index()];
    route.push_back(hop);
    at = topology.link(hop).src;
  }
  std::reverse(route.begin(), route.end());
  return route;
}

RouteCache::~RouteCache() {
  if (hits_ > 0) {
    obs::hot_counters().route_cache_hits.increment(hits_);
  }
  if (misses_ > 0) {
    obs::hot_counters().route_cache_misses.increment(misses_);
  }
}

const Route& RouteCache::route(NodeId from, NodeId to) {
  throw_if(from.index() >= shards_.size() ||
               to.index() >= topology_->num_nodes(),
           "RouteCache: invalid endpoint");
  Shard& shard = shards_[from.index()];
  if (shard.routes.empty()) {
    shard.routes.resize(topology_->num_nodes());
    shard.cached.assign(topology_->num_nodes(), 0);
  }
  if (shard.cached[to.index()] != 0) {
    ++hits_;
  } else {
    shard.routes[to.index()] = bfs_route(*topology_, from, to);
    shard.cached[to.index()] = 1;
    ++misses_;
  }
  return shard.routes[to.index()];
}

StaticRouteTable::StaticRouteTable(const Topology& topology) {
  shards_.resize(topology.num_nodes());
  // One BFS per processor source, identical discovery order to
  // `bfs_route` but run to exhaustion so every destination's parent is
  // assigned in one pass. Early stopping cannot change any parent that
  // was already assigned (BFS assigns each node's parent exactly once,
  // in deterministic frontier order), so the extracted routes are
  // byte-identical to per-destination `bfs_route` calls.
  const std::size_t n = topology.num_nodes();
  std::vector<LinkId> parent(n);
  std::vector<char> seen(n);
  std::vector<NodeId> frontier;
  frontier.reserve(n);
  for (const NodeId from : topology.processors()) {
    std::fill(seen.begin(), seen.end(), 0);
    frontier.clear();
    frontier.push_back(from);
    seen[from.index()] = 1;
    for (std::size_t head = 0; head < frontier.size(); ++head) {
      const NodeId current = frontier[head];
      for (LinkId l : topology.out_links(current)) {
        const NodeId next = topology.link(l).dst;
        if (seen[next.index()] == 0) {
          seen[next.index()] = 1;
          parent[next.index()] = l;
          frontier.push_back(next);
        }
      }
    }
    Shard& shard = shards_[from.index()];
    shard.routes.resize(n);
    shard.cached.assign(n, 0);
    shard.cached[from.index()] = 1;  // from == to: the empty route
    for (const NodeId to : topology.processors()) {
      if (to == from || seen[to.index()] == 0) {
        continue;
      }
      Route route;
      NodeId at = to;
      while (at != from) {
        const LinkId hop = parent[at.index()];
        route.push_back(hop);
        at = topology.link(hop).src;
      }
      std::reverse(route.begin(), route.end());
      shard.routes[to.index()] = std::move(route);
      shard.cached[to.index()] = 1;
    }
  }
}

const Route& StaticRouteTable::route(NodeId from, NodeId to) const {
  throw_if(from.index() >= shards_.size(), "StaticRouteTable: bad source");
  const Shard& shard = shards_[from.index()];
  throw_if(to.index() >= shard.routes.size() ||
               shard.cached[to.index()] == 0,
           "StaticRouteTable: route not materialised (processors only)");
  return shard.routes[to.index()];
}

ProbedRouteCache::~ProbedRouteCache() { flush_tallies(); }

void ProbedRouteCache::flush_tallies() {
  if (hits_ > 0) {
    obs::hot_counters().route_memo_hits.increment(hits_);
    hits_ = 0;
  }
  if (misses_ > 0) {
    obs::hot_counters().route_memo_misses.increment(misses_);
    misses_ = 0;
  }
}

const Route* ProbedRouteCache::lookup(NodeId from, NodeId to, double ready,
                                      double cost,
                                      std::uint64_t generation) {
  if (from.index() < shards_.size()) {
    const Shard& shard = shards_[from.index()];
    if (to.index() < shard.entries.size()) {
      const Entry& entry = shard.entries[to.index()];
      if (entry.cached && entry.run_epoch == run_epoch_ &&
          entry.generation == generation && entry.ready == ready &&
          entry.cost == cost) {
        ++hits_;
        return &entry.route;
      }
    }
  }
  ++misses_;
  return nullptr;
}

void ProbedRouteCache::store(NodeId from, NodeId to, double ready,
                             double cost, std::uint64_t generation,
                             const Route& route) {
  if (from.index() >= shards_.size()) {
    shards_.resize(from.index() + 1);
  }
  Shard& shard = shards_[from.index()];
  if (to.index() >= shard.entries.size()) {
    shard.entries.resize(to.index() + 1);
  }
  Entry& entry = shard.entries[to.index()];
  entry.ready = ready;
  entry.cost = cost;
  entry.generation = generation;
  entry.run_epoch = run_epoch_;
  entry.cached = true;
  entry.route = route;
}

Route dijkstra_route(const Topology& topology, NodeId from, NodeId to,
                     const std::function<double(LinkId)>& weight) {
  const auto link_weight = [&](LinkId l) {
    return weight ? weight(l) : 1.0 / topology.link_speed(l);
  };
  // Express static weights through the probe machinery: arrival time plays
  // the role of accumulated distance.
  const auto probe = [&](LinkId l, const ProbeState& state) {
    const double w = link_weight(l);
    throw_if(w < 0.0, "dijkstra_route: negative link weight");
    return ProbeResult{state.earliest_start + w, state.earliest_start + w};
  };
  return dijkstra_route_probe(topology, from, to, 0.0, probe);
}

namespace {

Route route_avoiding_with_workspace(
    const Topology& topology, NodeId from, NodeId to,
    const std::vector<bool>& banned_links,
    const std::vector<bool>& banned_nodes,
    const std::function<double(LinkId)>& weight,
    RoutingWorkspace* workspace) {
  const auto link_weight = [&](LinkId l) {
    return weight ? weight(l) : 1.0 / topology.link_speed(l);
  };
  constexpr double kBlocked = std::numeric_limits<double>::infinity();
  const auto probe = [&](LinkId l, const ProbeState& state) {
    const Link& link = topology.link(l);
    const bool banned =
        (l.index() < banned_links.size() && banned_links[l.index()]) ||
        (link.dst.index() < banned_nodes.size() &&
         banned_nodes[link.dst.index()]);
    const double w = banned ? kBlocked : link_weight(l);
    return ProbeResult{state.earliest_start + w,
                       state.earliest_start + w};
  };
  try {
    Route route =
        dijkstra_route_probe(topology, from, to, 0.0, probe, workspace);
    // A "found" route through blocked links has infinite weight.
    for (LinkId l : route) {
      if (l.index() < banned_links.size() && banned_links[l.index()]) {
        return {};
      }
      const Link& link = topology.link(l);
      if (link.dst.index() < banned_nodes.size() &&
          banned_nodes[link.dst.index()]) {
        return {};
      }
    }
    return route;
  } catch (const std::invalid_argument&) {
    return {};
  }
}

}  // namespace

Route dijkstra_route_avoiding(const Topology& topology, NodeId from,
                              NodeId to,
                              const std::vector<bool>& banned_links,
                              const std::vector<bool>& banned_nodes,
                              const std::function<double(LinkId)>& weight) {
  return route_avoiding_with_workspace(topology, from, to, banned_links,
                                       banned_nodes, weight, nullptr);
}

std::vector<Route> k_shortest_routes(
    const Topology& topology, NodeId from, NodeId to, std::size_t k,
    const std::function<double(LinkId)>& weight) {
  throw_if(k == 0, "k_shortest_routes: k must be > 0");
  throw_if(from == to, "k_shortest_routes: endpoints must differ");
  const auto link_weight = [&](LinkId l) {
    return weight ? weight(l) : 1.0 / topology.link_speed(l);
  };
  const auto route_weight = [&](const Route& route) {
    double total = 0.0;
    for (LinkId l : route) {
      total += link_weight(l);
    }
    return total;
  };
  const auto route_less = [&](const Route& a, const Route& b) {
    const double wa = route_weight(a);
    const double wb = route_weight(b);
    if (wa != wb) return wa < wb;
    return a < b;  // deterministic tie-break
  };

  // One workspace amortised over every spur-path search Yen performs.
  RoutingWorkspace workspace;
  std::vector<Route> found;
  found.push_back(dijkstra_route(topology, from, to, weight));
  std::vector<Route> candidates;

  while (found.size() < k) {
    const Route& base = found.back();
    // Yen: branch at every prefix of the last accepted route.
    for (std::size_t spur = 0; spur < base.size(); ++spur) {
      const NodeId spur_node =
          spur == 0 ? from : topology.link(base[spur - 1]).dst;
      std::vector<bool> banned_links(topology.num_links(), false);
      std::vector<bool> banned_nodes(topology.num_nodes(), false);
      // Ban the next link of every accepted route sharing this prefix.
      for (const Route& existing : found) {
        if (existing.size() > spur &&
            std::equal(existing.begin(),
                       existing.begin() +
                           static_cast<std::ptrdiff_t>(spur),
                       base.begin())) {
          banned_links[existing[spur].index()] = true;
        }
      }
      // Ban prefix nodes so spur paths stay loopless.
      NodeId walker = from;
      for (std::size_t i = 0; i < spur; ++i) {
        banned_nodes[walker.index()] = true;
        walker = topology.link(base[i]).dst;
      }
      const Route spur_path = route_avoiding_with_workspace(
          topology, spur_node, to, banned_links, banned_nodes, weight,
          &workspace);
      if (spur_path.empty() && spur_node != to) {
        continue;
      }
      Route candidate(base.begin(),
                      base.begin() + static_cast<std::ptrdiff_t>(spur));
      candidate.insert(candidate.end(), spur_path.begin(),
                       spur_path.end());
      if (std::find(found.begin(), found.end(), candidate) ==
              found.end() &&
          std::find(candidates.begin(), candidates.end(), candidate) ==
              candidates.end()) {
        candidates.push_back(std::move(candidate));
      }
    }
    if (candidates.empty()) {
      break;  // topology exhausted
    }
    const auto best = std::min_element(candidates.begin(),
                                       candidates.end(), route_less);
    found.push_back(*best);
    candidates.erase(best);
  }
  return found;
}

}  // namespace edgesched::net
