#include "net/serialization.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

namespace edgesched::net {

void write_dot(std::ostream& out, const Topology& topology) {
  out << "digraph \""
      << (topology.name().empty() ? "network" : topology.name()) << "\" {\n";
  for (NodeId n : topology.all_nodes()) {
    const NetNode& node = topology.node(n);
    out << "  n" << n.value() << " [label=\"" << node.name;
    if (node.kind == NodeKind::kProcessor) {
      out << "\\ns=" << node.speed << "\" shape=box";
    } else {
      out << "\" shape=circle";
    }
    out << "];\n";
  }
  for (LinkId l : topology.all_links()) {
    const Link& link = topology.link(l);
    out << "  n" << link.src.value() << " -> n" << link.dst.value()
        << " [label=\"" << link.speed << "\"];\n";
  }
  out << "}\n";
}

std::string to_dot(const Topology& topology) {
  std::ostringstream os;
  write_dot(os, topology);
  return os.str();
}

void write_text(std::ostream& out, const Topology& topology) {
  out << "network "
      << (topology.name().empty() ? "network" : topology.name()) << "\n";
  for (NodeId n : topology.all_nodes()) {
    const NetNode& node = topology.node(n);
    if (node.kind == NodeKind::kProcessor) {
      out << "processor " << n.value() << ' ' << node.speed << ' '
          << node.name << "\n";
    } else {
      out << "switch " << n.value() << ' ' << node.name << "\n";
    }
  }
  for (LinkId l : topology.all_links()) {
    const Link& link = topology.link(l);
    out << "link " << link.src.value() << ' ' << link.dst.value() << ' '
        << link.speed << ' ' << link.domain.value() << "\n";
  }
}

std::string to_text(const Topology& topology) {
  std::ostringstream os;
  write_text(os, topology);
  return os.str();
}

Topology read_text(std::istream& in) {
  Topology topology;
  std::string line;
  std::size_t line_number = 0;
  struct ParsedLink {
    NodeId src;
    NodeId dst;
    double speed;
    bool has_domain;
    std::uint32_t domain;
  };
  std::vector<ParsedLink> parsed_links;

  while (std::getline(in, line)) {
    ++line_number;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    const std::string where = " at line " + std::to_string(line_number);
    if (keyword == "network") {
      std::string name;
      fields >> name;
      topology.set_name(name);
    } else if (keyword == "processor") {
      std::uint32_t id = 0;
      double speed = 0.0;
      std::string name;
      fields >> id >> speed;
      throw_if(fields.fail(), "read_text: malformed processor line" + where);
      fields >> name;
      const NodeId assigned = topology.add_processor(speed, name);
      throw_if(assigned.value() != id,
               "read_text: node ids must be dense and ordered" + where);
    } else if (keyword == "switch") {
      std::uint32_t id = 0;
      std::string name;
      fields >> id;
      throw_if(fields.fail(), "read_text: malformed switch line" + where);
      fields >> name;
      const NodeId assigned = topology.add_switch(name);
      throw_if(assigned.value() != id,
               "read_text: node ids must be dense and ordered" + where);
    } else if (keyword == "link") {
      std::uint32_t src = 0;
      std::uint32_t dst = 0;
      double speed = 0.0;
      fields >> src >> dst >> speed;
      throw_if(fields.fail(), "read_text: malformed link line" + where);
      std::uint32_t domain = 0;
      const bool has_domain = static_cast<bool>(fields >> domain);
      parsed_links.push_back(ParsedLink{NodeId(src), NodeId(dst), speed,
                                        has_domain, domain});
    } else {
      throw_if(true, "read_text: unknown keyword '" + keyword + "'" + where);
    }
  }

  // Group links by serialized domain. Links sharing a serialized domain id
  // are re-created as half-duplex pairs / bus members via the low-level
  // sharing call; a simple approach suffices: the first link of a domain
  // allocates a fresh link (and thus a fresh domain) and later links with
  // the same serialized domain would need Topology surgery — instead we
  // re-create sharing exactly for the half-duplex pair pattern and fall
  // back to independent domains otherwise.
  std::map<std::uint32_t, std::vector<ParsedLink>> by_domain;
  std::vector<ParsedLink> independent;
  for (const ParsedLink& pl : parsed_links) {
    if (pl.has_domain) {
      by_domain[pl.domain].push_back(pl);
    } else {
      independent.push_back(pl);
    }
  }
  for (const auto& [domain, group] : by_domain) {
    if (group.size() == 2 && group[0].src == group[1].dst &&
        group[0].dst == group[1].src && group[0].speed == group[1].speed) {
      topology.add_half_duplex_link(group[0].src, group[0].dst,
                                    group[0].speed);
    } else if (group.size() > 2) {
      // Bus: reconstruct the member set from the link endpoints.
      std::vector<NodeId> members;
      for (const ParsedLink& pl : group) {
        if (std::find(members.begin(), members.end(), pl.src) ==
            members.end()) {
          members.push_back(pl.src);
        }
        if (std::find(members.begin(), members.end(), pl.dst) ==
            members.end()) {
          members.push_back(pl.dst);
        }
      }
      topology.add_bus(members, group.front().speed);
    } else {
      for (const ParsedLink& pl : group) {
        topology.add_link(pl.src, pl.dst, pl.speed);
      }
    }
  }
  for (const ParsedLink& pl : independent) {
    topology.add_link(pl.src, pl.dst, pl.speed);
  }
  return topology;
}

Topology from_text(const std::string& text) {
  std::istringstream is(text);
  return read_text(is);
}

}  // namespace edgesched::net
