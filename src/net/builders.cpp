#include "net/builders.hpp"

#include <algorithm>
#include <string>

namespace edgesched::net {

namespace {

double sample_speed(Rng& rng, double lo, double hi) {
  // Paper speeds are integers from U(1, 10).
  return static_cast<double>(
      rng.uniform_int(static_cast<std::int64_t>(lo),
                      static_cast<std::int64_t>(hi)));
}

std::vector<NodeId> add_processors(Topology& topology, std::size_t count,
                                   const SpeedConfig& speeds, Rng& rng) {
  std::vector<NodeId> processors;
  processors.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    processors.push_back(topology.add_processor(speeds.processor_speed(rng)));
  }
  return processors;
}

}  // namespace

double SpeedConfig::processor_speed(Rng& rng) const {
  return heterogeneous
             ? sample_speed(rng, processor_speed_min, processor_speed_max)
             : fixed_processor_speed;
}

double SpeedConfig::link_speed(Rng& rng) const {
  return heterogeneous ? sample_speed(rng, link_speed_min, link_speed_max)
                       : fixed_link_speed;
}

Topology fully_connected(std::size_t num_processors,
                         const SpeedConfig& speeds, Rng& rng) {
  throw_if(num_processors == 0, "fully_connected: need processors");
  Topology topology("fully_connected");
  const auto procs = add_processors(topology, num_processors, speeds, rng);
  for (std::size_t i = 0; i < procs.size(); ++i) {
    for (std::size_t j = i + 1; j < procs.size(); ++j) {
      topology.add_duplex_link(procs[i], procs[j], speeds.link_speed(rng));
    }
  }
  return topology;
}

Topology switched_star(std::size_t num_processors, const SpeedConfig& speeds,
                       Rng& rng) {
  throw_if(num_processors == 0, "switched_star: need processors");
  Topology topology("switched_star");
  const NodeId hub = topology.add_switch("hub");
  for (std::size_t i = 0; i < num_processors; ++i) {
    const NodeId p = topology.add_processor(speeds.processor_speed(rng));
    topology.add_duplex_link(p, hub, speeds.link_speed(rng));
  }
  return topology;
}

Topology ring(std::size_t num_processors, const SpeedConfig& speeds,
              Rng& rng) {
  throw_if(num_processors < 2, "ring: need at least 2 processors");
  Topology topology("ring");
  const auto procs = add_processors(topology, num_processors, speeds, rng);
  for (std::size_t i = 0; i < procs.size(); ++i) {
    topology.add_duplex_link(procs[i], procs[(i + 1) % procs.size()],
                             speeds.link_speed(rng));
  }
  return topology;
}

Topology mesh2d(std::size_t rows, std::size_t cols, const SpeedConfig& speeds,
                Rng& rng) {
  throw_if(rows == 0 || cols == 0, "mesh2d: need a non-empty grid");
  Topology topology("mesh2d");
  const auto procs = add_processors(topology, rows * cols, speeds, rng);
  const auto at = [&](std::size_t r, std::size_t c) {
    return procs[r * cols + c];
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        topology.add_duplex_link(at(r, c), at(r, c + 1),
                                 speeds.link_speed(rng));
      }
      if (r + 1 < rows) {
        topology.add_duplex_link(at(r, c), at(r + 1, c),
                                 speeds.link_speed(rng));
      }
    }
  }
  return topology;
}

Topology torus2d(std::size_t rows, std::size_t cols, const SpeedConfig& speeds,
                 Rng& rng) {
  throw_if(rows < 2 || cols < 2, "torus2d: need at least a 2x2 grid");
  Topology topology = mesh2d(rows, cols, speeds, rng);
  topology.set_name("torus2d");
  const auto at = [&](std::size_t r, std::size_t c) {
    return topology.processors()[r * cols + c];
  };
  for (std::size_t r = 0; r < rows; ++r) {
    if (cols > 2) {
      topology.add_duplex_link(at(r, cols - 1), at(r, 0),
                               speeds.link_speed(rng));
    }
  }
  for (std::size_t c = 0; c < cols; ++c) {
    if (rows > 2) {
      topology.add_duplex_link(at(rows - 1, c), at(0, c),
                               speeds.link_speed(rng));
    }
  }
  return topology;
}

Topology hypercube(std::size_t dimensions, const SpeedConfig& speeds,
                   Rng& rng) {
  throw_if(dimensions == 0 || dimensions > 20,
           "hypercube: dimensions must be in [1, 20]");
  Topology topology("hypercube");
  const std::size_t count = std::size_t{1} << dimensions;
  const auto procs = add_processors(topology, count, speeds, rng);
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t d = 0; d < dimensions; ++d) {
      const std::size_t j = i ^ (std::size_t{1} << d);
      if (i < j) {
        topology.add_duplex_link(procs[i], procs[j], speeds.link_speed(rng));
      }
    }
  }
  return topology;
}

Topology fat_tree(std::size_t num_leaf_switches,
                  std::size_t processors_per_switch, const SpeedConfig& speeds,
                  Rng& rng) {
  throw_if(num_leaf_switches == 0 || processors_per_switch == 0,
           "fat_tree: need leaves and processors");
  Topology topology("fat_tree");
  const NodeId core = topology.add_switch("core");
  for (std::size_t s = 0; s < num_leaf_switches; ++s) {
    const NodeId leaf = topology.add_switch("leaf" + std::to_string(s));
    topology.add_duplex_link(leaf, core, speeds.link_speed(rng));
    for (std::size_t p = 0; p < processors_per_switch; ++p) {
      const NodeId proc =
          topology.add_processor(speeds.processor_speed(rng));
      topology.add_duplex_link(proc, leaf, speeds.link_speed(rng));
    }
  }
  return topology;
}

Topology bus(std::size_t num_processors, const SpeedConfig& speeds,
             Rng& rng) {
  throw_if(num_processors < 2, "bus: need at least 2 processors");
  Topology topology("bus");
  const auto procs = add_processors(topology, num_processors, speeds, rng);
  topology.add_bus(procs, speeds.link_speed(rng));
  return topology;
}

Topology dragonfly(std::size_t groups, std::size_t switches_per_group,
                   std::size_t processors_per_switch,
                   const SpeedConfig& speeds, Rng& rng) {
  throw_if(groups == 0 || switches_per_group == 0 ||
               processors_per_switch == 0,
           "dragonfly: all dimensions must be positive");
  Topology topology("dragonfly");
  std::vector<std::vector<NodeId>> group_switches(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t s = 0; s < switches_per_group; ++s) {
      const NodeId sw = topology.add_switch(
          "g" + std::to_string(g) + "s" + std::to_string(s));
      group_switches[g].push_back(sw);
      for (std::size_t p = 0; p < processors_per_switch; ++p) {
        const NodeId proc =
            topology.add_processor(speeds.processor_speed(rng));
        topology.add_duplex_link(proc, sw, speeds.link_speed(rng));
      }
    }
    // Local all-to-all inside the group.
    for (std::size_t a = 0; a < switches_per_group; ++a) {
      for (std::size_t b = a + 1; b < switches_per_group; ++b) {
        topology.add_duplex_link(group_switches[g][a],
                                 group_switches[g][b],
                                 speeds.link_speed(rng));
      }
    }
  }
  // One global cable between every pair of groups, endpoints rotating
  // over the group's switches.
  std::size_t spin = 0;
  for (std::size_t a = 0; a < groups; ++a) {
    for (std::size_t b = a + 1; b < groups; ++b) {
      const NodeId from =
          group_switches[a][spin % switches_per_group];
      const NodeId to =
          group_switches[b][(spin + 1) % switches_per_group];
      topology.add_duplex_link(from, to, speeds.link_speed(rng));
      ++spin;
    }
  }
  return topology;
}

Topology switch_tree(std::size_t levels, std::size_t arity,
                     std::size_t processors_per_leaf,
                     const SpeedConfig& speeds, Rng& rng) {
  throw_if(levels == 0 || arity == 0 || processors_per_leaf == 0,
           "switch_tree: all dimensions must be positive");
  throw_if(levels > 8, "switch_tree: too many levels");
  Topology topology("switch_tree");
  std::vector<NodeId> frontier{topology.add_switch("root")};
  for (std::size_t level = 1; level < levels; ++level) {
    std::vector<NodeId> next;
    next.reserve(frontier.size() * arity);
    for (NodeId parent : frontier) {
      for (std::size_t child = 0; child < arity; ++child) {
        const NodeId sw = topology.add_switch();
        topology.add_duplex_link(sw, parent, speeds.link_speed(rng));
        next.push_back(sw);
      }
    }
    frontier = std::move(next);
  }
  for (NodeId leaf : frontier) {
    for (std::size_t p = 0; p < processors_per_leaf; ++p) {
      const NodeId proc =
          topology.add_processor(speeds.processor_speed(rng));
      topology.add_duplex_link(proc, leaf, speeds.link_speed(rng));
    }
  }
  return topology;
}

Topology random_wan(const RandomWanParams& params, Rng& rng) {
  throw_if(params.num_processors == 0, "random_wan: need processors");
  throw_if(params.fanout_min == 0 || params.fanout_min > params.fanout_max,
           "random_wan: bad fanout range");
  Topology topology("random_wan");

  // Partition processors over switches with random fan-out U(min, max).
  std::vector<NodeId> switches;
  std::size_t assigned = 0;
  while (assigned < params.num_processors) {
    const NodeId sw =
        topology.add_switch("S" + std::to_string(switches.size()));
    switches.push_back(sw);
    std::size_t fanout = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(params.fanout_min),
                        static_cast<std::int64_t>(params.fanout_max)));
    fanout = std::min(fanout, params.num_processors - assigned);
    for (std::size_t i = 0; i < fanout; ++i) {
      const NodeId proc =
          topology.add_processor(params.speeds.processor_speed(rng));
      topology.add_duplex_link(proc, sw, params.speeds.link_speed(rng));
    }
    assigned += fanout;
  }

  // Random spanning tree over switches guarantees "a path between any pair
  // of switches" (paper §6); each new switch attaches to a random earlier
  // one.
  for (std::size_t s = 1; s < switches.size(); ++s) {
    const NodeId earlier = switches[rng.index(s)];
    topology.add_duplex_link(switches[s], earlier,
                             params.speeds.link_speed(rng));
  }

  // Extra random switch-switch cables create the route diversity the
  // modified routing algorithm exploits.
  for (std::size_t a = 0; a < switches.size(); ++a) {
    for (std::size_t b = a + 1; b < switches.size(); ++b) {
      if (rng.bernoulli(params.extra_switch_link_probability)) {
        topology.add_duplex_link(switches[a], switches[b],
                                 params.speeds.link_speed(rng));
      }
    }
  }
  return topology;
}

}  // namespace edgesched::net
