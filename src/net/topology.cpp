#include "net/topology.hpp"

#include <queue>

#include "util/hash.hpp"

namespace edgesched::net {

NodeId Topology::add_node(NodeKind kind, double speed, std::string name) {
  NodeId id(nodes_.size());
  if (name.empty()) {
    name = (kind == NodeKind::kProcessor ? "P" : "S") +
           std::to_string(id.value());
  }
  nodes_.push_back(NetNode{std::move(name), kind, speed, {}, {}});
  if (kind == NodeKind::kProcessor) {
    processors_.push_back(id);
  }
  return id;
}

NodeId Topology::add_processor(double speed, std::string name) {
  throw_if(speed <= 0.0, "Topology::add_processor: speed must be positive");
  return add_node(NodeKind::kProcessor, speed, std::move(name));
}

NodeId Topology::add_switch(std::string name) {
  return add_node(NodeKind::kSwitch, 0.0, std::move(name));
}

LinkId Topology::add_link_in_domain(NodeId src, NodeId dst, double speed,
                                    DomainId domain) {
  throw_if(!src.valid() || src.index() >= nodes_.size(),
           "Topology::add_link: invalid source node");
  throw_if(!dst.valid() || dst.index() >= nodes_.size(),
           "Topology::add_link: invalid destination node");
  throw_if(src == dst, "Topology::add_link: self loop");
  throw_if(speed <= 0.0, "Topology::add_link: speed must be positive");
  LinkId id(links_.size());
  links_.push_back(Link{src, dst, speed, domain});
  nodes_[src.index()].out_links.push_back(id);
  nodes_[dst.index()].in_links.push_back(id);
  return id;
}

LinkId Topology::add_link(NodeId src, NodeId dst, double speed) {
  return add_link_in_domain(src, dst, speed, new_domain());
}

LinkId Topology::add_link(NodeId src, NodeId dst, double speed,
                          DomainId domain) {
  throw_if(!domain.valid() || domain.index() >= num_domains_,
           "Topology::add_link: unknown contention domain");
  return add_link_in_domain(src, dst, speed, domain);
}

std::pair<LinkId, LinkId> Topology::add_duplex_link(NodeId a, NodeId b,
                                                    double speed) {
  return {add_link(a, b, speed), add_link(b, a, speed)};
}

std::pair<LinkId, LinkId> Topology::add_half_duplex_link(NodeId a, NodeId b,
                                                         double speed) {
  const DomainId domain = new_domain();
  return {add_link_in_domain(a, b, speed, domain),
          add_link_in_domain(b, a, speed, domain)};
}

DomainId Topology::add_bus(const std::vector<NodeId>& members, double speed) {
  throw_if(members.size() < 2, "Topology::add_bus: need at least 2 members");
  const DomainId domain = new_domain();
  for (NodeId a : members) {
    for (NodeId b : members) {
      if (a != b) {
        add_link_in_domain(a, b, speed, domain);
      }
    }
  }
  return domain;
}

double Topology::processor_speed(NodeId id) const {
  const NetNode& n = node(id);
  throw_if(n.kind != NodeKind::kProcessor,
           "Topology::processor_speed: node is not a processor");
  return n.speed;
}

std::vector<NodeId> Topology::all_nodes() const {
  std::vector<NodeId> result;
  result.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    result.emplace_back(i);
  }
  return result;
}

std::vector<LinkId> Topology::all_links() const {
  std::vector<LinkId> result;
  result.reserve(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    result.emplace_back(i);
  }
  return result;
}

double Topology::mean_link_speed() const {
  if (links_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const Link& link : links_) {
    sum += link.speed;
  }
  return sum / static_cast<double>(links_.size());
}

bool Topology::processors_connected() const {
  if (processors_.size() < 2) {
    return true;
  }
  // BFS from the first processor must reach all others; since links come
  // in duplex or bus form in all builders this single sweep suffices, but
  // we still check reachability in the directed sense for safety.
  for (NodeId start : {processors_.front(), processors_.back()}) {
    std::vector<bool> seen(nodes_.size(), false);
    std::queue<NodeId> frontier;
    frontier.push(start);
    seen[start.index()] = true;
    while (!frontier.empty()) {
      const NodeId current = frontier.front();
      frontier.pop();
      for (LinkId l : node(current).out_links) {
        const NodeId next = link(l).dst;
        if (!seen[next.index()]) {
          seen[next.index()] = true;
          frontier.push(next);
        }
      }
    }
    for (NodeId p : processors_) {
      if (!seen[p.index()]) {
        return false;
      }
    }
  }
  return true;
}

std::uint64_t Topology::fingerprint() const noexcept {
  Fingerprint fp;
  fp.mix(static_cast<std::uint64_t>(nodes_.size()));
  for (const NetNode& n : nodes_) {
    fp.mix(static_cast<std::uint64_t>(n.kind));
    fp.mix(n.speed);
  }
  fp.mix(static_cast<std::uint64_t>(links_.size()));
  for (const Link& l : links_) {
    fp.mix(static_cast<std::uint64_t>(l.src.value()));
    fp.mix(static_cast<std::uint64_t>(l.dst.value()));
    fp.mix(l.speed);
    fp.mix(static_cast<std::uint64_t>(l.domain.value()));
  }
  return fp.value();
}

void Topology::validate_route(const Route& route, NodeId from,
                              NodeId to) const {
  if (from == to) {
    throw_if(!route.empty(),
             "validate_route: route between identical nodes must be empty");
    return;
  }
  throw_if(route.empty(), "validate_route: empty route between distinct "
                          "nodes");
  NodeId at = from;
  for (LinkId l : route) {
    throw_if(l.index() >= links_.size(), "validate_route: unknown link");
    const Link& hop = link(l);
    throw_if(hop.src != at, "validate_route: discontinuous route");
    at = hop.dst;
  }
  throw_if(at != to, "validate_route: route does not end at destination");
}

}  // namespace edgesched::net
