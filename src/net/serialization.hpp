// Network topology serialization: GraphViz DOT export and a line-oriented
// text format.
//
// Text format (comments start with '#'):
//   network <name>
//   processor <id> <speed> [name]
//   switch <id> [name]
//   link <src-id> <dst-id> <speed> [domain]
// Node ids must be dense and ordered; `domain` lets half-duplex/bus
// structures round-trip (omitted links get a fresh domain).
#pragma once

#include <iosfwd>
#include <string>

#include "net/topology.hpp"

namespace edgesched::net {

void write_dot(std::ostream& out, const Topology& topology);
[[nodiscard]] std::string to_dot(const Topology& topology);

void write_text(std::ostream& out, const Topology& topology);
[[nodiscard]] std::string to_text(const Topology& topology);

[[nodiscard]] Topology read_text(std::istream& in);
[[nodiscard]] Topology from_text(const std::string& text);

}  // namespace edgesched::net
