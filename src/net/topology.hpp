// Network topology graph TG = (N, P, D, H) of the paper (§2.2).
//
// N: nodes — processors and switches. P ⊆ N: the processors tasks can run
// on. D: directed communication links, each with a transfer speed s(L).
// H: hyperedges — shared media (buses, half-duplex cables) whose member
// links contend for the same physical resource.
//
// Contention is expressed through *contention domains*: every link belongs
// to exactly one domain; ordinary full-duplex links own a private domain,
// while all member links of a hyperedge (and both directions of a
// half-duplex cable) share one. Schedulers keep one timeline per domain.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/ids.hpp"

namespace edgesched::net {

struct NodeTag {};
struct LinkTag {};
struct DomainTag {};

/// Identifier of a network node (processor or switch).
using NodeId = StrongId<NodeTag>;
/// Identifier of a directed communication link.
using LinkId = StrongId<LinkTag>;
/// Identifier of a contention domain (one schedulable resource).
using DomainId = StrongId<DomainTag>;

enum class NodeKind { kProcessor, kSwitch };

/// A network node. `speed` is the processing speed s(P) and is meaningful
/// only for processors (switches never execute tasks).
struct NetNode {
  std::string name;
  NodeKind kind = NodeKind::kSwitch;
  double speed = 1.0;
  std::vector<LinkId> out_links;
  std::vector<LinkId> in_links;
};

/// A directed communication link with transfer speed s(L).
struct Link {
  NodeId src;
  NodeId dst;
  double speed = 1.0;
  DomainId domain;  ///< contention domain the link occupies
};

/// A route through the network: consecutive links, each starting where the
/// previous one ended.
using Route = std::vector<LinkId>;

/// Mutable network topology. Append-only, like TaskGraph.
class Topology {
 public:
  Topology() = default;
  explicit Topology(std::string name) : name_(std::move(name)) {}

  /// Adds a processor with processing speed s(P) > 0.
  NodeId add_processor(double speed = 1.0, std::string name = {});
  /// Adds a switch (routing-only node).
  NodeId add_switch(std::string name = {});

  /// Adds one directed link src -> dst with its own contention domain.
  LinkId add_link(NodeId src, NodeId dst, double speed = 1.0);

  /// Allocates an empty contention domain. Together with the
  /// domain-taking `add_link` overload this lets a rebuild (e.g. the
  /// executor's surviving-topology construction after a permanent
  /// failure) reproduce an arbitrary domain structure — half-duplex
  /// cables and buses keep sharing one domain even when some of their
  /// member links did not survive.
  DomainId add_domain() noexcept { return new_domain(); }

  /// Adds a link inside an existing contention domain (a member of a
  /// shared medium). The domain must have been allocated by this
  /// topology (`add_domain` or any link/bus builder).
  LinkId add_link(NodeId src, NodeId dst, double speed, DomainId domain);

  /// Adds a full-duplex cable: two directed links in independent domains.
  std::pair<LinkId, LinkId> add_duplex_link(NodeId a, NodeId b,
                                            double speed = 1.0);

  /// Adds a half-duplex cable: two directed links sharing one domain.
  std::pair<LinkId, LinkId> add_half_duplex_link(NodeId a, NodeId b,
                                                 double speed = 1.0);

  /// Adds a bus (hyperedge of the paper's H set): a directed link between
  /// every ordered pair of `members`, all sharing a single contention
  /// domain. Returns the shared domain.
  DomainId add_bus(const std::vector<NodeId>& members, double speed = 1.0);

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t num_links() const noexcept {
    return links_.size();
  }
  [[nodiscard]] std::size_t num_domains() const noexcept {
    return num_domains_;
  }
  [[nodiscard]] std::size_t num_processors() const noexcept {
    return processors_.size();
  }

  [[nodiscard]] const NetNode& node(NodeId id) const {
    EDGESCHED_ASSERT(id.index() < nodes_.size());
    return nodes_[id.index()];
  }
  [[nodiscard]] const Link& link(LinkId id) const {
    EDGESCHED_ASSERT(id.index() < links_.size());
    return links_[id.index()];
  }

  [[nodiscard]] bool is_processor(NodeId id) const {
    return node(id).kind == NodeKind::kProcessor;
  }
  /// Processing speed s(P); only valid for processors.
  [[nodiscard]] double processor_speed(NodeId id) const;
  /// Transfer speed s(L).
  [[nodiscard]] double link_speed(LinkId id) const { return link(id).speed; }
  [[nodiscard]] DomainId domain(LinkId id) const { return link(id).domain; }

  /// All processors, in insertion order.
  [[nodiscard]] const std::vector<NodeId>& processors() const noexcept {
    return processors_;
  }
  [[nodiscard]] const std::vector<LinkId>& out_links(NodeId id) const {
    return node(id).out_links;
  }
  [[nodiscard]] const std::vector<LinkId>& in_links(NodeId id) const {
    return node(id).in_links;
  }
  [[nodiscard]] std::vector<NodeId> all_nodes() const;
  [[nodiscard]] std::vector<LinkId> all_links() const;

  /// MLS of the paper: the mean transfer speed over all links.
  [[nodiscard]] double mean_link_speed() const;

  /// True iff every processor can reach every other processor.
  [[nodiscard]] bool processors_connected() const;

  /// Checks a route: non-empty links, consecutive, from -> to. Throws
  /// std::invalid_argument when broken.
  void validate_route(const Route& route, NodeId from, NodeId to) const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Canonical 64-bit structural hash over everything a scheduler sees:
  /// node count, each node's kind and speed in insertion order, and every
  /// link (src, dst, speed, contention domain) in insertion order. Node
  /// and topology *names* are excluded — relabelled topologies schedule
  /// identically and share a fingerprint. Deterministic across platforms;
  /// used as the content-address key of svc::ScheduleCache.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

 private:
  NodeId add_node(NodeKind kind, double speed, std::string name);
  DomainId new_domain() noexcept { return DomainId(num_domains_++); }
  LinkId add_link_in_domain(NodeId src, NodeId dst, double speed,
                            DomainId domain);

  std::string name_;
  std::vector<NetNode> nodes_;
  std::vector<Link> links_;
  std::vector<NodeId> processors_;
  std::size_t num_domains_ = 0;
};

}  // namespace edgesched::net
