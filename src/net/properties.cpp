#include "net/properties.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace edgesched::net {

std::vector<std::size_t> hop_distances(const Topology& topology,
                                       NodeId from) {
  throw_if(from.index() >= topology.num_nodes(),
           "hop_distances: invalid start node");
  constexpr std::size_t kUnreachable =
      std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> distance(topology.num_nodes(), kUnreachable);
  std::queue<NodeId> frontier;
  distance[from.index()] = 0;
  frontier.push(from);
  while (!frontier.empty()) {
    const NodeId current = frontier.front();
    frontier.pop();
    for (LinkId l : topology.out_links(current)) {
      const NodeId next = topology.link(l).dst;
      if (distance[next.index()] == kUnreachable) {
        distance[next.index()] = distance[current.index()] + 1;
        frontier.push(next);
      }
    }
  }
  return distance;
}

TopologyStats analyze(const Topology& topology) {
  TopologyStats stats;
  stats.num_processors = topology.num_processors();
  stats.num_switches = topology.num_nodes() - topology.num_processors();
  stats.num_links = topology.num_links();
  stats.num_domains = topology.num_domains();
  stats.mean_link_speed = topology.mean_link_speed();

  if (topology.num_links() > 0) {
    stats.min_link_speed = std::numeric_limits<double>::infinity();
    for (LinkId l : topology.all_links()) {
      stats.min_link_speed =
          std::min(stats.min_link_speed, topology.link_speed(l));
      stats.max_link_speed =
          std::max(stats.max_link_speed, topology.link_speed(l));
    }
  }

  const auto& processors = topology.processors();
  std::size_t pairs = 0;
  double total_distance = 0.0;
  for (NodeId from : processors) {
    const std::vector<std::size_t> distance =
        hop_distances(topology, from);
    for (NodeId to : processors) {
      if (from == to) {
        continue;
      }
      throw_if(distance[to.index()] ==
                   std::numeric_limits<std::size_t>::max(),
               "analyze: processors are not mutually reachable");
      stats.diameter = std::max(stats.diameter, distance[to.index()]);
      total_distance += static_cast<double>(distance[to.index()]);
      ++pairs;
    }
  }
  if (pairs > 0) {
    stats.mean_processor_distance =
        total_distance / static_cast<double>(pairs);
  }
  return stats;
}

}  // namespace edgesched::net
