// Routing algorithms.
//
// * `bfs_route` — minimal routing of Sinnen's Basic Algorithm: fewest
//   hops, deterministic tie-break. Used with a `RouteCache`, this is the
//   static routing layer.
// * `dijkstra_route` — static weighted shortest path (default weight:
//   1/s(L), i.e. per-unit transfer time).
// * `dijkstra_route_probe` — the paper's *modified routing* (§4.3):
//   Dijkstra whose relaxation key is the tentative finish time of the
//   edge being routed on each link, supplied by a caller probe that
//   consults the current link timelines (basic insertion, §3). Routes
//   therefore steer around loaded links.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <queue>
#include <utility>
#include <vector>

#include "net/topology.hpp"
#include "obs/counters.hpp"

namespace edgesched::net {

/// Minimal (fewest-hop) route from `from` to `to`. Deterministic: among
/// equal-hop predecessors the first link in id order wins. Throws
/// std::invalid_argument if no route exists. `from == to` yields {}.
[[nodiscard]] Route bfs_route(const Topology& topology, NodeId from,
                              NodeId to);

/// Memoised BFS routes, keyed by (from, to). The Basic Algorithm's routing
/// is static, so one cache amortises all BFS work across edges.
class RouteCache {
 public:
  explicit RouteCache(const Topology& topology) : topology_(&topology) {}

  /// Flushes the accumulated hit/miss tallies into the global
  /// `net_route_cache_{hits,misses}_total` counters — batched here so the
  /// per-lookup cost stays a plain integer increment.
  ~RouteCache();

  RouteCache(const RouteCache&) = delete;
  RouteCache& operator=(const RouteCache&) = delete;

  /// Returns the cached minimal route, computing it on first use.
  const Route& route(NodeId from, NodeId to);

 private:
  const Topology* topology_;
  std::map<std::pair<NodeId, NodeId>, Route> cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Static weighted shortest path; `weight(link)` must be non-negative.
/// Defaults to per-unit transfer time 1/s(L).
[[nodiscard]] Route dijkstra_route(
    const Topology& topology, NodeId from, NodeId to,
    const std::function<double(LinkId)>& weight = {});

/// Like `dijkstra_route`, but links in `banned_links` and nodes in
/// `banned_nodes` are unavailable. Returns an empty route when no path
/// survives the bans (from != to).
[[nodiscard]] Route dijkstra_route_avoiding(
    const Topology& topology, NodeId from, NodeId to,
    const std::vector<bool>& banned_links,
    const std::vector<bool>& banned_nodes,
    const std::function<double(LinkId)>& weight = {});

/// Yen's algorithm: up to `k` loopless routes in non-decreasing weight
/// order (fewer if the topology has fewer). Route diversity like this is
/// what the modified routing algorithm exploits dynamically; the static
/// variant serves analysis and tests.
[[nodiscard]] std::vector<Route> k_shortest_routes(
    const Topology& topology, NodeId from, NodeId to, std::size_t k,
    const std::function<double(LinkId)>& weight = {});

/// Inputs of a link probe: what the edge brings to the link from the
/// previous hop (or from its source task, on the first hop).
struct ProbeState {
  double earliest_start = 0.0;  ///< t_es on this link
  double min_finish = 0.0;      ///< finish may not precede previous link's
};

/// Outputs of a link probe: where the tentative (uncommitted) insertion
/// would place the edge on this link.
struct ProbeResult {
  double virtual_start = 0.0;  ///< t_s — next hop's earliest start
  double finish = 0.0;         ///< t_f — next hop's minimum finish
};

namespace detail {
inline constexpr double kInfiniteTime =
    std::numeric_limits<double>::infinity();
}  // namespace detail

/// Dynamic Dijkstra over tentative edge finish times (modified routing).
///
/// The probe is called with a candidate link and the state arriving at its
/// source node and must return the basic-insertion placement on that link
/// *without committing it*. Labels are ordered by (finish, virtual_start,
/// hops) for determinism. Requires the probe to be monotone: a later
/// arrival never yields an earlier finish, which basic insertion satisfies.
template <typename Probe>
[[nodiscard]] Route dijkstra_route_probe(const Topology& topology,
                                         NodeId from, NodeId to,
                                         double ready_time, Probe&& probe) {
  throw_if(from.index() >= topology.num_nodes() ||
               to.index() >= topology.num_nodes(),
           "dijkstra_route_probe: invalid endpoint");
  if (from == to) {
    return {};
  }

  struct Label {
    double finish = detail::kInfiniteTime;
    double start = detail::kInfiniteTime;
    std::size_t hops = 0;
    LinkId parent;
    bool settled = false;
  };
  std::vector<Label> labels(topology.num_nodes());

  // Relaxation tally, flushed as one atomic add however the search ends
  // (batching keeps the per-relaxation cost a plain increment).
  struct RelaxationTally {
    std::uint64_t count = 0;
    ~RelaxationTally() {
      if (count > 0) {
        obs::hot_counters().dijkstra_relaxations.increment(count);
      }
    }
  } relaxations;

  struct QueueEntry {
    double finish;
    double start;
    std::size_t hops;
    NodeId node;
    bool operator>(const QueueEntry& other) const {
      if (finish != other.finish) return finish > other.finish;
      if (start != other.start) return start > other.start;
      if (hops != other.hops) return hops > other.hops;
      return node > other.node;
    }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>> frontier;

  labels[from.index()] =
      Label{0.0, ready_time, 0, LinkId{}, false};
  frontier.push(QueueEntry{0.0, ready_time, 0, from});

  while (!frontier.empty()) {
    const QueueEntry entry = frontier.top();
    frontier.pop();
    Label& current = labels[entry.node.index()];
    if (current.settled || entry.finish > current.finish ||
        (entry.finish == current.finish && entry.start > current.start)) {
      continue;  // stale entry
    }
    current.settled = true;
    if (entry.node == to) {
      break;
    }
    for (LinkId l : topology.out_links(entry.node)) {
      const NodeId next = topology.link(l).dst;
      Label& next_label = labels[next.index()];
      if (next_label.settled) {
        continue;
      }
      ++relaxations.count;
      const ProbeResult result =
          probe(l, ProbeState{current.start, current.finish});
      // Lexicographic relaxation (finish, start, hops): on an idle
      // cut-through network every path yields the same finish, so hop
      // count must break ties or routes balloon.
      const bool better =
          result.finish < next_label.finish ||
          (result.finish == next_label.finish &&
           (result.virtual_start < next_label.start ||
            (result.virtual_start == next_label.start &&
             current.hops + 1 < next_label.hops)));
      if (better) {
        next_label.finish = result.finish;
        next_label.start = result.virtual_start;
        next_label.hops = current.hops + 1;
        next_label.parent = l;
        frontier.push(QueueEntry{result.finish, result.virtual_start,
                                 next_label.hops, next});
      }
    }
  }

  throw_if(!labels[to.index()].parent.valid(),
           "dijkstra_route_probe: destination unreachable");
  Route route;
  NodeId at = to;
  while (at != from) {
    const LinkId hop = labels[at.index()].parent;
    route.push_back(hop);
    at = topology.link(hop).src;
  }
  std::reverse(route.begin(), route.end());
  return route;
}

}  // namespace edgesched::net
