// Routing algorithms.
//
// * `bfs_route` — minimal routing of Sinnen's Basic Algorithm: fewest
//   hops, deterministic tie-break. Used with a `RouteCache`, this is the
//   static routing layer.
// * `dijkstra_route` — static weighted shortest path (default weight:
//   1/s(L), i.e. per-unit transfer time).
// * `dijkstra_route_probe` — the paper's *modified routing* (§4.3):
//   Dijkstra whose relaxation key is the tentative finish time of the
//   edge being routed on each link, supplied by a caller probe that
//   consults the current link timelines (basic insertion, §3). Routes
//   therefore steer around loaded links.
// * `RoutingWorkspace` — reusable, epoch-stamped Dijkstra scratch so a
//   scheduler routing thousands of edges allocates its search state once.
// * `ProbedRouteCache` — memoisation of probe-driven routes keyed on the
//   network-state load generation; invalidated by any link mutation and
//   by `begin_run()` (pooled scratch reused across runs).
// * `StaticRouteTable` — the immutable all-pairs counterpart of
//   `RouteCache`: every processor-to-processor minimal route materialised
//   eagerly at construction, after which lookups are const and safe from
//   any number of threads (sched::PlatformContext owns one per topology).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "net/topology.hpp"
#include "obs/counters.hpp"

namespace edgesched::net {

/// Minimal (fewest-hop) route from `from` to `to`. Deterministic: among
/// equal-hop predecessors the first link in id order wins. Throws
/// std::invalid_argument if no route exists. `from == to` yields {}.
[[nodiscard]] Route bfs_route(const Topology& topology, NodeId from,
                              NodeId to);

/// Memoised BFS routes, sharded by source node. The Basic Algorithm's
/// routing is static, so one cache amortises all BFS work across edges.
///
/// Each source that routes at least once owns a dense per-destination
/// shard, so a lookup is two vector indexings — O(1) regardless of how
/// many routes are cached. At 256 processors a full cache is ~65k
/// entries; the old (from, to)-keyed map walked an O(log n) tree whose
/// depth grew with exactly the task-scale this layout caps.
class RouteCache {
 public:
  explicit RouteCache(const Topology& topology)
      : topology_(&topology), shards_(topology.num_nodes()) {}

  /// Flushes the accumulated hit/miss tallies into the global
  /// `net_route_cache_{hits,misses}_total` counters — batched here so the
  /// per-lookup cost stays a plain integer increment.
  ~RouteCache();

  RouteCache(const RouteCache&) = delete;
  RouteCache& operator=(const RouteCache&) = delete;

  /// Returns the cached minimal route, computing it on first use.
  const Route& route(NodeId from, NodeId to);

 private:
  /// Per-source shard: routes by destination index, allocated the first
  /// time that source routes anywhere.
  struct Shard {
    std::vector<Route> routes;
    std::vector<char> cached;
  };
  const Topology* topology_;
  std::vector<Shard> shards_;  ///< by source node index
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Immutable all-pairs minimal-route table: one full BFS per processor at
/// construction, materialising the route to every reachable processor.
/// Produces byte-identical routes to `bfs_route` — BFS parent assignment
/// is deterministic and prefix-stable, so running each source's search to
/// exhaustion (instead of early-stopping at one destination) changes
/// nothing about any individual route.
///
/// The table is the read-only half of what `RouteCache` conflates: it
/// holds no query state, so `route()` is const and safe to call from any
/// number of threads concurrently. `sched::PlatformContext` builds one
/// per topology and shares it across every run on that fabric; the lazy
/// `RouteCache` remains the right shape for single-run scheduling where
/// eager all-pairs work would be wasted.
///
/// Scheduling only ever routes between processors, so switch-to-anything
/// pairs are not materialised; asking for one trips an assertion.
class StaticRouteTable {
 public:
  explicit StaticRouteTable(const Topology& topology);

  StaticRouteTable(const StaticRouteTable&) = delete;
  StaticRouteTable& operator=(const StaticRouteTable&) = delete;

  /// The minimal route between two processors; `from == to` yields the
  /// empty route. Both endpoints must be processors of the topology the
  /// table was built from (and mutually reachable).
  [[nodiscard]] const Route& route(NodeId from, NodeId to) const;

 private:
  struct Shard {
    std::vector<Route> routes;  ///< by destination index
    std::vector<char> cached;
  };
  std::vector<Shard> shards_;  ///< by source node index
};

/// Memoised *probe-driven* routes (modified routing, §4.3). Unlike BFS
/// routes these depend on the live link timelines, so an entry is only
/// returned when the query is provably identical to the one that
/// produced it:
///
///   * same (from, to) endpoints,
///   * bit-identical ready time and edge cost (they parameterise every
///     relaxation probe), and
///   * the same network-state *load generation* — a counter the owning
///     state bumps on every timeline mutation (commit, deferral shift,
///     uncommit). Equal generations mean bit-identical timelines, hence
///     a byte-identical Dijkstra outcome; a changed generation makes the
///     entry stale and `lookup` misses (the entry is overwritten by the
///     next `store`).
///
/// This is a fast path, never a semantic change: a hit returns exactly
/// the route the search would have recomputed.
///
/// Like `RouteCache`, entries are sharded by source node into dense
/// per-destination vectors (lazily sized to the largest node index
/// seen), capping every lookup and store at O(1) — the memo sits inside
/// the per-edge routing hot loop, so its cost must not grow with the
/// number of pairs memoised.
class ProbedRouteCache {
 public:
  ProbedRouteCache() = default;

  /// Flushes hit/miss tallies into `net_route_memo_{hits,misses}_total`.
  ~ProbedRouteCache();

  ProbedRouteCache(const ProbedRouteCache&) = delete;
  ProbedRouteCache& operator=(const ProbedRouteCache&) = delete;

  /// Invalidates every entry (O(1): bumps the run epoch entries are
  /// stamped with). Pooled workspaces call this between runs — load
  /// generations restart per run, so an entry from a previous run could
  /// otherwise collide with an unrelated query that happens to repeat
  /// the same (ready, cost, generation) triple. A fresh cache and a
  /// begun-again one are behaviourally identical, misses included.
  void begin_run() noexcept { ++run_epoch_; }

  /// Flushes the accumulated hit/miss tallies into the global counters
  /// and zeroes them. The engine calls this at the end of every run so
  /// pooled memos report deterministically per run instead of only when
  /// the owning pool dies; the destructor flushes any remainder.
  void flush_tallies();

  /// The memoised route for the identical query, or nullptr on miss.
  [[nodiscard]] const Route* lookup(NodeId from, NodeId to, double ready,
                                    double cost, std::uint64_t generation);

  /// Records a computed route for (from, to) under the given query
  /// parameters, replacing any previous entry for the pair.
  void store(NodeId from, NodeId to, double ready, double cost,
             std::uint64_t generation, const Route& route);

 private:
  struct Entry {
    double ready = 0.0;
    double cost = 0.0;
    std::uint64_t generation = 0;
    std::uint64_t run_epoch = 0;
    bool cached = false;
    Route route;
  };
  struct Shard {
    std::vector<Entry> entries;  ///< by destination index
  };
  std::vector<Shard> shards_;  ///< by source node index, grown on demand
  std::uint64_t run_epoch_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Static weighted shortest path; `weight(link)` must be non-negative.
/// Defaults to per-unit transfer time 1/s(L).
[[nodiscard]] Route dijkstra_route(
    const Topology& topology, NodeId from, NodeId to,
    const std::function<double(LinkId)>& weight = {});

/// Like `dijkstra_route`, but links in `banned_links` and nodes in
/// `banned_nodes` are unavailable. Returns an empty route when no path
/// survives the bans (from != to).
[[nodiscard]] Route dijkstra_route_avoiding(
    const Topology& topology, NodeId from, NodeId to,
    const std::vector<bool>& banned_links,
    const std::vector<bool>& banned_nodes,
    const std::function<double(LinkId)>& weight = {});

/// Yen's algorithm: up to `k` loopless routes in non-decreasing weight
/// order (fewer if the topology has fewer). Route diversity like this is
/// what the modified routing algorithm exploits dynamically; the static
/// variant serves analysis and tests.
[[nodiscard]] std::vector<Route> k_shortest_routes(
    const Topology& topology, NodeId from, NodeId to, std::size_t k,
    const std::function<double(LinkId)>& weight = {});

/// Inputs of a link probe: what the edge brings to the link from the
/// previous hop (or from its source task, on the first hop).
struct ProbeState {
  double earliest_start = 0.0;  ///< t_es on this link
  double min_finish = 0.0;      ///< finish may not precede previous link's
};

/// Outputs of a link probe: where the tentative (uncommitted) insertion
/// would place the edge on this link.
struct ProbeResult {
  double virtual_start = 0.0;  ///< t_s — next hop's earliest start
  double finish = 0.0;         ///< t_f — next hop's minimum finish
};

namespace detail {
inline constexpr double kInfiniteTime =
    std::numeric_limits<double>::infinity();

/// Per-node Dijkstra label. Lives in a `RoutingWorkspace`, reset lazily
/// via epoch stamps.
struct DijkstraLabel {
  double finish = kInfiniteTime;
  double start = kInfiniteTime;
  std::size_t hops = 0;
  LinkId parent;
  bool settled = false;
};

/// Min-heap entry ordered by (finish, start, hops, node) for
/// deterministic relaxation.
struct DijkstraQueueEntry {
  double finish;
  double start;
  std::size_t hops;
  NodeId node;
  bool operator>(const DijkstraQueueEntry& other) const {
    if (finish != other.finish) return finish > other.finish;
    if (start != other.start) return start > other.start;
    if (hops != other.hops) return hops > other.hops;
    return node > other.node;
  }
};
}  // namespace detail

/// Reusable Dijkstra scratch: label array, epoch stamps and heap storage.
///
/// ## Epoch semantics
///
/// Every search calls `begin_search(n)`, which bumps the workspace epoch
/// instead of clearing the O(n) label array. `label(i)` compares the
/// node's stamp against the current epoch and lazily resets the label on
/// first touch, so a search over a topology with N nodes initialises
/// only the labels it actually visits. Labels read through `label()` are
/// therefore always from the *current* search; raw `labels_[i]` access
/// would resurrect a previous search's state and must not be added. The
/// epoch counter is 64-bit: it does not wrap in any realistic process
/// lifetime. A workspace belongs to one thread; schedulers own one per
/// run and reuse it across every routed edge.
class RoutingWorkspace {
 public:
  RoutingWorkspace() = default;

  /// Flushes any relaxations still batched in this workspace (one-off
  /// searches with local scratch reach the global counter this way; the
  /// engine flushes its per-run workspaces explicitly).
  ~RoutingWorkspace() { flush_relaxations(); }

  RoutingWorkspace(const RoutingWorkspace&) = delete;
  RoutingWorkspace& operator=(const RoutingWorkspace&) = delete;

  /// Batches `count` Dijkstra relaxations into this workspace — a plain
  /// member add, no atomic. `dijkstra_route_probe` accumulates here per
  /// search; the one atomic add happens in `flush_relaxations`, once per
  /// run (or at destruction), so a run routing thousands of edges
  /// touches the global registry once instead of once per search.
  void add_relaxations(std::uint64_t count) noexcept {
    relaxations_ += count;
  }

  /// Flushes the batched relaxation tally into
  /// `sched_dijkstra_relaxations_total` and zeroes it.
  void flush_relaxations() {
    if (relaxations_ > 0) {
      obs::hot_counters().dijkstra_relaxations.increment(relaxations_);
      relaxations_ = 0;
    }
  }

  /// Starts a new search over `num_nodes` nodes: sizes the arrays,
  /// bumps the epoch and clears the heap (capacity retained).
  void begin_search(std::size_t num_nodes) {
    if (labels_.size() < num_nodes) {
      labels_.resize(num_nodes);
      stamps_.resize(num_nodes, 0);
    }
    ++epoch_;
    heap_.clear();
  }

  /// The node's label for the current search, default-initialised on
  /// first touch after `begin_search`.
  [[nodiscard]] detail::DijkstraLabel& label(std::size_t node) {
    if (stamps_[node] != epoch_) {
      stamps_[node] = epoch_;
      labels_[node] = detail::DijkstraLabel{};
    }
    return labels_[node];
  }

  [[nodiscard]] std::vector<detail::DijkstraQueueEntry>& heap() noexcept {
    return heap_;
  }

 private:
  std::vector<detail::DijkstraLabel> labels_;
  std::vector<std::uint64_t> stamps_;
  std::uint64_t epoch_ = 0;
  std::vector<detail::DijkstraQueueEntry> heap_;
  std::uint64_t relaxations_ = 0;  ///< batched counter, flushed per run
};

/// Per-run routing scratch state, bundled so a routing policy owns one
/// object instead of each scheduler re-declaring the pieces: the
/// epoch-stamped Dijkstra workspace (reused across every routed edge of
/// a run) and the generation-keyed probe-route memo. One scratch belongs
/// to one run on one thread at a time, but the object itself may be
/// pooled and reused across runs (sched::Workspace does): `begin_run()`
/// invalidates the memo, and the Dijkstra workspace is already
/// self-resetting via its search epoch. Construction is cheap (both
/// members size themselves on first use); the *read-only* routing state
/// — the BFS route table — lives in `StaticRouteTable` / `RouteCache`,
/// outside this scratch.
struct RoutingScratch {
  RoutingWorkspace workspace;
  ProbedRouteCache memo;

  /// Marks the start of a new run on this (possibly pooled) scratch.
  void begin_run() noexcept { memo.begin_run(); }

  /// Flushes every counter batched in this scratch (Dijkstra
  /// relaxations, memo hits/misses) into the global registry. The engine
  /// calls this at end of run so pooled scratch reports deterministically
  /// per run — counter totals are then identical however many workers
  /// shared the run and whether the workspace was fresh or recycled.
  void flush_counters() {
    workspace.flush_relaxations();
    memo.flush_tallies();
  }
};

/// Dynamic Dijkstra over tentative edge finish times (modified routing).
///
/// The probe is called with a candidate link and the state arriving at its
/// source node and must return the basic-insertion placement on that link
/// *without committing it*. Labels are ordered by (finish, virtual_start,
/// hops) for determinism. Requires the probe to be monotone: a later
/// arrival never yields an earlier finish, which basic insertion satisfies.
///
/// `workspace` lets callers amortise the label/heap allocations across
/// searches; pass nullptr for a one-off search with local scratch.
template <typename Probe>
[[nodiscard]] Route dijkstra_route_probe(const Topology& topology,
                                         NodeId from, NodeId to,
                                         double ready_time, Probe&& probe,
                                         RoutingWorkspace* workspace =
                                             nullptr) {
  throw_if(from.index() >= topology.num_nodes() ||
               to.index() >= topology.num_nodes(),
           "dijkstra_route_probe: invalid endpoint");
  if (from == to) {
    return {};
  }

  RoutingWorkspace local;
  RoutingWorkspace& ws = workspace != nullptr ? *workspace : local;
  ws.begin_search(topology.num_nodes());

  // Relaxation tally, batched into the workspace however the search ends
  // (per-relaxation cost stays a plain increment; the workspace flushes
  // one atomic add per run — or at destruction for one-off local scratch
  // — instead of one per search).
  struct RelaxationTally {
    RoutingWorkspace& sink;
    std::uint64_t count = 0;
    ~RelaxationTally() { sink.add_relaxations(count); }
  } relaxations{ws};

  using detail::DijkstraQueueEntry;
  std::vector<DijkstraQueueEntry>& frontier = ws.heap();
  const auto heap_greater = std::greater<DijkstraQueueEntry>();
  const auto push = [&](DijkstraQueueEntry entry) {
    frontier.push_back(entry);
    std::push_heap(frontier.begin(), frontier.end(), heap_greater);
  };

  ws.label(from.index()) =
      detail::DijkstraLabel{0.0, ready_time, 0, LinkId{}, false};
  push(DijkstraQueueEntry{0.0, ready_time, 0, from});

  while (!frontier.empty()) {
    std::pop_heap(frontier.begin(), frontier.end(), heap_greater);
    const DijkstraQueueEntry entry = frontier.back();
    frontier.pop_back();
    detail::DijkstraLabel& current = ws.label(entry.node.index());
    if (current.settled || entry.finish > current.finish ||
        (entry.finish == current.finish && entry.start > current.start)) {
      continue;  // stale entry
    }
    current.settled = true;
    if (entry.node == to) {
      break;
    }
    const double current_start = current.start;
    const double current_finish = current.finish;
    const std::size_t current_hops = current.hops;
    for (LinkId l : topology.out_links(entry.node)) {
      const NodeId next = topology.link(l).dst;
      detail::DijkstraLabel& next_label = ws.label(next.index());
      if (next_label.settled) {
        continue;
      }
      ++relaxations.count;
      const ProbeResult result =
          probe(l, ProbeState{current_start, current_finish});
      // Lexicographic relaxation (finish, start, hops): on an idle
      // cut-through network every path yields the same finish, so hop
      // count must break ties or routes balloon.
      const bool better =
          result.finish < next_label.finish ||
          (result.finish == next_label.finish &&
           (result.virtual_start < next_label.start ||
            (result.virtual_start == next_label.start &&
             current_hops + 1 < next_label.hops)));
      if (better) {
        next_label.finish = result.finish;
        next_label.start = result.virtual_start;
        next_label.hops = current_hops + 1;
        next_label.parent = l;
        push(DijkstraQueueEntry{result.finish, result.virtual_start,
                                next_label.hops, next});
      }
    }
  }

  throw_if(!ws.label(to.index()).parent.valid(),
           "dijkstra_route_probe: destination unreachable");
  Route route;
  NodeId at = to;
  while (at != from) {
    const LinkId hop = ws.label(at.index()).parent;
    route.push_back(hop);
    at = topology.link(hop).src;
  }
  std::reverse(route.begin(), route.end());
  return route;
}

}  // namespace edgesched::net
