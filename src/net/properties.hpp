// Structural network properties: distance statistics and degree reports,
// used by topology tests, examples and the experiment write-ups.
#pragma once

#include <cstddef>
#include <vector>

#include "net/topology.hpp"

namespace edgesched::net {

struct TopologyStats {
  std::size_t num_processors = 0;
  std::size_t num_switches = 0;
  std::size_t num_links = 0;
  std::size_t num_domains = 0;
  /// Largest hop distance between any two processors.
  std::size_t diameter = 0;
  /// Mean hop distance over ordered processor pairs.
  double mean_processor_distance = 0.0;
  double mean_link_speed = 0.0;
  double min_link_speed = 0.0;
  double max_link_speed = 0.0;
};

/// BFS hop distances from `from` to every node; unreachable nodes get
/// SIZE_MAX.
[[nodiscard]] std::vector<std::size_t> hop_distances(
    const Topology& topology, NodeId from);

/// Full statistics sweep; O(P · (N + L)). Throws when some processor pair
/// is unreachable.
[[nodiscard]] TopologyStats analyze(const Topology& topology);

}  // namespace edgesched::net
