// Side-by-side schedule dump: run every engine-backed algorithm bundle
// from the registry on one small instance and print the full
// Gantt-style schedules, making the booked link slots and bandwidth
// profiles visible.
//
//   $ ./build/examples/compare_algorithms
#include <iostream>

#include "dag/generators.hpp"
#include "net/builders.hpp"
#include "sched/registry.hpp"
#include "sched/validator.hpp"

int main() {
  using namespace edgesched;

  // A join of four producers into one consumer with chunky messages —
  // small enough to read, contended enough to differ across algorithms.
  const dag::TaskGraph graph = dag::join(4, 3.0, 9.0);

  Rng rng(5);
  const net::Topology star =
      net::switched_star(3, net::SpeedConfig{}, rng);
  std::cout << "instance: join(4) with edge cost 9 on a 3-processor "
               "switched star\n\n";

  for (const sched::AlgorithmEntry& entry : sched::algorithm_registry()) {
    if (!entry.engine_backed()) {
      continue;  // classic/ga/sa ignore link contention — not comparable
    }
    const sched::AlgorithmSpec spec = entry.spec();
    std::cout << "== " << entry.display << ": " << spec.describe()
              << " ==\n";
    const auto scheduler = entry.make();
    const sched::Schedule s = scheduler->schedule(graph, star);
    sched::validate_or_throw(graph, star, s);
    std::cout << s.to_string(graph, star) << "\n";
  }
  return 0;
}
