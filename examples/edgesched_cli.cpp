// edgesched_cli — schedule a task graph onto a network from the command
// line, or replay a schedule through the discrete-event executor.
//
// Usage:
//   edgesched_cli --graph FILE [--graph-format text|stg]
//                 (--topology FILE | --wan N | --star N | --ring N |
//                  --fully-connected N)
//                 [--heterogeneous] [--seed S]
//                 [--algorithm NAME] [--list-algorithms]
//                 [--ccr X] [--output schedule|metrics|gantt|trace|dot]
//                 [--intra-threads N]
//
//   edgesched_cli run <same instance flags>
//                 [--jitter X] [--bw-jitter X] [--exec-seed S]
//                 [--fault-rate R] [--link-fault-rate R]
//                 [--fault-permanent F] [--fault-seed S]
//                 [--recovery fail-stop|retry|reschedule]
//                 [--recovery-algorithm NAME]
//                 [--dispatch timetable|event-driven]
//                 [--report-json FILE] [--postmortem FILE]
//                 [--merged-trace FILE] [--metrics-json FILE]
//
// The `run` subcommand schedules the instance, then executes the plan in
// virtual time under duration jitter (U(1±jitter)) and hazard-sampled
// faults (R failures per resource per unit time over a horizon of four
// predicted makespans), printing the achieved-vs-predicted summary.
// `--report-json` writes the full ExecutionReport document ("-" =
// stdout).
//
// Observability (both modes; every artifact of one invocation carries
// the same run_id, so they cross-correlate):
//   --trace FILE      runtime tracer (full mode) Chrome trace of the
//                     algorithm/executor running
//   --decisions FILE  streaming decision-log JSONL
//   --metrics FILE    scheduler counter dump (text exposition)
// `run`-only artifacts:
//   --metrics-json FILE   obs::MetricsSnapshot JSON document
//   --postmortem FILE     flight-recorder dump of the run
//   --merged-trace FILE   planned/executed/faults merged Perfetto
//                         timeline (exec/trace_merge)
// All FILE arguments accept "-" for stdout.
//
// Algorithm names come from the central registry (sched/registry.hpp);
// `--list-algorithms` prints every key with its policy bundle.
//
// Examples:
//   edgesched_cli --graph wf.txt --wan 16 --algorithm oihsa
//                 --output metrics
//   edgesched_cli run --graph wf.txt --wan 16 --algorithm oihsa
//                 --jitter 0.2 --fault-rate 0.001 --recovery reschedule
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "dag/properties.hpp"
#include "dag/serialization.hpp"
#include "exec/executor.hpp"
#include "exec/trace_merge.hpp"
#include "net/builders.hpp"
#include "net/serialization.hpp"
#include "obs/counters.hpp"
#include "obs/decision_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics_snapshot.hpp"
#include "obs/run_context.hpp"
#include "obs/trace.hpp"
#include "sched/intra_run.hpp"
#include "sched/metrics.hpp"
#include "sched/registry.hpp"
#include "sched/trace_export.hpp"
#include "sched/validator.hpp"

namespace {

using namespace edgesched;

struct Args {
  bool run = false;  ///< `run` subcommand: execute the schedule
  std::string graph_file;
  std::string graph_format = "text";
  std::string topology_file;
  std::string builder;
  std::size_t builder_size = 8;
  bool heterogeneous = false;
  std::uint64_t seed = 1;
  std::string algorithm = "oihsa";
  double ccr = 0.0;  // 0 = keep the file's costs
  std::string output = "schedule";

  // `run` subcommand options.
  double jitter = 0.0;
  double bw_jitter = 0.0;
  std::uint64_t exec_seed = 1;
  double fault_rate = 0.0;       ///< processor failures / unit time
  double link_fault_rate = 0.0;  ///< link failures / unit time
  double fault_permanent = 0.3;  ///< fraction of sampled faults
  std::uint64_t fault_seed = 1;
  std::string recovery = "reschedule";
  std::string recovery_algorithm;
  std::string dispatch = "timetable";
  std::string report_json;  ///< "" = none, "-" = stdout

  // Observability artifacts ("" = none, "-" = stdout).
  std::string trace_file;      ///< runtime tracer Chrome trace
  std::string decisions_file;  ///< streaming decision-log JSONL
  std::string metrics_file;    ///< counter text dump
  // `run`-only artifacts.
  std::string metrics_json_file;  ///< MetricsSnapshot JSON
  std::string postmortem_file;    ///< flight-recorder dump
  std::string merged_trace_file;  ///< planned/executed merged timeline
};

[[noreturn]] void usage(const std::string& error = {}) {
  if (!error.empty()) {
    std::cerr << "error: " << error << "\n\n";
  }
  std::cerr
      << "usage: edgesched_cli --graph FILE [--graph-format text|stg]\n"
         "         (--topology FILE | --wan N | --star N | --ring N |\n"
         "          --fully-connected N) [--heterogeneous] [--seed S]\n"
         "         [--algorithm NAME] [--list-algorithms]\n"
         "         [--ccr X]\n"
         "         [--output schedule|metrics|gantt|trace|dot]\n"
         "         [--intra-threads N]  (0 = all cores; schedules are\n"
         "          byte-identical at every N; default 1 or\n"
         "          EDGESCHED_INTRA_THREADS)\n"
         "   or: edgesched_cli run <instance flags>\n"
         "         [--jitter X] [--bw-jitter X] [--exec-seed S]\n"
         "         [--fault-rate R] [--link-fault-rate R]\n"
         "         [--fault-permanent F] [--fault-seed S]\n"
         "         [--recovery fail-stop|retry|reschedule]\n"
         "         [--recovery-algorithm NAME]\n"
         "         [--dispatch timetable|event-driven]\n"
         "         [--report-json FILE] [--postmortem FILE]\n"
         "         [--merged-trace FILE] [--metrics-json FILE]\n"
         "observability (both modes, \"-\" = stdout):\n"
         "         [--trace FILE] [--decisions FILE] [--metrics FILE]\n"
         "algorithms (see --list-algorithms for the policy bundles):\n"
         "  ";
  bool first = true;
  for (const sched::AlgorithmEntry& entry : sched::algorithm_registry()) {
    std::cerr << (first ? "" : " | ") << entry.key;
    first = false;
  }
  std::cerr << "\n";
  std::exit(error.empty() ? 0 : 2);
}

Args parse(int argc, char** argv) {
  Args args;
  const auto next = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      usage(std::string(argv[i]) + " needs a value");
    }
    return argv[++i];
  };
  int first = 1;
  if (argc > 1 && std::string(argv[1]) == "run") {
    args.run = true;
    first = 2;
  }
  for (int i = first; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--graph") {
      args.graph_file = next(i);
    } else if (flag == "--graph-format") {
      args.graph_format = next(i);
    } else if (flag == "--topology") {
      args.topology_file = next(i);
    } else if (flag == "--wan" || flag == "--star" || flag == "--ring" ||
               flag == "--fully-connected") {
      args.builder = flag.substr(2);
      args.builder_size =
          static_cast<std::size_t>(std::stoul(next(i)));
    } else if (flag == "--heterogeneous") {
      args.heterogeneous = true;
    } else if (flag == "--seed") {
      args.seed = std::stoull(next(i));
    } else if (flag == "--algorithm") {
      args.algorithm = next(i);
    } else if (flag == "--list-algorithms") {
      std::cout << sched::algorithm_list();
      std::exit(0);
    } else if (flag == "--ccr") {
      args.ccr = std::stod(next(i));
    } else if (flag == "--output") {
      args.output = next(i);
    } else if (flag == "--intra-threads") {
      // Process-global: both the direct schedule and any recovery
      // replans fan their candidate scans across this many workers.
      sched::set_intra_run_threads(
          static_cast<std::size_t>(std::stoul(next(i))));
    } else if (args.run && flag == "--jitter") {
      args.jitter = std::stod(next(i));
    } else if (args.run && flag == "--bw-jitter") {
      args.bw_jitter = std::stod(next(i));
    } else if (args.run && flag == "--exec-seed") {
      args.exec_seed = std::stoull(next(i));
    } else if (args.run && flag == "--fault-rate") {
      args.fault_rate = std::stod(next(i));
    } else if (args.run && flag == "--link-fault-rate") {
      args.link_fault_rate = std::stod(next(i));
    } else if (args.run && flag == "--fault-permanent") {
      args.fault_permanent = std::stod(next(i));
    } else if (args.run && flag == "--fault-seed") {
      args.fault_seed = std::stoull(next(i));
    } else if (args.run && flag == "--recovery") {
      args.recovery = next(i);
    } else if (args.run && flag == "--recovery-algorithm") {
      args.recovery_algorithm = next(i);
    } else if (args.run && flag == "--dispatch") {
      args.dispatch = next(i);
    } else if (args.run && flag == "--report-json") {
      args.report_json = next(i);
    } else if (flag == "--trace") {
      args.trace_file = next(i);
    } else if (flag == "--decisions") {
      args.decisions_file = next(i);
    } else if (flag == "--metrics") {
      args.metrics_file = next(i);
    } else if (args.run && flag == "--metrics-json") {
      args.metrics_json_file = next(i);
    } else if (args.run && flag == "--postmortem") {
      args.postmortem_file = next(i);
    } else if (args.run && flag == "--merged-trace") {
      args.merged_trace_file = next(i);
    } else if (flag == "--help" || flag == "-h") {
      usage();
    } else {
      usage("unknown flag " + flag);
    }
  }
  if (args.graph_file.empty()) {
    usage("--graph is required");
  }
  if (args.topology_file.empty() && args.builder.empty()) {
    usage("one of --topology/--wan/--star/--ring/--fully-connected is "
          "required");
  }
  return args;
}

dag::TaskGraph load_graph(const Args& args) {
  std::ifstream in(args.graph_file);
  if (!in) {
    usage("cannot open graph file " + args.graph_file);
  }
  dag::TaskGraph graph = args.graph_format == "stg"
                             ? dag::read_stg(in)
                             : dag::read_text(in);
  if (args.ccr > 0.0) {
    dag::rescale_to_ccr(graph, args.ccr);
  }
  return graph;
}

net::Topology load_topology(const Args& args) {
  if (!args.topology_file.empty()) {
    std::ifstream in(args.topology_file);
    if (!in) {
      usage("cannot open topology file " + args.topology_file);
    }
    return net::read_text(in);
  }
  Rng rng(args.seed);
  net::SpeedConfig speeds;
  speeds.heterogeneous = args.heterogeneous;
  if (args.builder == "wan") {
    net::RandomWanParams params;
    params.num_processors = args.builder_size;
    params.speeds = speeds;
    return net::random_wan(params, rng);
  }
  if (args.builder == "star") {
    return net::switched_star(args.builder_size, speeds, rng);
  }
  if (args.builder == "ring") {
    return net::ring(args.builder_size, speeds, rng);
  }
  return net::fully_connected(args.builder_size, speeds, rng);
}

std::unique_ptr<sched::Scheduler> make_scheduler(const Args& args) {
  if (const sched::AlgorithmEntry* entry =
          sched::find_algorithm(args.algorithm)) {
    return entry->make();
  }
  usage("unknown algorithm " + args.algorithm);
}

/// Opens `path` ("-" = stdout) and hands the stream to `fn`; false with
/// a message on stderr when the file cannot be opened.
bool write_artifact(const std::string& path,
                    const std::function<void(std::ostream&)>& fn) {
  if (path == "-") {
    fn(std::cout);
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot write " << path << "\n";
    return false;
  }
  fn(out);
  return true;
}

int run_schedule(const Args& args, const dag::TaskGraph& graph,
                 const net::Topology& topology,
                 const sched::Schedule& schedule) {
  exec::ExecutionOptions options;
  options.model.duration_spread = args.jitter;
  options.model.bandwidth_spread = args.bw_jitter;
  options.model.seed = args.exec_seed;
  options.policy = exec::parse_recovery_policy(args.recovery);
  options.dispatch = exec::parse_dispatch_mode(args.dispatch);
  options.recovery_algorithm = args.recovery_algorithm;
  if (args.fault_rate > 0.0 || args.link_fault_rate > 0.0) {
    // Hazard horizon: sample failures well past the predicted makespan
    // so recovery epochs still see faults.
    exec::HazardConfig hazard;
    hazard.processor_rate = args.fault_rate;
    hazard.link_rate = args.link_fault_rate;
    hazard.horizon = 4.0 * schedule.makespan();
    hazard.permanent_fraction = args.fault_permanent;
    hazard.mean_repair = 0.05 * schedule.makespan();
    hazard.seed = args.fault_seed;
    options.faults = exec::FaultPlan::sampled(topology, hazard);
  }
  const exec::ExecutionReport report =
      exec::execute(graph, topology, schedule, options);
  std::cout << report.summary() << "\n";

  bool ok = true;
  if (!args.report_json.empty()) {
    ok &= write_artifact(args.report_json, [&](std::ostream& os) {
      os << report.to_json().dump() << "\n";
    });
  }
  if (!args.metrics_json_file.empty()) {
    ok &= write_artifact(args.metrics_json_file, [](std::ostream& os) {
      os << obs::MetricsSnapshot::capture(obs::global_metrics())
                .to_json()
                .dump()
         << "\n";
    });
  }
  if (!args.merged_trace_file.empty()) {
    ok &= write_artifact(args.merged_trace_file, [&](std::ostream& os) {
      exec::write_merged_trace(os, graph, topology, schedule, report);
    });
  }
  if (!args.postmortem_file.empty()) {
    ok &= write_artifact(args.postmortem_file, [](std::ostream& os) {
      obs::flight_recorder().write_postmortem(os, "cli_request");
    });
  }
  if (!ok) {
    return 1;
  }
  return report.completed ? 0 : 3;
}

int invoke(const Args& args) {
  const dag::TaskGraph graph = load_graph(args);
  const net::Topology topology = load_topology(args);
  const auto scheduler = make_scheduler(args);
  const sched::Schedule schedule = scheduler->schedule(graph, topology);
  try {
    sched::validate_or_throw(graph, topology, schedule);
  } catch (...) {
    // Black-box dump on validator failure (written only when
    // EDGESCHED_POSTMORTEM_DIR is set).
    obs::flight_recorder().maybe_write_postmortem("validator_failure");
    throw;
  }

  if (args.run) {
    return run_schedule(args, graph, topology, schedule);
  }
  if (args.output == "schedule") {
    std::cout << schedule.to_string(graph, topology);
  } else if (args.output == "metrics") {
    std::cout << sched::to_string(
        sched::compute_metrics(graph, topology, schedule));
  } else if (args.output == "gantt") {
    sched::write_ascii_gantt(std::cout, graph, topology, schedule);
  } else if (args.output == "trace") {
    sched::write_chrome_trace(std::cout, graph, topology, schedule);
  } else if (args.output == "dot") {
    dag::write_dot(std::cout, graph);
  } else {
    usage("unknown output " + args.output);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  // One run scope for the whole invocation: every trace span, decision
  // line, flight entry and the execution report carry the same run_id
  // (always 1 here — the CLI mints the process's first ID, which keeps
  // same-seed artifact dumps byte-identical).
  const obs::ScopedRunId run_scope(obs::mint_run_id());

  // Declaration order matters: the scope uninstalls before the log and
  // its sink stream destruct.
  std::optional<std::ofstream> decisions_out;
  std::optional<obs::DecisionLog> decision_log;
  std::optional<obs::ScopedDecisionLog> decision_scope;
  if (!args.decisions_file.empty()) {
    std::ostream* sink = &std::cout;
    if (args.decisions_file != "-") {
      decisions_out.emplace(args.decisions_file);
      if (!*decisions_out) {
        std::cerr << "error: cannot write " << args.decisions_file << "\n";
        return 1;
      }
      sink = &*decisions_out;
    }
    decision_log.emplace(*sink);
    decision_scope.emplace(*decision_log);
  }
  if (!args.trace_file.empty()) {
    obs::Tracer::instance().clear();
    obs::Tracer::instance().set_mode(obs::TraceMode::kFull);
  }

  int status = 0;
  try {
    status = invoke(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    status = 1;
  }

  if (!args.trace_file.empty()) {
    if (!write_artifact(args.trace_file, [](std::ostream& os) {
          obs::Tracer::instance().write_chrome_trace(os);
        })) {
      status = status == 0 ? 1 : status;
    }
    obs::Tracer::instance().set_mode(obs::TraceMode::kDisabled);
  }
  if (!args.metrics_file.empty()) {
    if (!write_artifact(args.metrics_file, [](std::ostream& os) {
          os << obs::global_metrics().text_dump();
        })) {
      status = status == 0 ? 1 : status;
    }
  }
  return status;
}
