// edgesched_cli — schedule a task graph onto a network from the command
// line.
//
// Usage:
//   edgesched_cli --graph FILE [--graph-format text|stg]
//                 (--topology FILE | --wan N | --star N | --ring N |
//                  --fully-connected N)
//                 [--heterogeneous] [--seed S]
//                 [--algorithm NAME] [--list-algorithms]
//                 [--ccr X] [--output schedule|metrics|gantt|trace|dot]
//
// Algorithm names come from the central registry (sched/registry.hpp);
// `--list-algorithms` prints every key with its policy bundle.
//
// Examples:
//   edgesched_cli --graph wf.txt --wan 16 --algorithm oihsa
//                 --output metrics
//   edgesched_cli --graph wf.stg --graph-format stg --star 8
//                 --output trace > trace.json   # open in chrome://tracing
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "dag/properties.hpp"
#include "dag/serialization.hpp"
#include "net/builders.hpp"
#include "net/serialization.hpp"
#include "sched/metrics.hpp"
#include "sched/registry.hpp"
#include "sched/trace_export.hpp"
#include "sched/validator.hpp"

namespace {

using namespace edgesched;

struct Args {
  std::string graph_file;
  std::string graph_format = "text";
  std::string topology_file;
  std::string builder;
  std::size_t builder_size = 8;
  bool heterogeneous = false;
  std::uint64_t seed = 1;
  std::string algorithm = "oihsa";
  double ccr = 0.0;  // 0 = keep the file's costs
  std::string output = "schedule";
};

[[noreturn]] void usage(const std::string& error = {}) {
  if (!error.empty()) {
    std::cerr << "error: " << error << "\n\n";
  }
  std::cerr
      << "usage: edgesched_cli --graph FILE [--graph-format text|stg]\n"
         "         (--topology FILE | --wan N | --star N | --ring N |\n"
         "          --fully-connected N) [--heterogeneous] [--seed S]\n"
         "         [--algorithm NAME] [--list-algorithms]\n"
         "         [--ccr X]\n"
         "         [--output schedule|metrics|gantt|trace|dot]\n"
         "algorithms (see --list-algorithms for the policy bundles):\n"
         "  ";
  bool first = true;
  for (const sched::AlgorithmEntry& entry : sched::algorithm_registry()) {
    std::cerr << (first ? "" : " | ") << entry.key;
    first = false;
  }
  std::cerr << "\n";
  std::exit(error.empty() ? 0 : 2);
}

Args parse(int argc, char** argv) {
  Args args;
  const auto next = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      usage(std::string(argv[i]) + " needs a value");
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--graph") {
      args.graph_file = next(i);
    } else if (flag == "--graph-format") {
      args.graph_format = next(i);
    } else if (flag == "--topology") {
      args.topology_file = next(i);
    } else if (flag == "--wan" || flag == "--star" || flag == "--ring" ||
               flag == "--fully-connected") {
      args.builder = flag.substr(2);
      args.builder_size =
          static_cast<std::size_t>(std::stoul(next(i)));
    } else if (flag == "--heterogeneous") {
      args.heterogeneous = true;
    } else if (flag == "--seed") {
      args.seed = std::stoull(next(i));
    } else if (flag == "--algorithm") {
      args.algorithm = next(i);
    } else if (flag == "--list-algorithms") {
      std::cout << sched::algorithm_list();
      std::exit(0);
    } else if (flag == "--ccr") {
      args.ccr = std::stod(next(i));
    } else if (flag == "--output") {
      args.output = next(i);
    } else if (flag == "--help" || flag == "-h") {
      usage();
    } else {
      usage("unknown flag " + flag);
    }
  }
  if (args.graph_file.empty()) {
    usage("--graph is required");
  }
  if (args.topology_file.empty() && args.builder.empty()) {
    usage("one of --topology/--wan/--star/--ring/--fully-connected is "
          "required");
  }
  return args;
}

dag::TaskGraph load_graph(const Args& args) {
  std::ifstream in(args.graph_file);
  if (!in) {
    usage("cannot open graph file " + args.graph_file);
  }
  dag::TaskGraph graph = args.graph_format == "stg"
                             ? dag::read_stg(in)
                             : dag::read_text(in);
  if (args.ccr > 0.0) {
    dag::rescale_to_ccr(graph, args.ccr);
  }
  return graph;
}

net::Topology load_topology(const Args& args) {
  if (!args.topology_file.empty()) {
    std::ifstream in(args.topology_file);
    if (!in) {
      usage("cannot open topology file " + args.topology_file);
    }
    return net::read_text(in);
  }
  Rng rng(args.seed);
  net::SpeedConfig speeds;
  speeds.heterogeneous = args.heterogeneous;
  if (args.builder == "wan") {
    net::RandomWanParams params;
    params.num_processors = args.builder_size;
    params.speeds = speeds;
    return net::random_wan(params, rng);
  }
  if (args.builder == "star") {
    return net::switched_star(args.builder_size, speeds, rng);
  }
  if (args.builder == "ring") {
    return net::ring(args.builder_size, speeds, rng);
  }
  return net::fully_connected(args.builder_size, speeds, rng);
}

std::unique_ptr<sched::Scheduler> make_scheduler(const Args& args) {
  if (const sched::AlgorithmEntry* entry =
          sched::find_algorithm(args.algorithm)) {
    return entry->make();
  }
  usage("unknown algorithm " + args.algorithm);
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    const dag::TaskGraph graph = load_graph(args);
    const net::Topology topology = load_topology(args);
    const auto scheduler = make_scheduler(args);
    const sched::Schedule schedule =
        scheduler->schedule(graph, topology);
    sched::validate_or_throw(graph, topology, schedule);

    if (args.output == "schedule") {
      std::cout << schedule.to_string(graph, topology);
    } else if (args.output == "metrics") {
      std::cout << sched::to_string(
          sched::compute_metrics(graph, topology, schedule));
    } else if (args.output == "gantt") {
      sched::write_ascii_gantt(std::cout, graph, topology, schedule);
    } else if (args.output == "trace") {
      sched::write_chrome_trace(std::cout, graph, topology, schedule);
    } else if (args.output == "dot") {
      dag::write_dot(std::cout, graph);
    } else {
      usage("unknown output " + args.output);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
