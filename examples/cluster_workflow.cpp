// Heterogeneous cluster workflow: schedule the dependence structure of
// Gaussian elimination on a fat-tree cluster with mixed-speed nodes, and
// compare all three contention-aware algorithms plus the classic
// contention-free baseline replayed under real contention.
//
//   $ ./build/examples/cluster_workflow [matrix_dim] [leaf_switches]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "dag/generators.hpp"
#include "dag/properties.hpp"
#include "net/builders.hpp"
#include "sched/ba.hpp"
#include "sched/bbsa.hpp"
#include "sched/classic.hpp"
#include "sched/oihsa.hpp"
#include "sched/replay.hpp"
#include "sched/validator.hpp"

int main(int argc, char** argv) {
  using namespace edgesched;

  const std::size_t dim =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 8;
  const std::size_t leaves =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 3;

  // Workflow: Gaussian elimination of a dim x dim matrix; pivot rows are
  // broadcast to the trailing submatrix, so communication grows with dim.
  dag::TaskGraph graph = dag::gaussian_elimination(dim, 8.0, 12.0);
  std::cout << "workflow: " << graph.name() << " with "
            << graph.num_tasks() << " tasks, " << graph.num_edges()
            << " edges, CCR "
            << dag::communication_computation_ratio(graph) << "\n";

  // Machine: a two-level fat-tree, 4 heterogeneous processors per leaf.
  Rng rng(7);
  net::SpeedConfig speeds;
  speeds.heterogeneous = true;
  const net::Topology cluster = net::fat_tree(leaves, 4, speeds, rng);
  std::cout << "cluster: " << cluster.num_processors()
            << " processors behind " << leaves
            << " leaf switches (speeds U(1,10))\n\n";

  const auto report = [&](const std::string& label,
                          const sched::Schedule& s) {
    sched::validate_or_throw(graph, cluster, s,
                             sched::ValidationOptions{});
    std::cout << std::setw(24) << label << "  makespan "
              << std::setw(9) << std::fixed << std::setprecision(2)
              << s.makespan() << "  utilisation "
              << s.processor_utilisation(graph, cluster) << "\n";
    std::cout.unsetf(std::ios::fixed);
  };

  report("BA", sched::BasicAlgorithm{}.schedule(graph, cluster));
  report("OIHSA", sched::Oihsa{}.schedule(graph, cluster));
  report("BBSA", sched::Bbsa{}.schedule(graph, cluster));

  const sched::Schedule planned =
      sched::ClassicScheduler{}.schedule(graph, cluster);
  std::cout << std::setw(24) << "CLASSIC (ideal plan)" << "  makespan "
            << std::setw(9) << std::fixed << std::setprecision(2)
            << planned.makespan() << "  (assumes a contention-free net)\n";
  std::cout.unsetf(std::ios::fixed);
  report("CLASSIC replayed",
         sched::replay_under_contention(graph, cluster, planned));
  return 0;
}
