// Quickstart: build a small task graph and a switched cluster, schedule
// with OIHSA, and inspect the result.
//
//   $ ./build/examples/quickstart
#include <iostream>

#include "dag/task_graph.hpp"
#include "net/topology.hpp"
#include "sched/oihsa.hpp"
#include "sched/validator.hpp"

int main() {
  using namespace edgesched;

  // 1. Describe the program: a tiny map/reduce — one producer fans out to
  //    three workers whose results join in a reducer.
  dag::TaskGraph graph("mapreduce");
  const dag::TaskId produce = graph.add_task(4.0, "produce");
  const dag::TaskId reduce = graph.add_task(3.0, "reduce");
  for (int i = 0; i < 3; ++i) {
    const dag::TaskId worker =
        graph.add_task(10.0, "work" + std::to_string(i));
    graph.add_edge(produce, worker, 6.0);  // shard shipped to the worker
    graph.add_edge(worker, reduce, 2.0);   // result shipped back
  }

  // 2. Describe the machine: four processors behind one switch. Links are
  //    explicit, so messages crossing the switch compete for them.
  net::Topology cluster("quad");
  const net::NodeId hub = cluster.add_switch("hub");
  for (int i = 0; i < 4; ++i) {
    const net::NodeId cpu =
        cluster.add_processor(1.0, "cpu" + std::to_string(i));
    cluster.add_duplex_link(cpu, hub, 1.0);
  }

  // 3. Schedule with OIHSA (contention-aware: routes and link time slots
  //    are booked for every cross-processor edge).
  const sched::Schedule schedule =
      sched::Oihsa{}.schedule(graph, cluster);

  // 4. Every schedule can be independently re-validated.
  sched::validate_or_throw(graph, cluster, schedule);

  std::cout << schedule.to_string(graph, cluster);
  std::cout << "makespan: " << schedule.makespan() << "\n";
  std::cout << "processor utilisation: "
            << schedule.processor_utilisation(graph, cluster) << "\n";
  return 0;
}
