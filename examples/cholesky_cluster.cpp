// Dense linear algebra on a dragonfly machine: schedule a tiled Cholesky
// factorisation and study how the contention-aware algorithms track the
// critical path as the tile count grows.
//
//   $ ./build/examples/cholesky_cluster [max_tiles]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "dag/generators.hpp"
#include "dag/properties.hpp"
#include "net/builders.hpp"
#include "sched/ba.hpp"
#include "sched/bbsa.hpp"
#include "sched/lower_bounds.hpp"
#include "sched/oihsa.hpp"
#include "sched/validator.hpp"

int main(int argc, char** argv) {
  using namespace edgesched;

  const std::size_t max_tiles =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 8;

  Rng rng(11);
  const net::Topology machine =
      net::dragonfly(2, 2, 2, net::SpeedConfig{}, rng);
  std::cout << "machine: dragonfly with " << machine.num_processors()
            << " processors\n\n";
  std::cout << std::setw(7) << "tiles" << std::setw(8) << "tasks"
            << std::setw(12) << "bound" << std::setw(12) << "BA"
            << std::setw(12) << "OIHSA" << std::setw(12) << "BBSA"
            << std::setw(10) << "SLR" << "\n";

  for (std::size_t tiles = 2; tiles <= max_tiles; tiles += 2) {
    // Communication-heavy tiles: moving a tile costs as much as a TRSM.
    const dag::TaskGraph graph = dag::cholesky(tiles, 3.0, 3.0);
    const double bound = sched::makespan_lower_bound(graph, machine);

    const sched::Schedule ba =
        sched::BasicAlgorithm{}.schedule(graph, machine);
    const sched::Schedule oihsa = sched::Oihsa{}.schedule(graph, machine);
    const sched::Schedule bbsa = sched::Bbsa{}.schedule(graph, machine);
    sched::validate_or_throw(graph, machine, ba);
    sched::validate_or_throw(graph, machine, oihsa);
    sched::validate_or_throw(graph, machine, bbsa);

    std::cout << std::setw(7) << tiles << std::setw(8)
              << graph.num_tasks() << std::fixed << std::setprecision(1)
              << std::setw(12) << bound << std::setw(12) << ba.makespan()
              << std::setw(12) << oihsa.makespan() << std::setw(12)
              << bbsa.makespan() << std::setw(10) << std::setprecision(2)
              << oihsa.makespan() / bound << "\n";
    std::cout.unsetf(std::ios::fixed);
    std::cout << std::setprecision(6);
  }
  return 0;
}
