// Wide-area grid scenario: the paper's evaluation environment — a random
// multi-switch WAN whose switches host U(4,16) processors each — running
// a communication-heavy random workflow. Shows how the improvement of the
// contention-aware heuristics grows with CCR.
//
//   $ ./build/examples/wide_area_grid [processors] [tasks]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "dag/generators.hpp"
#include "dag/properties.hpp"
#include "net/builders.hpp"
#include "sched/ba.hpp"
#include "sched/bbsa.hpp"
#include "sched/oihsa.hpp"
#include "sched/validator.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace edgesched;

  const std::size_t procs =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 16;
  const std::size_t tasks =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 60;

  Rng rng(2006);
  net::RandomWanParams wan;
  wan.num_processors = procs;
  const net::Topology grid = net::random_wan(wan, rng);
  std::size_t switches = grid.num_nodes() - grid.num_processors();
  std::cout << "grid: " << grid.num_processors() << " processors across "
            << switches << " switches, " << grid.num_links()
            << " directed links\n\n";

  std::cout << std::setw(6) << "CCR" << std::setw(12) << "BA"
            << std::setw(12) << "OIHSA" << std::setw(12) << "BBSA"
            << std::setw(14) << "OIHSA gain" << std::setw(14)
            << "BBSA gain" << "\n";

  for (double ccr : {0.5, 1.0, 2.0, 5.0, 10.0}) {
    Rng graph_rng(99);
    dag::LayeredDagParams params;
    params.num_tasks = tasks;
    dag::TaskGraph graph = dag::random_layered(params, graph_rng);
    dag::rescale_to_ccr(graph, ccr);

    const sched::Schedule ba =
        sched::BasicAlgorithm{}.schedule(graph, grid);
    const sched::Schedule oihsa = sched::Oihsa{}.schedule(graph, grid);
    const sched::Schedule bbsa = sched::Bbsa{}.schedule(graph, grid);
    sched::validate_or_throw(graph, grid, ba);
    sched::validate_or_throw(graph, grid, oihsa);
    sched::validate_or_throw(graph, grid, bbsa);

    std::cout << std::setw(6) << ccr << std::fixed << std::setprecision(0)
              << std::setw(12) << ba.makespan() << std::setw(12)
              << oihsa.makespan() << std::setw(12) << bbsa.makespan()
              << std::setprecision(1) << std::setw(13)
              << sim::improvement_pct(ba.makespan(), oihsa.makespan())
              << "%" << std::setw(13)
              << sim::improvement_pct(ba.makespan(), bbsa.makespan())
              << "%\n";
    std::cout.unsetf(std::ios::fixed);
    std::cout << std::setprecision(6);
  }
  return 0;
}
