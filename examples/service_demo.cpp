// Concurrent scheduling service demo.
//
// Drives svc::SchedulerService with a burst of concurrent requests —
// several workflows × several algorithms, each submitted multiple times —
// and prints the resulting cache-hit report and metrics dump. Usage:
//
//   service_demo [--trace <file>] [--metrics] [--snapshots <file>]
//                [threads] [rounds]
//
// `threads` defaults to the hardware concurrency, `rounds` (how many
// times the whole request mix is resubmitted) to 3; every round after the
// first is served entirely from the schedule cache. `--trace` records the
// run with the obs tracer and writes a Chrome trace-event JSON (load it
// in Perfetto to see the pool workers executing scheduler phases);
// `--metrics` appends the global hot-path counter dump. `--snapshots`
// runs an obs::PeriodicSnapshotter over the service's metrics registry
// for the demo's duration, appending one metrics-snapshot JSON document
// per line (at least one line is always written).
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <optional>

#include "dag/generators.hpp"
#include "net/builders.hpp"
#include "obs/counters.hpp"
#include "obs/metrics_snapshot.hpp"
#include "obs/trace.hpp"
#include "svc/scheduler_service.hpp"
#include "util/rng.hpp"

using namespace edgesched;

int main(int argc, char** argv) {
  std::string trace_path;
  std::string snapshots_path;
  bool dump_metrics = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--snapshots") == 0 && i + 1 < argc) {
      snapshots_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      dump_metrics = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  const std::size_t threads =
      positional.size() > 0
          ? static_cast<std::size_t>(std::atoi(positional[0]))
          : 0;
  const std::size_t rounds =
      positional.size() > 1
          ? static_cast<std::size_t>(std::atoi(positional[1]))
          : 3;
  if (!trace_path.empty()) {
    obs::Tracer::instance().set_mode(obs::TraceMode::kFull);
  }

  svc::SchedulerService service(
      {.threads = threads, .cache_capacity = 256, .validate = true});
  std::cout << "scheduler service: " << service.num_threads()
            << " worker(s), cache capacity "
            << service.cache().capacity() << "\n\n";

  // The request mix: four workflows on two machines under three
  // algorithms. shared_ptr inputs mean zero copies per request.
  Rng rng(42);
  std::vector<std::shared_ptr<const dag::TaskGraph>> graphs;
  graphs.push_back(std::make_shared<const dag::TaskGraph>(
      dag::fork_join(12, 4.0, 8.0)));
  graphs.push_back(
      std::make_shared<const dag::TaskGraph>(dag::chain(16, 3.0, 5.0)));
  dag::LayeredDagParams params;
  params.num_tasks = 40;
  graphs.push_back(std::make_shared<const dag::TaskGraph>(
      dag::random_layered(params, rng)));
  params.num_tasks = 60;
  graphs.push_back(std::make_shared<const dag::TaskGraph>(
      dag::random_layered(params, rng)));

  std::vector<std::shared_ptr<const net::Topology>> machines;
  machines.push_back(std::make_shared<const net::Topology>(
      net::switched_star(6, net::SpeedConfig{}, rng)));
  machines.push_back(std::make_shared<const net::Topology>(
      net::fat_tree(3, 2, net::SpeedConfig{}, rng)));

  const std::vector<std::string> algorithms = {"ba", "oihsa", "bbsa"};

  // The snapshotter samples the service's registry while the burst runs;
  // its destructor after the loop always appends one final snapshot, so
  // the JSONL file is never empty even for very short demos.
  std::ofstream snapshots_out;
  std::optional<obs::PeriodicSnapshotter> snapshotter;
  if (!snapshots_path.empty()) {
    snapshots_out.open(snapshots_path);
    if (!snapshots_out) {
      std::cerr << "cannot open " << snapshots_path << "\n";
      return 1;
    }
    snapshotter.emplace(service.metrics(), snapshots_out,
                        obs::SnapshotterOptions{
                            .interval = std::chrono::milliseconds(50)});
  }

  for (std::size_t round = 0; round < rounds; ++round) {
    std::vector<std::future<svc::SchedulerService::SchedulePtr>> futures;
    for (const auto& graph : graphs) {
      for (const auto& machine : machines) {
        for (const std::string& algorithm : algorithms) {
          futures.push_back(service.submit(graph, machine, algorithm));
        }
      }
    }
    double makespan_sum = 0.0;
    for (auto& future : futures) {
      makespan_sum += future.get()->makespan();
    }
    const svc::CacheStats stats = service.cache().stats();
    std::cout << "round " << round + 1 << ": " << futures.size()
              << " requests, makespan sum " << std::fixed
              << std::setprecision(2) << makespan_sum
              << ", cache hits so far " << stats.hits << "/"
              << stats.hits + stats.misses << "\n";
  }

  if (snapshotter) {
    snapshotter.reset();  // joins the thread and writes the final line
    std::cout << "\nwrote snapshots " << snapshots_path << "\n";
  }

  const svc::CacheStats stats = service.cache().stats();
  std::cout << "\n-- cache-hit report --\n"
            << "lookups    " << stats.hits + stats.misses << "\n"
            << "hits       " << stats.hits << "\n"
            << "misses     " << stats.misses << "\n"
            << "hit rate   " << std::fixed << std::setprecision(1)
            << 100.0 * stats.hit_rate() << " %\n"
            << "entries    " << service.cache().size() << "\n"
            << "evictions  " << stats.evictions << "\n";

  std::cout << "\n-- metrics --\n" << service.metrics().text_dump();

  if (dump_metrics) {
    std::cout << "\n-- global hot-path counters --\n"
              << obs::global_metrics().text_dump();
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "cannot open " << trace_path << "\n";
      return 1;
    }
    obs::Tracer::instance().write_chrome_trace(out);
    std::cout << "\nwrote trace " << trace_path << " ("
              << obs::Tracer::instance().event_count() << " events, "
              << obs::Tracer::instance().thread_count() << " threads)\n";
  }

  // Every round after the first must be pure cache hits.
  const std::size_t per_round =
      graphs.size() * machines.size() * algorithms.size();
  if (rounds > 1 && stats.hits != (rounds - 1) * per_round) {
    std::cerr << "unexpected hit count\n";
    return 1;
  }
  return 0;
}
