// Link contention report: schedule a communication-heavy workflow on a
// random WAN, then break the result down — schedule quality metrics,
// per-contention-domain load, and the circuit-vs-packet comparison.
//
//   $ ./build/examples/link_contention_report [processors] [ccr]
#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <vector>

#include "dag/generators.hpp"
#include "dag/properties.hpp"
#include "net/builders.hpp"
#include "net/properties.hpp"
#include "sched/ba.hpp"
#include "sched/bbsa.hpp"
#include "sched/lower_bounds.hpp"
#include "sched/metrics.hpp"
#include "sched/oihsa.hpp"
#include "sched/packetized.hpp"
#include "sched/validator.hpp"

int main(int argc, char** argv) {
  using namespace edgesched;

  const std::size_t procs =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 12;
  const double ccr = argc > 2 ? std::atof(argv[2]) : 5.0;

  Rng rng(404);
  dag::LayeredDagParams params;
  params.num_tasks = 80;
  dag::TaskGraph graph = dag::random_layered(params, rng);
  dag::rescale_to_ccr(graph, ccr);

  net::RandomWanParams wan;
  wan.num_processors = procs;
  const net::Topology grid = net::random_wan(wan, rng);
  const net::TopologyStats net_stats = net::analyze(grid);
  std::cout << "network: " << net_stats.num_processors
            << " processors, " << net_stats.num_switches
            << " switches, diameter " << net_stats.diameter
            << ", mean processor distance "
            << net_stats.mean_processor_distance << "\n";
  std::cout << "workload: " << graph.num_tasks() << " tasks, CCR " << ccr
            << ", makespan lower bound "
            << sched::makespan_lower_bound(graph, grid) << "\n\n";

  const auto report = [&](const sched::Scheduler& scheduler) {
    const sched::Schedule s = scheduler.schedule(graph, grid);
    sched::validate_or_throw(graph, grid, s);
    const sched::ScheduleMetrics m =
        sched::compute_metrics(graph, grid, s);
    std::cout << "--- " << scheduler.name() << " ---\n"
              << sched::to_string(m);

    // The three hottest contention domains.
    std::vector<double> busy = sched::domain_busy_times(graph, grid, s);
    std::vector<std::size_t> index(busy.size());
    for (std::size_t i = 0; i < index.size(); ++i) {
      index[i] = i;
    }
    std::sort(index.begin(), index.end(), [&](std::size_t a,
                                              std::size_t b) {
      return busy[a] > busy[b];
    });
    std::cout << "hottest domains:";
    for (std::size_t i = 0; i < std::min<std::size_t>(3, index.size());
         ++i) {
      std::cout << "  D" << index[i] << " busy " << std::fixed
                << std::setprecision(0) << busy[index[i]];
      std::cout.unsetf(std::ios::fixed);
    }
    std::cout << "\n\n";
  };

  report(sched::BasicAlgorithm{});
  report(sched::Oihsa{});
  report(sched::Bbsa{});
  sched::PacketizedBa::Options packets;
  packets.packet_size = 100.0;
  report(sched::PacketizedBa{packets});
  return 0;
}
