// Equivalence property of the engine's incremental ready queue.
//
// `ReadyQueue` replaces the engine's up-front `list_order` call; the
// schedules it produces are only byte-identical if its pop sequence is
// *exactly* the order `list_order` materialises — same max-heap on
// priority, same min-task-id tie-break, same push interleaving. These
// tests drive both over randomized layered DAGs (duplicate priorities
// included, so tie-breaks actually fire) and structured generators, and
// require element-for-element equal orders.
#include <gtest/gtest.h>

#include <vector>

#include "dag/generators.hpp"
#include "sched/priorities.hpp"
#include "sched/ready_queue.hpp"
#include "util/rng.hpp"

namespace edgesched::sched {
namespace {

std::vector<dag::TaskId> drain(const dag::TaskGraph& graph,
                               const std::vector<double>& priority) {
  ReadyQueue queue(graph, priority);
  std::vector<dag::TaskId> order;
  order.reserve(graph.num_tasks());
  dag::TaskId task;
  while (queue.pop(task)) {
    order.push_back(task);
    queue.release_successors(graph, task);
  }
  EXPECT_TRUE(queue.all_popped());
  return order;
}

void expect_same_order(const std::vector<dag::TaskId>& incremental,
                       const std::vector<dag::TaskId>& reference) {
  ASSERT_EQ(incremental.size(), reference.size());
  for (std::size_t i = 0; i < incremental.size(); ++i) {
    ASSERT_EQ(incremental[i], reference[i]) << "position " << i;
  }
}

class ReadyQueueProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReadyQueueProperty, PopSequenceMatchesListOrderOnRandomDags) {
  Rng rng(GetParam());
  for (std::size_t round = 0; round < 30; ++round) {
    dag::LayeredDagParams params;
    params.num_tasks = static_cast<std::size_t>(rng.uniform_int(1, 300));
    const dag::TaskGraph graph = dag::random_layered(params, rng);
    for (const PriorityScheme scheme :
         {PriorityScheme::kBottomLevel,
          PriorityScheme::kBottomLevelComputationOnly,
          PriorityScheme::kTopLevelPlusBottomLevel}) {
      const std::vector<double> prio = priorities(graph, scheme);
      expect_same_order(drain(graph, prio), list_order(graph, prio));
    }
  }
}

// Constant priorities force every comparison through the task-id
// tie-break — the most divergence-prone path.
TEST_P(ReadyQueueProperty, PopSequenceMatchesListOrderUnderFullTies) {
  Rng rng(GetParam() + 50);
  dag::LayeredDagParams params;
  params.num_tasks = 200;
  const dag::TaskGraph graph = dag::random_layered(params, rng);
  const std::vector<double> flat(graph.num_tasks(), 1.0);
  expect_same_order(drain(graph, flat), list_order(graph, flat));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReadyQueueProperty,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace edgesched::sched
