#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "svc/thread_pool.hpp"

namespace edgesched::obs {
namespace {

// Every test mutates the process-global tracer; this guard gives each one
// a clean slate and guarantees the disabled default is restored even when
// an assertion fails mid-test.
struct TracerGuard {
  explicit TracerGuard(TraceMode mode) {
    Tracer::instance().set_mode(TraceMode::kDisabled);
    Tracer::instance().clear();
    Tracer::instance().set_mode(mode);
  }
  ~TracerGuard() {
    Tracer::instance().set_mode(TraceMode::kDisabled);
    Tracer::instance().clear();
  }
};

JsonValue export_trace() {
  std::ostringstream out;
  Tracer::instance().write_chrome_trace(out);
  return JsonValue::parse(out.str());
}

/// First trace event with the given name; throws when absent.
JsonValue find_event(const JsonValue& trace, const std::string& name) {
  const JsonValue& events = trace.at("traceEvents");
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events.at(i).at("name").as_string() == name) {
      return events.at(i);
    }
  }
  throw std::out_of_range("no trace event named " + name);
}

TEST(ObsTrace, DisabledModeRecordsNothing) {
  const TracerGuard guard(TraceMode::kDisabled);
  EXPECT_FALSE(tracing_enabled());
  {
    Span outer("obs_test/outer");
    Span inner("obs_test/inner", "test", 3);
  }
  EXPECT_EQ(Tracer::instance().event_count(), 0u);
  EXPECT_TRUE(Tracer::instance().span_totals().empty());
}

TEST(ObsTrace, AggregateModeFoldsTotalsWithoutStoringEvents) {
  const TracerGuard guard(TraceMode::kAggregate);
  for (int i = 0; i < 5; ++i) {
    Span span("obs_test/agg", "test");
  }
  EXPECT_EQ(Tracer::instance().event_count(), 0u);
  const auto totals = Tracer::instance().span_totals();
  ASSERT_TRUE(totals.contains("obs_test/agg"));
  EXPECT_EQ(totals.at("obs_test/agg").count, 5u);
  EXPECT_GE(totals.at("obs_test/agg").total_ns, 0);
  EXPECT_DOUBLE_EQ(totals.at("obs_test/agg").total_seconds(),
                   static_cast<double>(totals.at("obs_test/agg").total_ns) *
                       1e-9);
}

TEST(ObsTrace, FullModeRecordsNestedSpans) {
  const TracerGuard guard(TraceMode::kFull);
  {
    Span outer("obs_test/outer", "test");
    {
      Span inner("obs_test/inner", "test");
    }
    {
      Span inner("obs_test/inner", "test");
    }
  }
  EXPECT_EQ(Tracer::instance().event_count(), 3u);
  EXPECT_EQ(Tracer::instance().dropped(), 0u);
  const auto totals = Tracer::instance().span_totals();
  ASSERT_TRUE(totals.contains("obs_test/outer"));
  ASSERT_TRUE(totals.contains("obs_test/inner"));
  EXPECT_EQ(totals.at("obs_test/outer").count, 1u);
  EXPECT_EQ(totals.at("obs_test/inner").count, 2u);
  // The inner spans completed inside the outer one, so their combined
  // duration cannot exceed it.
  EXPECT_LE(totals.at("obs_test/inner").total_ns,
            totals.at("obs_test/outer").total_ns);
}

TEST(ObsTrace, ChromeExportIsLoadableCompleteEventJson) {
  const TracerGuard guard(TraceMode::kFull);
  {
    Span tagged("obs_test/tagged", "test", 42);
  }
  {
    Span untagged("obs_test/untagged", "test");
  }
  const JsonValue trace = export_trace();
  ASSERT_TRUE(trace.contains("traceEvents"));
  EXPECT_EQ(trace.at("traceEvents").size(), 2u);

  const JsonValue tagged = find_event(trace, "obs_test/tagged");
  EXPECT_EQ(tagged.at("cat").as_string(), "test");
  EXPECT_EQ(tagged.at("ph").as_string(), "X");  // complete event
  EXPECT_GE(tagged.at("ts").as_number(), 0.0);
  EXPECT_GE(tagged.at("dur").as_number(), 0.0);
  EXPECT_EQ(tagged.at("pid").as_number(), 1.0);
  EXPECT_TRUE(tagged.contains("tid"));
  ASSERT_TRUE(tagged.contains("args"));
  EXPECT_EQ(tagged.at("args").at("id").as_number(), 42.0);

  // kNoArg spans must not emit a bogus args payload.
  EXPECT_FALSE(find_event(trace, "obs_test/untagged").contains("args"));
}

TEST(ObsTrace, ThreadsRecordIntoDistinctTids) {
  const TracerGuard guard(TraceMode::kFull);
  std::thread first([] { Span span("obs_test/thread_a", "test"); });
  std::thread second([] { Span span("obs_test/thread_b", "test"); });
  first.join();
  second.join();

  EXPECT_EQ(Tracer::instance().event_count(), 2u);
  EXPECT_GE(Tracer::instance().thread_count(), 2u);
  const JsonValue trace = export_trace();
  const double tid_a =
      find_event(trace, "obs_test/thread_a").at("tid").as_number();
  const double tid_b =
      find_event(trace, "obs_test/thread_b").at("tid").as_number();
  EXPECT_NE(tid_a, tid_b);
}

TEST(ObsTrace, CloseEndsEarlyAndIsIdempotent) {
  const TracerGuard guard(TraceMode::kFull);
  {
    Span span("obs_test/closed", "test");
    span.close();
    span.close();  // second close must not record again
  }                // neither must the destructor
  EXPECT_EQ(Tracer::instance().event_count(), 1u);
  EXPECT_EQ(Tracer::instance().span_totals().at("obs_test/closed").count,
            1u);
}

TEST(ObsTrace, ClearDiscardsEventsAndTotals) {
  const TracerGuard guard(TraceMode::kFull);
  {
    Span span("obs_test/cleared", "test");
  }
  ASSERT_EQ(Tracer::instance().event_count(), 1u);
  Tracer::instance().clear();
  EXPECT_EQ(Tracer::instance().event_count(), 0u);
  EXPECT_TRUE(Tracer::instance().span_totals().empty());
  EXPECT_EQ(Tracer::instance().dropped(), 0u);
}

// Concurrent recording from pool workers while the main thread snapshots
// and exports — the race TSan runs this test to check.
TEST(ObsTrace, PoolWorkersRecordConcurrentlyWithExport) {
  const TracerGuard guard(TraceMode::kFull);
  constexpr int kJobs = 64;
  {
    svc::ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    futures.reserve(kJobs);
    for (int i = 0; i < kJobs; ++i) {
      futures.push_back(pool.submit([i] {
        Span span("obs_test/pool_work", "test",
                  static_cast<std::uint64_t>(i));
      }));
    }
    // Export while workers are still recording: must be race-free even
    // mid-run (each buffer has its own mutex).
    std::ostringstream mid;
    Tracer::instance().write_chrome_trace(mid);
    (void)Tracer::instance().span_totals();
    for (auto& f : futures) {
      f.get();
    }
  }
  const auto totals = Tracer::instance().span_totals();
  ASSERT_TRUE(totals.contains("obs_test/pool_work"));
  EXPECT_EQ(totals.at("obs_test/pool_work").count,
            static_cast<std::uint64_t>(kJobs));
  // The pool's own instrumentation wraps every job in a svc/job span.
  ASSERT_TRUE(totals.contains("svc/job"));
  EXPECT_GE(totals.at("svc/job").count, static_cast<std::uint64_t>(kJobs));
  // The final export parses and holds every worker event.
  const JsonValue trace = export_trace();
  EXPECT_GE(trace.at("traceEvents").size(), static_cast<std::size_t>(kJobs));
}

}  // namespace
}  // namespace edgesched::obs
