// Hand-traced end-to-end scenarios: small instances whose optimal-ish
// schedules can be derived on paper, pinning each algorithm's exact
// behaviour (not just validity).
#include <gtest/gtest.h>

#include "dag/task_graph.hpp"
#include "net/topology.hpp"
#include <algorithm>

#include "sched/ba.hpp"
#include "sched/bbsa.hpp"
#include "sched/network_state.hpp"
#include "sched/oihsa.hpp"
#include "sched/validator.hpp"

namespace edgesched::sched {
namespace {

/// Three processors on one switch, all speeds 1.
struct Star3 {
  net::Topology topo;
  net::NodeId p1, p2, p3, hub;

  Star3() {
    hub = topo.add_switch("hub");
    p1 = topo.add_processor(1.0, "p1");
    p2 = topo.add_processor(1.0, "p2");
    p3 = topo.add_processor(1.0, "p3");
    topo.add_duplex_link(p1, hub, 1.0);
    topo.add_duplex_link(p2, hub, 1.0);
    topo.add_duplex_link(p3, hub, 1.0);
  }
};

TEST(Scenario, BaJoinContentionHandTrace) {
  // Two producers (w=3) feed a sink (w=3) with cost-9 messages. Producers
  // spread to p1/p2 (EFT). Sink joins one of them; the other message
  // crosses hub. All algorithms: sink on a producer's processor, one
  // remote transfer of 9: ready at 3, arrive 12, run [12, 15].
  dag::TaskGraph graph;
  const dag::TaskId a = graph.add_task(3.0, "a");
  const dag::TaskId b = graph.add_task(3.0, "b");
  const dag::TaskId sink = graph.add_task(3.0, "sink");
  graph.add_edge(a, sink, 9.0);
  graph.add_edge(b, sink, 9.0);

  Star3 net;
  for (const auto& schedule :
       {BasicAlgorithm{}.schedule(graph, net.topo),
        Oihsa{}.schedule(graph, net.topo),
        Bbsa{}.schedule(graph, net.topo)}) {
    validate_or_throw(graph, net.topo, schedule);
    EXPECT_NE(schedule.task(a).processor, schedule.task(b).processor);
    const bool with_a =
        schedule.task(sink).processor == schedule.task(a).processor;
    const bool with_b =
        schedule.task(sink).processor == schedule.task(b).processor;
    EXPECT_TRUE(with_a || with_b) << schedule.algorithm();
    EXPECT_DOUBLE_EQ(schedule.makespan(), 15.0) << schedule.algorithm();
  }
}

TEST(Scenario, OihsaDeferralEndToEnd) {
  // Producer a on p1 sends a SMALL message to x (forced to p2) first,
  // then a LARGE message to y (forced to p3). Under OIHSA's decreasing-
  // cost edge order within one ready task this is exercised elsewhere;
  // here both consumers become ready at different times so the small
  // transfer books the shared uplink p1->hub first, and the large edge's
  // optimal insertion may defer it (its own next hop hub->p2 has slack
  // only if contended). The pinned expectation: the final schedule is
  // valid and the large transfer is not delayed behind the small one by
  // more than the small one's duration.
  dag::TaskGraph graph;
  const dag::TaskId a = graph.add_task(2.0, "a");
  const dag::TaskId filler2 = graph.add_task(50.0, "filler2");
  const dag::TaskId filler3 = graph.add_task(50.0, "filler3");
  const dag::TaskId x = graph.add_task(50.0, "x");
  const dag::TaskId y = graph.add_task(50.0, "y");
  graph.add_edge(a, x, 3.0);
  graph.add_edge(a, y, 12.0);
  (void)filler2;
  (void)filler3;

  Star3 net;
  const Schedule s = Oihsa{}.schedule(graph, net.topo);
  validate_or_throw(graph, net.topo, s);
  const EdgeCommunication& small = s.communication(dag::EdgeId(0u));
  const EdgeCommunication& large = s.communication(dag::EdgeId(1u));
  if (small.kind == EdgeCommunication::Kind::kExclusive &&
      large.kind == EdgeCommunication::Kind::kExclusive) {
    // Cost order: the large edge books first and arrives no later than
    // ready + route length (uncontended) when x and y land on distinct
    // remote processors.
    EXPECT_LE(large.arrival, s.task(a).finish + 12.0 + 3.0 + 1e-9);
  }
}

TEST(Scenario, BbsaConvergingTransfersShareTheFastLink) {
  // Hand-traced bandwidth sharing: two producers behind slow (speed-1)
  // uplinks converge on one consumer behind a fast (speed-4) downlink.
  // Each inflow trickles at rate 1, so the downlink carries both
  // transfers simultaneously using only half its capacity — under the
  // exclusive model the second transfer would queue instead.
  net::Topology topo;
  const net::NodeId hub = topo.add_switch("hub");
  const net::NodeId p1 = topo.add_processor(1.0, "p1");
  const net::NodeId p2 = topo.add_processor(1.0, "p2");
  const net::NodeId p3 = topo.add_processor(1.0, "p3");
  const net::LinkId up1 = topo.add_duplex_link(p1, hub, 1.0).first;
  const net::LinkId up2 = topo.add_duplex_link(p2, hub, 1.0).first;
  const auto [down_out, down_in] = topo.add_duplex_link(hub, p3, 4.0);
  (void)down_in;

  BandwidthNetworkState state(topo);
  const auto t1 = state.commit_edge({up1, down_out}, 0.0, 8.0);
  const auto t2 = state.commit_edge({up2, down_out}, 0.0, 8.0);
  // Both uplinks carry [0, 8] at rate 1; the downlink mirrors each
  // inflow (rate 1 <= remaining 4 and 3): both arrive at 8.
  EXPECT_NEAR(t1.arrival, 8.0, 1e-9);
  EXPECT_NEAR(t2.arrival, 8.0, 1e-9);
  // The downlink's transfers genuinely overlap.
  const auto& d1 = t1.profiles.back();
  const auto& d2 = t2.profiles.back();
  const double overlap = std::min(d1.finish_time(), d2.finish_time()) -
                         std::max(d1.start_time(), d2.start_time());
  EXPECT_NEAR(overlap, 8.0, 1e-9);

  // Contrast: the exclusive model must serialise the downlink.
  ExclusiveNetworkState exclusive(topo, 2);
  const double e1 =
      exclusive.commit_edge_basic(dag::EdgeId(0u), {up1, down_out}, 0.0,
                                  8.0);
  const double e2 =
      exclusive.commit_edge_basic(dag::EdgeId(1u), {up2, down_out}, 0.0,
                                  8.0);
  EXPECT_NEAR(e1, 8.0, 1e-9);
  EXPECT_GT(e2, 8.0 + 1.0);  // queued behind e1 on the shared downlink
}

TEST(Scenario, ClassicUnderestimatesThisExactInstance) {
  // Four producers all ship cost-10 messages through the hub to one
  // consumer: the idealised model charges each message independently
  // (arrival = 3 + 10), but the shared consumer-side link serialises
  // them in reality.
  dag::TaskGraph graph;
  std::vector<dag::TaskId> producers;
  for (int i = 0; i < 4; ++i) {
    producers.push_back(graph.add_task(3.0));
  }
  const dag::TaskId sink = graph.add_task(1.0, "sink");
  for (dag::TaskId p : producers) {
    graph.add_edge(p, sink, 10.0);
  }

  Star3 net;
  const Schedule ba = BasicAlgorithm{}.schedule(graph, net.topo);
  validate_or_throw(graph, net.topo, ba);
  // 4 producers on 3 processors: at least two messages are remote and
  // share the sink's inbound link, so the sink cannot start before
  // ready(6) + 2 transfers(20) on that link... unless it sits with two
  // producers. Weak but instance-true bound:
  EXPECT_GE(ba.makespan(), 6.0 + 20.0 - 1e-9);
}

TEST(Scenario, HeterogeneousSpeedScalesDurations) {
  dag::TaskGraph graph;
  const dag::TaskId t = graph.add_task(30.0);
  net::Topology topo;
  const net::NodeId slow = topo.add_processor(2.0);
  const net::NodeId fast = topo.add_processor(5.0);
  topo.add_duplex_link(slow, fast, 1.0);
  for (const auto& schedule :
       {BasicAlgorithm{}.schedule(graph, topo),
        Oihsa{}.schedule(graph, topo), Bbsa{}.schedule(graph, topo)}) {
    EXPECT_EQ(schedule.task(t).processor, fast);
    EXPECT_DOUBLE_EQ(schedule.makespan(), 6.0);
  }
}

}  // namespace
}  // namespace edgesched::sched
