// Intra-run parallelism determinism suite.
//
// The engine's parallel processor-candidate scan, the GA's parallel
// population evaluation and the SA's speculative neighbor batches all
// promise the same contract: the intra-run worker count is
// *configuration, not algorithm state* — results are byte-identical at
// every setting (docs/parallelism.md). This suite fuzzes that promise
// over random instances and the whole engine-backed registry:
//
//   * schedules at 2/4/8 intra-threads equal the serial run, canonical
//     form (doubles compared as bit patterns), through both the
//     raw-topology path and a shared PlatformContext (fresh AND
//     recycled pooled workspaces);
//   * DecisionLog JSONL streams are byte-equal serial vs parallel
//     (candidate lists carry per-processor scores in index order);
//   * global hot-counter deltas are identical at every worker count —
//     the per-lane batching discipline must not lose or double-count;
//   * GA and SA are same-seed bit-equal at every worker count;
//   * concurrent outer runs each fanning inner workers over one shared
//     platform stay race-free (this file runs under TSan in CI).
//
// Instance count tunes via EDGESCHED_FUZZ_INSTANCES (default 200; the
// TSan job runs fewer, instrumented runs cost ~10x).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "dag/generators.hpp"
#include "dag/properties.hpp"
#include "net/builders.hpp"
#include "obs/counters.hpp"
#include "obs/decision_log.hpp"
#include "sched/intra_run.hpp"
#include "sched/platform.hpp"
#include "sched/registry.hpp"
#include "sched/scheduler.hpp"
#include "sched/validator.hpp"
#include "schedule_canon.hpp"
#include "svc/scheduler_service.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace edgesched::sched {
namespace {

struct Instance {
  dag::TaskGraph graph;
  net::Topology topology;
};

// Everything about the instance — size, shape, CCR, topology family —
// is drawn from the one Rng(seed), so the seed alone replays it.
Instance make_instance(std::uint64_t seed) {
  Rng rng(seed);
  dag::LayeredDagParams params;
  params.num_tasks = static_cast<std::size_t>(rng.uniform_int(10, 30));
  dag::TaskGraph graph = dag::random_layered(params, rng);
  const double ccrs[] = {0.5, 2.0, 5.0, 10.0};
  dag::rescale_to_ccr(graph, ccrs[rng.uniform_int(0, 3)]);

  net::SpeedConfig speeds;
  speeds.heterogeneous = (seed % 3 == 0);
  net::Topology topology = [&]() -> net::Topology {
    switch (rng.uniform_int(0, 4)) {
      case 0: return net::fully_connected(4, speeds, rng);
      case 1: return net::switched_star(5, speeds, rng);
      case 2: return net::ring(5, speeds, rng);
      case 3: return net::bus(4, speeds, rng);
      default: {
        net::RandomWanParams wan;
        wan.num_processors = 8;
        wan.speeds = speeds;
        return net::random_wan(wan, rng);
      }
    }
  }();
  return Instance{std::move(graph), std::move(topology)};
}

std::vector<const AlgorithmEntry*> engine_backed_entries() {
  std::vector<const AlgorithmEntry*> entries;
  for (const AlgorithmEntry& entry : algorithm_registry()) {
    if (entry.engine_backed()) {
      entries.push_back(&entry);
    }
  }
  return entries;
}

std::uint64_t fuzz_instances() {
  const std::int64_t raw = env_int("EDGESCHED_FUZZ_INSTANCES", 200);
  return raw < 1 ? 1 : static_cast<std::uint64_t>(raw);
}

constexpr std::size_t kThreadCounts[] = {2, 4, 8};

// Schedules at every worker count, through every path, must equal the
// serial raw-topology run byte for byte.
TEST(ParallelEngineProperty, SchedulesAreByteIdenticalAtEveryThreadCount) {
  const std::vector<const AlgorithmEntry*> entries = engine_backed_entries();
  ASSERT_FALSE(entries.empty());
  const std::uint64_t instances = fuzz_instances();
  for (std::uint64_t seed = 1; seed <= instances; ++seed) {
    const Instance instance = make_instance(seed);
    const PlatformContext platform(instance.topology);
    for (const AlgorithmEntry* entry : entries) {
      const std::unique_ptr<Scheduler> scheduler = entry->make();
      std::string want;
      {
        const ScopedIntraThreads serial(1);
        const Schedule baseline =
            scheduler->schedule(instance.graph, instance.topology);
        validate_or_throw(instance.graph, instance.topology, baseline);
        want = test::canonical_schedule(instance.graph, baseline);
      }
      for (const std::size_t threads : kThreadCounts) {
        const ScopedIntraThreads scoped(threads);
        const Schedule via_topology =
            scheduler->schedule(instance.graph, instance.topology);
        EXPECT_EQ(want,
                  test::canonical_schedule(instance.graph, via_topology))
            << entry->key << " diverged on the topology path at "
            << threads << " threads, seed " << seed;
        // Twice through the shared context: the second run scans with
        // recycled pooled workspaces (lane leases included).
        const Schedule fresh = scheduler->schedule(instance.graph, platform);
        EXPECT_EQ(want, test::canonical_schedule(instance.graph, fresh))
            << entry->key << " diverged via fresh workspaces at "
            << threads << " threads, seed " << seed;
        const Schedule recycled =
            scheduler->schedule(instance.graph, platform);
        EXPECT_EQ(want, test::canonical_schedule(instance.graph, recycled))
            << entry->key << " diverged via recycled workspaces at "
            << threads << " threads, seed " << seed;
      }
    }
  }
}

// Decision records and global counter totals are part of the
// determinism contract: a run observed through a DecisionLog and the
// hot-counter registry must look the same at every worker count.
TEST(ParallelEngineProperty, DecisionLogsAndCounterDeltasMatchSerial) {
  const std::vector<const AlgorithmEntry*> entries = engine_backed_entries();
  ASSERT_FALSE(entries.empty());
  const std::uint64_t instances = std::min<std::uint64_t>(20, fuzz_instances());

  const auto run_observed =
      [](const Scheduler& scheduler, const Instance& instance,
         const PlatformContext& platform, std::size_t threads) {
        const ScopedIntraThreads scoped(threads);
        obs::DecisionLog log;
        const std::map<std::string, std::uint64_t> before =
            obs::global_metrics().counter_values();
        std::string canon;
        {
          const obs::ScopedDecisionLog scope(log);
          const Schedule schedule =
              scheduler.schedule(instance.graph, platform);
          canon = test::canonical_schedule(instance.graph, schedule);
        }
        std::map<std::string, std::uint64_t> delta =
            obs::global_metrics().counter_values();
        for (auto& [name, value] : delta) {
          const auto it = before.find(name);
          value -= it != before.end() ? it->second : 0;
        }
        std::ostringstream decisions;
        log.write_jsonl(decisions);
        return std::make_tuple(std::move(canon), std::move(delta),
                               decisions.str());
      };

  for (std::uint64_t seed = 1; seed <= instances; ++seed) {
    const Instance instance = make_instance(seed);
    const PlatformContext platform(instance.topology);
    for (const AlgorithmEntry* entry : entries) {
      const std::unique_ptr<Scheduler> scheduler = entry->make();
      const auto [want_canon, want_delta, want_decisions] =
          run_observed(*scheduler, instance, platform, 1);
      EXPECT_GT(want_delta.at("sched_candidates_evaluated_total"), 0u)
          << entry->key << " seed " << seed
          << ": scan-capable runs must tally candidate evaluations";
      for (const std::size_t threads : kThreadCounts) {
        const auto [canon, delta, decisions] =
            run_observed(*scheduler, instance, platform, threads);
        EXPECT_EQ(want_canon, canon)
            << entry->key << " schedule, seed " << seed << ", "
            << threads << " threads";
        EXPECT_EQ(want_decisions, decisions)
            << entry->key << " decision log, seed " << seed << ", "
            << threads << " threads";
        EXPECT_EQ(want_delta, delta)
            << entry->key << " counter totals, seed " << seed << ", "
            << threads << " threads";
      }
    }
  }
}

// The metaheuristics draw all randomness from per-member streams, so
// same seed => bit-equal result at every worker count.
TEST(ParallelEngineProperty, MetaheuristicsAreSameSeedBitEqual) {
  for (const char* key : {"ga", "sa"}) {
    const AlgorithmEntry* entry = find_algorithm(key);
    ASSERT_NE(entry, nullptr) << key;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Instance instance = make_instance(seed);
      const std::unique_ptr<Scheduler> scheduler = entry->make();
      std::string want;
      {
        const ScopedIntraThreads serial(1);
        want = test::canonical_schedule(
            instance.graph,
            scheduler->schedule(instance.graph, instance.topology));
      }
      for (const std::size_t threads : kThreadCounts) {
        const ScopedIntraThreads scoped(threads);
        EXPECT_EQ(want,
                  test::canonical_schedule(
                      instance.graph, scheduler->schedule(
                                          instance.graph,
                                          instance.topology)))
            << key << " diverged at " << threads << " threads, seed "
            << seed;
      }
    }
  }
}

// Outer concurrency × inner fan-out over one shared context: the TSan
// proof that lane workspace leases, the scan's speculative probes and
// the per-run counter flushes never race.
TEST(ParallelEngineProperty, ConcurrentOuterRunsWithInnerWorkersAreSafe) {
  const Instance instance = make_instance(42);
  const PlatformContext platform(instance.topology);
  const std::vector<const AlgorithmEntry*> entries = engine_backed_entries();
  ASSERT_FALSE(entries.empty());

  std::vector<std::string> reference;
  reference.reserve(entries.size());
  {
    const ScopedIntraThreads serial(1);
    for (const AlgorithmEntry* entry : entries) {
      reference.push_back(test::canonical_schedule(
          instance.graph,
          entry->make()->schedule(instance.graph, instance.topology)));
    }
  }

  constexpr std::size_t kOuter = 4;
  constexpr std::size_t kIterations = 8;
  std::vector<std::vector<bool>> ok(
      kOuter, std::vector<bool>(kIterations * entries.size(), false));
  std::vector<std::thread> threads;
  threads.reserve(kOuter);
  for (std::size_t t = 0; t < kOuter; ++t) {
    threads.emplace_back([&, t] {
      const ScopedIntraThreads scoped(2 + t % 2);
      for (std::size_t i = 0; i < kIterations; ++i) {
        for (std::size_t a = 0; a < entries.size(); ++a) {
          const Schedule schedule =
              entries[a]->make()->schedule(instance.graph, platform);
          ok[t][i * entries.size() + a] =
              test::canonical_schedule(instance.graph, schedule) ==
              reference[a];
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (std::size_t t = 0; t < kOuter; ++t) {
    for (std::size_t i = 0; i < ok[t].size(); ++i) {
      EXPECT_TRUE(ok[t][i]) << "outer thread " << t << " run " << i;
    }
  }
}

// Service-level oversubscription guard: whatever is configured, the
// effective intra-thread count respects `intra × pool <= hardware`
// (floor 1), is exported through the metrics dump, and jobs produce the
// same schedules as a direct serial run.
TEST(ParallelEngineProperty, ServiceClampsAndReportsIntraThreads) {
  svc::ServiceConfig config;
  config.threads = 2;
  config.intra_threads = 8;
  svc::SchedulerService service(config);

  const std::size_t hw = std::max<unsigned>(
      1, std::thread::hardware_concurrency());
  const std::size_t budget =
      std::max<std::size_t>(1, hw / service.num_threads());
  EXPECT_GE(service.effective_intra_threads(), 1u);
  EXPECT_LE(service.effective_intra_threads(), std::max<std::size_t>(
                                                   budget, std::size_t{1}));
  EXPECT_EQ(service.metrics()
                .counter("svc_intra_threads_effective")
                .value(),
            service.effective_intra_threads());
  EXPECT_NE(service.metrics().text_dump().find(
                "counter svc_intra_threads_effective"),
            std::string::npos);

  const Instance instance = make_instance(5);
  const auto graph =
      std::make_shared<const dag::TaskGraph>(instance.graph);
  const auto topology =
      std::make_shared<const net::Topology>(instance.topology);
  const auto via_service = service.submit(graph, topology, "oihsa").get();
  ASSERT_NE(via_service, nullptr);
  const ScopedIntraThreads serial(1);
  const AlgorithmEntry* entry = find_algorithm("oihsa");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(test::canonical_schedule(instance.graph, *via_service),
            test::canonical_schedule(
                instance.graph,
                entry->make()->schedule(instance.graph,
                                        instance.topology)));
}

}  // namespace
}  // namespace edgesched::sched
