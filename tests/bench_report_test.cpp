#include "obs/bench_report.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "svc/metrics.hpp"

namespace edgesched::obs {
namespace {

TEST(BenchReport, PrepopulatesNameAndSchema) {
  BenchReport report("micro_example");
  EXPECT_EQ(report.root().at("name").as_string(), "micro_example");
  EXPECT_EQ(report.root().at("schema").as_string(),
            "edgesched-bench-telemetry-v1");
}

TEST(BenchReport, SettersAndSeriesRoundTripThroughJson) {
  BenchReport report("round_trip");
  report.set_number("wall_seconds", 1.25);
  report.set_string("figure", "fig1");
  JsonValue points = JsonValue::array();
  points.push(JsonValue::object()
                  .set("x", JsonValue(0.5))
                  .set("ba_makespan_mean", JsonValue(42.0)));
  report.root().set("points", std::move(points));

  std::ostringstream out;
  report.write(out);
  const JsonValue parsed = JsonValue::parse(out.str());
  EXPECT_DOUBLE_EQ(parsed.at("wall_seconds").as_number(), 1.25);
  EXPECT_EQ(parsed.at("figure").as_string(), "fig1");
  ASSERT_EQ(parsed.at("points").size(), 1u);
  EXPECT_DOUBLE_EQ(parsed.at("points").at(0).at("x").as_number(), 0.5);
}

TEST(BenchReport, AddCountersSnapshotsARegistry) {
  svc::MetricsRegistry registry;
  registry.counter("alpha_total").increment(3);
  registry.histogram("latency_seconds").observe(0.5);
  registry.histogram("latency_seconds").observe(1.5);

  BenchReport report("counters");
  report.add_counters(registry);
  const JsonValue& root = report.root();
  EXPECT_EQ(root.at("counters").at("alpha_total").as_number(), 3.0);
  const JsonValue& latency = root.at("histograms").at("latency_seconds");
  EXPECT_EQ(latency.at("count").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(latency.at("sum_seconds").as_number(), 2.0);
}

TEST(BenchReport, AddSpanTotalsReflectsTracerAggregates) {
  Tracer::instance().set_mode(TraceMode::kDisabled);
  Tracer::instance().clear();
  Tracer::instance().set_mode(TraceMode::kAggregate);
  {
    Span span("bench_report_test/span", "test");
  }
  BenchReport report("spans");
  report.add_span_totals();
  Tracer::instance().set_mode(TraceMode::kDisabled);
  Tracer::instance().clear();

  const JsonValue& totals = report.root().at("span_totals");
  ASSERT_TRUE(totals.contains("bench_report_test/span"));
  EXPECT_EQ(totals.at("bench_report_test/span").at("count").as_number(),
            1.0);
  EXPECT_GE(totals.at("bench_report_test/span").at("seconds").as_number(),
            0.0);
}

TEST(BenchReport, DefaultPathHonoursBenchDir) {
  // setenv/getenv in a single-threaded test binary section.
  ASSERT_EQ(setenv("EDGESCHED_BENCH_DIR", "/tmp/bench_report_test", 1), 0);
  EXPECT_EQ(BenchReport("fig9").default_path(),
            "/tmp/bench_report_test/BENCH_fig9.json");
  ASSERT_EQ(setenv("EDGESCHED_BENCH_DIR", "", 1), 0);
  EXPECT_EQ(BenchReport("fig9").default_path(), "./BENCH_fig9.json");
  ASSERT_EQ(unsetenv("EDGESCHED_BENCH_DIR"), 0);
}

// The registry backing the hot-path counters and the --metrics dump.
TEST(MetricsRegistryDump, TextDumpIsSortedAcrossMetricKinds) {
  svc::MetricsRegistry registry;
  // Registered deliberately out of name order, mixing kinds.
  registry.counter("zeta_total").increment();
  registry.histogram("mid_seconds").observe(1e-4);
  registry.counter("alpha_total").increment(2);

  const std::string dump = registry.text_dump();
  const std::size_t alpha = dump.find("counter alpha_total 2");
  const std::size_t mid = dump.find("histogram mid_seconds count 1");
  const std::size_t zeta = dump.find("counter zeta_total 1");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(mid, std::string::npos);
  ASSERT_NE(zeta, std::string::npos);
  EXPECT_LT(alpha, mid);  // sorted by name, not registration order
  EXPECT_LT(mid, zeta);   // ... and not grouped by metric kind
}

TEST(MetricsRegistryDump, ResetForTestZeroesWithoutInvalidating) {
  svc::MetricsRegistry registry;
  svc::Counter& counter = registry.counter("reused_total");
  svc::Histogram& histogram = registry.histogram("reused_seconds");
  counter.increment(7);
  histogram.observe(0.25);

  registry.reset_for_test();
  // The references resolved before the reset stay live and start clean.
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.0);
  counter.increment();
  EXPECT_EQ(registry.counter("reused_total").value(), 1u);
  EXPECT_EQ(&registry.counter("reused_total"), &counter);
}

}  // namespace
}  // namespace edgesched::obs
