// Discrete-event executor: bit-exact nominal replay, jitter determinism,
// fault injection and the retry / fail-stop recovery policies.
#include "exec/executor.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "dag/generators.hpp"
#include "dag/properties.hpp"
#include "net/builders.hpp"
#include "sched/registry.hpp"
#include "sched/validator.hpp"
#include "util/rng.hpp"

namespace edgesched::exec {
namespace {

struct Instance {
  dag::TaskGraph graph;
  net::Topology topo;
};

Instance make_instance(std::uint64_t seed, std::size_t tasks = 18,
                       std::size_t procs = 4) {
  Rng rng(seed);
  dag::LayeredDagParams params;
  params.num_tasks = tasks;
  dag::TaskGraph graph = dag::random_layered(params, rng);
  dag::rescale_to_ccr(graph, 1.5);
  net::RandomWanParams wan;
  wan.num_processors = procs;
  net::Topology topo = net::random_wan(wan, rng);
  return Instance{std::move(graph), std::move(topo)};
}

TEST(Executor, NominalTimetableReplayIsBitExact) {
  // The tentpole guarantee: with zero perturbation and no faults, every
  // algorithm's schedule replays to *exactly* the predicted doubles —
  // all five communication models included.
  const Instance inst = make_instance(11);
  for (const auto& entry : sched::algorithm_registry()) {
    const sched::Schedule schedule =
        entry.make()->schedule(inst.graph, inst.topo);
    const ExecutionReport report =
        execute(inst.graph, inst.topo, schedule);
    ASSERT_TRUE(report.completed) << entry.key << ": " << report.failure;
    EXPECT_EQ(report.achieved_makespan, schedule.makespan()) << entry.key;
    EXPECT_EQ(report.predicted_makespan, schedule.makespan()) << entry.key;
    EXPECT_EQ(report.total_tardiness, 0.0) << entry.key;
    ASSERT_EQ(report.tasks.size(), inst.graph.num_tasks());
    for (const TaskRecord& record : report.tasks) {
      const auto& placed = schedule.task(dag::TaskId(record.task));
      EXPECT_EQ(record.start, placed.start) << entry.key;
      EXPECT_EQ(record.finish, placed.finish) << entry.key;
      EXPECT_EQ(record.processor, placed.processor.value()) << entry.key;
      EXPECT_EQ(record.attempts, 1u) << entry.key;
    }
    EXPECT_EQ(report.retries, 0u);
    EXPECT_EQ(report.faults_injected, 0u);
    EXPECT_EQ(report.work_lost, 0.0);
  }
}

TEST(Executor, EventDrivenNeverFinishesLater) {
  // Work-conserving dispatch keeps the planned per-resource order but
  // drops intentional gaps, so no operation starts after its anchor.
  const Instance inst = make_instance(12);
  ExecutionOptions options;
  options.dispatch = DispatchMode::kEventDriven;
  for (const char* name : {"ba", "oihsa", "bbsa"}) {
    const sched::Schedule schedule =
        sched::make_scheduler(name)->schedule(inst.graph, inst.topo);
    const ExecutionReport report =
        execute(inst.graph, inst.topo, schedule, options);
    ASSERT_TRUE(report.completed) << report.failure;
    EXPECT_LE(report.achieved_makespan, schedule.makespan() + 1e-12)
        << name;
    for (const TaskRecord& record : report.tasks) {
      EXPECT_LE(record.start, record.predicted_start + 1e-12) << name;
    }
  }
}

TEST(Executor, JitterIsDeterministicPerSeed) {
  const Instance inst = make_instance(13);
  const sched::Schedule schedule =
      sched::make_scheduler("oihsa")->schedule(inst.graph, inst.topo);
  ExecutionOptions options;
  options.model.duration_spread = 0.25;
  options.model.bandwidth_spread = 0.2;
  options.model.seed = 99;
  const ExecutionReport a = execute(inst.graph, inst.topo, schedule, options);
  const ExecutionReport b = execute(inst.graph, inst.topo, schedule, options);
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(a.achieved_makespan, b.achieved_makespan);
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
  // Jitter must actually move the clock (timetable mode only delays).
  EXPECT_GT(a.achieved_makespan, schedule.makespan());

  options.model.seed = 100;
  const ExecutionReport c = execute(inst.graph, inst.topo, schedule, options);
  EXPECT_NE(a.achieved_makespan, c.achieved_makespan);
}

TEST(Executor, StragglersStretchTheTail) {
  const Instance inst = make_instance(14);
  const sched::Schedule schedule =
      sched::make_scheduler("ba")->schedule(inst.graph, inst.topo);
  ExecutionOptions options;
  options.model.straggler_probability = 0.5;
  options.model.straggler_factor = 6.0;
  const ExecutionReport report =
      execute(inst.graph, inst.topo, schedule, options);
  ASSERT_TRUE(report.completed);
  EXPECT_GT(report.achieved_makespan, schedule.makespan());
  EXPECT_GT(report.max_tardiness, 0.0);
}

TEST(Executor, TransientProcessorFaultRetriesInPlace) {
  const Instance inst = make_instance(15);
  const sched::Schedule schedule =
      sched::make_scheduler("oihsa")->schedule(inst.graph, inst.topo);
  // Kill the processor running the task that ends last, mid-execution.
  const dag::TaskId victim = [&] {
    dag::TaskId best(0u);
    for (dag::TaskId t : inst.graph.all_tasks()) {
      if (schedule.task(t).finish > schedule.task(best).finish) best = t;
    }
    return best;
  }();
  const auto& placed = schedule.task(victim);
  ExecutionOptions options;
  options.policy = RecoveryPolicy::kRetry;
  options.faults.fail_processor(0.5 * (placed.start + placed.finish),
                                placed.processor, /*permanent=*/false,
                                /*repair=*/1.0);
  const ExecutionReport report =
      execute(inst.graph, inst.topo, schedule, options);
  ASSERT_TRUE(report.completed) << report.failure;
  EXPECT_EQ(report.faults_injected, 1u);
  EXPECT_EQ(report.faults_survived, 1u);
  EXPECT_GE(report.retries, 1u);
  EXPECT_GT(report.work_lost, 0.0);
  EXPECT_GT(report.achieved_makespan, schedule.makespan());
  EXPECT_GE(report.tasks[victim.index()].attempts, 2u);
  ASSERT_EQ(report.faults.size(), 1u);
  EXPECT_EQ(report.faults[0].kind, "processor");
  EXPECT_GE(report.faults[0].killed, 1u);
}

TEST(Executor, RetryBackoffDelaysTheRerun) {
  const dag::TaskGraph graph = dag::chain(3, 4.0, 1.0);
  Rng rng(4);
  const net::Topology topo = net::switched_star(2, net::SpeedConfig{}, rng);
  const sched::Schedule schedule =
      sched::make_scheduler("ba")->schedule(graph, topo);
  ExecutionOptions options;
  options.policy = RecoveryPolicy::kRetry;
  options.faults.fail_processor(2.0, schedule.task(dag::TaskId(0u)).processor,
                                false, 1.0);
  const ExecutionReport plain = execute(graph, topo, schedule, options);
  options.retry_backoff = 5.0;
  const ExecutionReport delayed = execute(graph, topo, schedule, options);
  ASSERT_TRUE(plain.completed) << plain.failure;
  ASSERT_TRUE(delayed.completed) << delayed.failure;
  EXPECT_GE(delayed.achieved_makespan, plain.achieved_makespan + 4.9);
}

TEST(Executor, RetryExhaustionAborts) {
  const dag::TaskGraph graph = dag::chain(2, 10.0, 1.0);
  Rng rng(5);
  const net::Topology topo = net::switched_star(1, net::SpeedConfig{}, rng);
  const sched::Schedule schedule =
      sched::make_scheduler("ba")->schedule(graph, topo);
  ExecutionOptions options;
  options.policy = RecoveryPolicy::kRetry;
  options.max_retries = 2;
  // The task re-runs right after each heal; repeated kills exhaust it.
  for (double t : {1.0, 3.0, 5.0, 7.0}) {
    options.faults.fail_processor(t, topo.processors().front(), false, 0.5);
  }
  const ExecutionReport report = execute(graph, topo, schedule, options);
  EXPECT_FALSE(report.completed);
  EXPECT_NE(report.failure.find("retr"), std::string::npos)
      << report.failure;
  ASSERT_FALSE(report.recoveries.empty());
  EXPECT_EQ(report.recoveries.back().action, "abort");
}

TEST(Executor, FailStopAbortsOnPermanentFault) {
  const Instance inst = make_instance(16);
  const sched::Schedule schedule =
      sched::make_scheduler("ba")->schedule(inst.graph, inst.topo);
  ExecutionOptions options;  // kFailStop is the default policy
  options.faults.fail_processor(schedule.makespan() * 0.25,
                                inst.topo.processors().front(),
                                /*permanent=*/true);
  const ExecutionReport report =
      execute(inst.graph, inst.topo, schedule, options);
  EXPECT_FALSE(report.completed);
  EXPECT_FALSE(report.failure.empty());
  EXPECT_EQ(report.faults_injected, 1u);
  EXPECT_EQ(report.faults_survived, 0u);
}

TEST(Executor, TransientLinkFaultKillsAndRetriesTheTransfer) {
  // Find a schedule with a cross-processor exclusive transfer and sever
  // its first hop mid-slot; retry policy must re-send after the heal.
  const Instance inst = make_instance(17, 20, 3);
  const sched::Schedule schedule =
      sched::make_scheduler("ba")->schedule(inst.graph, inst.topo);
  const sched::EdgeCommunication* cross = nullptr;
  for (std::size_t e = 0; e < schedule.num_edges(); ++e) {
    const auto& comm = schedule.communication(dag::EdgeId(e));
    if (comm.kind == sched::EdgeCommunication::Kind::kExclusive &&
        !comm.occupations.empty()) {
      cross = &comm;
      break;
    }
  }
  ASSERT_NE(cross, nullptr) << "instance produced no remote transfer";
  const auto& slot = cross->occupations.front();
  ExecutionOptions options;
  options.policy = RecoveryPolicy::kRetry;
  options.faults.fail_link(0.5 * (slot.start + slot.finish), slot.link,
                           /*permanent=*/false, /*repair=*/0.5);
  const ExecutionReport report =
      execute(inst.graph, inst.topo, schedule, options);
  ASSERT_TRUE(report.completed) << report.failure;
  EXPECT_EQ(report.faults_survived, 1u);
  EXPECT_GE(report.retries, 1u);
  ASSERT_EQ(report.faults.size(), 1u);
  EXPECT_EQ(report.faults[0].kind, "link");
  EXPECT_GE(report.faults[0].killed, 1u);
}

TEST(Executor, FaultAfterCompletionIsHarmless) {
  const Instance inst = make_instance(18);
  const sched::Schedule schedule =
      sched::make_scheduler("classic")->schedule(inst.graph, inst.topo);
  ExecutionOptions options;
  options.faults.fail_processor(schedule.makespan() + 100.0,
                                inst.topo.processors().front(), true);
  const ExecutionReport report =
      execute(inst.graph, inst.topo, schedule, options);
  ASSERT_TRUE(report.completed) << report.failure;
  EXPECT_EQ(report.achieved_makespan, schedule.makespan());
}

TEST(Executor, SampledFaultPlanIsDeterministic) {
  const Instance inst = make_instance(19);
  HazardConfig config;
  config.processor_rate = 0.05;
  config.link_rate = 0.02;
  config.horizon = 50.0;
  config.permanent_fraction = 0.3;
  config.seed = 7;
  const FaultPlan a = FaultPlan::sampled(inst.topo, config);
  const FaultPlan b = FaultPlan::sampled(inst.topo, config);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  a.validate(inst.topo);
  config.seed = 8;
  const FaultPlan c = FaultPlan::sampled(inst.topo, config);
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(Executor, RejectsMalformedOptions) {
  const Instance inst = make_instance(20, 6, 2);
  const sched::Schedule schedule =
      sched::make_scheduler("ba")->schedule(inst.graph, inst.topo);

  ExecutionOptions bad_model;
  bad_model.model.duration_spread = 1.5;
  EXPECT_THROW(
      (void)execute(inst.graph, inst.topo, schedule, bad_model),
      std::invalid_argument);

  ExecutionOptions bad_target;
  bad_target.faults.fail_processor(1.0, net::NodeId(10'000u), true);
  EXPECT_THROW(
      (void)execute(inst.graph, inst.topo, schedule, bad_target),
      std::invalid_argument);

  ExecutionOptions bad_algo;
  bad_algo.policy = RecoveryPolicy::kReschedule;
  bad_algo.recovery_algorithm = "no-such-algorithm";
  EXPECT_THROW(
      (void)execute(inst.graph, inst.topo, schedule, bad_algo),
      std::invalid_argument);

  // Shape mismatch: a schedule for a different graph.
  const Instance other = make_instance(21, 9, 2);
  EXPECT_THROW((void)execute(other.graph, other.topo, schedule),
               std::invalid_argument);
}

TEST(Executor, ParseHelpersRoundTrip) {
  EXPECT_EQ(parse_recovery_policy("fail-stop"), RecoveryPolicy::kFailStop);
  EXPECT_EQ(parse_recovery_policy("retry"), RecoveryPolicy::kRetry);
  EXPECT_EQ(parse_recovery_policy("reschedule"),
            RecoveryPolicy::kReschedule);
  EXPECT_EQ(to_string(RecoveryPolicy::kReschedule), "reschedule");
  EXPECT_THROW((void)parse_recovery_policy("bogus"), std::invalid_argument);

  EXPECT_EQ(parse_dispatch_mode("timetable"), DispatchMode::kTimetable);
  EXPECT_EQ(parse_dispatch_mode("event-driven"),
            DispatchMode::kEventDriven);
  EXPECT_EQ(to_string(DispatchMode::kEventDriven), "event-driven");
  EXPECT_THROW((void)parse_dispatch_mode("bogus"), std::invalid_argument);
}

TEST(Executor, ReportJsonHasExpectedShape) {
  const Instance inst = make_instance(22, 8, 2);
  const sched::Schedule schedule =
      sched::make_scheduler("oihsa")->schedule(inst.graph, inst.topo);
  const ExecutionReport report = execute(inst.graph, inst.topo, schedule);
  const std::string json = report.to_json().dump();
  EXPECT_NE(json.find("\"type\":\"execution_report\""), std::string::npos);
  EXPECT_NE(json.find("\"achieved_makespan\""), std::string::npos);
  EXPECT_NE(json.find("\"tasks\""), std::string::npos);
  EXPECT_FALSE(report.summary().empty());
}

}  // namespace
}  // namespace edgesched::exec
